//! # aqudd — accurate *and* compact decision diagrams for quantum computation
//!
//! A Rust reproduction of *“Overcoming the Trade-off between Accuracy and
//! Compactness in Decision Diagrams for Quantum Computation”* (Niemann,
//! Zulehner, Drechsler, Wille; DATE 2019 / journal version).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`bigint`] — arbitrary-precision integers (the GMP substitute),
//! * [`rings`] — the exact number systems `Z[ω]`, `D[ω]`, `Q[ω]`, `Z[√2]`,
//! * [`dd`] — the QMDD package with numeric (tolerance-ε) and algebraic
//!   edge weights,
//! * [`circuits`] — circuit IR, gate library and the benchmark generators
//!   (Grover, Binary Welded Tree, Ground State Estimation, Clifford+T
//!   compilation),
//! * [`sim`] — the simulation and measurement harness,
//! * [`serve`] — the concurrent batch-simulation service (worker pool,
//!   admission-controlled job queue, line-delimited TCP protocol, live
//!   metrics).
//!
//! # Quickstart
//!
//! ```
//! use aqudd::circuits::grover;
//! use aqudd::dd::QomegaContext;
//! use aqudd::sim::Simulator;
//!
//! // Search 64 entries for index 42, with *exact* algebraic arithmetic —
//! // no tolerance value to tune, no numerical error, maximal compactness.
//! let circuit = grover(6, 42);
//! let mut sim = Simulator::new(QomegaContext::new(), &circuit);
//! let result = sim.run();
//! let probs = result.probabilities();
//! let best = probs
//!     .iter()
//!     .enumerate()
//!     .max_by(|a, b| a.1.total_cmp(b.1))
//!     .map(|(i, _)| i);
//! assert_eq!(best, Some(42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use aq_bigint as bigint;
pub use aq_circuits as circuits;
pub use aq_dd as dd;
pub use aq_rings as rings;
pub use aq_serve as serve;
pub use aq_sim as sim;
