//! Cross-crate integration tests exercising the public facade API the way
//! a downstream user would.

use aqudd::circuits::cliffordt::CliffordTCompiler;
use aqudd::circuits::{bwt, grover, gse, qft, BwtParams, Circuit, GseParams, Op};
use aqudd::dd::{GateMatrix, GcdContext, Manager, NumericContext, QomegaContext};
use aqudd::rings::{Domega, Qomega};
use aqudd::sim::{normalized_distance, PairedRun, Simulator};

#[test]
fn facade_reexports_compose() {
    // a value that flows through all layers: a bigint into a ring element
    // into a DD weight
    let big = aqudd::bigint::IBig::from(3).pow(40);
    let z = aqudd::rings::Zomega::new(
        aqudd::bigint::IBig::zero(),
        aqudd::bigint::IBig::zero(),
        aqudd::bigint::IBig::zero(),
        big,
    );
    let q = Qomega::from(Domega::from(z));
    let mut m = Manager::new(QomegaContext::new(), 1);
    let id = m.intern(q);
    assert!(m.weight(id).coeff_bits() > 60);
}

#[test]
fn headline_claim_accuracy_and_compactness_together() {
    // The paper's headline: the algebraic QMDD is as compact as the best
    // ε and exactly accurate, simultaneously — no tuning.
    let circuit = grover(10, 777);

    // best-tuned numeric run
    let mut tuned = Simulator::new(NumericContext::with_eps(1e-10), &circuit);
    let tuned_result = tuned.run();

    // untuned exact run
    let mut exact = Simulator::new(QomegaContext::new(), &circuit);
    let exact_result = exact.run();

    assert!(exact_result.trace.peak_nodes() <= tuned_result.trace.peak_nodes() + 2);
    assert!(normalized_distance(&tuned_result.amplitudes, &exact_result.amplitudes) < 1e-8);
    // and the exact run has literally unit norm
    let norm: f64 = exact_result.probabilities().iter().sum();
    assert!((norm - 1.0).abs() < 1e-12);
}

#[test]
fn qft_roundtrip_exact_through_the_full_stack() {
    // QFT⁻¹·QFT = I on a non-trivial state. The 2-qubit QFT's controlled
    // phase is CP(π/2), whose decomposition uses P(π/4) = T — exactly
    // representable, so the whole round trip runs in Q[ω]. (Wider QFTs
    // need P(π/2^k) with k ≥ 3, which must be Clifford+T-compiled first —
    // exactly what the GSE pipeline does.)
    let n = 2;
    let mut c = Circuit::new(n);
    c.push_gate(GateMatrix::x(), 1, &[]);
    c.push_gate(GateMatrix::h(), 0, &[]);
    c.extend_from(&qft(n));
    c.extend_from(&aqudd::circuits::inverse_qft(n));
    let mut exact = Simulator::new(QomegaContext::new(), &c);
    let got = exact.run().amplitudes;

    let mut prep = Circuit::new(n);
    prep.push_gate(GateMatrix::x(), 1, &[]);
    prep.push_gate(GateMatrix::h(), 0, &[]);
    let mut ref_sim = Simulator::new(QomegaContext::new(), &prep);
    let want = ref_sim.run().amplitudes;
    assert!(normalized_distance(&got, &want) < 1e-12);

    // a 4-qubit QFT needs compilation; the compiled version still
    // round-trips within the approximation budget
    let n = 4;
    let mut c = Circuit::new(n);
    c.push_gate(GateMatrix::x(), 2, &[]);
    c.extend_from(&qft(n));
    c.extend_from(&aqudd::circuits::inverse_qft(n));
    let (compiled, worst) = CliffordTCompiler::new(8).compile(&c);
    assert!(compiled.is_exact());
    let mut sim = Simulator::new(QomegaContext::new(), &compiled);
    let got = sim.run().amplitudes;
    // |0010⟩ must remain dominant
    let p = got[0b0010].norm_sqr();
    assert!(
        p > 0.8,
        "round trip lost the state: {p} (worst gate {worst})"
    );
}

#[test]
fn gse_to_clifford_t_to_all_backends() {
    let raw = gse(&GseParams {
        precision_bits: 2,
        ..GseParams::default()
    });
    assert!(raw.approx_ops() > 0);
    let (compiled, _) = CliffordTCompiler::new(5).compile(&raw);
    assert!(compiled.is_exact());

    let run = |amps: Vec<aqudd::rings::Complex64>| amps;
    let mut q = Simulator::new(QomegaContext::new(), &compiled);
    let va = run(q.run().amplitudes);
    let mut g = Simulator::new(GcdContext::new(), &compiled);
    let vg = run(g.run().amplitudes);
    let mut n = Simulator::new(NumericContext::with_eps(1e-13), &compiled);
    let vn = run(n.run().amplitudes);
    assert!(normalized_distance(&vg, &va) < 1e-10, "GCD vs Qω");
    assert!(normalized_distance(&vn, &va) < 1e-8, "numeric vs Qω");
}

#[test]
fn bwt_walk_ops_round_trip_through_facade() {
    let (circuit, tree) = bwt(BwtParams {
        height: 2,
        steps: 6,
        seed: 1,
    });
    assert!(circuit
        .iter()
        .any(|op| matches!(op, Op::Permutation { .. })));
    let mut sim = Simulator::new(GcdContext::new(), &circuit);
    sim.reset_to(tree.coined_start());
    let result = sim.run();
    let total: f64 = result.probabilities().iter().sum();
    assert!((total - 1.0).abs() < 1e-10);
}

#[test]
fn paired_run_reports_the_tradeoff() {
    let circuit = grover(6, 33);
    let (coarse, _) = PairedRun::new(NumericContext::with_eps(1e-2), &circuit, 10).run();
    let (fine, _) = PairedRun::new(NumericContext::with_eps(1e-12), &circuit, 10).run();
    let coarse_err = coarse.final_error().expect("sampled");
    let fine_err = fine.final_error().expect("sampled");
    assert!(coarse_err > 1e-2, "coarse ε must hurt: {coarse_err}");
    assert!(fine_err < 1e-9, "fine ε must track: {fine_err}");
}

#[test]
fn gse_algebraic_run_fails_soft_under_a_small_budget() {
    // The ISSUE's acceptance scenario: the exact GSE run is exactly the
    // workload whose nodes and coefficient bits blow up (Fig. 5), so a
    // small budget must produce a structured abort — carrying the partial
    // trace and the engine statistics — never a panic.
    use aqudd::dd::RunBudget;
    use aqudd::sim::SimOptions;

    let raw = gse(&GseParams {
        precision_bits: 2,
        ..GseParams::default()
    });
    let (compiled, _) = CliffordTCompiler::new(5).compile(&raw);
    let mut sim = Simulator::with_options(
        QomegaContext::new(),
        &compiled,
        SimOptions {
            budget: RunBudget::unlimited()
                .with_max_nodes(24)
                .with_max_weight_bits(16),
            ..SimOptions::default()
        },
    );
    let abort = *sim.try_run().expect_err("tiny budget must abort GSE");
    assert!(abort.error.source.is_budget(), "got: {}", abort.error);
    assert!(abort.gates_applied < compiled.len());
    // partial trace: one point per applied gate, with the abort reason
    assert_eq!(abort.trace.points.len(), abort.gates_applied);
    assert!(abort.trace.aborted.is_some());
    // engine statistics at the abort point are the real counters
    assert!(abort.statistics.vec_nodes + abort.statistics.mat_nodes > 0);
}

#[test]
fn exact_contexts_never_drift_over_long_runs() {
    // T applied 8k times is the identity — with exact arithmetic the DD
    // returns to the literal starting edge, regardless of run length.
    let mut m = Manager::new(QomegaContext::new(), 1);
    let t = m.gate(&GateMatrix::t(), 0, &[]);
    let mut u = m.identity();
    for _ in 0..8 * 1000 {
        u = m.mat_mul(&t, &u);
    }
    assert_eq!(u, m.identity());
}
