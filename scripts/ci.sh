#!/usr/bin/env bash
# Offline CI: formatting, lints, the tier-1 build+test command, and the
# engine throughput benchmark. No network access required — the workspace
# has no external dependencies.
#
# Usage: scripts/ci.sh [--no-bench]

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: cargo build --release =="
cargo build --release --offline

echo "== tier-1: cargo test -q =="
cargo test -q --offline

echo "== fail-soft: budget-abort suites =="
cargo test -q --offline -p aq-dd --test budget
cargo test -q --offline -p aq-sim --test fail_soft
cargo test -q --offline --test workspace gse_algebraic_run_fails_soft

echo "== persistence: snapshot fault injection + checkpoint/resume =="
cargo test -q --offline -p aq-dd --test snapshot_faults
cargo test -q --offline -p aq-dd --test snapshot_roundtrip
cargo test -q --offline -p aq-sim --test checkpoint_resume
cargo test -q --offline -p aq-bench --test resume_figures

echo "== invariants: validate-invariants feature gates =="
cargo test -q --offline -p aq-dd --features validate-invariants --test invariants
cargo test -q --offline -p aq-sim --features validate-invariants --lib

if [[ "${1:-}" != "--no-bench" ]]; then
    echo "== engine bench (BENCH_engine.json) =="
    cargo run --release --offline -p aq-bench --bin engine_bench -- BENCH_engine.json

    echo "== engine bench: real checkpoint/resume cycle =="
    ckpt="target/ci_engine_bench.aqckp"
    rm -f "$ckpt"
    # a 50 ms deadline aborts every workload mid-run; each abort dumps the
    # checkpoint (later workloads overwrite it)
    cargo run --release --offline -p aq-bench --bin engine_bench -- \
        target/ci_bench_aborted.json --deadline-secs=0.05 --checkpoint="$ckpt"
    test -f "$ckpt" || { echo "expected a checkpoint dump"; exit 1; }
    # resumed run must complete and leave no aborted samples
    cargo run --release --offline -p aq-bench --bin engine_bench -- \
        target/ci_bench_resumed.json --resume="$ckpt"
    if grep -q '"aborted": "' target/ci_bench_resumed.json; then
        echo "resumed engine_bench still has aborted samples"; exit 1
    fi
    rm -f "$ckpt" target/ci_bench_aborted.json target/ci_bench_resumed.json
fi

echo "CI OK"
