#!/usr/bin/env bash
# Offline CI: formatting, lints, the tier-1 build+test command, and the
# engine throughput benchmark. No network access required — the workspace
# has no external dependencies.
#
# Usage: scripts/ci.sh [--no-bench]

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== aq-lint: workspace lint gate (R1-R10 + A0, semantic passes on) =="
cargo run -q --offline -p aq-analyze --bin aq-lint -- --deny --baseline=lint-baseline.toml \
    --stats --lock-dot=target/lock-order.dot
# the committed lock-order graph must match what the analyzer derives
diff -u docs/lock-order.dot target/lock-order.dot || {
    echo "docs/lock-order.dot is stale; regenerate with:"
    echo "  cargo run -p aq-analyze --bin aq-lint -- --lock-dot=docs/lock-order.dot"
    exit 1
}

echo "== tier-1: cargo build --release =="
cargo build --release --offline --workspace

echo "== tier-1: cargo test -q =="
cargo test -q --offline --workspace

echo "== fail-soft: budget-abort suites =="
cargo test -q --offline -p aq-dd --test budget
cargo test -q --offline -p aq-sim --test fail_soft
cargo test -q --offline --test workspace gse_algebraic_run_fails_soft

echo "== persistence: snapshot fault injection + checkpoint/resume =="
cargo test -q --offline -p aq-dd --test snapshot_faults
cargo test -q --offline -p aq-dd --test snapshot_roundtrip
cargo test -q --offline -p aq-sim --test checkpoint_resume
cargo test -q --offline -p aq-bench --test resume_figures

echo "== invariants: validate-invariants feature gates =="
cargo test -q --offline -p aq-dd --features validate-invariants --test invariants
cargo test -q --offline -p aq-sim --features validate-invariants --lib

echo "== serve: concurrency + protocol fault suites (lock-order audit on) =="
cargo test -q --offline -p aq-serve --features lock-audit --test concurrency
cargo test -q --offline -p aq-serve --features lock-audit --test lock_audit
cargo test -q --offline -p aq-serve --features lock-audit --test protocol_faults
# static R9 graph must be acyclic and a superset of the runtime graph
cargo test -q --offline -p aq-serve --features lock-audit --test static_lock_order

echo "== serve: deterministic chaos suite (3 pinned seeds, lock-audit on) =="
# seed-driven worker kills, session corruption, connection stalls and
# spurious wakeups; asserts exact metric reconciliation and byte-identical
# results under every schedule (seeds pinned inside the suite)
cargo test -q --offline -p aq-serve --features chaos,lock-audit --test chaos
cargo test -q --offline -p aq-sim --features chaos --lib

echo "== serve: real server cycle over TCP (aq-served + aq-cli) =="
serve_ck="target/ci_serve_ckpts"
serve_log="target/ci_served.log"
rm -rf "$serve_ck" "$serve_log" target/ci_serve_*.json target/ci_serve_ghz10.qasm
./target/release/aq-served --port=0 --workers=2 --checkpoint-dir="$serve_ck" \
    >"$serve_log" 2>&1 &
serve_pid=$!
# scrape the ephemeral address from the server's "listening on" line
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^listening on //p' "$serve_log" | head -n 1)"
    [[ -n "$addr" ]] && break
    sleep 0.1
done
if [[ -z "$addr" ]]; then
    echo "aq-served never reported its address:"
    cat "$serve_log"
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
cli() { ./target/release/aq-cli --addr="$addr" "$@"; }
# a roomy job that completes...
cli submit --circuit=grover --n=5 --marked=19 --scheme=numeric --eps=1e-10 \
    --max-nodes=2000000 --wait=120 | tee target/ci_serve_completed.json
grep -q '"state":"completed"' target/ci_serve_completed.json \
    || { echo "expected a completed job"; exit 1; }
# ...and a starved one that budget-aborts, leaving a resumable checkpoint
cli submit --circuit=grover --n=6 --marked=45 --scheme=numeric --eps=1e-10 \
    --max-nodes=24 --wait=120 | tee target/ci_serve_aborted.json
grep -q '"state":"aborted"' target/ci_serve_aborted.json \
    || { echo "expected a budget abort"; exit 1; }
grep -q '"checkpoint":"' target/ci_serve_aborted.json \
    || { echo "expected a checkpoint path in the abort"; exit 1; }
ls "$serve_ck"/job-*.aqckp >/dev/null \
    || { echo "expected a checkpoint file on disk"; exit 1; }
# metrics must reconcile: 2 submitted == 1 completed + 1 aborted, none in flight
cli metrics | tee target/ci_serve_metrics.json
grep -q '"submitted":2,"completed":1,"aborted":1,"rejected":0' \
    target/ci_serve_metrics.json || { echo "metrics do not reconcile"; exit 1; }
grep -q '"queue_depth":0,"running":0' target/ci_serve_metrics.json \
    || { echo "expected an idle server"; exit 1; }
# resubmitting the completed job verbatim must be served from the result cache
cli submit --circuit=grover --n=5 --marked=19 --scheme=numeric --eps=1e-10 \
    --max-nodes=2000000 --wait=120 | tee target/ci_serve_cached.json
grep -q '"state":"completed"' target/ci_serve_cached.json \
    || { echo "expected the cached resubmission to complete"; exit 1; }
cli metrics | tee target/ci_serve_metrics2.json
grep -q '"served":1,"hits":1' target/ci_serve_metrics2.json \
    || { echo "expected a result-cache hit in the metrics verb"; exit 1; }
# a seeded sampling job over the same server: 10-qubit GHZ under the exact
# gcd scheme — the histogram must sum to the shot count and the exact
# context must report probabilities as exactly one half, with exact strings
ghz_qasm="target/ci_serve_ghz10.qasm"
{
    printf 'OPENQASM 2.0;\nqreg q[10];\nh q[0];\n'
    for q in $(seq 1 9); do printf 'cx q[%d], q[%d];\n' "$((q - 1))" "$q"; done
} >"$ghz_qasm"
cli sample --qasm-file="$ghz_qasm" --scheme=gcd --shots=2048 --seed=9 \
    --max-nodes=2000000 --wait=120 | tee target/ci_serve_sample.json
grep -q '"state":"completed"' target/ci_serve_sample.json \
    || { echo "expected the sampling job to complete"; exit 1; }
grep -q '"forked":false' target/ci_serve_sample.json \
    || { echo "GHZ has no mid-circuit measurement; sampling must not fork"; exit 1; }
grep -q '"p":0.5,"exact":"' target/ci_serve_sample.json \
    || { echo "expected exactly-1/2 probabilities with exact strings"; exit 1; }
extract_counts() { sed -n 's/.*"counts":\(\[.*\]\]\),"probabilities".*/\1/p' "$1" | head -n 1; }
counts1="$(extract_counts target/ci_serve_sample.json)"
sample_total=$(printf '%s' "$counts1" | grep -o '\[[0-9]*,[0-9]*\]' \
    | awk -F'[^0-9]+' '{s += $3} END {print s}')
[[ "$sample_total" == "2048" ]] \
    || { echo "histogram sums to ${sample_total:-0}, want 2048"; exit 1; }
# same seed again (top-k varied to defeat the result cache): the fresh run
# must reproduce the histogram bit-for-bit
cli sample --qasm-file="$ghz_qasm" --scheme=gcd --shots=2048 --seed=9 --top-k=5 \
    --max-nodes=2000000 --wait=120 | tee target/ci_serve_sample2.json
counts2="$(extract_counts target/ci_serve_sample2.json)"
[[ -n "$counts1" && "$counts1" == "$counts2" ]] \
    || { echo "equal seeds must reproduce the histogram bit-for-bit"; exit 1; }
# the verbatim repeat is answered from the result cache, byte-identical
cli sample --qasm-file="$ghz_qasm" --scheme=gcd --shots=2048 --seed=9 \
    --max-nodes=2000000 --wait=120 | tee target/ci_serve_sample3.json
counts3="$(extract_counts target/ci_serve_sample3.json)"
[[ "$counts1" == "$counts3" ]] \
    || { echo "cache-served sample must be byte-identical"; exit 1; }
cli metrics | tee target/ci_serve_metrics3.json
grep -q '"samples":3,"shots":6144' target/ci_serve_metrics3.json \
    || { echo "expected sampling counters in the metrics verb"; exit 1; }
grep -q '"served":2,"hits":2' target/ci_serve_metrics3.json \
    || { echo "expected the repeat sample to be cache-served"; exit 1; }
cli drain | grep -q '"state":"drained"' || { echo "drain failed"; exit 1; }
cli shutdown | grep -q '"state":"stopped"' || { echo "shutdown failed"; exit 1; }
wait "$serve_pid" || { echo "aq-served exited non-zero"; exit 1; }
rm -rf "$serve_ck" "$serve_log" target/ci_serve_*.json "$ghz_qasm"

echo "== serve: kill -> respawn -> recover cycle over TCP (chaos build) =="
cargo build -q --release --offline -p aq-serve --features chaos
chaos_ck="target/ci_chaos_ckpts"
chaos_log="target/ci_chaos_served.log"
rm -rf "$chaos_ck" "$chaos_log" target/ci_chaos_*.json
# every even job id panics its worker mid-claim; the supervisor must
# recover the job as a transient abort and respawn the worker
./target/release/aq-served --port=0 --workers=2 --checkpoint-dir="$chaos_ck" \
    --restart-budget=100 --backoff-base-ms=5 --backoff-cap-ms=50 \
    --chaos-seed=7 --chaos-kill-every=2 >"$chaos_log" 2>&1 &
chaos_pid=$!
chaos_addr=""
for _ in $(seq 1 100); do
    chaos_addr="$(sed -n 's/^listening on //p' "$chaos_log" | head -n 1)"
    [[ -n "$chaos_addr" ]] && break
    sleep 0.1
done
if [[ -z "$chaos_addr" ]]; then
    echo "chaos aq-served never reported its address:"
    cat "$chaos_log"
    kill "$chaos_pid" 2>/dev/null || true
    exit 1
fi
ccli() { ./target/release/aq-cli --addr="$chaos_addr" "$@"; }
# job 1 (odd id) survives; job 2 is killed, aborts transient, and the
# retry loop resubmits until the respawned worker completes it
ccli submit --circuit=grover --n=5 --marked=19 --scheme=numeric --eps=1e-10 \
    --max-nodes=2000000 --retries=6 --wait=120 | tee target/ci_chaos_first.json
grep -q '"state":"completed"' target/ci_chaos_first.json \
    || { echo "expected the unkilled job to complete"; exit 1; }
ccli submit --circuit=grover --n=5 --marked=7 --scheme=numeric --eps=1e-10 \
    --max-nodes=2000000 --retries=6 --wait=120 | tee target/ci_chaos_second.json
grep -q '"reason":"transient:' target/ci_chaos_second.json \
    || { echo "expected a transient abort from the injected kill"; exit 1; }
grep -q '"state":"completed"' target/ci_chaos_second.json \
    || { echo "expected the retried job to complete after the respawn"; exit 1; }
ccli metrics | tee target/ci_chaos_metrics.json
grep -Eq '"worker_deaths":[1-9]' target/ci_chaos_metrics.json \
    || { echo "expected at least one detected worker death"; exit 1; }
grep -Eq '"worker_respawns":[1-9]' target/ci_chaos_metrics.json \
    || { echo "expected at least one respawn"; exit 1; }
ccli shutdown | grep -q '"state":"stopped"' || { echo "chaos shutdown failed"; exit 1; }
wait "$chaos_pid" || { echo "chaos aq-served exited non-zero"; exit 1; }
rm -rf "$chaos_ck" "$chaos_log" target/ci_chaos_*.json
# restore the feature-free binaries for anything running after CI
cargo build -q --release --offline -p aq-serve

if [[ "${1:-}" != "--no-bench" ]]; then
    echo "== serve bench: worker-scaling gate + chaos row + BENCH_serve.json =="
    # 4-worker throughput must not fall below 1-worker throughput; the
    # gate prints a skip notice (and passes) when host_cores == 1. The
    # chaos build adds the 1%-job-panic row (deaths/respawns/retries).
    cargo run --release --offline -p aq-bench --features chaos --bin serve_bench -- \
        BENCH_serve.json --scale-gate --chaos-seed=3405691582
    grep -q '"config": "chaos-1pct-kill-4w"' BENCH_serve.json \
        || { echo "expected the chaos row in BENCH_serve.json"; exit 1; }
    grep -q '"config": "sampler-final-1w"' BENCH_serve.json \
        || { echo "expected the measurement-free sampler row"; exit 1; }
    grep -q '"config": "sampler-forked-1w"' BENCH_serve.json \
        || { echo "expected the fork-per-shot sampler row"; exit 1; }

    echo "== engine bench: algebraic-gap regression gate (grover6) =="
    # GCD D[omega] throughput must hold at least half of numeric throughput
    # (measured ~1.2x on this workload; the gate catches a regression back
    # to the orders-of-magnitude gap this representation used to have)
    cargo run --release --offline -p aq-bench --bin engine_bench -- --gap-gate=0.5

    echo "== engine bench (BENCH_engine.json) =="
    cargo run --release --offline -p aq-bench --bin engine_bench -- BENCH_engine.json

    echo "== engine bench: real checkpoint/resume cycle =="
    ckpt="target/ci_engine_bench.aqckp"
    rm -f "$ckpt"
    # a 50 ms deadline aborts every workload mid-run; each abort dumps the
    # checkpoint (later workloads overwrite it)
    cargo run --release --offline -p aq-bench --bin engine_bench -- \
        target/ci_bench_aborted.json --deadline-secs=0.05 --checkpoint="$ckpt"
    test -f "$ckpt" || { echo "expected a checkpoint dump"; exit 1; }
    # resumed run must complete and leave no aborted samples
    cargo run --release --offline -p aq-bench --bin engine_bench -- \
        target/ci_bench_resumed.json --resume="$ckpt"
    if grep -q '"aborted": "' target/ci_bench_resumed.json; then
        echo "resumed engine_bench still has aborted samples"; exit 1
    fi
    rm -f "$ckpt" target/ci_bench_aborted.json target/ci_bench_resumed.json
fi

echo "CI OK"
