#!/usr/bin/env bash
# Offline CI: formatting, lints, the tier-1 build+test command, and the
# engine throughput benchmark. No network access required — the workspace
# has no external dependencies.
#
# Usage: scripts/ci.sh [--no-bench]

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: cargo build --release =="
cargo build --release --offline

echo "== tier-1: cargo test -q =="
cargo test -q --offline

echo "== fail-soft: budget-abort suites =="
cargo test -q --offline -p aq-dd --test budget
cargo test -q --offline -p aq-sim --test fail_soft
cargo test -q --offline --test workspace gse_algebraic_run_fails_soft

if [[ "${1:-}" != "--no-bench" ]]; then
    echo "== engine bench (BENCH_engine.json) =="
    cargo run --release --offline -p aq-bench --bin engine_bench -- BENCH_engine.json
fi

echo "CI OK"
