//! Property-based tests for the arbitrary-precision integers: ring axioms,
//! division invariants and agreement with native 128-bit arithmetic.

use aq_bigint::{IBig, UBig};
use aq_testutil::proptest::prelude::*;

fn ubig() -> impl Strategy<Value = UBig> {
    prop::collection::vec(any::<u64>(), 0..8).prop_map(UBig::from_limbs)
}

fn ibig() -> impl Strategy<Value = IBig> {
    (any::<bool>(), ubig()).prop_map(|(neg, mag)| IBig::from_sign_magnitude(neg, mag))
}

proptest! {
    #[test]
    fn add_commutative(a in ubig(), b in ubig()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associative(a in ubig(), b in ubig(), c in ubig()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn mul_commutative(a in ubig(), b in ubig()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_distributes_over_add(a in ubig(), b in ubig(), c in ubig()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn sub_inverts_add(a in ubig(), b in ubig()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn div_rem_reconstructs(a in ubig(), b in ubig()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn shift_roundtrip(a in ubig(), s in 0u64..300) {
        prop_assert_eq!(&(&a << s) >> s, a);
    }

    #[test]
    fn gcd_divides_and_linear(a in ubig(), b in ubig()) {
        let g = a.gcd(&b);
        if !g.is_zero() {
            prop_assert!((&a % &g).is_zero());
            prop_assert!((&b % &g).is_zero());
        } else {
            prop_assert!(a.is_zero() && b.is_zero());
        }
    }

    #[test]
    fn isqrt_bounds(a in ubig()) {
        let r = a.isqrt();
        prop_assert!(&r * &r <= a);
        let r1 = &r + &UBig::one();
        prop_assert!(&r1 * &r1 > a);
    }

    #[test]
    fn decimal_roundtrip(a in ubig()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<UBig>().unwrap(), a);
    }

    #[test]
    fn matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let (ba, bb) = (UBig::from(a), UBig::from(b));
        prop_assert_eq!(&ba + &bb, UBig::from(a as u128 + b as u128));
        prop_assert_eq!(&ba * &bb, UBig::from(a as u128 * b as u128));
        if let (Some(q), Some(r)) = (a.checked_div(b), a.checked_rem(b)) {
            prop_assert_eq!(&ba / &bb, UBig::from(q));
            prop_assert_eq!(&ba % &bb, UBig::from(r));
        }
    }

    #[test]
    fn signed_ring_axioms(a in ibig(), b in ibig(), c in ibig()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) * &c, &(&a * &c) + &(&b * &c));
        prop_assert_eq!(&a + &-&a, IBig::zero());
        prop_assert_eq!(&(&a - &b) + &b, a);
    }

    #[test]
    fn signed_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let (ba, bb) = (IBig::from(a), IBig::from(b));
        prop_assert_eq!((&ba + &bb).to_string(), (a as i128 + b as i128).to_string());
        prop_assert_eq!((&ba * &bb).to_string(), (a as i128 * b as i128).to_string());
        if b != 0 {
            let (q, r) = ba.div_rem(&bb);
            prop_assert_eq!(q.to_string(), (a as i128 / b as i128).to_string());
            prop_assert_eq!(r.to_string(), (a as i128 % b as i128).to_string());
        }
    }

    #[test]
    fn signed_nearest_rounding(a in any::<i64>(), b in any::<i64>()) {
        prop_assume!(b != 0);
        let q = IBig::from(a).div_round_nearest(&IBig::from(b));
        // |a - q*b| <= |b|/2 (ties allowed either way by the metric)
        let diff = &IBig::from(a) - &(&q * &IBig::from(b));
        prop_assert!(diff.abs().double() <= IBig::from(b).abs());
    }

    #[test]
    fn to_f64_close(a in ubig()) {
        let f = a.to_f64();
        if f.is_finite() && !a.is_zero() {
            // relative error below 2^-52
            let (m, e) = a.to_f64_exp();
            let reconstructed = m * 2f64.powi(e.min(1023) as i32);
            if e <= 1023 {
                let rel = ((f - reconstructed) / f).abs();
                prop_assert!(rel < 1e-15, "rel={rel}");
            }
        }
    }

    #[test]
    fn ordering_total(a in ibig(), b in ibig()) {
        use std::cmp::Ordering::*;
        match a.cmp(&b) {
            Less => prop_assert!(&b - &a > IBig::zero()),
            Equal => prop_assert_eq!(&a, &b),
            Greater => prop_assert!(&a - &b > IBig::zero()),
        }
    }
}

/// Values concentrated around the inline/heap representation boundary:
/// exactly 1, 2 or 3 limbs, with the top limb sometimes tiny so carries and
/// borrows cross `2^128` in both directions.
fn boundary_ubig() -> impl Strategy<Value = UBig> {
    let sized = |n: usize| {
        prop::collection::vec(any::<u64>(), n..(n + 1))
            .prop_map(|mut limbs| {
                if let Some(top) = limbs.last_mut() {
                    *top = (*top).max(1);
                }
                UBig::from_limbs(limbs)
            })
            .boxed()
    };
    let near_top = |n: usize| {
        prop::collection::vec(any::<u64>(), n..(n + 1))
            .prop_map(|mut limbs| {
                // top limb all-ones or one: maximizes carry/borrow crossings
                let last = limbs.len() - 1;
                limbs[last] = if limbs[last] & 1 == 1 { u64::MAX } else { 1 };
                UBig::from_limbs(limbs)
            })
            .boxed()
    };
    prop_oneof![sized(1), sized(2), sized(3), near_top(2), near_top(3),]
}

/// The representation invariant: a value is stored inline exactly when it
/// fits in two limbs, so `is_inline` is a function of the value alone.
fn assert_canonical(v: &UBig) {
    assert_eq!(
        v.is_inline(),
        v.bit_len() <= 128,
        "inline repr must hold exactly the <= 2-limb values: {v:?}"
    );
}

fn hash_fingerprint(v: &UBig) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

proptest! {
    /// Every arithmetic result near the boundary lands in the canonical
    /// representation, whichever side it came from.
    #[test]
    fn boundary_ops_canonical(a in boundary_ubig(), b in boundary_ubig(), s in 0u64..200) {
        let sum = &a + &b;
        assert_canonical(&sum);
        assert_canonical(&(&sum - &a));
        let prod = &a * &b;
        assert_canonical(&prod);
        if !b.is_zero() {
            let (q, r) = a.div_rem(&b);
            assert_canonical(&q);
            assert_canonical(&r);
        }
        assert_canonical(&a.gcd(&b));
        assert_canonical(&a.shl_bits(s));
        assert_canonical(&a.shr_bits(s));
    }

    /// Round-trips that cross the inline/heap boundary in both directions
    /// recover the original value, equal and with an identical hash.
    #[test]
    fn boundary_crossing_roundtrips(a in boundary_ubig(), b in boundary_ubig(), s in 1u64..200) {
        // up through add, back down through sub
        let up = &a + &b;
        let back = &up - &b;
        prop_assert_eq!(&back, &a);
        prop_assert_eq!(hash_fingerprint(&back), hash_fingerprint(&a));
        // up through shl, back down through shr
        let shifted_back = a.shl_bits(s).shr_bits(s);
        prop_assert_eq!(&shifted_back, &a);
        prop_assert_eq!(hash_fingerprint(&shifted_back), hash_fingerprint(&a));
        // up through mul, back down through exact division
        if !b.is_zero() {
            let (q, r) = (&a * &b).div_rem(&b);
            prop_assert_eq!(&q, &a);
            prop_assert!(r.is_zero());
            prop_assert_eq!(hash_fingerprint(&q), hash_fingerprint(&a));
        }
    }

    /// The u128 fast paths agree bit-for-bit with native arithmetic, and
    /// their results never allocate.
    #[test]
    fn inline_fast_paths_match_u128(a in any::<u64>(), b in any::<u64>(), s in 0u64..64) {
        let (ba, bb) = (UBig::from(a), UBig::from(b));
        prop_assert!(ba.is_inline() && bb.is_inline());
        let sum = &ba + &bb;
        prop_assert!(sum.is_inline());
        prop_assert_eq!(sum.to_u128(), Some(a as u128 + b as u128));
        let prod = &ba * &bb;
        prop_assert!(prod.is_inline());
        prop_assert_eq!(prod.to_u128(), Some(a as u128 * b as u128));
        if let (Some(quot), Some(rem)) = (a.checked_div(b), a.checked_rem(b)) {
            let (q, r) = ba.div_rem(&bb);
            prop_assert!(q.is_inline() && r.is_inline());
            prop_assert_eq!(q.to_u64(), Some(quot));
            prop_assert_eq!(r.to_u64(), Some(rem));
            let g = ba.gcd(&bb);
            prop_assert!(g.is_inline());
        }
        let sh = ba.shl_bits(s);
        prop_assert!(sh.is_inline());
        prop_assert_eq!(sh.to_u128(), Some((a as u128) << s));
    }

    /// Two-limb operands whose results stay within two limbs remain inline
    /// through every operation (the "never touch the heap" guarantee).
    #[test]
    fn two_limb_results_stay_inline(a in any::<u64>(), b in any::<u64>()) {
        let x = UBig::from((a as u128) << 32 | b as u128);
        let y = UBig::from(b.max(1) as u128);
        prop_assert!((&x + &y).is_inline());
        prop_assert!(x.checked_sub(&y).is_none_or(|d| d.is_inline()));
        let (q, r) = x.div_rem(&y);
        prop_assert!(q.is_inline() && r.is_inline());
        prop_assert!(x.gcd(&y).is_inline());
        prop_assert!(x.shr_bits(1).is_inline());
        // product of a 96-bit by a ~32-bit value fits in 128 bits
        let small = UBig::from((b >> 32).max(1));
        if x.bit_len() + small.bit_len() <= 128 {
            prop_assert!((&x * &small).is_inline());
        }
    }
}
