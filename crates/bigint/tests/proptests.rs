//! Property-based tests for the arbitrary-precision integers: ring axioms,
//! division invariants and agreement with native 128-bit arithmetic.

use aq_bigint::{IBig, UBig};
use proptest::prelude::*;

fn ubig() -> impl Strategy<Value = UBig> {
    prop::collection::vec(any::<u64>(), 0..8).prop_map(UBig::from_limbs)
}

fn ibig() -> impl Strategy<Value = IBig> {
    (any::<bool>(), ubig()).prop_map(|(neg, mag)| IBig::from_sign_magnitude(neg, mag))
}

proptest! {
    #[test]
    fn add_commutative(a in ubig(), b in ubig()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associative(a in ubig(), b in ubig(), c in ubig()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn mul_commutative(a in ubig(), b in ubig()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_distributes_over_add(a in ubig(), b in ubig(), c in ubig()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn sub_inverts_add(a in ubig(), b in ubig()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn div_rem_reconstructs(a in ubig(), b in ubig()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn shift_roundtrip(a in ubig(), s in 0u64..300) {
        prop_assert_eq!(&(&a << s) >> s, a);
    }

    #[test]
    fn gcd_divides_and_linear(a in ubig(), b in ubig()) {
        let g = a.gcd(&b);
        if !g.is_zero() {
            prop_assert!((&a % &g).is_zero());
            prop_assert!((&b % &g).is_zero());
        } else {
            prop_assert!(a.is_zero() && b.is_zero());
        }
    }

    #[test]
    fn isqrt_bounds(a in ubig()) {
        let r = a.isqrt();
        prop_assert!(&r * &r <= a);
        let r1 = &r + &UBig::one();
        prop_assert!(&r1 * &r1 > a);
    }

    #[test]
    fn decimal_roundtrip(a in ubig()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<UBig>().unwrap(), a);
    }

    #[test]
    fn matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let (ba, bb) = (UBig::from(a), UBig::from(b));
        prop_assert_eq!(&ba + &bb, UBig::from(a as u128 + b as u128));
        prop_assert_eq!(&ba * &bb, UBig::from(a as u128 * b as u128));
        if let (Some(q), Some(r)) = (a.checked_div(b), a.checked_rem(b)) {
            prop_assert_eq!(&ba / &bb, UBig::from(q));
            prop_assert_eq!(&ba % &bb, UBig::from(r));
        }
    }

    #[test]
    fn signed_ring_axioms(a in ibig(), b in ibig(), c in ibig()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) * &c, &(&a * &c) + &(&b * &c));
        prop_assert_eq!(&a + &-&a, IBig::zero());
        prop_assert_eq!(&(&a - &b) + &b, a);
    }

    #[test]
    fn signed_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let (ba, bb) = (IBig::from(a), IBig::from(b));
        prop_assert_eq!((&ba + &bb).to_string(), (a as i128 + b as i128).to_string());
        prop_assert_eq!((&ba * &bb).to_string(), (a as i128 * b as i128).to_string());
        if b != 0 {
            let (q, r) = ba.div_rem(&bb);
            prop_assert_eq!(q.to_string(), (a as i128 / b as i128).to_string());
            prop_assert_eq!(r.to_string(), (a as i128 % b as i128).to_string());
        }
    }

    #[test]
    fn signed_nearest_rounding(a in any::<i64>(), b in any::<i64>()) {
        prop_assume!(b != 0);
        let q = IBig::from(a).div_round_nearest(&IBig::from(b));
        // |a - q*b| <= |b|/2 (ties allowed either way by the metric)
        let diff = &IBig::from(a) - &(&q * &IBig::from(b));
        prop_assert!(diff.abs().double() <= IBig::from(b).abs());
    }

    #[test]
    fn to_f64_close(a in ubig()) {
        let f = a.to_f64();
        if f.is_finite() && !a.is_zero() {
            // relative error below 2^-52
            let (m, e) = a.to_f64_exp();
            let reconstructed = m * 2f64.powi(e.min(1023) as i32);
            if e <= 1023 {
                let rel = ((f - reconstructed) / f).abs();
                prop_assert!(rel < 1e-15, "rel={rel}");
            }
        }
    }

    #[test]
    fn ordering_total(a in ibig(), b in ibig()) {
        use std::cmp::Ordering::*;
        match a.cmp(&b) {
            Less => prop_assert!(&b - &a > IBig::zero()),
            Equal => prop_assert_eq!(&a, &b),
            Greater => prop_assert!(&a - &b > IBig::zero()),
        }
    }
}
