//! The unsigned magnitude type.

use std::cmp::Ordering;
use std::fmt;

use crate::Limb;

/// An arbitrary-precision unsigned integer.
///
/// Stored as little-endian 64-bit limbs with no trailing zero limbs, so the
/// representation is canonical: structural equality is value equality.
///
/// # Examples
///
/// ```
/// use aq_bigint::UBig;
///
/// let a = UBig::from(u64::MAX);
/// let b = &a + &a;
/// assert_eq!(b.bit_len(), 65);
/// assert_eq!(b.to_string(), "36893488147419103230");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct UBig {
    /// Little-endian limbs; invariant: `limbs.last() != Some(&0)`.
    pub(crate) limbs: Vec<Limb>,
}

impl UBig {
    /// The value `0`.
    pub fn zero() -> Self {
        UBig { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        UBig { limbs: vec![1] }
    }

    /// Creates a `UBig` from raw little-endian limbs, normalizing trailing
    /// zeros.
    pub fn from_limbs(mut limbs: Vec<Limb>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        UBig { limbs }
    }

    /// Borrows the little-endian limbs (no trailing zeros).
    pub fn as_limbs(&self) -> &[Limb] {
        &self.limbs
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns `true` if the lowest bit is set.
    pub fn is_odd(&self) -> bool {
        self.limbs.first().is_some_and(|l| l & 1 == 1)
    }

    /// Returns `true` if the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        !self.is_odd()
    }

    /// Number of significant bits (`0` for zero).
    ///
    /// ```
    /// use aq_bigint::UBig;
    /// assert_eq!(UBig::from(0u64).bit_len(), 0);
    /// assert_eq!(UBig::from(255u64).bit_len(), 8);
    /// ```
    pub fn bit_len(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(top) => {
                (self.limbs.len() as u64 - 1) * 64 + (64 - top.leading_zeros() as u64)
            }
        }
    }

    /// Returns bit `i` (zero-based from the least significant bit).
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / 64) as usize;
        match self.limbs.get(limb) {
            Some(l) => (l >> (i % 64)) & 1 == 1,
            None => false,
        }
    }

    /// Number of trailing zero bits, or `None` for the value zero.
    pub fn trailing_zeros(&self) -> Option<u64> {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(i as u64 * 64 + l.trailing_zeros() as u64);
            }
        }
        None
    }

    /// Attempts to convert to `u64`, returning `None` on overflow.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Attempts to convert to `u128`, returning `None` on overflow.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

}

impl From<u64> for UBig {
    fn from(v: u64) -> Self {
        if v == 0 {
            UBig::zero()
        } else {
            UBig { limbs: vec![v] }
        }
    }
}

impl From<u32> for UBig {
    fn from(v: u32) -> Self {
        UBig::from(v as u64)
    }
}

impl From<u128> for UBig {
    fn from(v: u128) -> Self {
        UBig::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl Ord for UBig {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for UBig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UBig({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_zero() {
        assert_eq!(UBig::from_limbs(vec![0, 0, 0]), UBig::zero());
        assert!(UBig::zero().is_zero());
        assert!(UBig::zero().is_even());
        assert_eq!(UBig::zero().bit_len(), 0);
    }

    #[test]
    fn bit_len_and_bits() {
        let v = UBig::from(0b1011u64);
        assert_eq!(v.bit_len(), 4);
        assert!(v.bit(0) && v.bit(1) && !v.bit(2) && v.bit(3) && !v.bit(4));
        assert!(!v.bit(1000));
    }

    #[test]
    fn ordering_by_length_then_lex() {
        let small = UBig::from(u64::MAX);
        let big = UBig::from_limbs(vec![0, 1]);
        assert!(small < big);
        assert!(UBig::from(3u64) > UBig::from(2u64));
        assert_eq!(UBig::from(7u64).cmp(&UBig::from(7u64)), Ordering::Equal);
    }

    #[test]
    fn u128_roundtrip() {
        let v: u128 = 0x1234_5678_9abc_def0_1122_3344_5566_7788;
        assert_eq!(UBig::from(v).to_u128(), Some(v));
        assert_eq!(UBig::from(v).to_u64(), None);
        assert_eq!(UBig::from(42u64).to_u64(), Some(42));
    }

    #[test]
    fn trailing_zeros() {
        assert_eq!(UBig::zero().trailing_zeros(), None);
        assert_eq!(UBig::from(1u64).trailing_zeros(), Some(0));
        assert_eq!(UBig::from(8u64).trailing_zeros(), Some(3));
        assert_eq!(UBig::from_limbs(vec![0, 2]).trailing_zeros(), Some(65));
    }
}
