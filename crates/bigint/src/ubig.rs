//! The unsigned magnitude type.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::Limb;

/// Internal storage: values of at most two limbs live inline, larger values
/// on the heap.
///
/// Invariants (maintained by every constructor):
/// - `Small.len <= 2`, `Small.limbs[len..]` is zeroed, and
///   `Small.limbs[len - 1] != 0` when `len > 0` (no trailing zero limbs);
/// - `Large` holds **at least three** limbs with a nonzero top limb.
///
/// Together these make the representation canonical: a value has exactly one
/// representation, so equality and hashing over [`UBig::as_limbs`] agree for
/// any two equal values regardless of how they were produced.
#[derive(Clone)]
enum Repr {
    Small { len: u8, limbs: [Limb; 2] },
    Large(Vec<Limb>),
}

/// An arbitrary-precision unsigned integer.
///
/// Stored as little-endian 64-bit limbs with no trailing zero limbs, so the
/// representation is canonical: structural equality is value equality.
/// Values that fit in two limbs (`< 2^128`) are stored inline and never touch
/// the heap; the arithmetic operators take native `u128` fast paths for such
/// operands whenever the result also fits.
///
/// # Examples
///
/// ```
/// use aq_bigint::UBig;
///
/// let a = UBig::from(u64::MAX);
/// let b = &a + &a;
/// assert_eq!(b.bit_len(), 65);
/// assert_eq!(b.to_string(), "36893488147419103230");
/// assert!(b.is_inline());
/// ```
#[derive(Clone)]
pub struct UBig {
    repr: Repr,
}

impl UBig {
    /// The value `0`.
    pub fn zero() -> Self {
        UBig {
            repr: Repr::Small {
                len: 0,
                limbs: [0, 0],
            },
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        UBig::from(1u64)
    }

    /// Creates a `UBig` from raw little-endian limbs, normalizing trailing
    /// zeros.
    pub fn from_limbs(limbs: Vec<Limb>) -> Self {
        UBig::from_limb_vec(limbs)
    }

    /// Normalizes a limb buffer and picks the canonical representation:
    /// inline for at most two significant limbs, heap otherwise.
    pub(crate) fn from_limb_vec(mut limbs: Vec<Limb>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        match limbs.len() {
            0 => UBig::zero(),
            1 => UBig {
                repr: Repr::Small {
                    len: 1,
                    limbs: [limbs[0], 0],
                },
            },
            2 => UBig {
                repr: Repr::Small {
                    len: 2,
                    limbs: [limbs[0], limbs[1]],
                },
            },
            _ => UBig {
                repr: Repr::Large(limbs),
            },
        }
    }

    /// Consumes the value, returning its limbs as a `Vec` (allocating only
    /// for inline values).
    pub(crate) fn into_limb_vec(self) -> Vec<Limb> {
        match self.repr {
            Repr::Small { len, limbs } => limbs[..len as usize].to_vec(),
            Repr::Large(v) => v,
        }
    }

    /// Copies the limbs into a fresh `Vec` scratch buffer.
    pub(crate) fn to_limb_vec(&self) -> Vec<Limb> {
        self.as_limbs().to_vec()
    }

    /// Borrows the little-endian limbs (no trailing zeros).
    pub fn as_limbs(&self) -> &[Limb] {
        match &self.repr {
            Repr::Small { len, limbs } => &limbs[..*len as usize],
            Repr::Large(v) => v,
        }
    }

    /// Returns `true` if the value is held in the inline (small-value)
    /// representation, i.e. it occupies no heap storage.
    ///
    /// Every value below `2^128` is inline; this is an invariant, not a
    /// best-effort cache, so tests can assert on it.
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Small { .. })
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        matches!(self.repr, Repr::Small { len: 0, .. })
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        matches!(
            self.repr,
            Repr::Small {
                len: 1,
                limbs: [1, _]
            }
        )
    }

    /// Returns `true` if the lowest bit is set.
    pub fn is_odd(&self) -> bool {
        self.as_limbs().first().is_some_and(|l| l & 1 == 1)
    }

    /// Returns `true` if the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        !self.is_odd()
    }

    /// Number of significant bits (`0` for zero).
    ///
    /// ```
    /// use aq_bigint::UBig;
    /// assert_eq!(UBig::from(0u64).bit_len(), 0);
    /// assert_eq!(UBig::from(255u64).bit_len(), 8);
    /// ```
    pub fn bit_len(&self) -> u64 {
        let limbs = self.as_limbs();
        match limbs.last() {
            None => 0,
            Some(top) => (limbs.len() as u64 - 1) * 64 + (64 - top.leading_zeros() as u64),
        }
    }

    /// Returns bit `i` (zero-based from the least significant bit).
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / 64) as usize;
        match self.as_limbs().get(limb) {
            Some(l) => (l >> (i % 64)) & 1 == 1,
            None => false,
        }
    }

    /// Number of trailing zero bits, or `None` for the value zero.
    pub fn trailing_zeros(&self) -> Option<u64> {
        for (i, &l) in self.as_limbs().iter().enumerate() {
            if l != 0 {
                return Some(i as u64 * 64 + l.trailing_zeros() as u64);
            }
        }
        None
    }

    /// Attempts to convert to `u64`, returning `None` on overflow.
    pub fn to_u64(&self) -> Option<u64> {
        match &self.repr {
            Repr::Small { len: 0, .. } => Some(0),
            Repr::Small { len: 1, limbs } => Some(limbs[0]),
            _ => None,
        }
    }

    /// Attempts to convert to `u128`, returning `None` on overflow.
    pub fn to_u128(&self) -> Option<u128> {
        match &self.repr {
            // the zero-tail invariant makes this correct for len 0, 1, 2
            Repr::Small { limbs, .. } => Some(limbs[0] as u128 | (limbs[1] as u128) << 64),
            Repr::Large(_) => None,
        }
    }
}

impl Default for UBig {
    fn default() -> Self {
        UBig::zero()
    }
}

impl From<u64> for UBig {
    fn from(v: u64) -> Self {
        UBig {
            repr: Repr::Small {
                len: (v != 0) as u8,
                limbs: [v, 0],
            },
        }
    }
}

impl From<u32> for UBig {
    fn from(v: u32) -> Self {
        UBig::from(v as u64)
    }
}

impl From<u128> for UBig {
    fn from(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let len = if hi != 0 { 2 } else { (lo != 0) as u8 };
        UBig {
            repr: Repr::Small {
                len,
                limbs: [lo, hi],
            },
        }
    }
}

impl PartialEq for UBig {
    fn eq(&self, other: &Self) -> bool {
        self.as_limbs() == other.as_limbs()
    }
}

impl Eq for UBig {}

impl Hash for UBig {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // hash the limb slice so equal values hash identically regardless of
        // representation (canonicity already guarantees one repr per value,
        // but slice hashing keeps that independent of storage details)
        Hash::hash(self.as_limbs(), state);
    }
}

impl Ord for UBig {
    fn cmp(&self, other: &Self) -> Ordering {
        let (a, b) = (self.as_limbs(), other.as_limbs());
        match a.len().cmp(&b.len()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        for (x, y) in a.iter().rev().zip(b.iter().rev()) {
            match x.cmp(y) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for UBig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UBig({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_zero() {
        assert_eq!(UBig::from_limbs(vec![0, 0, 0]), UBig::zero());
        assert!(UBig::zero().is_zero());
        assert!(UBig::zero().is_even());
        assert_eq!(UBig::zero().bit_len(), 0);
    }

    #[test]
    fn bit_len_and_bits() {
        let v = UBig::from(0b1011u64);
        assert_eq!(v.bit_len(), 4);
        assert!(v.bit(0) && v.bit(1) && !v.bit(2) && v.bit(3) && !v.bit(4));
        assert!(!v.bit(1000));
    }

    #[test]
    fn ordering_by_length_then_lex() {
        let small = UBig::from(u64::MAX);
        let big = UBig::from_limbs(vec![0, 1]);
        assert!(small < big);
        assert!(UBig::from(3u64) > UBig::from(2u64));
        assert_eq!(UBig::from(7u64).cmp(&UBig::from(7u64)), Ordering::Equal);
    }

    #[test]
    fn u128_roundtrip() {
        let v: u128 = 0x1234_5678_9abc_def0_1122_3344_5566_7788;
        assert_eq!(UBig::from(v).to_u128(), Some(v));
        assert_eq!(UBig::from(v).to_u64(), None);
        assert_eq!(UBig::from(42u64).to_u64(), Some(42));
    }

    #[test]
    fn trailing_zeros() {
        assert_eq!(UBig::zero().trailing_zeros(), None);
        assert_eq!(UBig::from(1u64).trailing_zeros(), Some(0));
        assert_eq!(UBig::from(8u64).trailing_zeros(), Some(3));
        assert_eq!(UBig::from_limbs(vec![0, 2]).trailing_zeros(), Some(65));
    }

    #[test]
    fn inline_boundary() {
        // up to two limbs: inline, no heap
        assert!(UBig::zero().is_inline());
        assert!(UBig::from(u64::MAX).is_inline());
        assert!(UBig::from(u128::MAX).is_inline());
        assert!(UBig::from_limbs(vec![1, 2]).is_inline());
        // normalization drops trailing zeros back to inline
        assert!(UBig::from_limbs(vec![1, 2, 0, 0]).is_inline());
        // three significant limbs: heap
        assert!(!UBig::from_limbs(vec![1, 2, 3]).is_inline());
    }

    #[test]
    fn equal_values_hash_identically_across_construction_routes() {
        use std::collections::hash_map::DefaultHasher;
        fn fingerprint(v: &UBig) -> u64 {
            let mut h = DefaultHasher::new();
            v.hash(&mut h);
            h.finish()
        }
        // same value via From, from_limbs, and arithmetic that crosses the
        // heap boundary and comes back
        let a = UBig::from(0xfeed_u64);
        let b = UBig::from_limbs(vec![0xfeed, 0, 0]);
        let big = UBig::from_limbs(vec![7, 7, 7]);
        let c = &(&big + &a) - &big;
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_eq!(fingerprint(&a), fingerprint(&c));
        assert!(c.is_inline());
    }
}
