//! Greatest common divisor (binary / Stein's algorithm).

use crate::UBig;

/// Binary GCD over native `u128`. Both operands must be nonzero.
fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << shift;
        }
    }
}

impl UBig {
    /// Greatest common divisor by the binary GCD algorithm.
    ///
    /// `gcd(0, b) == b` and `gcd(a, 0) == a`.
    ///
    /// ```
    /// use aq_bigint::UBig;
    /// assert_eq!(UBig::from(48u64).gcd(&UBig::from(18u64)), UBig::from(6u64));
    /// ```
    pub fn gcd(&self, other: &UBig) -> UBig {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        // inline fast path: binary GCD entirely in native u128 arithmetic
        if let (Some(a), Some(b)) = (self.to_u128(), other.to_u128()) {
            return UBig::from(gcd_u128(a, b));
        }
        // aq-lint: allow(R1): both operands were checked non-zero at the top of gcd()
        let za = self.trailing_zeros().expect("nonzero");
        // aq-lint: allow(R1): both operands were checked non-zero at the top of gcd()
        let zb = other.trailing_zeros().expect("nonzero");
        let shift = za.min(zb);
        let mut a = self.shr_bits(za);
        let mut b = other.shr_bits(zb);
        // Invariant: a, b odd.
        loop {
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = &b - &a;
            if b.is_zero() {
                return a.shl_bits(shift);
            }
            // aq-lint: allow(R1): the is_zero() branch above returned, so b is non-zero here
            b = b.shr_bits(b.trailing_zeros().expect("nonzero"));
        }
    }

    /// Least common multiple. Returns zero if either operand is zero.
    pub fn lcm(&self, other: &UBig) -> UBig {
        if self.is_zero() || other.is_zero() {
            return UBig::zero();
        }
        let g = self.gcd(other);
        &(self / &g) * other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(UBig::zero().gcd(&UBig::from(5u64)), UBig::from(5u64));
        assert_eq!(UBig::from(5u64).gcd(&UBig::zero()), UBig::from(5u64));
        assert_eq!(UBig::from(12u64).gcd(&UBig::from(18u64)), UBig::from(6u64));
        assert_eq!(UBig::from(17u64).gcd(&UBig::from(31u64)), UBig::one());
        assert_eq!(UBig::from(64u64).gcd(&UBig::from(48u64)), UBig::from(16u64));
    }

    #[test]
    fn gcd_large_common_factor() {
        let g = UBig::from(0xdead_beefu64).pow(5);
        let a = &g * &UBig::from(101u64);
        let b = &g * &UBig::from(103u64);
        assert_eq!(a.gcd(&b), g);
    }

    #[test]
    fn gcd_divides_both_and_is_maximal() {
        let a = UBig::from(2u64).pow(40) * UBig::from(3u64).pow(17);
        let b = UBig::from(2u64).pow(25) * UBig::from(3u64).pow(30) * UBig::from(7u64);
        let g = a.gcd(&b);
        assert_eq!(&a % &g, UBig::zero());
        assert_eq!(&b % &g, UBig::zero());
        assert_eq!(g, UBig::from(2u64).pow(25) * UBig::from(3u64).pow(17));
    }

    #[test]
    fn lcm_relation() {
        let a = UBig::from(12u64);
        let b = UBig::from(18u64);
        assert_eq!(&a.lcm(&b) * &a.gcd(&b), &a * &b);
        assert_eq!(UBig::zero().lcm(&b), UBig::zero());
    }
}
