//! Arbitrary-precision integer arithmetic for exact quantum decision diagrams.
//!
//! The paper this workspace reproduces uses the GNU Multiple Precision
//! Arithmetic Library (GMP) to hold the integer coefficients of its algebraic
//! number representation. No big-integer crate is available in this build
//! environment, so this crate provides the substrate from scratch:
//!
//! * [`UBig`] — an unsigned magnitude (little-endian `u64` limbs) with
//!   schoolbook and Karatsuba multiplication, Knuth Algorithm D division,
//!   binary GCD, integer square root, shifts and radix conversion.
//! * [`IBig`] — a signed integer built on [`UBig`] with the full set of
//!   arithmetic operators, comparisons and conversions.
//!
//! Values are always stored in canonical form (no leading zero limbs), so
//! `Eq`/`Ord`/`Hash` are structural and cheap.
//!
//! # Examples
//!
//! ```
//! use aq_bigint::IBig;
//!
//! let a = IBig::from(-7) * IBig::from(6);
//! assert_eq!(a.to_string(), "-42");
//!
//! let big: IBig = "123456789012345678901234567890".parse()?;
//! assert_eq!((&big * &big) / &big, big);
//! # Ok::<(), aq_bigint::ParseBigIntError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

mod add;
mod div;
mod float;
mod gcd;
mod ibig;
mod mul;
mod radix;
mod shift;
mod sqrt;
mod ubig;

pub use ibig::{IBig, Sign};
pub use radix::ParseBigIntError;
pub use ubig::UBig;

/// Number of bits in one limb of a [`UBig`].
pub const LIMB_BITS: u32 = 64;

pub(crate) type Limb = u64;
pub(crate) type DoubleLimb = u128;
