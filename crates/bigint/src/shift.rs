//! Bit shifts for [`UBig`].

use std::ops::{Shl, ShlAssign, Shr, ShrAssign};

use crate::{Limb, UBig};

impl UBig {
    /// Shifts left by `bits` (multiplication by a power of two).
    pub fn shl_bits(&self, bits: u64) -> UBig {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        // inline fast path: shifted value still fits in u128
        if let Some(v) = self.to_u128() {
            if bits < 128 && v.leading_zeros() as u64 >= bits {
                return UBig::from(v << bits);
            }
        }
        let limb_shift = (bits / 64) as usize;
        let bit_shift = (bits % 64) as u32;
        let mut out: Vec<Limb> = vec![0; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(self.as_limbs());
        } else {
            let mut carry: Limb = 0;
            for &l in self.as_limbs() {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        UBig::from_limb_vec(out)
    }

    /// Shifts right by `bits` (floor division by a power of two).
    pub fn shr_bits(&self, bits: u64) -> UBig {
        // inline fast path: a right shift never grows the value
        if let Some(v) = self.to_u128() {
            return UBig::from(if bits >= 128 { 0u128 } else { v >> bits });
        }
        let limbs = self.as_limbs();
        let limb_shift = (bits / 64) as usize;
        if limb_shift >= limbs.len() {
            return UBig::zero();
        }
        let bit_shift = (bits % 64) as u32;
        let src = &limbs[limb_shift..];
        let mut out: Vec<Limb> = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (64 - bit_shift)
                } else {
                    0
                };
                out.push((src[i] >> bit_shift) | hi);
            }
        }
        UBig::from_limb_vec(out)
    }
}

impl Shl<u64> for &UBig {
    type Output = UBig;
    fn shl(self, bits: u64) -> UBig {
        self.shl_bits(bits)
    }
}

impl Shl<u64> for UBig {
    type Output = UBig;
    fn shl(self, bits: u64) -> UBig {
        self.shl_bits(bits)
    }
}

impl Shr<u64> for &UBig {
    type Output = UBig;
    fn shr(self, bits: u64) -> UBig {
        self.shr_bits(bits)
    }
}

impl Shr<u64> for UBig {
    type Output = UBig;
    fn shr(self, bits: u64) -> UBig {
        self.shr_bits(bits)
    }
}

impl ShlAssign<u64> for UBig {
    fn shl_assign(&mut self, bits: u64) {
        *self = self.shl_bits(bits);
    }
}

impl ShrAssign<u64> for UBig {
    fn shr_assign(&mut self, bits: u64) {
        *self = self.shr_bits(bits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shl_small_and_cross_limb() {
        assert_eq!(UBig::from(1u64) << 0, UBig::from(1u64));
        assert_eq!(UBig::from(1u64) << 3, UBig::from(8u64));
        assert_eq!(UBig::from(1u64) << 64, UBig::from_limbs(vec![0, 1]));
        assert_eq!(UBig::from(0b101u64) << 63, UBig::from(0b101u128 << 63));
    }

    #[test]
    fn shr_floor_semantics() {
        assert_eq!(UBig::from(9u64) >> 1, UBig::from(4u64));
        assert_eq!(UBig::from(9u64) >> 100, UBig::zero());
        let v = UBig::from(0xffff_0000_ffff_0000_1111u128);
        assert_eq!(&(&v << 77) >> 77, v);
    }

    #[test]
    fn shift_matches_pow2_mul() {
        let v = UBig::from(123456789u64);
        assert_eq!(&v << 130, &v * &UBig::from(2u64).pow(130));
    }
}
