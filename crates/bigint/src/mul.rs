//! Multiplication: schoolbook below the Karatsuba threshold, Karatsuba above.

use std::ops::{Mul, MulAssign};

use crate::add::{add_shifted_in_place, sub_in_place};
use crate::{DoubleLimb, Limb, UBig};

/// Below this many limbs in the smaller operand, schoolbook multiplication
/// wins over Karatsuba's bookkeeping.
const KARATSUBA_THRESHOLD: usize = 32;

fn schoolbook(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry: Limb = 0;
        for (j, &bj) in b.iter().enumerate() {
            let t = ai as DoubleLimb * bj as DoubleLimb
                + out[i + j] as DoubleLimb
                + carry as DoubleLimb;
            out[i + j] = t as Limb;
            carry = (t >> 64) as Limb;
        }
        out[i + b.len()] = carry;
    }
    out
}

/// Karatsuba split: `a*b = z2·B² + z1·B + z0` with
/// `z1 = (a0+a1)(b0+b1) - z2 - z0`.
fn karatsuba(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    let n = a.len().min(b.len());
    if n < KARATSUBA_THRESHOLD {
        return schoolbook(a, b);
    }
    let half = a.len().max(b.len()) / 2;
    let (a0, a1) = split(a, half);
    let (b0, b1) = split(b, half);

    let z0 = karatsuba_norm(a0, b0);
    let z2 = karatsuba_norm(a1, b1);

    let mut a01 = a0.to_vec();
    add_shifted_in_place(&mut a01, a1, 0);
    let mut b01 = b0.to_vec();
    add_shifted_in_place(&mut b01, b1, 0);
    let mut z1 = karatsuba_norm(&a01, &b01);
    // z1 >= z0 + z2 always holds, so these subtractions cannot underflow.
    sub_in_place(&mut z1, &z0);
    sub_in_place(&mut z1, &z2);

    let mut out = z0;
    add_shifted_in_place(&mut out, &z1, half);
    add_shifted_in_place(&mut out, &z2, 2 * half);
    out
}

fn karatsuba_norm(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    let mut v = karatsuba(trim(a), trim(b));
    while v.last() == Some(&0) {
        v.pop();
    }
    v
}

fn split(a: &[Limb], at: usize) -> (&[Limb], &[Limb]) {
    if a.len() <= at {
        (a, &[])
    } else {
        a.split_at(at)
    }
}

fn trim(a: &[Limb]) -> &[Limb] {
    let mut end = a.len();
    while end > 0 && a[end - 1] == 0 {
        end -= 1;
    }
    &a[..end]
}

impl UBig {
    /// Multiplies by a single limb.
    pub fn mul_limb(&self, rhs: Limb) -> UBig {
        if rhs == 0 || self.is_zero() {
            return UBig::zero();
        }
        // inline fast path: single-limb × limb always fits in u128
        if let Some(a) = self.to_u64() {
            return UBig::from(a as u128 * rhs as u128);
        }
        if let Some(a) = self.to_u128() {
            if let Some(p) = a.checked_mul(rhs as u128) {
                return UBig::from(p);
            }
        }
        let limbs = self.as_limbs();
        let mut out = Vec::with_capacity(limbs.len() + 1);
        let mut carry: Limb = 0;
        for &l in limbs {
            let t = l as DoubleLimb * rhs as DoubleLimb + carry as DoubleLimb;
            out.push(t as Limb);
            carry = (t >> 64) as Limb;
        }
        if carry != 0 {
            out.push(carry);
        }
        UBig::from_limb_vec(out)
    }

    /// Squares the value (currently multiplication with itself; kept as a
    /// named entry point for callers that square in hot loops).
    pub fn square(&self) -> UBig {
        self * self
    }

    /// Raises to the power `exp` by binary exponentiation.
    ///
    /// ```
    /// use aq_bigint::UBig;
    /// assert_eq!(UBig::from(3u64).pow(5), UBig::from(243u64));
    /// assert_eq!(UBig::from(2u64).pow(100).bit_len(), 101);
    /// ```
    pub fn pow(&self, mut exp: u32) -> UBig {
        let mut base = self.clone();
        let mut acc = UBig::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = base.square();
            }
        }
        acc
    }
}

impl Mul<&UBig> for &UBig {
    type Output = UBig;
    fn mul(self, rhs: &UBig) -> UBig {
        if self.is_zero() || rhs.is_zero() {
            return UBig::zero();
        }
        // inline fast path: product fits in u128
        if let (Some(a), Some(b)) = (self.to_u128(), rhs.to_u128()) {
            if let Some(p) = a.checked_mul(b) {
                return UBig::from(p);
            }
        }
        UBig::from_limb_vec(karatsuba(self.as_limbs(), rhs.as_limbs()))
    }
}

impl Mul for UBig {
    type Output = UBig;
    fn mul(self, rhs: UBig) -> UBig {
        &self * &rhs
    }
}

impl MulAssign<&UBig> for UBig {
    fn mul_assign(&mut self, rhs: &UBig) {
        *self = &*self * rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_products() {
        assert_eq!(UBig::from(6u64) * UBig::from(7u64), UBig::from(42u64));
        assert_eq!(UBig::from(0u64) * UBig::from(7u64), UBig::zero());
        assert_eq!(
            UBig::from(u64::MAX) * UBig::from(u64::MAX),
            UBig::from(u64::MAX as u128 * u64::MAX as u128)
        );
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Deterministic pseudo-random limbs, sizes straddling the threshold.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for &(la, lb) in &[(1usize, 80usize), (40, 40), (33, 67), (100, 3), (64, 64)] {
            let a: Vec<Limb> = (0..la).map(|_| next()).collect();
            let b: Vec<Limb> = (0..lb).map(|_| next()).collect();
            let expect = UBig::from_limbs(schoolbook(&a, &b));
            let got = &UBig::from_limbs(a) * &UBig::from_limbs(b);
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn mul_limb_matches_full_mul() {
        let a = UBig::from(0xdead_beef_cafe_babe_1234_5678u128);
        assert_eq!(a.mul_limb(1_000_003), &a * &UBig::from(1_000_003u64));
        assert_eq!(a.mul_limb(0), UBig::zero());
    }

    #[test]
    fn pow_edge_cases() {
        assert_eq!(UBig::from(5u64).pow(0), UBig::one());
        assert_eq!(UBig::zero().pow(0), UBig::one());
        assert_eq!(UBig::zero().pow(3), UBig::zero());
        assert_eq!(
            UBig::from(10u64).pow(20).to_string(),
            format!("1{}", "0".repeat(20))
        );
    }

    #[test]
    fn distributivity_spot_check() {
        let a = UBig::from(123456789u64).pow(7);
        let b = UBig::from(987654321u64).pow(6);
        let c = UBig::from(0xabcdefu64).pow(9);
        assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }
}
