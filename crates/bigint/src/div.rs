//! Division with remainder: single-limb fast path and Knuth Algorithm D.

use std::ops::{Div, Rem};

use crate::{DoubleLimb, Limb, UBig};

impl UBig {
    /// Computes quotient and remainder of `self / rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    ///
    /// ```
    /// use aq_bigint::UBig;
    /// let (q, r) = UBig::from(23u64).div_rem(&UBig::from(5u64));
    /// assert_eq!((q, r), (UBig::from(4u64), UBig::from(3u64)));
    /// ```
    pub fn div_rem(&self, rhs: &UBig) -> (UBig, UBig) {
        assert!(!rhs.is_zero(), "division by zero");
        // inline fast path: quotient and remainder both fit by construction
        if let (Some(a), Some(b)) = (self.to_u128(), rhs.to_u128()) {
            return (UBig::from(a / b), UBig::from(a % b));
        }
        if self < rhs {
            return (UBig::zero(), self.clone());
        }
        let rl = rhs.as_limbs();
        if rl.len() == 1 {
            let (q, r) = self.div_rem_limb(rl[0]);
            return (q, UBig::from(r));
        }
        self.div_rem_knuth(rhs)
    }

    /// Divides by a single non-zero limb, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn div_rem_limb(&self, rhs: Limb) -> (UBig, Limb) {
        assert!(rhs != 0, "division by zero");
        // inline fast path: u128 / u64 in native arithmetic
        if let Some(a) = self.to_u128() {
            return (UBig::from(a / rhs as u128), (a % rhs as u128) as Limb);
        }
        let limbs = self.as_limbs();
        let mut out = vec![0u64; limbs.len()];
        let mut rem: Limb = 0;
        for i in (0..limbs.len()).rev() {
            let cur = (rem as DoubleLimb) << 64 | limbs[i] as DoubleLimb;
            out[i] = (cur / rhs as DoubleLimb) as Limb;
            rem = (cur % rhs as DoubleLimb) as Limb;
        }
        (UBig::from_limb_vec(out), rem)
    }

    /// Knuth Algorithm D (TAOCP Vol. 2, 4.3.1) for multi-limb divisors.
    fn div_rem_knuth(&self, rhs: &UBig) -> (UBig, UBig) {
        // aq-lint: allow(R1): caller dispatches here only for divisors of >= 2 limbs
        let shift = rhs.as_limbs().last().expect("multi-limb").leading_zeros() as u64;
        let v = rhs.shl_bits(shift).into_limb_vec();
        let mut u = self.shl_bits(shift).into_limb_vec();
        let n = v.len();
        u.push(0); // room for the top partial remainder
        let m = u.len() - n - 1;
        let mut q = vec![0u64; m + 1];

        let v_top = v[n - 1];
        let v_next = v[n - 2];

        for j in (0..=m).rev() {
            // Estimate qhat from the top two (three) limbs.
            let num = (u[j + n] as DoubleLimb) << 64 | u[j + n - 1] as DoubleLimb;
            let mut qhat = num / v_top as DoubleLimb;
            let mut rhat = num % v_top as DoubleLimb;
            if qhat > Limb::MAX as DoubleLimb {
                qhat = Limb::MAX as DoubleLimb;
                rhat = num - qhat * v_top as DoubleLimb;
            }
            while rhat <= Limb::MAX as DoubleLimb
                && qhat * v_next as DoubleLimb > (rhat << 64 | u[j + n - 2] as DoubleLimb)
            {
                qhat -= 1;
                rhat += v_top as DoubleLimb;
            }

            // Multiply and subtract: u[j..j+n+1] -= qhat * v.
            let mut borrow: DoubleLimb = 0;
            let mut carry: DoubleLimb = 0;
            for i in 0..n {
                let p = qhat * v[i] as DoubleLimb + carry;
                carry = p >> 64;
                let (d, b) = u[j + i].overflowing_sub(p as Limb);
                let (d, b2) = d.overflowing_sub(borrow as Limb);
                u[j + i] = d;
                borrow = (b as DoubleLimb) + (b2 as DoubleLimb);
            }
            let (d, b) = u[j + n].overflowing_sub(carry as Limb);
            let (d, b2) = d.overflowing_sub(borrow as Limb);
            u[j + n] = d;

            if b || b2 {
                // qhat was one too large: add v back.
                qhat -= 1;
                let mut carry = 0u64;
                for i in 0..n {
                    let (s, c1) = u[j + i].overflowing_add(v[i]);
                    let (s, c2) = s.overflowing_add(carry);
                    u[j + i] = s;
                    carry = (c1 as u64) + (c2 as u64);
                }
                u[j + n] = u[j + n].wrapping_add(carry);
            }
            q[j] = qhat as Limb;
        }

        u.truncate(n);
        let rem = UBig::from_limbs(u).shr_bits(shift);
        (UBig::from_limbs(q), rem)
    }

    /// Euclidean division rounding to the **nearest** integer
    /// (ties away from zero): returns `q` with `|self - q·rhs| <= rhs/2`.
    ///
    /// Used by the Euclidean algorithm in `Z[omega]`, where rounding to the
    /// nearest lattice point keeps the remainder norm small.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn div_round_nearest(&self, rhs: &UBig) -> UBig {
        let (q, r) = self.div_rem(rhs);
        // round up when 2r >= rhs
        if r.shl_bits(1) >= *rhs {
            &q + &UBig::one()
        } else {
            q
        }
    }
}

impl Div<&UBig> for &UBig {
    type Output = UBig;
    fn div(self, rhs: &UBig) -> UBig {
        self.div_rem(rhs).0
    }
}

impl Div for UBig {
    type Output = UBig;
    fn div(self, rhs: UBig) -> UBig {
        self.div_rem(&rhs).0
    }
}

impl Rem<&UBig> for &UBig {
    type Output = UBig;
    fn rem(self, rhs: &UBig) -> UBig {
        self.div_rem(rhs).1
    }
}

impl Rem for UBig {
    type Output = UBig;
    fn rem(self, rhs: UBig) -> UBig {
        self.div_rem(&rhs).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_cases() {
        let (q, r) = UBig::from(100u64).div_rem(&UBig::from(7u64));
        assert_eq!((q, r), (UBig::from(14u64), UBig::from(2u64)));
        let (q, r) = UBig::from(5u64).div_rem(&UBig::from(100u64));
        assert_eq!((q, r), (UBig::zero(), UBig::from(5u64)));
        let (q, r) = UBig::from(100u64).div_rem(&UBig::from(100u64));
        assert_eq!((q, r), (UBig::one(), UBig::zero()));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = UBig::from(1u64).div_rem(&UBig::zero());
    }

    #[test]
    fn knuth_reconstruction() {
        // (q, r) must satisfy q*d + r == n and r < d for many awkward shapes.
        let mut state = 0x243f6a8885a308d3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let nl = 1 + (next() % 12) as usize;
            let dl = 1 + (next() % nl.min(6) as u64) as usize;
            let n = UBig::from_limbs((0..nl).map(|_| next()).collect());
            let mut d = UBig::from_limbs((0..dl).map(|_| next()).collect());
            if d.is_zero() {
                d = UBig::one();
            }
            let (q, r) = n.div_rem(&d);
            assert!(r < d, "remainder must be < divisor");
            assert_eq!(&(&q * &d) + &r, n);
        }
    }

    #[test]
    fn qhat_correction_path() {
        // Crafted so the initial qhat estimate is too large (u top limbs close
        // to divisor pattern), exercising the add-back branch.
        let u = UBig::from_limbs(vec![0, 0, 0x8000_0000_0000_0000, 0x7fff_ffff_ffff_ffff]);
        let v = UBig::from_limbs(vec![1, 0x8000_0000_0000_0000]);
        let (q, r) = u.div_rem(&v);
        assert!(r < v);
        assert_eq!(&(&q * &v) + &r, u);
    }

    #[test]
    fn div_round_nearest_ties_away() {
        let q = UBig::from(7u64).div_round_nearest(&UBig::from(2u64));
        assert_eq!(q, UBig::from(4u64)); // 3.5 -> 4
        let q = UBig::from(6u64).div_round_nearest(&UBig::from(4u64));
        assert_eq!(q, UBig::from(2u64)); // 1.5 -> 2
        let q = UBig::from(5u64).div_round_nearest(&UBig::from(4u64));
        assert_eq!(q, UBig::one()); // 1.25 -> 1
    }
}
