//! Conversion to floating point.

use crate::{IBig, UBig};

impl UBig {
    /// Converts to `f64`, rounding to nearest; values above `f64::MAX`
    /// become `f64::INFINITY`.
    ///
    /// ```
    /// use aq_bigint::UBig;
    /// assert_eq!(UBig::from(2u64).pow(70).to_f64(), 2f64.powi(70));
    /// ```
    pub fn to_f64(&self) -> f64 {
        let bits = self.bit_len();
        if bits <= 64 {
            // aq-lint: allow(R1): bit_len() <= 64 means the value fits in a u64
            return self.to_u64().expect("fits") as f64;
        }
        // Take the top 64 bits (the f64 conversion rounds them correctly to
        // 53 bits of mantissa), then scale by the discarded bit count.
        // A sticky bit prevents double-rounding error at the 64-bit edge.
        let shift = bits - 64;
        // aq-lint: allow(R1): shifting a bit_len() > 64 value right to exactly 64 bits
        let mut top = self.shr_bits(shift).to_u64().expect("64 bits");
        // aq-lint: allow(R1): bit_len() > 64 rules out zero, so trailing_zeros is Some
        let dropped_nonzero = self.trailing_zeros().expect("nonzero") < shift;
        if dropped_nonzero {
            top |= 1; // sticky: low bit of 64 never reaches the 53-bit mantissa boundary rounding incorrectly
        }
        (top as f64) * pow2(shift)
    }

    /// Mantissa–exponent decomposition: returns `(m, e)` with
    /// `self ≈ m · 2^e` and `m ∈ [0.5, 1)` (`(0.0, 0)` for zero).
    ///
    /// Unlike [`UBig::to_f64`] this never overflows to infinity, which makes
    /// it suitable for ratios of astronomically large integers.
    pub fn to_f64_exp(&self) -> (f64, i64) {
        let bits = self.bit_len();
        if bits == 0 {
            return (0.0, 0);
        }
        if bits <= 64 {
            // aq-lint: allow(R1): bit_len() <= 64 means the value fits in a u64
            let v = self.to_u64().expect("fits") as f64;
            return (v / pow2(bits), bits as i64);
        }
        let shift = bits - 64;
        // aq-lint: allow(R1): shifting a bit_len() > 64 value right to exactly 64 bits
        let mut top = self.shr_bits(shift).to_u64().expect("64 bits");
        // aq-lint: allow(R1): bit_len() > 64 rules out zero, so trailing_zeros is Some
        if self.trailing_zeros().expect("nonzero") < shift {
            top |= 1;
        }
        ((top as f64) / pow2(64), bits as i64)
    }
}

impl IBig {
    /// Converts to `f64`, rounding to nearest (saturating to `±INFINITY`).
    pub fn to_f64(&self) -> f64 {
        let m = self.magnitude().to_f64();
        if self.is_negative() {
            -m
        } else {
            m
        }
    }

    /// Signed mantissa–exponent decomposition; see [`UBig::to_f64_exp`].
    pub fn to_f64_exp(&self) -> (f64, i64) {
        let (m, e) = self.magnitude().to_f64_exp();
        if self.is_negative() {
            (-m, e)
        } else {
            (m, e)
        }
    }
}

fn pow2(e: u64) -> f64 {
    if e > 1023 {
        f64::INFINITY
    } else {
        f64::from_bits((1023 + e) << 52)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_values() {
        assert_eq!(UBig::zero().to_f64(), 0.0);
        assert_eq!(UBig::from(1u64).to_f64(), 1.0);
        assert_eq!(UBig::from(u64::MAX).to_f64(), u64::MAX as f64);
    }

    #[test]
    fn powers_of_two_exact() {
        for e in [64u32, 100, 500, 1000] {
            assert_eq!(UBig::from(2u64).pow(e).to_f64(), 2f64.powi(e as i32));
        }
    }

    #[test]
    fn overflow_to_infinity() {
        assert_eq!(UBig::from(2u64).pow(1100).to_f64(), f64::INFINITY);
        assert_eq!(
            (-IBig::from(UBig::from(2u64).pow(1100))).to_f64(),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn rounding_matches_u128() {
        let vals: [u128; 4] = [
            (1u128 << 80) + 1,
            (1u128 << 90) + (1u128 << 37) - 1,
            u128::MAX,
            (3u128 << 100) + 12345,
        ];
        for v in vals {
            assert_eq!(UBig::from(v).to_f64(), v as f64, "v={v}");
        }
    }

    #[test]
    fn exp_decomposition() {
        let (m, e) = UBig::from(2u64).pow(2000).to_f64_exp();
        assert_eq!((m, e), (0.5, 2001));
        let (m, e) = UBig::from(3u64).to_f64_exp();
        assert_eq!((m, e), (0.75, 2));
        let (m, e) = IBig::from(-3).to_f64_exp();
        assert_eq!((m, e), (-0.75, 2));
    }

    #[test]
    fn signed_to_f64() {
        assert_eq!(IBig::from(-42).to_f64(), -42.0);
        assert_eq!(IBig::zero().to_f64(), 0.0);
    }
}
