//! Integer square root (Newton's method).

use crate::UBig;

impl UBig {
    /// Floor of the square root: the largest `r` with `r*r <= self`.
    ///
    /// Used to build arbitrary-precision approximations of `sqrt(2)` when
    /// evaluating algebraic numbers to floating point.
    ///
    /// ```
    /// use aq_bigint::UBig;
    /// assert_eq!(UBig::from(99u64).isqrt(), UBig::from(9u64));
    /// assert_eq!(UBig::from(100u64).isqrt(), UBig::from(10u64));
    /// ```
    pub fn isqrt(&self) -> UBig {
        if self.is_zero() {
            return UBig::zero();
        }
        if let Some(v) = self.to_u128() {
            return UBig::from(isqrt_u128(v));
        }
        // Newton: x' = (x + n/x) / 2, starting above the root.
        let mut x = UBig::one().shl_bits(self.bit_len().div_ceil(2));
        loop {
            let y = (&(self / &x) + &x).shr_bits(1);
            if y >= x {
                break;
            }
            x = y;
        }
        debug_assert!(&x * &x <= *self);
        x
    }
}

fn isqrt_u128(v: u128) -> u64 {
    if v == 0 {
        return 0;
    }
    let mut x = 1u128 << (128 - v.leading_zeros()).div_ceil(2);
    loop {
        let y = (x + v / x) / 2;
        if y >= x {
            break;
        }
        x = y;
    }
    x as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values() {
        for n in 0u64..200 {
            let r = UBig::from(n).isqrt().to_u64().expect("small");
            assert!(r * r <= n, "n={n}");
            assert!((r + 1) * (r + 1) > n, "n={n}");
        }
    }

    #[test]
    fn perfect_squares_large() {
        let base = UBig::from(0xffff_ffff_ffff_fffbu64).pow(3);
        let sq = base.square();
        assert_eq!(sq.isqrt(), base);
        // one less than a perfect square roots down
        assert_eq!((&sq - &UBig::one()).isqrt(), &base - &UBig::one());
    }

    #[test]
    fn u128_boundary() {
        let v = UBig::from(u128::MAX);
        let r = v.isqrt();
        assert!(&r * &r <= v);
        let r1 = &r + &UBig::one();
        assert!(&r1 * &r1 > v);
    }

    #[test]
    fn sqrt2_fixed_point() {
        // isqrt(2 * 4^p) / 2^p approximates sqrt(2): check leading digits.
        let p = 100u64;
        let approx = (UBig::from(2u64) << (2 * p)).isqrt();
        let leading = (&approx * &UBig::from(10u64).pow(10)) >> p;
        assert_eq!(leading.to_string(), "14142135623");
    }
}
