//! Decimal / hexadecimal conversion and parsing.

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use crate::{IBig, Sign, UBig};

/// Error returned when parsing a big integer from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError {
    kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseErrorKind {
    Empty,
    InvalidDigit(char),
}

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseErrorKind::Empty => write!(f, "cannot parse integer from empty string"),
            ParseErrorKind::InvalidDigit(c) => write!(f, "invalid digit `{c}` in integer"),
        }
    }
}

impl Error for ParseBigIntError {}

// Chunked base conversion: 10^19 fits in a u64 limb.
const DEC_CHUNK: u64 = 10_000_000_000_000_000_000;
const DEC_CHUNK_DIGITS: usize = 19;

impl UBig {
    /// Parses a decimal string of ASCII digits.
    ///
    /// # Errors
    ///
    /// Returns an error if the string is empty or contains a non-digit.
    pub fn from_decimal_str(s: &str) -> Result<UBig, ParseBigIntError> {
        if s.is_empty() {
            return Err(ParseBigIntError {
                kind: ParseErrorKind::Empty,
            });
        }
        let mut acc = UBig::zero();
        let bytes = s.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let take = DEC_CHUNK_DIGITS.min(bytes.len() - i);
            let mut chunk: u64 = 0;
            for &b in &bytes[i..i + take] {
                if !b.is_ascii_digit() {
                    return Err(ParseBigIntError {
                        kind: ParseErrorKind::InvalidDigit(b as char),
                    });
                }
                chunk = chunk * 10 + (b - b'0') as u64;
            }
            let scale = if take == DEC_CHUNK_DIGITS {
                DEC_CHUNK
            } else {
                10u64.pow(take as u32)
            };
            acc = acc.mul_limb(scale);
            acc += &UBig::from(chunk);
            i += take;
        }
        Ok(acc)
    }

    fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut chunks: Vec<u64> = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_limb(DEC_CHUNK);
            chunks.push(r);
            cur = q;
        }
        // aq-lint: allow(R1): the zero case returned earlier, so at least one chunk exists
        let mut out = chunks.last().expect("nonzero").to_string();
        for c in chunks.iter().rev().skip(1) {
            out.push_str(&format!("{c:019}"));
        }
        out
    }
}

impl fmt::Display for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "", &self.to_decimal())
    }
}

impl fmt::LowerHex for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "0x", "0");
        }
        let limbs = self.as_limbs();
        // aq-lint: allow(R1): the is_zero() branch above returned, so a top limb exists
        let mut s = format!("{:x}", limbs.last().expect("nonzero"));
        for l in limbs.iter().rev().skip(1) {
            s.push_str(&format!("{l:016x}"));
        }
        f.pad_integral(true, "0x", &s)
    }
}

impl FromStr for UBig {
    type Err = ParseBigIntError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        UBig::from_decimal_str(s)
    }
}

impl fmt::Display for IBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(
            self.sign() != Sign::Negative,
            "",
            &self.magnitude().to_decimal(),
        )
    }
}

impl fmt::Debug for IBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IBig({self})")
    }
}

impl FromStr for IBig {
    type Err = ParseBigIntError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (neg, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        let mag = UBig::from_decimal_str(digits)?;
        Ok(if neg {
            -IBig::from(mag)
        } else {
            IBig::from(mag)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_roundtrip() {
        for s in [
            "0",
            "1",
            "9999999999999999999",
            "10000000000000000000",
            "123456789012345678901234567890123456789012345678901234567890",
        ] {
            let v: UBig = s.parse().expect("parse");
            assert_eq!(v.to_string(), s);
        }
    }

    #[test]
    fn parse_errors() {
        assert!("".parse::<UBig>().is_err());
        assert!("12a3".parse::<UBig>().is_err());
        assert!("-5".parse::<UBig>().is_err()); // UBig has no sign
    }

    #[test]
    fn signed_parse_and_display() {
        let v: IBig = "-987654321098765432109876543210".parse().expect("parse");
        assert_eq!(v.to_string(), "-987654321098765432109876543210");
        let v: IBig = "+42".parse().expect("parse");
        assert_eq!(v.to_string(), "42");
        assert_eq!("-0".parse::<IBig>().expect("parse"), IBig::zero());
    }

    #[test]
    fn hex_formatting() {
        assert_eq!(format!("{:x}", UBig::zero()), "0");
        assert_eq!(format!("{:#x}", UBig::from(255u64)), "0xff");
        let v = UBig::from_limbs(vec![0x1, 0xab]);
        assert_eq!(format!("{v:x}"), "ab0000000000000001");
    }

    #[test]
    fn display_consistency_with_u128() {
        let x: u128 = 340282366920938463463374607431768211455;
        assert_eq!(UBig::from(x).to_string(), x.to_string());
    }
}
