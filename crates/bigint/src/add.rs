//! Magnitude addition and subtraction for [`UBig`].

use std::cmp::Ordering;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use crate::{Limb, UBig};

/// Adds `rhs` into `acc` starting at limb offset `shift`, growing `acc` as
/// needed. Used by addition and by the multiplication accumulators.
pub(crate) fn add_shifted_in_place(acc: &mut Vec<Limb>, rhs: &[Limb], shift: usize) {
    if acc.len() < shift + rhs.len() {
        acc.resize(shift + rhs.len(), 0);
    }
    let mut carry = 0u64;
    for (i, &r) in rhs.iter().enumerate() {
        let (s1, c1) = acc[shift + i].overflowing_add(r);
        let (s2, c2) = s1.overflowing_add(carry);
        acc[shift + i] = s2;
        carry = (c1 as u64) + (c2 as u64);
    }
    let mut i = shift + rhs.len();
    while carry != 0 {
        if i == acc.len() {
            acc.push(carry);
            break;
        }
        let (s, c) = acc[i].overflowing_add(carry);
        acc[i] = s;
        carry = c as u64;
        i += 1;
    }
}

/// Subtracts `rhs` from `acc` in place. `acc` must be `>= rhs` limb-wise as a
/// number; panics (debug) on underflow.
pub(crate) fn sub_in_place(acc: &mut Vec<Limb>, rhs: &[Limb]) {
    let mut borrow = 0u64;
    for (i, &r) in rhs.iter().enumerate() {
        let (d1, b1) = acc[i].overflowing_sub(r);
        let (d2, b2) = d1.overflowing_sub(borrow);
        acc[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    let mut i = rhs.len();
    while borrow != 0 {
        debug_assert!(i < acc.len(), "subtraction underflow");
        let (d, b) = acc[i].overflowing_sub(borrow);
        acc[i] = d;
        borrow = b as u64;
        i += 1;
    }
    while acc.last() == Some(&0) {
        acc.pop();
    }
}

impl UBig {
    /// Checked subtraction: returns `None` if `rhs > self`.
    ///
    /// ```
    /// use aq_bigint::UBig;
    /// assert_eq!(UBig::from(5u64).checked_sub(&UBig::from(3u64)), Some(UBig::from(2u64)));
    /// assert_eq!(UBig::from(3u64).checked_sub(&UBig::from(5u64)), None);
    /// ```
    pub fn checked_sub(&self, rhs: &UBig) -> Option<UBig> {
        // inline fast path: a borrow can never grow the result, so two-limb
        // operands subtract entirely in native registers
        if let (Some(a), Some(b)) = (self.to_u128(), rhs.to_u128()) {
            return a.checked_sub(b).map(UBig::from);
        }
        match self.cmp(rhs) {
            Ordering::Less => None,
            Ordering::Equal => Some(UBig::zero()),
            Ordering::Greater => {
                let mut limbs = self.to_limb_vec();
                sub_in_place(&mut limbs, rhs.as_limbs());
                Some(UBig::from_limb_vec(limbs))
            }
        }
    }

    /// Computes `|self - rhs|` together with the ordering of the operands.
    pub fn abs_diff(&self, rhs: &UBig) -> (UBig, Ordering) {
        let ord = self.cmp(rhs);
        let diff = match ord {
            // aq-lint: allow(R1): the match on cmp() proves the ordering each arm relies on
            Ordering::Less => rhs.checked_sub(self).expect("rhs >= self"),
            Ordering::Equal => UBig::zero(),
            // aq-lint: allow(R1): the match on cmp() proves the ordering each arm relies on
            Ordering::Greater => self.checked_sub(rhs).expect("self >= rhs"),
        };
        (diff, ord)
    }
}

impl Add<&UBig> for &UBig {
    type Output = UBig;
    fn add(self, rhs: &UBig) -> UBig {
        // inline fast path: both operands and the sum fit in u128
        if let (Some(a), Some(b)) = (self.to_u128(), rhs.to_u128()) {
            if let Some(sum) = a.checked_add(b) {
                return UBig::from(sum);
            }
        }
        let (long, short) = if self.as_limbs().len() >= rhs.as_limbs().len() {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let mut limbs = long.to_limb_vec();
        add_shifted_in_place(&mut limbs, short.as_limbs(), 0);
        UBig::from_limb_vec(limbs)
    }
}

impl Add for UBig {
    type Output = UBig;
    fn add(self, rhs: UBig) -> UBig {
        &self + &rhs
    }
}

impl AddAssign<&UBig> for UBig {
    fn add_assign(&mut self, rhs: &UBig) {
        if let (Some(a), Some(b)) = (self.to_u128(), rhs.to_u128()) {
            if let Some(sum) = a.checked_add(b) {
                *self = UBig::from(sum);
                return;
            }
        }
        let mut limbs = std::mem::take(self).into_limb_vec();
        add_shifted_in_place(&mut limbs, rhs.as_limbs(), 0);
        *self = UBig::from_limb_vec(limbs);
    }
}

impl Sub<&UBig> for &UBig {
    type Output = UBig;
    /// # Panics
    ///
    /// Panics if `rhs > self`; use [`UBig::checked_sub`] to handle that case.
    fn sub(self, rhs: &UBig) -> UBig {
        self.checked_sub(rhs)
            // aq-lint: allow(R1): documented panicking operator, mirroring std integer Sub
            .expect("UBig subtraction underflow; use checked_sub")
    }
}

impl Sub for UBig {
    type Output = UBig;
    fn sub(self, rhs: UBig) -> UBig {
        &self - &rhs
    }
}

impl SubAssign<&UBig> for UBig {
    fn sub_assign(&mut self, rhs: &UBig) {
        *self = &*self - rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ub(v: u128) -> UBig {
        UBig::from(v)
    }

    #[test]
    fn add_with_carry_chain() {
        let a = UBig::from_limbs(vec![u64::MAX, u64::MAX]);
        let b = ub(1);
        assert_eq!(&a + &b, UBig::from_limbs(vec![0, 0, 1]));
    }

    #[test]
    fn add_commutes_and_zero_identity() {
        let a = ub(0xdead_beef_dead_beef_dead);
        let b = ub(0xffff_ffff_ffff_ffff_ffff);
        assert_eq!(&a + &b, &b + &a);
        assert_eq!(&a + &UBig::zero(), a);
    }

    #[test]
    fn sub_exact_and_underflow() {
        let a = ub(1) + ub(u128::MAX);
        let b = ub(u128::MAX);
        assert_eq!(&a - &b, ub(1));
        assert_eq!(b.checked_sub(&a), None);
        assert_eq!((&a - &a), UBig::zero());
    }

    #[test]
    fn abs_diff_both_ways() {
        let (d, ord) = ub(10).abs_diff(&ub(3));
        assert_eq!((d, ord), (ub(7), Ordering::Greater));
        let (d, ord) = ub(3).abs_diff(&ub(10));
        assert_eq!((d, ord), (ub(7), Ordering::Less));
    }

    #[test]
    fn add_assign_matches_add() {
        let mut a = ub(12345678901234567890);
        let b = ub(98765432109876543210);
        let sum = &a + &b;
        a += &b;
        assert_eq!(a, sum);
    }

    #[test]
    fn borrow_chain_across_limbs() {
        let a = UBig::from_limbs(vec![0, 0, 1]);
        let b = ub(1);
        assert_eq!(&a - &b, UBig::from_limbs(vec![u64::MAX, u64::MAX]));
    }
}
