//! The signed arbitrary-precision integer.

use std::cmp::Ordering;
use std::hash::{Hash, Hasher};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Shl, Shr, Sub, SubAssign};

use crate::UBig;

/// Sign of an [`IBig`]. Zero always has [`Sign::Zero`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// The value zero.
    Zero,
    /// Strictly positive.
    Positive,
}

/// An arbitrary-precision signed integer.
///
/// The magnitude is a [`UBig`]; zero is canonically non-negative so
/// equality and hashing are structural.
///
/// # Examples
///
/// ```
/// use aq_bigint::IBig;
///
/// let x = IBig::from(-3).pow(41);
/// assert!(x.is_negative());
/// assert_eq!(&x + &-&x, IBig::zero());
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct IBig {
    negative: bool,
    magnitude: UBig,
}

impl IBig {
    /// The value `0`.
    pub fn zero() -> Self {
        IBig::default()
    }

    /// The value `1`.
    pub fn one() -> Self {
        IBig::from(1)
    }

    /// The value `-1`.
    pub fn neg_one() -> Self {
        IBig::from(-1)
    }

    /// Builds from a sign and magnitude (zero magnitude forces sign zero).
    pub fn from_sign_magnitude(negative: bool, magnitude: UBig) -> Self {
        IBig {
            negative: negative && !magnitude.is_zero(),
            magnitude,
        }
    }

    /// The sign of the value.
    pub fn sign(&self) -> Sign {
        if self.magnitude.is_zero() {
            Sign::Zero
        } else if self.negative {
            Sign::Negative
        } else {
            Sign::Positive
        }
    }

    /// Borrows the magnitude.
    pub fn magnitude(&self) -> &UBig {
        &self.magnitude
    }

    /// Consumes `self`, returning the magnitude.
    pub fn into_magnitude(self) -> UBig {
        self.magnitude
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.magnitude.is_zero()
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        !self.negative && self.magnitude.is_one()
    }

    /// Returns `true` if strictly negative.
    pub fn is_negative(&self) -> bool {
        self.negative
    }

    /// Returns `true` if strictly positive.
    pub fn is_positive(&self) -> bool {
        !self.negative && !self.magnitude.is_zero()
    }

    /// Returns `true` if the lowest bit is set.
    pub fn is_odd(&self) -> bool {
        self.magnitude.is_odd()
    }

    /// Returns `true` if the value is even.
    pub fn is_even(&self) -> bool {
        self.magnitude.is_even()
    }

    /// Absolute value.
    pub fn abs(&self) -> IBig {
        IBig {
            negative: false,
            magnitude: self.magnitude.clone(),
        }
    }

    /// Number of significant bits of the magnitude.
    pub fn bit_len(&self) -> u64 {
        self.magnitude.bit_len()
    }

    /// Truncated division: `(q, r)` with `self = q·rhs + r`,
    /// `|r| < |rhs|` and `r` taking the sign of `self`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn div_rem(&self, rhs: &IBig) -> (IBig, IBig) {
        let (q, r) = self.magnitude.div_rem(&rhs.magnitude);
        (
            IBig::from_sign_magnitude(self.negative != rhs.negative, q),
            IBig::from_sign_magnitude(self.negative, r),
        )
    }

    /// Exact division; in debug builds, panics if `rhs` does not divide
    /// `self` exactly.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn div_exact(&self, rhs: &IBig) -> IBig {
        let (q, r) = self.div_rem(rhs);
        debug_assert!(r.is_zero(), "div_exact: {self} not divisible by {rhs}");
        q
    }

    /// Division rounded to the **nearest** integer, ties away from zero.
    ///
    /// This is the rounding used for Euclidean division in `Z[omega]`:
    /// rounding each rational coordinate to the nearest integer keeps the
    /// remainder's norm strictly smaller than the divisor's.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn div_round_nearest(&self, rhs: &IBig) -> IBig {
        let q = self.magnitude.div_round_nearest(&rhs.magnitude);
        IBig::from_sign_magnitude(self.negative != rhs.negative, q)
    }

    /// Greatest common divisor (always non-negative).
    pub fn gcd(&self, other: &IBig) -> IBig {
        IBig::from_sign_magnitude(false, self.magnitude.gcd(&other.magnitude))
    }

    /// Raises to the power `exp`.
    pub fn pow(&self, exp: u32) -> IBig {
        IBig::from_sign_magnitude(self.negative && exp % 2 == 1, self.magnitude.pow(exp))
    }

    /// Doubles the value (cheap shift).
    pub fn double(&self) -> IBig {
        IBig::from_sign_magnitude(self.negative, self.magnitude.shl_bits(1))
    }

    /// Halves the value exactly; in debug builds, panics if odd.
    pub fn half_exact(&self) -> IBig {
        debug_assert!(self.is_even(), "half_exact of odd value");
        IBig::from_sign_magnitude(self.negative, self.magnitude.shr_bits(1))
    }

    /// Attempts conversion to `i64`.
    pub fn to_i64(&self) -> Option<i64> {
        let m = self.magnitude.to_u64()?;
        if self.negative {
            if m <= 1 << 63 {
                Some((m as i64).wrapping_neg())
            } else {
                None
            }
        } else {
            i64::try_from(m).ok()
        }
    }
}

impl From<UBig> for IBig {
    fn from(magnitude: UBig) -> Self {
        IBig {
            negative: false,
            magnitude,
        }
    }
}

macro_rules! impl_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for IBig {
            fn from(v: $t) -> Self {
                IBig::from_sign_magnitude(v < 0, UBig::from(v.unsigned_abs() as u64))
            }
        }
    )*};
}
impl_from_signed!(i8, i16, i32, i64);

impl From<i128> for IBig {
    fn from(v: i128) -> Self {
        IBig::from_sign_magnitude(v < 0, UBig::from(v.unsigned_abs()))
    }
}

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for IBig {
            fn from(v: $t) -> Self {
                IBig::from(UBig::from(v as u64))
            }
        }
    )*};
}
impl_from_unsigned!(u8, u16, u32, u64);

impl Hash for IBig {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.negative.hash(state);
        self.magnitude.hash(state);
    }
}

impl Ord for IBig {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign(), other.sign()) {
            (Sign::Negative, Sign::Negative) => other.magnitude.cmp(&self.magnitude),
            (Sign::Negative, _) => Ordering::Less,
            (_, Sign::Negative) => Ordering::Greater,
            _ => self.magnitude.cmp(&other.magnitude),
        }
    }
}

impl PartialOrd for IBig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Neg for &IBig {
    type Output = IBig;
    fn neg(self) -> IBig {
        IBig::from_sign_magnitude(!self.negative, self.magnitude.clone())
    }
}

impl Neg for IBig {
    type Output = IBig;
    fn neg(self) -> IBig {
        IBig::from_sign_magnitude(!self.negative, self.magnitude)
    }
}

impl Add<&IBig> for &IBig {
    type Output = IBig;
    fn add(self, rhs: &IBig) -> IBig {
        if self.negative == rhs.negative {
            IBig::from_sign_magnitude(self.negative, &self.magnitude + &rhs.magnitude)
        } else {
            let (diff, ord) = self.magnitude.abs_diff(&rhs.magnitude);
            // The sign of the result follows the larger magnitude.
            let negative = match ord {
                Ordering::Greater => self.negative,
                Ordering::Less => rhs.negative,
                Ordering::Equal => false,
            };
            IBig::from_sign_magnitude(negative, diff)
        }
    }
}

impl Sub<&IBig> for &IBig {
    type Output = IBig;
    fn sub(self, rhs: &IBig) -> IBig {
        self + &(-rhs)
    }
}

impl Mul<&IBig> for &IBig {
    type Output = IBig;
    fn mul(self, rhs: &IBig) -> IBig {
        IBig::from_sign_magnitude(
            self.negative != rhs.negative,
            &self.magnitude * &rhs.magnitude,
        )
    }
}

macro_rules! forward_binop {
    ($($trait:ident :: $m:ident),*) => {$(
        impl $trait for IBig {
            type Output = IBig;
            fn $m(self, rhs: IBig) -> IBig { $trait::$m(&self, &rhs) }
        }
        impl $trait<&IBig> for IBig {
            type Output = IBig;
            fn $m(self, rhs: &IBig) -> IBig { $trait::$m(&self, rhs) }
        }
        impl $trait<IBig> for &IBig {
            type Output = IBig;
            fn $m(self, rhs: IBig) -> IBig { $trait::$m(self, &rhs) }
        }
    )*};
}
forward_binop!(Add::add, Sub::sub, Mul::mul);

impl std::ops::Div<&IBig> for &IBig {
    type Output = IBig;
    /// Truncated division (rounds toward zero).
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: &IBig) -> IBig {
        self.div_rem(rhs).0
    }
}

impl std::ops::Rem<&IBig> for &IBig {
    type Output = IBig;
    /// Truncated remainder (takes the sign of `self`).
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn rem(self, rhs: &IBig) -> IBig {
        self.div_rem(rhs).1
    }
}

forward_binop!(Div::div, Rem::rem);

impl AddAssign<&IBig> for IBig {
    fn add_assign(&mut self, rhs: &IBig) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&IBig> for IBig {
    fn sub_assign(&mut self, rhs: &IBig) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&IBig> for IBig {
    fn mul_assign(&mut self, rhs: &IBig) {
        *self = &*self * rhs;
    }
}

impl Shl<u64> for &IBig {
    type Output = IBig;
    fn shl(self, bits: u64) -> IBig {
        IBig::from_sign_magnitude(self.negative, self.magnitude.shl_bits(bits))
    }
}

impl Shr<u64> for &IBig {
    type Output = IBig;
    /// Arithmetic shift of the magnitude (rounds toward zero, not floor).
    fn shr(self, bits: u64) -> IBig {
        IBig::from_sign_magnitude(self.negative, self.magnitude.shr_bits(bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ib(v: i64) -> IBig {
        IBig::from(v)
    }

    #[test]
    fn sign_handling() {
        assert_eq!(ib(0).sign(), Sign::Zero);
        assert_eq!(ib(-5).sign(), Sign::Negative);
        assert_eq!(ib(5).sign(), Sign::Positive);
        assert_eq!(IBig::from_sign_magnitude(true, UBig::zero()), IBig::zero());
        assert_eq!(-IBig::zero(), IBig::zero());
    }

    #[test]
    fn mixed_sign_addition() {
        assert_eq!(ib(5) + ib(-3), ib(2));
        assert_eq!(ib(3) + ib(-5), ib(-2));
        assert_eq!(ib(-5) + ib(3), ib(-2));
        assert_eq!(ib(-3) + ib(-4), ib(-7));
        assert_eq!(ib(7) + ib(-7), ib(0));
    }

    #[test]
    fn subtraction_and_negation() {
        assert_eq!(ib(5) - ib(8), ib(-3));
        assert_eq!(ib(-5) - ib(-8), ib(3));
        assert_eq!(-(ib(9)), ib(-9));
    }

    #[test]
    fn multiplication_signs() {
        assert_eq!(ib(-4) * ib(6), ib(-24));
        assert_eq!(ib(-4) * ib(-6), ib(24));
        assert_eq!(ib(-4) * ib(0), ib(0));
        assert!(!(ib(-4) * ib(0)).is_negative());
    }

    #[test]
    fn ordering_across_signs() {
        assert!(ib(-10) < ib(-2));
        assert!(ib(-2) < ib(0));
        assert!(ib(0) < ib(1));
        assert!(ib(5) < ib(50));
    }

    #[test]
    fn truncated_div_rem() {
        // truncated semantics: r has the sign of the dividend
        assert_eq!(ib(7).div_rem(&ib(2)), (ib(3), ib(1)));
        assert_eq!(ib(-7).div_rem(&ib(2)), (ib(-3), ib(-1)));
        assert_eq!(ib(7).div_rem(&ib(-2)), (ib(-3), ib(1)));
        assert_eq!(ib(-7).div_rem(&ib(-2)), (ib(3), ib(-1)));
    }

    #[test]
    fn nearest_rounding_signed() {
        assert_eq!(ib(7).div_round_nearest(&ib(2)), ib(4));
        assert_eq!(ib(-7).div_round_nearest(&ib(2)), ib(-4));
        assert_eq!(ib(5).div_round_nearest(&ib(4)), ib(1));
        assert_eq!(ib(-5).div_round_nearest(&ib(4)), ib(-1));
        assert_eq!(ib(-6).div_round_nearest(&ib(4)), ib(-2));
    }

    #[test]
    fn pow_parity() {
        assert_eq!(ib(-2).pow(3), ib(-8));
        assert_eq!(ib(-2).pow(4), ib(16));
        assert_eq!(ib(-2).pow(0), ib(1));
    }

    #[test]
    fn i64_roundtrip_and_bounds() {
        assert_eq!(ib(i64::MIN).to_i64(), Some(i64::MIN));
        assert_eq!(ib(i64::MAX).to_i64(), Some(i64::MAX));
        let too_big = IBig::from(UBig::from(u64::MAX));
        assert_eq!(too_big.to_i64(), None);
        assert_eq!((-too_big).to_i64(), None);
    }

    #[test]
    fn i128_conversion_bounds() {
        assert_eq!(IBig::from(0i128), IBig::zero());
        assert_eq!(IBig::from(-1i128), IBig::neg_one());
        assert_eq!(IBig::from(i64::MAX as i128), ib(i64::MAX));
        assert_eq!(IBig::from(i64::MIN as i128), ib(i64::MIN));
        // values beyond i64 round-trip through the decimal writer
        assert_eq!(IBig::from(i128::MAX).to_string(), i128::MAX.to_string());
        assert_eq!(IBig::from(i128::MIN).to_string(), i128::MIN.to_string());
    }

    #[test]
    fn half_and_double() {
        assert_eq!(ib(-6).half_exact(), ib(-3));
        assert_eq!(ib(21).double(), ib(42));
    }

    #[test]
    fn gcd_nonnegative() {
        assert_eq!(ib(-12).gcd(&ib(18)), ib(6));
        assert_eq!(ib(-12).gcd(&ib(-18)), ib(6));
    }
}
