//! Versioned, section-checksummed binary snapshots of a [`Manager`].
//!
//! The build is offline, so the format is hand-rolled — no serde. A
//! snapshot is a byte stream:
//!
//! ```text
//! magic (8 bytes) | version (u32 LE) | section* | END section
//! section = tag (u32) | payload_len (u64) | payload | fnv1a64(payload)
//! ```
//!
//! Every multi-byte integer is little-endian. Each section carries its own
//! FNV-1a 64-bit checksum, so truncation and bit flips are detected
//! per-section and surface as structured
//! [`EngineError::SnapshotCorrupt`] values — never a panic and never a
//! silently-wrong diagram. A version bump is reported as
//! [`EngineError::SnapshotVersionSkew`].
//!
//! A manager snapshot serializes the node arenas, the open-addressing
//! unique tables (full slot arrays, so a reloaded manager is
//! *bit-identical* down to its probe layout and capacity statistics), and
//! the weight table. Exact `D[ω]`/`Q[ω]` coefficients are written as
//! decimal strings through the bigint radix I/O; numeric weights as IEEE
//! 754 bit patterns. On load the weight table is rebuilt by re-interning
//! the stored values in their original order — any duplicate (or
//! non-canonical zero) is caught because each value must intern to its own
//! index — and the whole diagram is checked with [`Manager::validate`].
//!
//! The active [`RunBudget`](crate::RunBudget) is deliberately **not**
//! persisted: a resuming process installs its own budget (typically a
//! fresh deadline) via [`Manager::set_budget`].

use std::path::Path;

use crate::edge::{Edge, MatId, MatNode, VecId, VecNode};
use crate::error::EngineError;
use crate::manager::Manager;
use crate::unique::UniqueTable;
use crate::weight::{WeightContext, WeightId, WeightTable};

/// The manager snapshot magic number.
pub const MANAGER_MAGIC: [u8; 8] = *b"AQDDSNAP";
/// The manager snapshot format version this build reads and writes.
pub const MANAGER_VERSION: u32 = 1;

const SEC_META: u32 = 1;
const SEC_WEIGHTS: u32 = 2;
const SEC_VEC_NODES: u32 = 3;
const SEC_MAT_NODES: u32 = 4;
const SEC_VEC_UNIQUE: u32 = 5;
const SEC_MAT_UNIQUE: u32 = 6;
const SEC_ROOTS: u32 = 7;
/// The terminating section tag (empty payload).
pub const SEC_END: u32 = 0xE4D;

/// FNV-1a 64-bit over a byte slice — the per-section checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Little-endian byte sink used by the snapshot encoders.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE 754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed byte blob.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Consumes the writer, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The accumulated bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Little-endian cursor over a byte slice. Every accessor is
/// bounds-checked and reports a human-readable detail string on underrun
/// (the snapshot reader wraps it into
/// [`EngineError::SnapshotCorrupt`]).
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "unexpected end of data: need {n} byte(s), {} left",
                self.remaining()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], String> {
        self.take(N)?
            .try_into()
            .map_err(|_| format!("internal: take({N}) returned the wrong slice width"))
    }

    /// Reads a `u32`.
    pub fn take_u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// Reads a `u64`.
    pub fn take_u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Reads an `i64`.
    pub fn take_i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(self.take_array()?))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, String> {
        let len = self.take_len()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "invalid UTF-8 in string".to_string())
    }

    /// Reads a length-prefixed byte blob.
    pub fn take_blob(&mut self) -> Result<Vec<u8>, String> {
        let len = self.take_len()?;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a `u64` length and sanity-checks it against the remaining
    /// bytes, so a corrupted length cannot trigger a huge allocation.
    pub fn take_len(&mut self) -> Result<usize, String> {
        let len = self.take_u64()?;
        if len > self.remaining() as u64 {
            return Err(format!(
                "length {len} exceeds remaining {} byte(s)",
                self.remaining()
            ));
        }
        usize::try_from(len).map_err(|_| format!("length {len} does not fit in usize on this host"))
    }

    /// Fails unless the reader is exhausted.
    pub fn expect_end(&self) -> Result<(), String> {
        if self.remaining() != 0 {
            return Err(format!("{} trailing byte(s)", self.remaining()));
        }
        Ok(())
    }
}

/// Writes a framed snapshot stream: magic, version, checksummed sections.
///
/// Shared by the manager snapshot here and the simulator checkpoint in
/// `aq-sim` (which embeds a manager snapshot as one of its sections).
#[derive(Debug)]
pub struct SnapshotWriter {
    out: Vec<u8>,
}

impl SnapshotWriter {
    /// Starts a stream with the given magic number and format version.
    pub fn new(magic: [u8; 8], version: u32) -> Self {
        let mut out = Vec::new();
        out.extend_from_slice(&magic);
        out.extend_from_slice(&version.to_le_bytes());
        SnapshotWriter { out }
    }

    /// Appends one checksummed section.
    pub fn section(&mut self, tag: u32, payload: &[u8]) {
        self.out.extend_from_slice(&tag.to_le_bytes());
        self.out
            .extend_from_slice(&(payload.len() as u64).to_le_bytes());
        self.out.extend_from_slice(payload);
        self.out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    }

    /// Appends the END marker and returns the finished byte stream.
    pub fn finish(mut self) -> Vec<u8> {
        self.section(SEC_END, &[]);
        self.out
    }
}

/// Reads a framed snapshot stream, verifying magic, version and every
/// section checksum before handing out a payload.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    reader: ByteReader<'a>,
    done: bool,
}

fn corrupt(section: &str, detail: impl Into<String>) -> EngineError {
    EngineError::SnapshotCorrupt {
        section: section.to_string(),
        detail: detail.into(),
    }
}

impl<'a> SnapshotReader<'a> {
    /// Opens a stream, checking the magic number and format version.
    ///
    /// # Errors
    ///
    /// [`EngineError::SnapshotCorrupt`] if the magic does not match,
    /// [`EngineError::SnapshotVersionSkew`] if the version differs from
    /// `supported`.
    pub fn new(bytes: &'a [u8], magic: [u8; 8], supported: u32) -> Result<Self, EngineError> {
        let mut reader = ByteReader::new(bytes);
        let found_magic = reader
            .take(8)
            .map_err(|e| corrupt("header", format!("missing magic: {e}")))?;
        if found_magic != magic {
            return Err(corrupt(
                "header",
                format!(
                    "bad magic {:02x?} (expected {:02x?})",
                    found_magic,
                    &magic[..]
                ),
            ));
        }
        let found = reader
            .take_u32()
            .map_err(|e| corrupt("header", format!("missing version: {e}")))?;
        if found != supported {
            return Err(EngineError::SnapshotVersionSkew { found, supported });
        }
        Ok(SnapshotReader {
            reader,
            done: false,
        })
    }

    /// Returns the next `(tag, payload)` pair, or `None` after the END
    /// marker. The payload's checksum has already been verified.
    ///
    /// # Errors
    ///
    /// [`EngineError::SnapshotCorrupt`] on truncation or a checksum
    /// mismatch.
    pub fn next_section(&mut self) -> Result<Option<(u32, &'a [u8])>, EngineError> {
        if self.done {
            return Ok(None);
        }
        let tag = self
            .reader
            .take_u32()
            .map_err(|e| corrupt("section header", e))?;
        let len = self
            .reader
            .take_u64()
            .map_err(|e| corrupt("section header", e))?;
        if len > self.reader.remaining() as u64 {
            return Err(corrupt(
                "section header",
                format!(
                    "section length {len} exceeds remaining {} byte(s) (truncated file?)",
                    self.reader.remaining()
                ),
            ));
        }
        let len = usize::try_from(len).map_err(|_| {
            corrupt(
                "section header",
                format!("section length {len} does not fit in usize on this host"),
            )
        })?;
        let payload = self
            .reader
            .take(len)
            .map_err(|e| corrupt("section header", e))?;
        let stored = self
            .reader
            .take_u64()
            .map_err(|e| corrupt("section checksum", e))?;
        let actual = fnv1a64(payload);
        if stored != actual {
            return Err(corrupt(
                &format!("section {tag}"),
                format!("checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"),
            ));
        }
        if tag == SEC_END {
            self.done = true;
            return Ok(None);
        }
        Ok(Some((tag, payload)))
    }
}

/// Collects all sections of a stream into `(tag, payload)` pairs,
/// requiring a well-formed END marker.
fn read_all_sections(
    bytes: &[u8],
    magic: [u8; 8],
    supported: u32,
) -> Result<Vec<(u32, &[u8])>, EngineError> {
    let mut r = SnapshotReader::new(bytes, magic, supported)?;
    let mut sections = Vec::new();
    while let Some(s) = r.next_section()? {
        sections.push(s);
    }
    if !r.done {
        return Err(corrupt("trailer", "missing END section"));
    }
    Ok(sections)
}

fn required<'a>(
    sections: &[(u32, &'a [u8])],
    tag: u32,
    name: &str,
) -> Result<&'a [u8], EngineError> {
    sections
        .iter()
        .find(|(t, _)| *t == tag)
        .map(|(_, p)| *p)
        .ok_or_else(|| corrupt(name, "section missing"))
}

fn edge_vec(w: u32, n: u32) -> Edge<VecId> {
    Edge {
        w: WeightId(w),
        n: VecId(n),
    }
}

fn edge_mat(w: u32, n: u32) -> Edge<MatId> {
    Edge {
        w: WeightId(w),
        n: MatId(n),
    }
}

fn put_vec_edge(w: &mut ByteWriter, e: &Edge<VecId>) {
    w.put_u32(e.w.0);
    w.put_u32(e.n.0);
}

fn put_mat_edge(w: &mut ByteWriter, e: &Edge<MatId>) {
    w.put_u32(e.w.0);
    w.put_u32(e.n.0);
}

fn take_vec_edge(r: &mut ByteReader<'_>) -> Result<Edge<VecId>, String> {
    Ok(edge_vec(r.take_u32()?, r.take_u32()?))
}

fn take_mat_edge(r: &mut ByteReader<'_>) -> Result<Edge<MatId>, String> {
    Ok(edge_mat(r.take_u32()?, r.take_u32()?))
}

fn encode_unique(t: &UniqueTable) -> Vec<u8> {
    let mut w = ByteWriter::new();
    let slots = t.snapshot_slots();
    w.put_u64(slots.len() as u64);
    w.put_u64(t.len() as u64);
    for &(hash, id) in slots {
        w.put_u64(hash);
        w.put_u32(id);
    }
    w.into_bytes()
}

fn decode_unique(payload: &[u8], section: &str) -> Result<UniqueTable, EngineError> {
    let mut r = ByteReader::new(payload);
    let inner = (|| -> Result<UniqueTable, String> {
        let slot_count = r.take_u64()?;
        let len = r.take_u64()?;
        if slot_count > (payload.len() as u64) / 12 + 1 {
            return Err(format!("slot count {slot_count} exceeds payload"));
        }
        let slot_count = usize::try_from(slot_count)
            .map_err(|_| format!("slot count {slot_count} does not fit in usize on this host"))?;
        let len = usize::try_from(len)
            .map_err(|_| format!("table length {len} does not fit in usize on this host"))?;
        let mut slots = Vec::with_capacity(slot_count);
        for _ in 0..slot_count {
            let hash = r.take_u64()?;
            let id = r.take_u32()?;
            slots.push((hash, id));
        }
        r.expect_end()?;
        UniqueTable::from_snapshot_slots(slots, len)
    })();
    inner.map_err(|e| corrupt(section, e))
}

impl<W: WeightContext> Manager<W> {
    /// Serializes this manager and the given root edges into a snapshot
    /// byte stream (see the module docs for the format).
    ///
    /// The roots are remembered in the stream and handed back by
    /// [`Manager::snapshot_from_bytes`], remapped onto the reloaded
    /// manager (ids are preserved verbatim, so "remapped" is the identity
    /// — the arenas are serialized in full, garbage included, which keeps
    /// reloaded ε-interning decisions bit-identical to an uninterrupted
    /// run).
    pub fn snapshot_to_bytes(
        &self,
        vec_roots: &[Edge<VecId>],
        mat_roots: &[Edge<MatId>],
    ) -> Vec<u8> {
        let mut s = SnapshotWriter::new(MANAGER_MAGIC, MANAGER_VERSION);

        let mut meta = ByteWriter::new();
        meta.put_str(self.ctx.kind());
        meta.put_bytes(&self.ctx.params_fingerprint());
        meta.put_u32(self.n_qubits);
        meta.put_u64(self.cache_capacity as u64);
        meta.put_u64(self.compactions);
        s.section(SEC_META, meta.as_bytes());

        let mut weights = ByteWriter::new();
        weights.put_u64(self.table.len() as u64);
        for i in 0..self.table.len() {
            self.ctx
                // aq-lint: allow(R4): every table index was interned as a u32 id
                .write_value(self.table.get(WeightId(i as u32)), &mut weights);
        }
        s.section(SEC_WEIGHTS, weights.as_bytes());

        let mut vn = ByteWriter::new();
        vn.put_u64(self.vec_nodes.len() as u64);
        for node in &self.vec_nodes {
            vn.put_u32(node.var);
            for c in &node.children {
                put_vec_edge(&mut vn, c);
            }
        }
        s.section(SEC_VEC_NODES, vn.as_bytes());

        let mut mn = ByteWriter::new();
        mn.put_u64(self.mat_nodes.len() as u64);
        for node in &self.mat_nodes {
            mn.put_u32(node.var);
            for c in &node.children {
                put_mat_edge(&mut mn, c);
            }
        }
        s.section(SEC_MAT_NODES, mn.as_bytes());

        s.section(SEC_VEC_UNIQUE, &encode_unique(&self.vec_unique));
        s.section(SEC_MAT_UNIQUE, &encode_unique(&self.mat_unique));

        let mut roots = ByteWriter::new();
        roots.put_u64(vec_roots.len() as u64);
        for e in vec_roots {
            put_vec_edge(&mut roots, e);
        }
        roots.put_u64(mat_roots.len() as u64);
        for e in mat_roots {
            put_mat_edge(&mut roots, e);
        }
        s.section(SEC_ROOTS, roots.as_bytes());

        s.finish()
    }

    /// Reconstructs a manager (and the saved root edges) from a snapshot
    /// byte stream produced by [`Manager::snapshot_to_bytes`].
    ///
    /// The weight table is rebuilt by re-interning every stored value in
    /// its original order; each value must intern to its own index, which
    /// structurally rules out duplicate interned weights. The reloaded
    /// diagram is then checked with [`Manager::validate`] before it is
    /// handed to the caller.
    ///
    /// The caller's `ctx` must match the snapshot's context kind and
    /// parameters; the active budget is **not** restored (install one
    /// with [`Manager::set_budget`]).
    ///
    /// # Errors
    ///
    /// [`EngineError::SnapshotCorrupt`] for truncation, bit flips or
    /// undecodable payloads; [`EngineError::SnapshotVersionSkew`] for a
    /// foreign format version; [`EngineError::SnapshotMismatch`] when
    /// `ctx` differs from the snapshot's context;
    /// [`EngineError::InvariantViolation`] when the decoded diagram is
    /// not canonical.
    #[allow(clippy::type_complexity)]
    pub fn snapshot_from_bytes(
        ctx: W,
        bytes: &[u8],
    ) -> Result<(Manager<W>, Vec<Edge<VecId>>, Vec<Edge<MatId>>), EngineError> {
        let sections = read_all_sections(bytes, MANAGER_MAGIC, MANAGER_VERSION)?;

        // META: context identity, qubit count, cache size, compactions.
        let meta = required(&sections, SEC_META, "meta")?;
        let mut r = ByteReader::new(meta);
        let (kind, params, n_qubits, cache_capacity, compactions) = (|| -> Result<_, String> {
            let kind = r.take_str()?;
            let params = r.take_blob()?;
            let n_qubits = r.take_u32()?;
            let cache_capacity = r.take_u64()?;
            let compactions = r.take_u64()?;
            r.expect_end()?;
            Ok((kind, params, n_qubits, cache_capacity, compactions))
        })()
        .map_err(|e| corrupt("meta", e))?;
        if kind != ctx.kind() || params != ctx.params_fingerprint() {
            return Err(EngineError::SnapshotMismatch {
                expected: format!("context {} (params {:02x?})", ctx.kind(), {
                    ctx.params_fingerprint()
                }),
                found: format!("context {kind} (params {params:02x?})"),
            });
        }
        if n_qubits == 0 {
            return Err(corrupt("meta", "zero qubits"));
        }

        // WEIGHTS: re-intern in order; index stability proves uniqueness.
        let payload = required(&sections, SEC_WEIGHTS, "weights")?;
        let mut r = ByteReader::new(payload);
        let count = r.take_u64().map_err(|e| corrupt("weights", e))?;
        let mut table = ctx.new_table();
        if count < table.len() as u64 {
            return Err(corrupt(
                "weights",
                format!("table has {count} entries, fewer than the mandatory constants"),
            ));
        }
        for i in 0..count {
            let v = ctx
                .read_value(&mut r)
                .map_err(|e| corrupt("weights", format!("value {i}: {e}")))?;
            let id = table
                .try_intern(v)
                .map_err(|e| corrupt("weights", format!("value {i}: {e}")))?;
            if id.0 as u64 != i {
                return Err(corrupt(
                    "weights",
                    format!(
                        "value {i} interned to id {} — duplicate or non-canonical entry",
                        id.0
                    ),
                ));
            }
        }
        r.expect_end().map_err(|e| corrupt("weights", e))?;

        // Node arenas.
        let payload = required(&sections, SEC_VEC_NODES, "vec nodes")?;
        let mut r = ByteReader::new(payload);
        let vec_nodes = (|| -> Result<Vec<VecNode>, String> {
            let count = r.take_u64()?;
            if count > payload.len() as u64 / 4 {
                return Err(format!("node count {count} exceeds payload"));
            }
            let count = usize::try_from(count)
                .map_err(|_| format!("node count {count} does not fit in usize on this host"))?;
            let mut nodes = Vec::with_capacity(count);
            for _ in 0..count {
                let var = r.take_u32()?;
                let children = [take_vec_edge(&mut r)?, take_vec_edge(&mut r)?];
                nodes.push(VecNode { var, children });
            }
            r.expect_end()?;
            Ok(nodes)
        })()
        .map_err(|e| corrupt("vec nodes", e))?;

        let payload = required(&sections, SEC_MAT_NODES, "mat nodes")?;
        let mut r = ByteReader::new(payload);
        let mat_nodes = (|| -> Result<Vec<MatNode>, String> {
            let count = r.take_u64()?;
            if count > payload.len() as u64 / 4 {
                return Err(format!("node count {count} exceeds payload"));
            }
            let count = usize::try_from(count)
                .map_err(|_| format!("node count {count} does not fit in usize on this host"))?;
            let mut nodes = Vec::with_capacity(count);
            for _ in 0..count {
                let var = r.take_u32()?;
                let children = [
                    take_mat_edge(&mut r)?,
                    take_mat_edge(&mut r)?,
                    take_mat_edge(&mut r)?,
                    take_mat_edge(&mut r)?,
                ];
                nodes.push(MatNode { var, children });
            }
            r.expect_end()?;
            Ok(nodes)
        })()
        .map_err(|e| corrupt("mat nodes", e))?;

        // Unique tables (full slot arrays — probe layout is preserved).
        let vec_unique = decode_unique(
            required(&sections, SEC_VEC_UNIQUE, "vec unique table")?,
            "vec unique table",
        )?;
        let mat_unique = decode_unique(
            required(&sections, SEC_MAT_UNIQUE, "mat unique table")?,
            "mat unique table",
        )?;

        // Roots.
        let payload = required(&sections, SEC_ROOTS, "roots")?;
        let mut r = ByteReader::new(payload);
        let (vec_roots, mat_roots) = (|| -> Result<_, String> {
            let nv = r.take_u64()?;
            if nv > payload.len() as u64 / 8 {
                return Err(format!("root count {nv} exceeds payload"));
            }
            let nv = usize::try_from(nv)
                .map_err(|_| format!("root count {nv} does not fit in usize on this host"))?;
            let mut vec_roots = Vec::with_capacity(nv);
            for _ in 0..nv {
                vec_roots.push(take_vec_edge(&mut r)?);
            }
            let nm = r.take_u64()?;
            if nm > payload.len() as u64 / 8 {
                return Err(format!("root count {nm} exceeds payload"));
            }
            let nm = usize::try_from(nm)
                .map_err(|_| format!("root count {nm} does not fit in usize on this host"))?;
            let mut mat_roots = Vec::with_capacity(nm);
            for _ in 0..nm {
                mat_roots.push(take_mat_edge(&mut r)?);
            }
            r.expect_end()?;
            Ok((vec_roots, mat_roots))
        })()
        .map_err(|e| corrupt("roots", e))?;

        let cache_capacity = usize::try_from(cache_capacity).map_err(|_| {
            corrupt(
                "meta",
                format!("cache capacity {cache_capacity} does not fit in usize on this host"),
            )
        })?;
        let mut m = Manager::with_cache_capacity(ctx, n_qubits, cache_capacity.max(1));
        m.table = table;
        m.vec_nodes = vec_nodes;
        m.mat_nodes = mat_nodes;
        m.vec_unique = vec_unique;
        m.mat_unique = mat_unique;
        m.compactions = compactions;

        m.validate()?;
        for (i, e) in vec_roots.iter().enumerate() {
            m.validate_vec_root(e)
                .map_err(|err| root_error("vec", i, err))?;
        }
        for (i, e) in mat_roots.iter().enumerate() {
            m.validate_mat_root(e)
                .map_err(|err| root_error("mat", i, err))?;
        }
        Ok((m, vec_roots, mat_roots))
    }

    /// Writes a snapshot of this manager (and the given roots) to `path`.
    ///
    /// # Errors
    ///
    /// [`EngineError::SnapshotIo`] when the file cannot be written.
    pub fn save_snapshot(
        &self,
        path: impl AsRef<Path>,
        vec_roots: &[Edge<VecId>],
        mat_roots: &[Edge<MatId>],
    ) -> Result<(), EngineError> {
        let path = path.as_ref();
        let bytes = self.snapshot_to_bytes(vec_roots, mat_roots);
        std::fs::write(path, bytes).map_err(|e| EngineError::SnapshotIo {
            path: path.display().to_string(),
            detail: e.to_string(),
        })
    }

    /// Loads a manager (and the saved roots) from a snapshot file written
    /// by [`Manager::save_snapshot`]. Validates the diagram on load.
    ///
    /// # Errors
    ///
    /// [`EngineError::SnapshotIo`] when the file cannot be read, plus
    /// every error of [`Manager::snapshot_from_bytes`].
    #[allow(clippy::type_complexity)]
    pub fn load_snapshot(
        ctx: W,
        path: impl AsRef<Path>,
    ) -> Result<(Manager<W>, Vec<Edge<VecId>>, Vec<Edge<MatId>>), EngineError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| EngineError::SnapshotIo {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        Manager::snapshot_from_bytes(ctx, &bytes)
    }
}

fn root_error(kind: &str, index: usize, err: EngineError) -> EngineError {
    match err {
        EngineError::InvariantViolation { detail } => EngineError::InvariantViolation {
            detail: format!("{kind} root {index}: {detail}"),
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }

    #[test]
    fn byte_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-42);
        w.put_f64(std::f64::consts::PI);
        w.put_str("héllo");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.take_i64().unwrap(), -42);
        assert_eq!(r.take_f64().unwrap(), std::f64::consts::PI);
        assert_eq!(r.take_str().unwrap(), "héllo");
        assert_eq!(r.take_blob().unwrap(), vec![1, 2, 3]);
        r.expect_end().unwrap();
        assert!(r.take_u8().is_err(), "reads past the end must fail");
    }

    #[test]
    fn reader_rejects_oversized_lengths() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // a corrupted length prefix
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let err = r.take_str().unwrap_err();
        assert!(err.contains("exceeds remaining"), "{err}");
    }

    #[test]
    fn section_framing_detects_flips() {
        let mut w = SnapshotWriter::new(*b"TESTMAGC", 3);
        w.section(9, b"payload");
        let mut bytes = w.finish();
        // pristine stream parses
        let mut r = SnapshotReader::new(&bytes, *b"TESTMAGC", 3).unwrap();
        let (tag, payload) = r.next_section().unwrap().unwrap();
        assert_eq!((tag, payload), (9, &b"payload"[..]));
        assert!(r.next_section().unwrap().is_none());
        // flip a payload bit: checksum must catch it
        bytes[8 + 4 + 4 + 8 + 2] ^= 0x10;
        let mut r = SnapshotReader::new(&bytes, *b"TESTMAGC", 3).unwrap();
        let err = r.next_section().unwrap_err();
        assert!(matches!(err, EngineError::SnapshotCorrupt { .. }), "{err}");
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn version_skew_and_bad_magic() {
        let w = SnapshotWriter::new(*b"TESTMAGC", 3);
        let bytes = w.finish();
        let err = SnapshotReader::new(&bytes, *b"TESTMAGC", 4).unwrap_err();
        assert_eq!(
            err,
            EngineError::SnapshotVersionSkew {
                found: 3,
                supported: 4
            }
        );
        let err = SnapshotReader::new(&bytes, *b"OTHERMGC", 3).unwrap_err();
        assert!(matches!(err, EngineError::SnapshotCorrupt { .. }));
        let err = SnapshotReader::new(&bytes[..5], *b"TESTMAGC", 3).unwrap_err();
        assert!(matches!(err, EngineError::SnapshotCorrupt { .. }));
    }
}
