//! The numerical weight system: `Complex64` with a tolerance value ε.
//!
//! This is the state-of-the-art representation the paper evaluates in
//! Sec. V-A: edge weights are IEEE 754 doubles, and two weights are
//! considered equal when they differ by at most ε per component. Small ε
//! misses redundancies (exponential blow-up); large ε merges distinct
//! values and loses information.

use aq_rings::{Complex64, Domega, Tolerance};

use crate::error::EngineError;
use crate::fxhash::FxHashMap;
use crate::weight::{WeightContext, WeightId, WeightTable};

/// Normalization scheme for numeric QMDDs (Sec. II-B of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NormScheme {
    /// Divide by the leftmost non-zero edge weight (the simple scheme).
    #[default]
    Leftmost,
    /// Divide by the (leftmost) weight of largest absolute value, keeping
    /// every stored weight at magnitude ≤ 1 for numerical stability
    /// (the scheme of \[29\], “On the ‘Q’ in QMDDs”).
    MaxMagnitude,
}

/// The numerical weight system: complex doubles compared within ε.
///
/// # Examples
///
/// ```
/// use aq_dd::{Manager, NumericContext};
///
/// // ε = 10⁻¹⁰, as in the middle curves of Fig. 3 of the paper
/// let ctx = NumericContext::with_eps(1e-10);
/// let m = Manager::new(ctx, 3);
/// # let _ = m;
/// ```
#[derive(Debug, Clone)]
pub struct NumericContext {
    tol: Tolerance,
    scheme: NormScheme,
}

impl NumericContext {
    /// Exact comparison (ε = 0) with leftmost normalization.
    pub fn new() -> Self {
        NumericContext {
            tol: Tolerance::exact(),
            scheme: NormScheme::Leftmost,
        }
    }

    /// Tolerance ε with leftmost normalization.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is negative or not finite.
    pub fn with_eps(eps: f64) -> Self {
        NumericContext {
            tol: Tolerance::new(eps),
            scheme: NormScheme::Leftmost,
        }
    }

    /// Tolerance ε with an explicit normalization scheme.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is negative or not finite.
    pub fn with_eps_and_scheme(eps: f64, scheme: NormScheme) -> Self {
        NumericContext {
            tol: Tolerance::new(eps),
            scheme,
        }
    }

    /// The tolerance in use.
    pub fn tolerance(&self) -> Tolerance {
        self.tol
    }
}

impl Default for NumericContext {
    fn default() -> Self {
        NumericContext::new()
    }
}

impl WeightContext for NumericContext {
    type Value = Complex64;
    type Table = NumericTable;

    fn new_table(&self) -> NumericTable {
        let index = if self.tol.is_exact() {
            NumericIndex::Exact(FxHashMap::default())
        } else {
            NumericIndex::Grid {
                pitch: self.tol.eps(),
                map: FxHashMap::default(),
            }
        };
        let mut t = NumericTable {
            values: Vec::new(),
            tol: self.tol,
            index,
        };
        let z = t.intern(Complex64::ZERO);
        let o = t.intern(Complex64::ONE);
        debug_assert_eq!(z, WeightId::ZERO);
        debug_assert_eq!(o, WeightId::ONE);
        t
    }

    fn zero(&self) -> Complex64 {
        Complex64::ZERO
    }

    fn one(&self) -> Complex64 {
        Complex64::ONE
    }

    fn add(&self, a: &Complex64, b: &Complex64) -> Complex64 {
        *a + *b
    }

    fn mul(&self, a: &Complex64, b: &Complex64) -> Complex64 {
        *a * *b
    }

    fn neg(&self, a: &Complex64) -> Complex64 {
        -*a
    }

    fn conj(&self, a: &Complex64) -> Complex64 {
        a.conj()
    }

    fn is_zero(&self, a: &Complex64) -> bool {
        self.tol.is_zero(*a)
    }

    fn normalize(&self, ws: &mut [Complex64]) -> Option<Complex64> {
        let pivot = match self.scheme {
            NormScheme::Leftmost => ws.iter().position(|w| !self.tol.is_zero(*w))?,
            NormScheme::MaxMagnitude => {
                let mut best: Option<(usize, f64)> = None;
                for (i, w) in ws.iter().enumerate() {
                    if self.tol.is_zero(*w) {
                        continue;
                    }
                    // Compare *linear* magnitudes against the linear ε so
                    // the tie window has consistent units (squared
                    // magnitude vs linear ε would make the "leftmost among
                    // ties" rule depend on the magnitude scale).
                    let m = w.norm_sqr().sqrt();
                    // strictly-greater keeps the leftmost among ties
                    if best.map(|(_, bm)| m > bm + self.tol.eps()).unwrap_or(true) {
                        best = Some((i, m));
                    }
                }
                best?.0
            }
        };
        let eta = ws[pivot];
        for (i, w) in ws.iter_mut().enumerate() {
            if self.tol.is_zero(*w) {
                *w = Complex64::ZERO;
            } else if i == pivot {
                *w = Complex64::ONE; // exact by construction
            } else {
                *w = *w / eta;
            }
        }
        Some(eta)
    }

    fn from_exact(&self, d: &Domega) -> Complex64 {
        d.to_complex64()
    }

    fn from_approx(&self, c: Complex64) -> Option<Complex64> {
        Some(c)
    }

    fn sqrt_inv(&self, a: &Complex64) -> Option<Complex64> {
        // squared norms are real; reject anything that is not a usable
        // positive probability mass (the caller treats `None` as an
        // impossible renormalization)
        if a.re <= 0.0 || !a.re.is_finite() {
            return None;
        }
        Some(Complex64::new(1.0 / a.re.sqrt(), 0.0))
    }

    fn to_complex(&self, a: &Complex64) -> Complex64 {
        *a
    }

    fn value_bits(&self, _a: &Complex64) -> u64 {
        53 // double-precision mantissa, constant by definition
    }

    fn kind(&self) -> &'static str {
        "numeric"
    }

    fn params_fingerprint(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(9);
        out.extend_from_slice(&self.tol.eps().to_bits().to_le_bytes());
        out.push(match self.scheme {
            NormScheme::Leftmost => 0,
            NormScheme::MaxMagnitude => 1,
        });
        out
    }

    fn write_value(&self, v: &Complex64, out: &mut crate::snapshot::ByteWriter) {
        out.put_f64(v.re);
        out.put_f64(v.im);
    }

    fn read_value(&self, r: &mut crate::snapshot::ByteReader<'_>) -> Result<Complex64, String> {
        let re = r.take_f64()?;
        let im = r.take_f64()?;
        if !re.is_finite() || !im.is_finite() {
            return Err(format!("non-finite weight ({re}, {im})"));
        }
        Ok(Complex64::new(re, im))
    }

    fn is_normalized(&self, ws: &[Complex64]) -> bool {
        // The default re-normalization check is too strict here: with ε > 0
        // the interned pivot need not be bitwise 1.0 (the grid table may
        // have merged it into an earlier ε-close representative), and
        // `MaxMagnitude` re-normalization is not idempotent inside the tie
        // window. The tolerance-aware invariant is: no stored nonzero
        // weight is an ε-zero, and the pivot position holds an ε-one.
        if ws.iter().any(|w| *w != Complex64::ZERO && self.is_zero(w)) {
            return false;
        }
        match self.scheme {
            NormScheme::Leftmost => ws
                .iter()
                .find(|w| **w != Complex64::ZERO)
                .is_some_and(|w| self.tol.eq(*w, Complex64::ONE)),
            NormScheme::MaxMagnitude => ws.iter().any(|w| self.tol.eq(*w, Complex64::ONE)),
        }
    }
}

/// Weight table for complex doubles with ε-deduplication.
///
/// For ε = 0 values are indexed by their exact bit pattern. For ε > 0 they
/// are bucketed on a grid of pitch ε and lookup probes the 3×3
/// neighbourhood, so any two values within ε land in probed cells.
#[derive(Debug)]
pub struct NumericTable {
    values: Vec<Complex64>,
    tol: Tolerance,
    index: NumericIndex,
}

impl NumericTable {
    /// Appends a value while bypassing deduplication — only for invariant
    /// tests that need a deliberately corrupted table.
    #[cfg(test)]
    pub(crate) fn push_duplicate_for_tests(&mut self, v: Complex64) {
        self.values.push(v);
    }
}

#[derive(Debug)]
enum NumericIndex {
    Exact(FxHashMap<(u64, u64), WeightId>),
    Grid {
        pitch: f64,
        map: FxHashMap<(i128, i128), Vec<WeightId>>,
    },
}

fn quantize(x: f64, pitch: f64) -> i128 {
    let q = (x / pitch).floor();
    // saturate so astronomically large weights stay hashable (they simply
    // share the boundary bucket)
    if q >= 1.7e38 {
        i128::MAX / 2
    } else if q <= -1.7e38 {
        i128::MIN / 2
    } else {
        q as i128
    }
}

impl WeightTable for NumericTable {
    type Value = Complex64;

    fn try_intern(&mut self, v: Complex64) -> Result<WeightId, EngineError> {
        // canonicalise signed zeros so hashing is stable
        let v = Complex64::new(v.re + 0.0, v.im + 0.0);
        match &mut self.index {
            NumericIndex::Exact(map) => {
                let key = (v.re.to_bits(), v.im.to_bits());
                if let Some(&id) = map.get(&key) {
                    return Ok(id);
                }
                let raw = u32::try_from(self.values.len())
                    .map_err(|_| EngineError::WeightTableOverflow)?;
                let id = WeightId(raw);
                self.values.push(v);
                map.insert(key, id);
                Ok(id)
            }
            NumericIndex::Grid { pitch, map } => {
                let (cx, cy) = (quantize(v.re, *pitch), quantize(v.im, *pitch));
                for dx in -1..=1 {
                    for dy in -1..=1 {
                        if let Some(ids) = map.get(&(cx + dx, cy + dy)) {
                            for &id in ids {
                                if self.tol.eq(self.values[id.index()], v) {
                                    return Ok(id);
                                }
                            }
                        }
                    }
                }
                let raw = u32::try_from(self.values.len())
                    .map_err(|_| EngineError::WeightTableOverflow)?;
                let id = WeightId(raw);
                self.values.push(v);
                map.entry((cx, cy)).or_default().push(id);
                Ok(id)
            }
        }
    }

    fn get(&self, id: WeightId) -> &Complex64 {
        &self.values[id.index()]
    }

    fn len(&self) -> usize {
        self.values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_interns_constants_first() {
        let ctx = NumericContext::new();
        let mut t = ctx.new_table();
        assert_eq!(*t.get(WeightId::ZERO), Complex64::ZERO);
        assert_eq!(*t.get(WeightId::ONE), Complex64::ONE);
        assert_eq!(t.intern(Complex64::ZERO), WeightId::ZERO);
        assert_eq!(t.intern(Complex64::new(-0.0, 0.0)), WeightId::ZERO);
    }

    #[test]
    fn exact_table_distinguishes_ulps() {
        let ctx = NumericContext::new();
        let mut t = ctx.new_table();
        let a = t.intern(Complex64::new(1.0 / 3.0, 0.0));
        let b = t.intern(Complex64::new(1.0 / 3.0 + f64::EPSILON, 0.0));
        assert_ne!(a, b, "ε = 0 must not merge distinct doubles");
        assert_eq!(t.intern(Complex64::new(1.0 / 3.0, 0.0)), a);
    }

    #[test]
    fn tolerant_table_merges_close_values() {
        let ctx = NumericContext::with_eps(1e-10);
        let mut t = ctx.new_table();
        let a = t.intern(Complex64::new(0.5, 0.25));
        let b = t.intern(Complex64::new(0.5 + 1e-12, 0.25 - 1e-12));
        assert_eq!(a, b);
        let c = t.intern(Complex64::new(0.5 + 1e-9, 0.25));
        assert_ne!(a, c);
    }

    #[test]
    fn near_one_snaps_to_the_one_id() {
        let ctx = NumericContext::with_eps(1e-6);
        let mut t = ctx.new_table();
        assert_eq!(t.intern(Complex64::new(1.0 + 1e-8, -1e-9)), WeightId::ONE);
    }

    #[test]
    fn leftmost_normalization() {
        let ctx = NumericContext::new();
        let mut ws = [
            Complex64::ZERO,
            Complex64::new(0.5, 0.0),
            Complex64::new(0.25, 0.0),
            Complex64::ZERO,
        ];
        let eta = ctx.normalize(&mut ws).expect("nonzero");
        assert_eq!(eta, Complex64::new(0.5, 0.0));
        assert_eq!(ws[1], Complex64::ONE);
        assert_eq!(ws[2], Complex64::new(0.5, 0.0));
        assert!(ctx.normalize(&mut [Complex64::ZERO; 4]).is_none());
    }

    #[test]
    fn max_magnitude_normalization_bounds_weights() {
        let ctx = NumericContext::with_eps_and_scheme(0.0, NormScheme::MaxMagnitude);
        let mut ws = [
            Complex64::new(0.5, 0.0),
            Complex64::new(-2.0, 0.0),
            Complex64::ZERO,
            Complex64::new(1.0, 1.0),
        ];
        let eta = ctx.normalize(&mut ws).expect("nonzero");
        assert_eq!(eta, Complex64::new(-2.0, 0.0));
        for w in ws {
            assert!(w.abs() <= 1.0 + 1e-12, "weight {w:?} exceeds 1");
        }
        assert_eq!(ws[1], Complex64::ONE);
    }

    #[test]
    fn max_magnitude_tie_break_uses_linear_units() {
        // Magnitudes 0.8 and 0.95 with ε = 0.2: |0.95| ≤ |0.8| + ε, so in
        // linear units they tie and the leftmost (0.8) must be the pivot.
        // The old comparison mixed units — squared magnitudes against the
        // linear ε (0.9025 > 0.64 + 0.2) — and wrongly declared 0.95 the
        // strict maximum, so the pivot depended on where in [0, 1] the
        // weights happened to sit.
        let ctx = NumericContext::with_eps_and_scheme(0.2, NormScheme::MaxMagnitude);
        let mut ws = [Complex64::new(0.8, 0.0), Complex64::new(0.95, 0.0)];
        let eta = ctx.normalize(&mut ws).expect("nonzero");
        assert_eq!(
            eta,
            Complex64::new(0.8, 0.0),
            "tie within the linear ε window must keep the leftmost pivot"
        );
        // a magnitude gap larger than ε is not a tie: the right pivot wins
        let mut ws = [Complex64::new(0.5, 0.0), Complex64::new(0.9, 0.0)];
        let eta = ctx.normalize(&mut ws).expect("nonzero");
        assert_eq!(eta, Complex64::new(0.9, 0.0));
    }

    #[test]
    fn from_exact_matches_algebraic_eval() {
        let ctx = NumericContext::new();
        let h = ctx.from_exact(&Domega::one_over_sqrt2());
        assert!((h.re - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-15);
    }
}
