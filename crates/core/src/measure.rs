//! DD-native measurement: marginal probabilities, collapse, and state
//! sampling support.
//!
//! Outcome probabilities come straight out of the diagram: a bottom-up
//! "sum of |amplitude|²" pass over the shared nodes (linear in the diagram
//! size, not the `2ⁿ` dimension) gives the squared norm of every subtree,
//! and a downward mass-propagation pass turns those into per-level marginal
//! probabilities. In the algebraic contexts both passes run in the exact
//! ring — a dyadic probability like ½ is reported *exactly*, not ε-close —
//! while the numeric context computes the same quantities in doubles.
//!
//! Collapse ([`Manager::try_measure_qubit`]) zeroes the discarded branch,
//! rebuilds the diagram above the measured level (re-canonicalizing per
//! scheme through the ordinary node constructor), and renormalizes by
//! `1/√p` of the surviving mass. The exact contexts can only represent that
//! factor when `p` is an even power of `√2` (which covers all dyadic
//! probabilities); anything else surfaces as
//! [`EngineError::UnrepresentableMeasurement`].

use std::collections::BTreeMap;

use crate::edge::{Edge, VecId};
use crate::error::EngineError;
use crate::fxhash::FxHashMap;
use crate::manager::Manager;
use crate::weight::{WeightContext, WeightId, WeightTable};

/// Per-level `(mass of outcome 0, mass of outcome 1)` pairs in the ring.
type LevelMasses<V> = Vec<(V, V)>;

/// Precomputed per-node branch probabilities for repeated O(n)-per-shot
/// sampling of a *fixed* state DD (the measurement-free fast path).
///
/// Built once by [`Manager::try_state_sampler`]; each [`StateSampler::draw`]
/// walks root-to-terminal choosing the `|1⟩` branch with the node's
/// conditional probability, consuming one uniform f64 per level.
#[derive(Debug, Clone)]
pub struct StateSampler {
    /// Per node: (`p1`, `|0⟩` child, `|1⟩` child).
    branch: FxHashMap<VecId, (f64, VecId, VecId)>,
    root: VecId,
    n_qubits: u32,
}

impl StateSampler {
    /// Number of qubits of the sampled register.
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// Draws one basis-state index (qubit 0 = most significant bit) using
    /// `unit`, a source of uniform values in `[0, 1)` — one value consumed
    /// per qubit, so equal streams give equal outcomes.
    pub fn draw(&self, mut unit: impl FnMut() -> f64) -> u64 {
        let mut index = 0u64;
        let mut n = self.root;
        while !n.is_terminal() {
            let (p1, c0, c1) = self.branch[&n];
            let bit = u64::from(unit() < p1);
            index = (index << 1) | bit;
            n = if bit == 1 { c1 } else { c0 };
        }
        index
    }
}

impl<W: WeightContext> Manager<W> {
    /// Squared norm `|w|² = w·w̄` of an interned weight, in the weight ring.
    fn w_norm_sqr(&self, w: WeightId) -> W::Value {
        let v = self.table.get(w);
        self.ctx.mul(v, &self.ctx.conj(v))
    }

    /// Bottom-up memoized squared norm of a subtree (terminal = 1):
    /// `nsq(n) = Σ_b |w_b|²·nsq(child_b)`.
    fn nsq_rec(
        &mut self,
        n: VecId,
        memo: &mut FxHashMap<VecId, W::Value>,
    ) -> Result<W::Value, EngineError> {
        if n.is_terminal() {
            return Ok(self.ctx.one());
        }
        if let Some(v) = memo.get(&n) {
            return Ok(v.clone());
        }
        self.budget_probe()?;
        let node = self.vec_nodes[n.0 as usize];
        let mut acc = self.ctx.zero();
        for child in node.children {
            if child.is_zero() {
                continue;
            }
            let sub = self.nsq_rec(child.n, memo)?;
            let term = self.ctx.mul(&self.w_norm_sqr(child.w), &sub);
            acc = self.ctx.add(&acc, &term);
        }
        memo.insert(n, acc.clone());
        Ok(acc)
    }

    /// The squared norm `⟨ψ|ψ⟩` in the weight ring — exact in the algebraic
    /// contexts, and linear in the diagram size (unlike
    /// [`Manager::norm_sqr`], which expands all `2ⁿ` amplitudes).
    ///
    /// # Errors
    ///
    /// Fails when a budget limit is crossed.
    pub fn try_norm_sqr_exact(&mut self, e: &Edge<VecId>) -> Result<W::Value, EngineError> {
        if e.is_zero() {
            return Ok(self.ctx.zero());
        }
        let mut memo = FxHashMap::default();
        let nsq = self.nsq_rec(e.n, &mut memo)?;
        Ok(self.ctx.mul(&self.w_norm_sqr(e.w), &nsq))
    }

    /// Unnormalized outcome masses per level, in the weight ring: entry
    /// `q` is `(mass of outcome 0, mass of outcome 1)` for qubit `q`,
    /// computed for levels `0..=upto`.
    ///
    /// The state DD is quasi-reduced (every root-to-terminal path visits
    /// every level), so a single downward sweep propagating `|path|²`
    /// masses visits each node once per level.
    fn masses_to_level(
        &mut self,
        e: &Edge<VecId>,
        upto: u32,
    ) -> Result<LevelMasses<W::Value>, EngineError> {
        debug_assert!(upto < self.n_qubits, "qubit {upto} out of range");
        let mut out = Vec::with_capacity(upto as usize + 1);
        if e.is_zero() {
            out.resize(upto as usize + 1, (self.ctx.zero(), self.ctx.zero()));
            return Ok(out);
        }
        let mut nsq_memo = FxHashMap::default();
        // BTreeMap keeps the fold order deterministic, which matters for
        // the numeric context (f64 addition is order-sensitive).
        let mut frontier: BTreeMap<VecId, W::Value> = BTreeMap::new();
        frontier.insert(e.n, self.w_norm_sqr(e.w));
        for level in 0..=upto {
            self.budget_probe()?;
            let mut m0 = self.ctx.zero();
            let mut m1 = self.ctx.zero();
            let mut next: BTreeMap<VecId, W::Value> = BTreeMap::new();
            for (n, mass) in std::mem::take(&mut frontier) {
                let node = self.vec_nodes[n.0 as usize];
                debug_assert_eq!(node.var, level, "state DD is not quasi-reduced");
                for (bit, child) in node.children.into_iter().enumerate() {
                    if child.is_zero() {
                        continue;
                    }
                    let flow = self.ctx.mul(&mass, &self.w_norm_sqr(child.w));
                    let nsq = self.nsq_rec(child.n, &mut nsq_memo)?;
                    let contrib = self.ctx.mul(&flow, &nsq);
                    if bit == 0 {
                        m0 = self.ctx.add(&m0, &contrib);
                    } else {
                        m1 = self.ctx.add(&m1, &contrib);
                    }
                    if level < upto {
                        match next.remove(&child.n) {
                            Some(prev) => {
                                let sum = self.ctx.add(&prev, &flow);
                                next.insert(child.n, sum);
                            }
                            None => {
                                next.insert(child.n, flow);
                            }
                        }
                    }
                }
            }
            out.push((m0, m1));
            frontier = next;
        }
        Ok(out)
    }

    /// Exact unnormalized outcome masses `(|0⟩ mass, |1⟩ mass)` of
    /// measuring `qubit`, in the weight ring. For a unit-norm state these
    /// are the outcome probabilities themselves.
    ///
    /// # Errors
    ///
    /// Fails when a budget limit is crossed.
    ///
    /// # Panics
    ///
    /// Panics if `qubit >= n_qubits`.
    pub fn try_qubit_masses(
        &mut self,
        e: &Edge<VecId>,
        qubit: u32,
    ) -> Result<(W::Value, W::Value), EngineError> {
        assert!(qubit < self.n_qubits, "qubit {qubit} out of range");
        let mut all = self.masses_to_level(e, qubit)?;
        // aq-lint: allow(R1): masses_to_level returns exactly `qubit + 1` entries
        let last = all.pop().expect("target level present");
        Ok(last)
    }

    /// Normalized marginal `(p0, p1)` of measuring `qubit`, as doubles.
    /// Dyadic probabilities from the exact contexts convert to f64 without
    /// rounding, so a GHZ marginal really is `0.5`, bit-for-bit.
    ///
    /// # Errors
    ///
    /// Fails when a budget limit is crossed, or with
    /// [`EngineError::ImpossibleMeasurement`] if the state has no mass.
    ///
    /// # Panics
    ///
    /// Panics if `qubit >= n_qubits`.
    pub fn try_qubit_marginal(
        &mut self,
        e: &Edge<VecId>,
        qubit: u32,
    ) -> Result<(f64, f64), EngineError> {
        let (m0, m1) = self.try_qubit_masses(e, qubit)?;
        let p0 = self.ctx.to_complex(&m0).re;
        let p1 = self.ctx.to_complex(&m1).re;
        let total = p0 + p1;
        if !total.is_finite() || total <= 0.0 {
            return Err(EngineError::ImpossibleMeasurement { qubit });
        }
        Ok((p0 / total, p1 / total))
    }

    /// Like [`Manager::try_qubit_marginal`] but panics on failure.
    ///
    /// # Panics
    ///
    /// Panics when a budget limit is crossed or the state has no mass.
    pub fn qubit_marginal(&mut self, e: &Edge<VecId>, qubit: u32) -> (f64, f64) {
        self.try_qubit_marginal(e, qubit)
            .unwrap_or_else(|err| panic!("{err}"))
    }

    /// Normalized marginal probabilities `(p0, p1)` for **every** qubit in
    /// one downward sweep.
    ///
    /// # Errors
    ///
    /// Fails when a budget limit is crossed, or with
    /// [`EngineError::ImpossibleMeasurement`] (qubit 0) if the state has
    /// no mass.
    pub fn try_marginals(&mut self, e: &Edge<VecId>) -> Result<Vec<(f64, f64)>, EngineError> {
        if self.n_qubits == 0 {
            return Ok(Vec::new());
        }
        let masses = self.masses_to_level(e, self.n_qubits - 1)?;
        let mut out = Vec::with_capacity(masses.len());
        for (qubit, (m0, m1)) in masses.into_iter().enumerate() {
            let p0 = self.ctx.to_complex(&m0).re;
            let p1 = self.ctx.to_complex(&m1).re;
            let total = p0 + p1;
            if !total.is_finite() || total <= 0.0 {
                return Err(EngineError::ImpossibleMeasurement {
                    qubit: qubit as u32,
                });
            }
            out.push((p0 / total, p1 / total));
        }
        Ok(out)
    }

    /// Collapses `qubit` to `outcome`: the discarded branch is zeroed, the
    /// diagram above the measured level is rebuilt (re-canonicalized per
    /// scheme), and the survivor is renormalized by `1/√p` of its mass.
    /// Returns the collapsed unit-norm state and the outcome probability.
    ///
    /// # Errors
    ///
    /// Fails when a budget limit is crossed, with
    /// [`EngineError::ImpossibleMeasurement`] if the requested outcome has
    /// probability zero, or with
    /// [`EngineError::UnrepresentableMeasurement`] if the exact context
    /// cannot represent `1/√p` (p not an even power of `√2`).
    ///
    /// # Panics
    ///
    /// Panics if `qubit >= n_qubits`.
    pub fn try_measure_qubit(
        &mut self,
        e: &Edge<VecId>,
        qubit: u32,
        outcome: bool,
    ) -> Result<(Edge<VecId>, f64), EngineError> {
        assert!(qubit < self.n_qubits, "qubit {qubit} out of range");
        let (m0, m1) = self.try_qubit_masses(e, qubit)?;
        let p0 = self.ctx.to_complex(&m0).re;
        let p1 = self.ctx.to_complex(&m1).re;
        let total = p0 + p1;
        let mass = if outcome { m1 } else { m0 };
        let p = if outcome { p1 } else { p0 };
        if !total.is_finite() || total <= 0.0 || p <= 0.0 || self.ctx.is_zero(&mass) {
            return Err(EngineError::ImpossibleMeasurement { qubit });
        }
        let scale = self
            .ctx
            .sqrt_inv(&mass)
            .ok_or(EngineError::UnrepresentableMeasurement { qubit })?;
        let mut memo = FxHashMap::default();
        let collapsed = self.collapse_rec(e.n, qubit, usize::from(outcome), &mut memo)?;
        if collapsed.is_zero() {
            // mass said otherwise — an ε-interning artifact at most
            return Err(EngineError::ImpossibleMeasurement { qubit });
        }
        let scale_id = self.try_intern(scale)?;
        let w = self.try_w_mul(e.w, collapsed.w)?;
        let w = self.try_w_mul(w, scale_id)?;
        Ok((Edge { w, n: collapsed.n }, p / total))
    }

    /// Like [`Manager::try_measure_qubit`] but panics on failure.
    ///
    /// # Panics
    ///
    /// Panics when a budget limit is crossed, the outcome is impossible,
    /// or the renormalization factor is unrepresentable.
    pub fn measure_qubit(
        &mut self,
        e: &Edge<VecId>,
        qubit: u32,
        outcome: bool,
    ) -> (Edge<VecId>, f64) {
        self.try_measure_qubit(e, qubit, outcome)
            .unwrap_or_else(|err| panic!("{err}"))
    }

    /// Rebuilds the subtree rooted at `n` with the non-`keep` branch of
    /// level `qubit` zeroed out. `n` must lie at a level `≤ qubit` (always
    /// true on a quasi-reduced state DD entered from the root).
    fn collapse_rec(
        &mut self,
        n: VecId,
        qubit: u32,
        keep: usize,
        memo: &mut FxHashMap<VecId, Edge<VecId>>,
    ) -> Result<Edge<VecId>, EngineError> {
        if let Some(hit) = memo.get(&n) {
            return Ok(*hit);
        }
        self.budget_probe()?;
        let node = self.vec_nodes[n.0 as usize];
        let e = if node.var == qubit {
            let mut children = [Edge::ZERO_VEC; 2];
            children[keep] = node.children[keep];
            self.try_make_vec_node(node.var, children)?
        } else {
            let mut children = [Edge::ZERO_VEC; 2];
            for (i, child) in node.children.into_iter().enumerate() {
                if child.is_zero() {
                    continue;
                }
                let sub = self.collapse_rec(child.n, qubit, keep, memo)?;
                let w = self.try_w_mul(child.w, sub.w)?;
                children[i] = if w == WeightId::ZERO {
                    Edge::ZERO_VEC
                } else {
                    Edge { w, n: sub.n }
                };
            }
            self.try_make_vec_node(node.var, children)?
        };
        memo.insert(n, e);
        Ok(e)
    }

    /// The exact probability `|⟨index|ψ⟩|²` of one basis state, in the
    /// weight ring, computed along a single root-to-terminal path.
    ///
    /// High qubits beyond a `u64` index are read as `|0⟩`, mirroring
    /// [`Manager::amplitude`](Self::amplitude).
    pub fn basis_probability(&self, e: &Edge<VecId>, index: u64) -> W::Value {
        if e.is_zero() {
            return self.ctx.zero();
        }
        let mut acc = self.table.get(e.w).clone();
        let mut n = e.n;
        let mut depth = 0;
        while !n.is_terminal() {
            let node = self.vec_nodes[n.0 as usize];
            let shift = self.n_qubits - 1 - depth;
            let bit = if shift >= u64::BITS {
                0
            } else {
                ((index >> shift) & 1) as usize
            };
            let child = node.children[bit];
            if child.is_zero() {
                return self.ctx.zero();
            }
            acc = self.ctx.mul(&acc, self.table.get(child.w));
            n = child.n;
            depth += 1;
        }
        self.ctx.mul(&acc, &self.ctx.conj(&acc))
    }

    /// Builds a [`StateSampler`] over `e`: one pass computing every node's
    /// conditional `|1⟩`-branch probability, after which each draw costs
    /// O(n) with no further manager access.
    ///
    /// # Errors
    ///
    /// Fails when a budget limit is crossed, or with
    /// [`EngineError::ImpossibleMeasurement`] on a zero state.
    ///
    /// # Panics
    ///
    /// Panics if the register is wider than 64 qubits (a draw returns a
    /// `u64` index).
    pub fn try_state_sampler(&mut self, e: &Edge<VecId>) -> Result<StateSampler, EngineError> {
        assert!(self.n_qubits <= 64, "sampler indices are u64");
        if e.is_zero() {
            return Err(EngineError::ImpossibleMeasurement { qubit: 0 });
        }
        let mut nsq_memo = FxHashMap::default();
        self.nsq_rec(e.n, &mut nsq_memo)?;
        let mut branch = FxHashMap::default();
        let mut stack = vec![e.n];
        while let Some(n) = stack.pop() {
            if n.is_terminal() || branch.contains_key(&n) {
                continue;
            }
            self.budget_probe()?;
            let node = self.vec_nodes[n.0 as usize];
            let mut mass = [0.0f64; 2];
            for (bit, child) in node.children.into_iter().enumerate() {
                if child.is_zero() {
                    continue;
                }
                let nsq = self.nsq_rec(child.n, &mut nsq_memo)?;
                let flow = self.ctx.mul(&self.w_norm_sqr(child.w), &nsq);
                mass[bit] = self.ctx.to_complex(&flow).re.max(0.0);
                stack.push(child.n);
            }
            let total = mass[0] + mass[1];
            let p1 = if total > 0.0 { mass[1] / total } else { 0.0 };
            branch.insert(n, (p1, node.children[0].n, node.children[1].n));
        }
        Ok(StateSampler {
            branch,
            root: e.n,
            n_qubits: self.n_qubits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebraic::{GcdContext, QomegaContext};
    use crate::gates::GateMatrix;
    use crate::numeric::NumericContext;

    fn ghz<W: WeightContext>(m: &mut Manager<W>, n: u32) -> Edge<VecId> {
        let mut state = m.basis_state(0);
        let h = m.gate(&GateMatrix::h(), 0, &[]);
        state = m.mat_vec(&h, &state);
        for q in 1..n {
            let cx = m.gate(&GateMatrix::x(), q, &[(0, true)]);
            state = m.mat_vec(&cx, &state);
        }
        state
    }

    #[test]
    fn ghz_marginals_are_exactly_half() {
        let mut m = Manager::new(QomegaContext::new(), 10);
        let state = ghz(&mut m, 10);
        for q in 0..10 {
            let (p0, p1) = m.qubit_marginal(&state, q);
            assert_eq!(p0, 0.5, "qubit {q}: p0 must be exactly 0.5");
            assert_eq!(p1, 0.5, "qubit {q}: p1 must be exactly 0.5");
        }
        let all = m.try_marginals(&state).expect("unbudgeted");
        assert_eq!(all, vec![(0.5, 0.5); 10]);
    }

    #[test]
    fn norm_sqr_exact_is_one_for_unitary_states() {
        let mut m = Manager::new(GcdContext::new(), 6);
        let state = ghz(&mut m, 6);
        let n = m.try_norm_sqr_exact(&state).expect("unbudgeted");
        assert!(n.is_one(), "GHZ norm² must be exactly 1, got {n}");
    }

    #[test]
    fn collapse_produces_the_surviving_basis_state() {
        let mut m = Manager::new(GcdContext::new(), 4);
        let state = ghz(&mut m, 4);
        let (collapsed, p) = m.measure_qubit(&state, 0, true);
        assert_eq!(p, 0.5);
        m.validate()
            .expect("post-collapse diagram must stay canonical");
        // collapsing qubit 0 of GHZ to |1⟩ leaves |1111⟩ exactly
        let amps = m.amplitudes(&collapsed);
        for (i, a) in amps.iter().enumerate() {
            let expect = if i == 15 { 1.0 } else { 0.0 };
            assert_eq!(a.re, expect, "amplitude {i}");
            assert_eq!(a.im, 0.0, "amplitude {i}");
        }
        // follow-up marginals are now deterministic
        for q in 1..4 {
            assert_eq!(m.qubit_marginal(&collapsed, q), (0.0, 1.0));
        }
    }

    #[test]
    fn collapse_matches_across_contexts() {
        let mut mn = Manager::new(NumericContext::with_eps(1e-10), 3);
        let sn = ghz(&mut mn, 3);
        let (cn, pn) = mn.measure_qubit(&sn, 1, false);
        let mut mq = Manager::new(QomegaContext::new(), 3);
        let sq = ghz(&mut mq, 3);
        let (cq, pq) = mq.measure_qubit(&sq, 1, false);
        assert!((pn - pq).abs() < 1e-12);
        let an = mn.amplitudes(&cn);
        let aq = mq.amplitudes(&cq);
        for (x, y) in an.iter().zip(&aq) {
            assert!((x.re - y.re).abs() < 1e-12 && (x.im - y.im).abs() < 1e-12);
        }
    }

    #[test]
    fn impossible_outcome_is_an_error() {
        let mut m = Manager::new(QomegaContext::new(), 2);
        let state = m.basis_state(0); // |00⟩
        let err = m.try_measure_qubit(&state, 0, true).unwrap_err();
        assert_eq!(err, EngineError::ImpossibleMeasurement { qubit: 0 });
    }

    #[test]
    fn unrepresentable_renormalization_is_reported() {
        // T·H|0⟩ then H gives p0 = (2+√2)/4: 1/√p leaves D[ω]/Q[ω]
        let mut m = Manager::new(QomegaContext::new(), 1);
        let mut state = m.basis_state(0);
        let h = m.gate(&GateMatrix::h(), 0, &[]);
        let t = m.gate(&GateMatrix::t(), 0, &[]);
        for g in [&h, &t, &h] {
            state = m.mat_vec(g, &state);
        }
        let err = m.try_measure_qubit(&state, 0, false).unwrap_err();
        assert_eq!(err, EngineError::UnrepresentableMeasurement { qubit: 0 });
        // the numeric context has no such restriction
        let mut mn = Manager::new(NumericContext::new(), 1);
        let mut sn = mn.basis_state(0);
        let hn = mn.gate(&GateMatrix::h(), 0, &[]);
        let tn = mn.gate(&GateMatrix::t(), 0, &[]);
        for g in [&hn, &tn, &hn] {
            sn = mn.mat_vec(g, &sn);
        }
        let (_, p) = mn.measure_qubit(&sn, 0, false);
        assert!((p - (2.0 + std::f64::consts::SQRT_2) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn state_sampler_walks_the_distribution() {
        let mut m = Manager::new(GcdContext::new(), 3);
        let state = ghz(&mut m, 3);
        let sampler = m.try_state_sampler(&state).expect("unbudgeted");
        // a deterministic stream of alternating low/high uniforms must hit
        // both GHZ outcomes and nothing else
        let mut seen = std::collections::HashSet::new();
        for i in 0..16u64 {
            let v = if i % 2 == 0 { 0.1 } else { 0.9 };
            seen.insert(sampler.draw(|| v));
        }
        assert_eq!(
            seen,
            [0u64, 7u64].into_iter().collect(),
            "GHZ must only produce |000⟩ and |111⟩"
        );
    }

    #[test]
    fn basis_probability_is_exact() {
        let mut m = Manager::new(QomegaContext::new(), 10);
        let state = ghz(&mut m, 10);
        let p = m.basis_probability(&state, 0);
        assert_eq!(m.ctx().to_complex(&p).re, 0.5);
        let p = m.basis_probability(&state, (1 << 10) - 1);
        assert_eq!(m.ctx().to_complex(&p).re, 0.5);
        assert!(m.ctx().is_zero(&m.basis_probability(&state, 5)));
    }

    #[test]
    fn budget_is_probed_during_measurement() {
        let mut m = Manager::new(QomegaContext::new(), 8);
        let state = ghz(&mut m, 8);
        m.set_budget(crate::error::RunBudget::unlimited().with_deadline(std::time::Duration::ZERO));
        let err = m
            .try_measure_qubit(&state, 0, false)
            .expect_err("a zero deadline must fire inside the measurement pass");
        assert!(err.is_budget(), "unexpected error {err}");
    }
}
