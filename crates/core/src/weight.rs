//! Edge-weight abstraction: interned weights and the number-system trait.

use std::fmt;

use aq_rings::{Complex64, Domega};

use crate::error::EngineError;

/// Handle to an interned edge weight inside a [`Manager`]'s weight table.
///
/// Weights are deduplicated on interning (exactly for algebraic contexts,
/// within the tolerance ε for the numeric context), so id equality is the
/// weight equality the decision diagram sees — which is precisely where the
/// accuracy-vs-compactness trade-off of the paper lives.
///
/// [`Manager`]: crate::Manager
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WeightId(pub(crate) u32);

impl WeightId {
    /// The interned weight `0` (always id 0).
    pub const ZERO: WeightId = WeightId(0);
    /// The interned weight `1` (always id 1).
    pub const ONE: WeightId = WeightId(1);

    /// Raw index into the weight table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for WeightId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// Storage and deduplication of weight values.
///
/// Implementations decide what “the same weight” means: the algebraic
/// tables use exact structural equality of canonical forms; the numeric
/// table identifies values within the tolerance ε of the paper.
pub trait WeightTable {
    /// The weight value type.
    type Value;

    /// Interns `v`, returning the id of an existing equal (or ε-close)
    /// entry if there is one.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::WeightTableOverflow`] if the table has
    /// exhausted its 32-bit id space.
    fn try_intern(&mut self, v: Self::Value) -> Result<WeightId, EngineError>;

    /// Like [`WeightTable::try_intern`] but panics on overflow.
    ///
    /// # Panics
    ///
    /// Panics if the table has exhausted its 32-bit id space.
    fn intern(&mut self, v: Self::Value) -> WeightId {
        self.try_intern(v).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Looks up a weight by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    fn get(&self, id: WeightId) -> &Self::Value;

    /// Number of distinct weights stored.
    fn len(&self) -> usize;

    /// Returns `true` if only the mandatory `0` and `1` entries exist.
    fn is_empty(&self) -> bool {
        self.len() <= 2
    }
}

/// A number system for QMDD edge weights.
///
/// The decision-diagram engine is generic over this trait; the three
/// implementations ([`NumericContext`], [`QomegaContext`], [`GcdContext`])
/// are the systems compared in the paper's evaluation.
///
/// [`NumericContext`]: crate::NumericContext
/// [`QomegaContext`]: crate::QomegaContext
/// [`GcdContext`]: crate::GcdContext
#[allow(clippy::wrong_self_convention)] // from_* here converts *into* Self::Value, dispatched on the context
pub trait WeightContext: Clone + fmt::Debug {
    /// The weight value type (`Display` renders it exactly — the engine
    /// uses it to report measurement probabilities in exact form).
    type Value: Clone + fmt::Debug + fmt::Display;
    /// The interning table for this value type.
    type Table: WeightTable<Value = Self::Value> + fmt::Debug;

    /// Creates an empty weight table configured for this context
    /// (implementations must intern `0` at id 0 and `1` at id 1).
    fn new_table(&self) -> Self::Table;

    /// The additive identity.
    fn zero(&self) -> Self::Value;
    /// The multiplicative identity.
    fn one(&self) -> Self::Value;
    /// Addition.
    fn add(&self, a: &Self::Value, b: &Self::Value) -> Self::Value;
    /// Multiplication.
    fn mul(&self, a: &Self::Value, b: &Self::Value) -> Self::Value;
    /// Negation.
    fn neg(&self, a: &Self::Value) -> Self::Value;
    /// Complex conjugation.
    fn conj(&self, a: &Self::Value) -> Self::Value;

    /// Zero test (within ε for the numeric context).
    fn is_zero(&self, a: &Self::Value) -> bool;

    /// Normalizes the outgoing edge weights of a node **in place** and
    /// returns the extracted normalization factor, or `None` if all
    /// weights are zero.
    ///
    /// This is where the paper's three schemes differ: leftmost-non-zero
    /// or largest-magnitude division for the numeric context, field
    /// inverses for `Q[ω]` (Algorithm 2), canonical GCD extraction for
    /// `D[ω]` (Algorithm 3).
    fn normalize(&self, ws: &mut [Self::Value]) -> Option<Self::Value>;

    /// Converts an exact `D[ω]` constant (gate-matrix entry) into this
    /// number system. Always possible: `D[ω] ⊂ Q[ω]` and `D[ω] ⊂ C`.
    fn from_exact(&self, d: &Domega) -> Self::Value;

    /// Converts an arbitrary complex constant, or `None` if this number
    /// system cannot represent it (the algebraic contexts reject entries
    /// outside `D[ω]`/`Q[ω]` — such gates must first be compiled to
    /// Clifford+T, as the paper does with Quipper for GSE).
    fn from_approx(&self, c: Complex64) -> Option<Self::Value>;

    /// The reciprocal square root `1/√a` of a **non-negative real** value
    /// (a squared norm produced by `mul(w, conj(w))` sums), or `None` if
    /// this number system cannot represent it exactly.
    ///
    /// This is the measurement-collapse renormalization factor: after
    /// discarding one branch, the surviving state is scaled by `1/√p`.
    /// The numeric context can always do this (modulo `a ≤ 0`); the exact
    /// algebraic contexts only when `a` is an even power of `√2` — which
    /// covers every probability of the form `1/2^m`, i.e. all outcomes of
    /// measuring stabilizer-like branches. Anything else (e.g. the
    /// `(2+√2)/4` arising after a `T·H` pair) has no representable `1/√p`
    /// and must be reported as an unrepresentable measurement.
    fn sqrt_inv(&self, a: &Self::Value) -> Option<Self::Value>;

    /// Evaluates to a complex double (exact up to final rounding for the
    /// algebraic contexts).
    fn to_complex(&self, a: &Self::Value) -> Complex64;

    /// Bit-width of the representation (1 for hardware floats): the
    /// coefficient-growth metric discussed for Fig. 5 of the paper.
    fn value_bits(&self, a: &Self::Value) -> u64;

    // --- persistence hooks (see `crate::snapshot`) ---

    /// Short stable name of the number system, recorded in snapshots so a
    /// load with the wrong context fails with
    /// [`EngineError::SnapshotMismatch`] instead of misinterpreting the
    /// stored values.
    ///
    /// [`EngineError::SnapshotMismatch`]: crate::EngineError::SnapshotMismatch
    fn kind(&self) -> &'static str;

    /// Opaque fingerprint of the context parameters (ε and normalization
    /// scheme for the numeric context; empty for the exact contexts).
    /// Snapshots can only be loaded by a context with an equal fingerprint.
    fn params_fingerprint(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Serializes one weight value into a snapshot byte stream.
    fn write_value(&self, v: &Self::Value, out: &mut crate::snapshot::ByteWriter);

    /// Deserializes one weight value from a snapshot byte stream. The
    /// error string is wrapped into
    /// [`EngineError::SnapshotCorrupt`](crate::EngineError::SnapshotCorrupt)
    /// by the caller.
    fn read_value(&self, r: &mut crate::snapshot::ByteReader<'_>) -> Result<Self::Value, String>;

    /// Returns `true` if a single stored weight value is in the canonical
    /// representation its number system's constructors produce — the
    /// invariant every *interned* weight must satisfy, independent of the
    /// per-node normalization checked by [`WeightContext::is_normalized`].
    ///
    /// The exact contexts override this: with lazily deferred GCD
    /// normalization, it proves that no pending state (an unreduced `√2`
    /// denominator exponent, a non-canonical coefficient representation)
    /// ever escapes the normalization pipeline into the weight table.
    fn is_canonical_value(&self, _v: &Self::Value) -> bool {
        true
    }

    /// Returns `true` if `ws` is already in the canonical form
    /// [`WeightContext::normalize`] produces — the invariant every stored
    /// node's child weights must satisfy.
    ///
    /// The default implementation re-normalizes a copy and requires the
    /// extracted factor to be `1` and every value to be unchanged, which
    /// is exact for the algebraic contexts. The numeric context overrides
    /// this with tolerance-aware checks, because ε-interning means a
    /// stored pivot need not be bitwise `1.0` and re-normalization under
    /// `MaxMagnitude` is not idempotent at ε > 0.
    fn is_normalized(&self, ws: &[Self::Value]) -> bool {
        let mut copy: Vec<Self::Value> = ws.to_vec();
        let Some(eta) = self.normalize(&mut copy) else {
            // all-zero rows never occur on a stored node
            return false;
        };
        let unchanged = |a: &Self::Value, b: &Self::Value| self.is_zero(&self.add(a, &self.neg(b)));
        unchanged(&eta, &self.one()) && ws.iter().zip(&copy).all(|(a, b)| unchanged(a, b))
    }
}
