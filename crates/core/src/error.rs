//! Resource budgets and the structured engine-error taxonomy.
//!
//! The paper's own evaluation shows why these exist: at ε = 0 the numeric
//! representation blows up in node count (Figs. 2–4), and the exact
//! algebraic representation can blow up in coefficient bit-width (Fig. 5,
//! GSE). A sufficiently ambitious run therefore *will* exhaust memory or
//! time. A [`RunBudget`] turns that from a process-killing `panic!` into a
//! structured [`EngineError`] that fallible APIs (`try_*`) surface to the
//! caller together with everything computed so far.

use std::fmt;
use std::time::Duration;

/// Resource limits for a run, enforced by cheap periodic probes in the
/// [`Manager`](crate::Manager) hot paths.
///
/// The default budget is unlimited: probes reduce to a single boolean test
/// and the engine behaves exactly as before. Each limit is independent and
/// optional.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use aq_dd::RunBudget;
///
/// let budget = RunBudget::unlimited()
///     .with_max_nodes(1_000_000)
///     .with_max_weight_bits(4096)
///     .with_deadline(Duration::from_secs(60));
/// assert!(!budget.is_unlimited());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunBudget {
    /// Maximum allocated nodes (live + garbage, both arenas together).
    /// Crossing it aborts the in-flight operation; callers can compact
    /// and retry, or give up with the partial result.
    pub max_nodes: Option<usize>,
    /// Maximum distinct interned weights.
    pub max_distinct_weights: Option<usize>,
    /// Maximum coefficient bit-width of any single interned weight — the
    /// GSE blow-up guard (Fig. 5 of the paper). Hardware floats never
    /// trip this (their width is constant).
    pub max_weight_bits: Option<u64>,
    /// Wall-clock limit, measured from [`Manager::set_budget`] (or manager
    /// creation, whichever was later).
    ///
    /// [`Manager::set_budget`]: crate::Manager::set_budget
    pub deadline: Option<Duration>,
}

impl RunBudget {
    /// A budget with no limits (the default).
    pub fn unlimited() -> Self {
        RunBudget::default()
    }

    /// Returns `true` if no limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_nodes.is_none()
            && self.max_distinct_weights.is_none()
            && self.max_weight_bits.is_none()
            && self.deadline.is_none()
    }

    /// Caps allocated nodes.
    pub fn with_max_nodes(mut self, n: usize) -> Self {
        self.max_nodes = Some(n);
        self
    }

    /// Caps distinct interned weights.
    pub fn with_max_distinct_weights(mut self, n: usize) -> Self {
        self.max_distinct_weights = Some(n);
        self
    }

    /// Caps the coefficient bit-width of any interned weight.
    pub fn with_max_weight_bits(mut self, bits: u64) -> Self {
        self.max_weight_bits = Some(bits);
        self
    }

    /// Sets a wall-clock deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }
}

/// Structured failure of a decision-diagram engine operation.
///
/// Returned by the `try_*` APIs. The infallible APIs wrap these and panic,
/// preserving the pre-budget behaviour for callers that opt out of
/// fail-soft operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The node budget of the active [`RunBudget`] was exceeded.
    NodeBudgetExceeded {
        /// Nodes allocated when the probe fired.
        allocated: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The distinct-weight budget was exceeded.
    WeightBudgetExceeded {
        /// Distinct weights interned when the probe fired.
        distinct: usize,
        /// The configured limit.
        limit: usize,
    },
    /// A weight wider than the coefficient bit-width budget was produced.
    WeightBitsExceeded {
        /// Bit-width of the offending weight.
        bits: u64,
        /// The configured limit.
        limit: u64,
    },
    /// The wall-clock deadline passed.
    DeadlineExceeded {
        /// Time elapsed since the budget epoch.
        elapsed: Duration,
        /// The configured deadline.
        limit: Duration,
    },
    /// A node arena outgrew its 32-bit id space (a hard engine limit,
    /// independent of any budget).
    NodeArenaOverflow,
    /// The weight table outgrew its 32-bit id space.
    WeightTableOverflow,
    /// A gate entry is not representable in the manager's weight system.
    UnrepresentableGate {
        /// Display name of the offending gate.
        gate: String,
    },
    /// A measurement collapse needs a renormalization factor `1/√p` that
    /// the weight system cannot represent exactly (exact contexts only;
    /// `p` was not an even power of `√2`).
    UnrepresentableMeasurement {
        /// The measured qubit.
        qubit: u32,
    },
    /// A measurement collapse targeted an outcome of probability zero
    /// (or the state itself was the zero vector).
    ImpossibleMeasurement {
        /// The measured qubit.
        qubit: u32,
    },
    /// A snapshot file could not be read or written.
    SnapshotIo {
        /// The file path involved.
        path: String,
        /// The rendered I/O error.
        detail: String,
    },
    /// A snapshot is structurally damaged: truncated data, a bad magic
    /// number, a checksum mismatch, or a payload that fails to decode.
    SnapshotCorrupt {
        /// Which part of the snapshot failed (`header`, `meta`,
        /// `weights`, …).
        section: String,
        /// What exactly went wrong.
        detail: String,
    },
    /// A snapshot was written by an incompatible format version.
    SnapshotVersionSkew {
        /// The version recorded in the file.
        found: u32,
        /// The version this build reads and writes.
        supported: u32,
    },
    /// A snapshot does not belong to the load target: wrong weight
    /// context, wrong context parameters, or wrong circuit.
    SnapshotMismatch {
        /// What the loader required.
        expected: String,
        /// What the snapshot recorded.
        found: String,
    },
    /// A structural invariant of the decision diagram does not hold
    /// (reported by [`Manager::validate`](crate::Manager::validate) —
    /// either the snapshot encodes a non-canonical diagram or the engine
    /// has a consistency bug).
    InvariantViolation {
        /// Which invariant failed, and where.
        detail: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NodeBudgetExceeded { allocated, limit } => write!(
                f,
                "node budget exceeded: {allocated} nodes allocated (limit {limit})"
            ),
            EngineError::WeightBudgetExceeded { distinct, limit } => write!(
                f,
                "weight budget exceeded: {distinct} distinct weights (limit {limit})"
            ),
            EngineError::WeightBitsExceeded { bits, limit } => write!(
                f,
                "weight bit-width budget exceeded: {bits} bits (limit {limit})"
            ),
            EngineError::DeadlineExceeded { elapsed, limit } => write!(
                f,
                "deadline exceeded: {:.3}s elapsed (limit {:.3}s)",
                elapsed.as_secs_f64(),
                limit.as_secs_f64()
            ),
            EngineError::NodeArenaOverflow => write!(f, "node arena overflow (u32 id space)"),
            EngineError::WeightTableOverflow => write!(f, "weight table overflow (u32 id space)"),
            EngineError::UnrepresentableGate { gate } => write!(
                f,
                "gate `{gate}` not representable in this weight system; \
                 compile to Clifford+T first"
            ),
            EngineError::UnrepresentableMeasurement { qubit } => write!(
                f,
                "measurement on qubit {qubit}: renormalization factor 1/\u{221a}p \
                 is not representable in this weight system"
            ),
            EngineError::ImpossibleMeasurement { qubit } => write!(
                f,
                "measurement on qubit {qubit}: the requested outcome has probability zero"
            ),
            EngineError::SnapshotIo { path, detail } => {
                write!(f, "snapshot I/O error on `{path}`: {detail}")
            }
            EngineError::SnapshotCorrupt { section, detail } => {
                write!(f, "snapshot corrupt in {section}: {detail}")
            }
            EngineError::SnapshotVersionSkew { found, supported } => write!(
                f,
                "snapshot version skew: file is version {found}, this build supports {supported}"
            ),
            EngineError::SnapshotMismatch { expected, found } => {
                write!(f, "snapshot mismatch: expected {expected}, found {found}")
            }
            EngineError::InvariantViolation { detail } => {
                write!(f, "structural invariant violated: {detail}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl EngineError {
    /// Returns `true` for errors caused by a configured [`RunBudget`]
    /// (as opposed to hard engine limits or unrepresentable inputs).
    pub fn is_budget(&self) -> bool {
        matches!(
            self,
            EngineError::NodeBudgetExceeded { .. }
                | EngineError::WeightBudgetExceeded { .. }
                | EngineError::WeightBitsExceeded { .. }
                | EngineError::DeadlineExceeded { .. }
        )
    }

    /// Returns `true` for errors raised by the snapshot layer (I/O,
    /// corruption, version skew, or a context/circuit mismatch).
    pub fn is_snapshot(&self) -> bool {
        matches!(
            self,
            EngineError::SnapshotIo { .. }
                | EngineError::SnapshotCorrupt { .. }
                | EngineError::SnapshotVersionSkew { .. }
                | EngineError::SnapshotMismatch { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_by_default() {
        assert!(RunBudget::default().is_unlimited());
        assert!(!RunBudget::unlimited().with_max_nodes(5).is_unlimited());
    }

    #[test]
    fn display_is_informative() {
        let e = EngineError::NodeBudgetExceeded {
            allocated: 10,
            limit: 5,
        };
        assert!(e.to_string().contains("node budget exceeded"));
        assert!(e.is_budget());
        let g = EngineError::UnrepresentableGate { gate: "Rz".into() };
        assert!(g.to_string().contains("not representable"));
        assert!(!g.is_budget());
        assert!(!EngineError::NodeArenaOverflow.is_budget());
    }

    #[test]
    fn snapshot_errors_are_classified() {
        let c = EngineError::SnapshotCorrupt {
            section: "weights".into(),
            detail: "checksum mismatch".into(),
        };
        assert!(c.is_snapshot());
        assert!(!c.is_budget());
        assert!(c.to_string().contains("weights"));
        let v = EngineError::SnapshotVersionSkew {
            found: 9,
            supported: 1,
        };
        assert!(v.is_snapshot());
        assert!(v.to_string().contains("version 9"));
        let i = EngineError::InvariantViolation {
            detail: "vec node 3: child weight not canonical".into(),
        };
        assert!(!i.is_snapshot());
        assert!(i.to_string().contains("invariant"));
    }
}
