//! Fixed-size, direct-mapped compute caches.
//!
//! The compute caches memoise recursive DD operations. Unbounded maps keep
//! every result alive until a wholesale clear, which costs memory, hashing
//! time and latency spikes; a direct-mapped cache with power-of-two slots
//! simply overwrites on collision (lossy memoisation is always sound — a
//! miss only costs recomputation), never rehashes, and keeps the working
//! set hot. The same design is used by the major BDD/DD packages.

use std::hash::Hash;

use crate::fxhash::fx_hash;

/// Hit/miss/eviction counters for one compute cache.
///
/// Invariant: `lookups == hits + misses`; `insertions == evictions +
/// updates + cleared + (currently occupied slots)` — entries dropped by a
/// wholesale [`clear`](LossyCache::clear) are counted in `cleared`, so
/// every insert is accounted for across the cache's lifetime.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Total `get` calls.
    pub lookups: u64,
    /// Lookups that found the key.
    pub hits: u64,
    /// Lookups that missed (empty slot, or slot held a different key).
    pub misses: u64,
    /// Total `insert` calls.
    pub insertions: u64,
    /// Insertions that overwrote a *different* live key.
    pub evictions: u64,
    /// Insertions that overwrote the *same* key (never happens from the
    /// engine — an insert follows a miss — but counted so the accounting
    /// identity above is exact).
    pub updates: u64,
    /// Live entries dropped by wholesale clears (including the implicit
    /// clear during [`Manager::compact`](crate::Manager::compact)).
    pub cleared: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; `0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Merges counters (used to carry statistics across compactions and
    /// to aggregate per-job statistics into session/service totals).
    pub fn absorb(&mut self, other: &CacheStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
        self.updates += other.updates;
        self.cleared += other.cleared;
    }
}

/// A direct-mapped lossy cache: each key hashes to exactly one slot, and a
/// colliding insert overwrites the previous occupant.
#[derive(Debug, Clone)]
pub(crate) struct LossyCache<K, V> {
    /// Slot array, allocated lazily on first use (compaction creates fresh
    /// managers frequently; empty caches must be free).
    slots: Vec<Option<(K, V)>>,
    /// Power-of-two slot count.
    capacity: usize,
    /// Currently occupied slots (so clears can account for dropped
    /// entries without scanning).
    len: usize,
    stats: CacheStats,
}

impl<K: Copy + Eq + Hash, V: Copy> LossyCache<K, V> {
    /// Creates a cache with `capacity` slots (rounded up to a power of two,
    /// minimum 2).
    pub fn new(capacity: usize) -> Self {
        LossyCache {
            slots: Vec::new(),
            capacity: capacity.next_power_of_two().max(2),
            len: 0,
            stats: CacheStats::default(),
        }
    }

    #[inline]
    fn slot_of(&self, key: &K) -> usize {
        (fx_hash(key) as usize) & (self.capacity - 1)
    }

    /// Looks up `key`, counting the hit or miss.
    #[inline]
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.stats.lookups += 1;
        let hit = if self.slots.is_empty() {
            None
        } else {
            match &self.slots[self.slot_of(key)] {
                Some((k, v)) if k == key => Some(*v),
                _ => None,
            }
        };
        if hit.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        hit
    }

    /// Inserts `key -> value`, overwriting (and counting as an eviction)
    /// any different key occupying the slot.
    #[inline]
    pub fn insert(&mut self, key: K, value: V) {
        if self.slots.is_empty() {
            self.slots = vec![None; self.capacity];
        }
        let i = self.slot_of(&key);
        self.stats.insertions += 1;
        match &self.slots[i] {
            Some((k, _)) if *k != key => self.stats.evictions += 1,
            None => self.len += 1,
            _ => self.stats.updates += 1, // same-key overwrite
        }
        self.slots[i] = Some((key, value));
    }

    /// Drops all entries, counting them in [`CacheStats::cleared`]
    /// (lookup/insert counters describe the lifetime of the cache, not its
    /// current contents, and are kept).
    pub fn clear(&mut self) {
        self.stats.cleared += self.len as u64;
        self.len = 0;
        self.slots.clear();
        self.slots.shrink_to_fit();
    }

    /// Empties the cache and zeroes its counters, keeping the slot
    /// allocation. Session resets use this so the next job starts with
    /// pristine per-job statistics without paying a fresh allocation;
    /// contents never affect results (lossy memoisation is sound), so
    /// dropping entries here cannot change what the next job computes.
    pub fn reset(&mut self) {
        self.slots.fill(None);
        self.len = 0;
        self.stats = CacheStats::default();
    }

    /// Currently occupied slots.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Adds another cache's counters (statistics survive compaction).
    pub fn absorb_stats(&mut self, other: &CacheStats) {
        self.stats.absorb(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The documented accounting identity, checked after every scenario.
    fn assert_invariants<K: Copy + Eq + Hash, V: Copy>(c: &LossyCache<K, V>) {
        let s = c.stats();
        assert_eq!(s.lookups, s.hits + s.misses, "lookup identity: {s:?}");
        assert_eq!(
            s.insertions,
            s.evictions + s.updates + s.cleared + c.len() as u64,
            "insert identity: {s:?} with {} occupied slots",
            c.len()
        );
    }

    #[test]
    fn get_insert_and_counters() {
        let mut c: LossyCache<u64, u64> = LossyCache::new(8);
        assert_eq!(c.get(&1), None);
        c.insert(1, 10);
        assert_eq!(c.get(&1), Some(10));
        let s = c.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_invariants(&c);
    }

    #[test]
    fn eviction_on_slot_collision() {
        // capacity 2: plenty of keys share slots
        let mut c: LossyCache<u64, u64> = LossyCache::new(2);
        for k in 0..100 {
            c.insert(k, k);
        }
        let s = c.stats();
        assert_eq!(s.insertions, 100);
        assert!(s.evictions >= 90, "almost every insert evicts: {s:?}");
        assert_invariants(&c);
        // the cache stays bounded: at most 2 keys can hit
        let mut live = 0;
        for k in 0..100 {
            if c.get(&k).is_some() {
                live += 1;
            }
        }
        assert!(live <= 2);
        assert_eq!(c.len(), live, "len must track the occupied slots");
    }

    #[test]
    fn reinserting_same_key_is_not_an_eviction() {
        let mut c: LossyCache<u64, u64> = LossyCache::new(8);
        c.insert(7, 1);
        c.insert(7, 2);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get(&7), Some(2));
        assert_eq!(c.len(), 1);
        assert_invariants(&c);
    }

    #[test]
    fn clear_counts_dropped_entries_and_keeps_counters() {
        let mut c: LossyCache<u64, u64> = LossyCache::new(8);
        c.insert(1, 1);
        c.insert(2, 2);
        let _ = c.get(&1);
        c.clear();
        assert_eq!(c.get(&1), None);
        let s = c.stats();
        assert_eq!(s.insertions, 2);
        assert_eq!(s.cleared, 2, "live entries dropped by clear are counted");
        assert_eq!(s.lookups, 2);
        assert_eq!(c.len(), 0);
        assert_invariants(&c);
        // refilling after a clear keeps the identity
        c.insert(3, 3);
        assert_invariants(&c);
        c.clear();
        assert_eq!(c.stats().cleared, 3);
        assert_invariants(&c);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let c: LossyCache<u64, u64> = LossyCache::new(100);
        assert_eq!(c.capacity, 128);
        let c: LossyCache<u64, u64> = LossyCache::new(0);
        assert_eq!(c.capacity, 2);
    }
}
