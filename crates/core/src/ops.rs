//! Decision-diagram arithmetic: addition, matrix–vector and matrix–matrix
//! multiplication, Kronecker products.
//!
//! All operations are recursive over the shared node structure and memoised
//! in the manager's compute caches; their complexity is polynomial in the
//! *diagram* sizes, not the `2ⁿ` dimensions — the reason decision diagrams
//! work at all (Sec. II-B of the paper).
//!
//! Every operation comes in a fallible `try_*` form that surfaces budget
//! exhaustion as a structured [`EngineError`] (the recursion unwinds
//! cleanly: partial sub-results stay interned but no invariant is broken)
//! plus the historical infallible form that panics.

use crate::edge::{Edge, MatId, VecId};
use crate::error::EngineError;
use crate::manager::Manager;
use crate::weight::{WeightContext, WeightId};

impl<W: WeightContext> Manager<W> {
    /// Sum of two vector DDs.
    ///
    /// # Errors
    ///
    /// Fails when a budget limit is crossed.
    pub fn try_vec_add(
        &mut self,
        a: &Edge<VecId>,
        b: &Edge<VecId>,
    ) -> Result<Edge<VecId>, EngineError> {
        self.add_vec_rec(*a, *b)
    }

    /// Like [`Manager::try_vec_add`] but panics on budget exhaustion.
    ///
    /// # Panics
    ///
    /// Panics when a budget limit is crossed.
    pub fn vec_add(&mut self, a: &Edge<VecId>, b: &Edge<VecId>) -> Edge<VecId> {
        self.try_vec_add(a, b).unwrap_or_else(|e| panic!("{e}"))
    }

    #[allow(clippy::needless_range_loop)] // index mirrors the child layout
    pub(crate) fn add_vec_rec(
        &mut self,
        a: Edge<VecId>,
        b: Edge<VecId>,
    ) -> Result<Edge<VecId>, EngineError> {
        if a.is_zero() {
            return Ok(b);
        }
        if b.is_zero() {
            return Ok(a);
        }
        if a.n.is_terminal() {
            debug_assert!(b.n.is_terminal(), "rank mismatch in vector addition");
            let w = self.try_w_add(a.w, b.w)?;
            return Ok(if w == WeightId::ZERO {
                Edge::ZERO_VEC
            } else {
                Edge {
                    w,
                    n: VecId::TERMINAL,
                }
            });
        }
        // addition is commutative: canonical argument order doubles hits
        let (a, b) = if (b.n, b.w) < (a.n, a.w) {
            (b, a)
        } else {
            (a, b)
        };
        if let Some(hit) = self.add_vec_cache.get(&(a, b)) {
            return Ok(hit);
        }
        let na = self.vec_nodes[a.n.0 as usize];
        let nb = self.vec_nodes[b.n.0 as usize];
        debug_assert_eq!(na.var, nb.var, "level mismatch in vector addition");
        let mut children = [Edge::ZERO_VEC; 2];
        for i in 0..2 {
            let ca = self.scale_vec(na.children[i], a.w)?;
            let cb = self.scale_vec(nb.children[i], b.w)?;
            children[i] = self.add_vec_rec(ca, cb)?;
        }
        let e = self.try_make_vec_node(na.var, children)?;
        self.add_vec_cache.insert((a, b), e);
        Ok(e)
    }

    /// Sum of two matrix DDs.
    ///
    /// # Errors
    ///
    /// Fails when a budget limit is crossed.
    pub fn try_mat_add(
        &mut self,
        a: &Edge<MatId>,
        b: &Edge<MatId>,
    ) -> Result<Edge<MatId>, EngineError> {
        self.add_mat_rec(*a, *b)
    }

    /// Like [`Manager::try_mat_add`] but panics on budget exhaustion.
    ///
    /// # Panics
    ///
    /// Panics when a budget limit is crossed.
    pub fn mat_add(&mut self, a: &Edge<MatId>, b: &Edge<MatId>) -> Edge<MatId> {
        self.try_mat_add(a, b).unwrap_or_else(|e| panic!("{e}"))
    }

    #[allow(clippy::needless_range_loop)] // index mirrors the child layout
    pub(crate) fn add_mat_rec(
        &mut self,
        a: Edge<MatId>,
        b: Edge<MatId>,
    ) -> Result<Edge<MatId>, EngineError> {
        if a.is_zero() {
            return Ok(b);
        }
        if b.is_zero() {
            return Ok(a);
        }
        if a.n.is_terminal() {
            debug_assert!(b.n.is_terminal(), "rank mismatch in matrix addition");
            let w = self.try_w_add(a.w, b.w)?;
            return Ok(if w == WeightId::ZERO {
                Edge::ZERO_MAT
            } else {
                Edge {
                    w,
                    n: MatId::TERMINAL,
                }
            });
        }
        let (a, b) = if (b.n, b.w) < (a.n, a.w) {
            (b, a)
        } else {
            (a, b)
        };
        if let Some(hit) = self.add_mat_cache.get(&(a, b)) {
            return Ok(hit);
        }
        let na = self.mat_nodes[a.n.0 as usize];
        let nb = self.mat_nodes[b.n.0 as usize];
        debug_assert_eq!(na.var, nb.var, "level mismatch in matrix addition");
        let mut children = [Edge::ZERO_MAT; 4];
        for i in 0..4 {
            let ca = self.scale_mat(na.children[i], a.w)?;
            let cb = self.scale_mat(nb.children[i], b.w)?;
            children[i] = self.add_mat_rec(ca, cb)?;
        }
        let e = self.try_make_mat_node(na.var, children)?;
        self.add_mat_cache.insert((a, b), e);
        Ok(e)
    }

    /// Matrix–vector product: applies an operator DD to a state DD —
    /// one quantum gate application in DD-based simulation.
    ///
    /// # Errors
    ///
    /// Fails when a budget limit is crossed.
    pub fn try_mat_vec(
        &mut self,
        m: &Edge<MatId>,
        v: &Edge<VecId>,
    ) -> Result<Edge<VecId>, EngineError> {
        if m.is_zero() || v.is_zero() {
            return Ok(Edge::ZERO_VEC);
        }
        let sub = self.mv_rec(m.n, v.n)?;
        let w0 = self.try_w_mul(m.w, v.w)?;
        let w = self.try_w_mul(w0, sub.w)?;
        Ok(if w == WeightId::ZERO {
            Edge::ZERO_VEC
        } else {
            Edge { w, n: sub.n }
        })
    }

    /// Like [`Manager::try_mat_vec`] but panics on budget exhaustion.
    ///
    /// # Panics
    ///
    /// Panics when a budget limit is crossed.
    pub fn mat_vec(&mut self, m: &Edge<MatId>, v: &Edge<VecId>) -> Edge<VecId> {
        self.try_mat_vec(m, v).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Product of two *normalized* nodes (weight-1 edges) — cacheable by
    /// node ids alone thanks to normalization.
    #[allow(clippy::needless_range_loop)] // (row, col) indexing mirrors the block structure
    fn mv_rec(&mut self, m: MatId, v: VecId) -> Result<Edge<VecId>, EngineError> {
        if m.is_terminal() {
            debug_assert!(v.is_terminal(), "rank mismatch in mat-vec product");
            return Ok(Edge {
                w: WeightId::ONE,
                n: VecId::TERMINAL,
            });
        }
        if let Some(hit) = self.mv_cache.get(&(m, v)) {
            return Ok(hit);
        }
        let mn = self.mat_nodes[m.0 as usize];
        let vn = self.vec_nodes[v.0 as usize];
        debug_assert_eq!(mn.var, vn.var, "level mismatch in mat-vec product");
        let mut children = [Edge::ZERO_VEC; 2];
        for r in 0..2 {
            let mut acc = Edge::ZERO_VEC;
            for c in 0..2 {
                let me = mn.children[2 * r + c];
                let ve = vn.children[c];
                if me.is_zero() || ve.is_zero() {
                    continue;
                }
                let sub = self.mv_rec(me.n, ve.n)?;
                let w0 = self.try_w_mul(me.w, ve.w)?;
                let w = self.try_w_mul(w0, sub.w)?;
                let term = if w == WeightId::ZERO {
                    Edge::ZERO_VEC
                } else {
                    Edge { w, n: sub.n }
                };
                acc = self.add_vec_rec(acc, term)?;
            }
            children[r] = acc;
        }
        let e = self.try_make_vec_node(mn.var, children)?;
        self.mv_cache.insert((m, v), e);
        Ok(e)
    }

    /// Matrix–matrix product `a · b` (operator composition: `a` applied
    /// after `b` in circuit order).
    ///
    /// # Errors
    ///
    /// Fails when a budget limit is crossed.
    pub fn try_mat_mul(
        &mut self,
        a: &Edge<MatId>,
        b: &Edge<MatId>,
    ) -> Result<Edge<MatId>, EngineError> {
        if a.is_zero() || b.is_zero() {
            return Ok(Edge::ZERO_MAT);
        }
        let sub = self.mm_rec(a.n, b.n)?;
        let w0 = self.try_w_mul(a.w, b.w)?;
        let w = self.try_w_mul(w0, sub.w)?;
        Ok(if w == WeightId::ZERO {
            Edge::ZERO_MAT
        } else {
            Edge { w, n: sub.n }
        })
    }

    /// Like [`Manager::try_mat_mul`] but panics on budget exhaustion.
    ///
    /// # Panics
    ///
    /// Panics when a budget limit is crossed.
    pub fn mat_mul(&mut self, a: &Edge<MatId>, b: &Edge<MatId>) -> Edge<MatId> {
        self.try_mat_mul(a, b).unwrap_or_else(|e| panic!("{e}"))
    }

    fn mm_rec(&mut self, a: MatId, b: MatId) -> Result<Edge<MatId>, EngineError> {
        if a.is_terminal() {
            debug_assert!(b.is_terminal(), "rank mismatch in mat-mat product");
            return Ok(Edge {
                w: WeightId::ONE,
                n: MatId::TERMINAL,
            });
        }
        if let Some(hit) = self.mm_cache.get(&(a, b)) {
            return Ok(hit);
        }
        let na = self.mat_nodes[a.0 as usize];
        let nb = self.mat_nodes[b.0 as usize];
        debug_assert_eq!(na.var, nb.var, "level mismatch in mat-mat product");
        let mut children = [Edge::ZERO_MAT; 4];
        for r in 0..2 {
            for c in 0..2 {
                let mut acc = Edge::ZERO_MAT;
                for k in 0..2 {
                    let ea = na.children[2 * r + k];
                    let eb = nb.children[2 * k + c];
                    if ea.is_zero() || eb.is_zero() {
                        continue;
                    }
                    let sub = self.mm_rec(ea.n, eb.n)?;
                    let w0 = self.try_w_mul(ea.w, eb.w)?;
                    let w = self.try_w_mul(w0, sub.w)?;
                    let term = if w == WeightId::ZERO {
                        Edge::ZERO_MAT
                    } else {
                        Edge { w, n: sub.n }
                    };
                    acc = self.add_mat_rec(acc, term)?;
                }
                children[2 * r + c] = acc;
            }
        }
        let e = self.try_make_mat_node(na.var, children)?;
        self.mm_cache.insert((a, b), e);
        Ok(e)
    }

    fn scale_vec(&mut self, e: Edge<VecId>, w: WeightId) -> Result<Edge<VecId>, EngineError> {
        if e.is_zero() {
            return Ok(Edge::ZERO_VEC);
        }
        let nw = self.try_w_mul(e.w, w)?;
        Ok(if nw == WeightId::ZERO {
            Edge::ZERO_VEC
        } else {
            Edge { w: nw, n: e.n }
        })
    }

    fn scale_mat(&mut self, e: Edge<MatId>, w: WeightId) -> Result<Edge<MatId>, EngineError> {
        if e.is_zero() {
            return Ok(Edge::ZERO_MAT);
        }
        let nw = self.try_w_mul(e.w, w)?;
        Ok(if nw == WeightId::ZERO {
            Edge::ZERO_MAT
        } else {
            Edge { w: nw, n: e.n }
        })
    }

    /// Scales a vector DD by an interned weight.
    ///
    /// # Errors
    ///
    /// Fails when a budget limit is crossed.
    pub fn try_vec_scale(
        &mut self,
        e: &Edge<VecId>,
        w: WeightId,
    ) -> Result<Edge<VecId>, EngineError> {
        self.scale_vec(*e, w)
    }

    /// Like [`Manager::try_vec_scale`] but panics on budget exhaustion.
    ///
    /// # Panics
    ///
    /// Panics when a budget limit is crossed.
    pub fn vec_scale(&mut self, e: &Edge<VecId>, w: WeightId) -> Edge<VecId> {
        self.try_vec_scale(e, w).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Scales a matrix DD by an interned weight.
    ///
    /// # Errors
    ///
    /// Fails when a budget limit is crossed.
    pub fn try_mat_scale(
        &mut self,
        e: &Edge<MatId>,
        w: WeightId,
    ) -> Result<Edge<MatId>, EngineError> {
        self.scale_mat(*e, w)
    }

    /// Like [`Manager::try_mat_scale`] but panics on budget exhaustion.
    ///
    /// # Panics
    ///
    /// Panics when a budget limit is crossed.
    pub fn mat_scale(&mut self, e: &Edge<MatId>, w: WeightId) -> Edge<MatId> {
        self.try_mat_scale(e, w).unwrap_or_else(|e| panic!("{e}"))
    }
}
