//! Structural invariant checker for a [`Manager`].
//!
//! The paper's whole argument rests on canonicity of the shared
//! representation: equal matrices/vectors *must* map to the same node, or
//! equivalence checking and hash-consing silently break. This module
//! checks the invariants that canonicity rests on, mechanically:
//!
//! 1. **Weight-table integrity** — the mandatory `0`/`1` constants are in
//!    place and re-interning every stored value in order reproduces its own
//!    id, which structurally rules out duplicate interned weights (two
//!    ε-close values cannot coexist: the second would have merged into the
//!    first).
//! 2. **Unique-table ↔ arena consistency** — entry counts match, every
//!    slot points into the arena with the node's true hash, and every node
//!    is findable under its own id.
//! 3. **Node canonicity** — child weights are in the canonical normalized
//!    form of the active scheme ([`WeightContext::is_normalized`]), zero
//!    weights only appear on the canonical zero edge, no node is all-zero,
//!    and levels are quasi-reduced (children sit exactly one variable
//!    deeper; terminals only below the last variable).
//!
//! [`Manager::validate`] runs on every snapshot load; under the
//! `validate-invariants` feature it also runs after every compaction and
//! sweep stage. A violation is reported as
//! [`EngineError::InvariantViolation`] — if it ever fires outside a
//! hand-corrupted test, it is an engine bug, not a user error.

use crate::edge::{Edge, MatId, VecId};
use crate::error::EngineError;
use crate::fxhash::fx_hash;
use crate::manager::Manager;
use crate::unique::UniqueTable;
use crate::weight::{WeightContext, WeightId, WeightTable};

fn violation(detail: String) -> EngineError {
    EngineError::InvariantViolation { detail }
}

impl<W: WeightContext> Manager<W> {
    /// Checks every structural invariant of this manager (see the module
    /// docs for the list). Runs in `O(nodes + weights)` with small
    /// constants; heavy enough for a debug feature, cheap enough to run on
    /// every snapshot load.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvariantViolation`] naming the first violated
    /// invariant.
    pub fn validate(&self) -> Result<(), EngineError> {
        self.validate_weight_table()?;
        self.validate_vec_arena()?;
        self.validate_mat_arena()?;
        Ok(())
    }

    fn validate_weight_table(&self) -> Result<(), EngineError> {
        let n = self.table.len();
        if n < 2 {
            return Err(violation(format!(
                "weight table has {n} entries; the 0/1 constants are mandatory"
            )));
        }
        if !self.ctx.is_zero(self.table.get(WeightId::ZERO)) {
            return Err(violation("weight id 0 does not hold zero".into()));
        }
        let one = self.table.get(WeightId::ONE);
        let diff = self.ctx.add(one, &self.ctx.neg(&self.ctx.one()));
        if !self.ctx.is_zero(&diff) {
            return Err(violation("weight id 1 does not hold one".into()));
        }
        // Re-intern every value in its original order into a fresh table:
        // each must land on its own index, otherwise two stored weights are
        // duplicates (equal, or ε-close for the numeric context). Each value
        // must also be in its number system's canonical representation —
        // with lazy GCD normalization, this proves no pending state (an
        // unreduced √2 exponent, non-canonical coefficients) escaped the
        // normalization pipeline into the weight table.
        let mut fresh = self.ctx.new_table();
        for i in 0..n {
            let v = self.table.get(WeightId(i as u32));
            if !self.ctx.is_canonical_value(v) {
                return Err(violation(format!(
                    "weight {i} is not in canonical reduced form: {v:?}"
                )));
            }
            let id = fresh
                .try_intern(v.clone())
                .map_err(|e| violation(format!("weight {i} cannot be re-interned: {e}")))?;
            if id.index() != i {
                return Err(violation(format!(
                    "weight {i} re-interns to id {} — duplicate interned weights",
                    id.index()
                )));
            }
        }
        Ok(())
    }

    fn validate_vec_arena(&self) -> Result<(), EngineError> {
        let nodes = &self.vec_nodes;
        validate_unique_table(&self.vec_unique, nodes.len(), "vec")?;
        for (i, node) in nodes.iter().enumerate() {
            let at = |d: String| violation(format!("vec node {i}: {d}"));
            if node.var >= self.n_qubits {
                return Err(at(format!(
                    "variable {} out of range (n_qubits {})",
                    node.var, self.n_qubits
                )));
            }
            let mut vals = Vec::with_capacity(2);
            for (c, child) in node.children.iter().enumerate() {
                self.check_vec_edge(child, node.var, false)
                    .map_err(|d| at(format!("child {c}: {d}")))?;
                vals.push(self.table.get(child.w).clone());
            }
            if node.children.iter().all(Edge::is_zero) {
                return Err(at("all children zero — the node should not exist".into()));
            }
            if !self.ctx.is_normalized(&vals) {
                return Err(at(format!(
                    "child weights not in canonical normalized form: {vals:?}"
                )));
            }
            let hash = fx_hash(node);
            let found = self.vec_unique.find(hash, |id| {
                (id as usize) < nodes.len() && nodes[id as usize] == *node
            });
            if found != Some(i as u32) {
                return Err(at(format!(
                    "unique-table lookup resolves to {found:?} instead of the node's own id"
                )));
            }
        }
        Ok(())
    }

    fn validate_mat_arena(&self) -> Result<(), EngineError> {
        let nodes = &self.mat_nodes;
        validate_unique_table(&self.mat_unique, nodes.len(), "mat")?;
        for (i, node) in nodes.iter().enumerate() {
            let at = |d: String| violation(format!("mat node {i}: {d}"));
            if node.var >= self.n_qubits {
                return Err(at(format!(
                    "variable {} out of range (n_qubits {})",
                    node.var, self.n_qubits
                )));
            }
            let mut vals = Vec::with_capacity(4);
            for (c, child) in node.children.iter().enumerate() {
                self.check_mat_edge(child, node.var, false)
                    .map_err(|d| at(format!("child {c}: {d}")))?;
                vals.push(self.table.get(child.w).clone());
            }
            if node.children.iter().all(Edge::is_zero) {
                return Err(at("all children zero — the node should not exist".into()));
            }
            if !self.ctx.is_normalized(&vals) {
                return Err(at(format!(
                    "child weights not in canonical normalized form: {vals:?}"
                )));
            }
            let hash = fx_hash(node);
            let found = self.mat_unique.find(hash, |id| {
                (id as usize) < nodes.len() && nodes[id as usize] == *node
            });
            if found != Some(i as u32) {
                return Err(at(format!(
                    "unique-table lookup resolves to {found:?} instead of the node's own id"
                )));
            }
        }
        Ok(())
    }

    /// Checks one vector edge: weight id in range, zero weights only on
    /// the canonical zero edge, quasi-reduced level structure. `parent_var`
    /// is the level of the node the edge leaves from; root edges pass
    /// `is_root = true` and must point at level 0.
    fn check_vec_edge(
        &self,
        e: &Edge<VecId>,
        parent_var: u32,
        is_root: bool,
    ) -> Result<(), String> {
        if e.w.index() >= self.table.len() {
            return Err(format!("weight id {} out of range", e.w.index()));
        }
        if e.w == WeightId::ZERO {
            if !e.n.is_terminal() {
                return Err("zero weight on a non-terminal edge (not the canonical zero)".into());
            }
            return Ok(());
        }
        if self.ctx.is_zero(self.table.get(e.w)) {
            return Err(format!(
                "nonzero weight id {} holds an ε-zero value",
                e.w.index()
            ));
        }
        let expected_var = if is_root { 0 } else { parent_var + 1 };
        if e.n.is_terminal() {
            if expected_var != self.n_qubits {
                return Err(format!(
                    "terminal child above the last level (expected variable {expected_var})"
                ));
            }
        } else {
            let idx = e.n.0 as usize;
            if idx >= self.vec_nodes.len() {
                return Err(format!("node id {idx} out of range"));
            }
            let var = self.vec_nodes[idx].var;
            if var != expected_var {
                return Err(format!(
                    "level skip: child at variable {var}, expected {expected_var}"
                ));
            }
        }
        Ok(())
    }

    /// The matrix analogue of [`Manager::check_vec_edge`].
    fn check_mat_edge(
        &self,
        e: &Edge<MatId>,
        parent_var: u32,
        is_root: bool,
    ) -> Result<(), String> {
        if e.w.index() >= self.table.len() {
            return Err(format!("weight id {} out of range", e.w.index()));
        }
        if e.w == WeightId::ZERO {
            if !e.n.is_terminal() {
                return Err("zero weight on a non-terminal edge (not the canonical zero)".into());
            }
            return Ok(());
        }
        if self.ctx.is_zero(self.table.get(e.w)) {
            return Err(format!(
                "nonzero weight id {} holds an ε-zero value",
                e.w.index()
            ));
        }
        let expected_var = if is_root { 0 } else { parent_var + 1 };
        if e.n.is_terminal() {
            if expected_var != self.n_qubits {
                return Err(format!(
                    "terminal child above the last level (expected variable {expected_var})"
                ));
            }
        } else {
            let idx = e.n.0 as usize;
            if idx >= self.mat_nodes.len() {
                return Err(format!("node id {idx} out of range"));
            }
            let var = self.mat_nodes[idx].var;
            if var != expected_var {
                return Err(format!(
                    "level skip: child at variable {var}, expected {expected_var}"
                ));
            }
        }
        Ok(())
    }

    /// Checks a vector root edge against this manager (used for the roots
    /// stored in a snapshot). A root is either the canonical zero edge, a
    /// bare scalar (terminal target), or an edge into level 0.
    pub(crate) fn validate_vec_root(&self, e: &Edge<VecId>) -> Result<(), EngineError> {
        if e.n.is_terminal() {
            // scalar or zero root: only the weight id must be in range
            if e.w.index() >= self.table.len() {
                return Err(violation(format!(
                    "root weight id {} out of range",
                    e.w.index()
                )));
            }
            return Ok(());
        }
        self.check_vec_edge(e, 0, true).map_err(violation)
    }

    /// The matrix analogue of [`Manager::validate_vec_root`].
    pub(crate) fn validate_mat_root(&self, e: &Edge<MatId>) -> Result<(), EngineError> {
        if e.n.is_terminal() {
            if e.w.index() >= self.table.len() {
                return Err(violation(format!(
                    "root weight id {} out of range",
                    e.w.index()
                )));
            }
            return Ok(());
        }
        self.check_mat_edge(e, 0, true).map_err(violation)
    }
}

fn validate_unique_table(
    unique: &UniqueTable,
    arena_len: usize,
    kind: &str,
) -> Result<(), EngineError> {
    if unique.len() != arena_len {
        return Err(violation(format!(
            "{kind} unique table has {} entries but the arena holds {arena_len} nodes",
            unique.len()
        )));
    }
    for (slot, &(_, id)) in unique.snapshot_slots().iter().enumerate() {
        if id != u32::MAX && id as usize >= arena_len {
            return Err(violation(format!(
                "{kind} unique table slot {slot} points at node {id}, past the arena"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::GateMatrix;
    use crate::numeric::NumericContext;
    use crate::{GcdContext, QomegaContext};

    fn busy_manager() -> Manager<NumericContext> {
        let mut m = Manager::new(NumericContext::with_eps(1e-10), 3);
        let s = m.basis_state(0b010);
        let h = m.gate(&GateMatrix::h(), 0, &[]);
        let t = m.gate(&GateMatrix::t(), 1, &[(0, true)]);
        let s = m.mat_vec(&h, &s);
        let _ = m.mat_vec(&t, &s);
        m
    }

    #[test]
    fn healthy_managers_validate() {
        busy_manager()
            .validate()
            .expect("numeric manager is canonical");
        let mut m = Manager::new(QomegaContext::new(), 2);
        let z = m.basis_state(0);
        let h = m.gate(&GateMatrix::h(), 0, &[]);
        let _ = m.mat_vec(&h, &z);
        m.validate().expect("algebraic manager is canonical");
    }

    #[test]
    fn lazily_normalized_gcd_weights_intern_fully_reduced() {
        // a workload whose GCD normalizations all take the lazy path; the
        // validator's is_canonical_value sweep proves no pending √2
        // exponent or non-canonical coefficient form reached the table
        let mut m = Manager::new(GcdContext::new(), 3);
        let mut s = m.basis_state(0b101);
        for q in 0..3 {
            let h = m.gate(&GateMatrix::h(), q, &[]);
            s = m.mat_vec(&h, &s);
            let t = m.gate(&GateMatrix::t(), q, &[((q + 1) % 3, true)]);
            s = m.mat_vec(&t, &s);
        }
        assert!(m.distinct_weights() > 2, "workload must intern weights");
        m.validate().expect("lazy GCD manager is canonical");
    }

    #[test]
    fn denormalized_edge_is_caught() {
        let mut m = busy_manager();
        // scale one child weight of a live node without re-normalizing:
        // exactly the corruption normalization exists to prevent
        let victim = m
            .vec_nodes
            .iter()
            .position(|n| !n.children[0].is_zero() && !n.children[1].is_zero())
            .expect("a two-child node exists");
        let scaled = {
            let w = m.vec_nodes[victim].children[1].w;
            let v = *m.table.get(w);
            let half = m.ctx.mul(&v, &aq_rings::Complex64::new(0.5, 0.0));
            m.intern(half)
        };
        m.vec_nodes[victim].children[1].w = scaled;
        let err = m.validate().expect_err("denormalized edge must be caught");
        assert!(
            matches!(err, EngineError::InvariantViolation { .. }),
            "{err}"
        );
    }

    #[test]
    fn duplicate_weight_is_caught() {
        let mut m = busy_manager();
        // force a duplicate by pushing a value ε-equal to an existing one
        // past the dedup (ids must be unique; re-interning catches it)
        let v = *m.table.get(WeightId::ONE);
        let dup = aq_rings::Complex64::new(v.re + 1e-13, v.im);
        m.table.push_duplicate_for_tests(dup);
        let err = m.validate().expect_err("duplicate weight must be caught");
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn unique_table_desync_is_caught() {
        let mut m = busy_manager();
        m.vec_nodes.pop();
        let err = m.validate().expect_err("arena/unique desync");
        assert!(err.to_string().contains("unique table"), "{err}");
    }
}
