//! The QMDD manager: arenas, unique tables, interning, construction.

use std::time::Instant;

use crate::cache::{CacheStats, LossyCache};
use crate::edge::{Edge, MatId, MatNode, VecId, VecNode};
use crate::error::{EngineError, RunBudget};
use crate::fxhash::{fx_hash, FxHashMap};
use crate::unique::UniqueTable;
use crate::weight::{WeightContext, WeightId, WeightTable};
use crate::wops::{normalize_ids_trivial, WeightOpCache, OP_ADD, OP_MUL};

/// Default slot count for each compute cache (`2^16` direct-mapped slots).
const DEFAULT_CACHE_CAPACITY: usize = 1 << 16;

/// A point-in-time snapshot of the engine's internal counters.
///
/// Obtained from [`Manager::statistics`]. Cache counters are lifetime
/// totals: they survive [`Manager::clear_caches`] and [`Manager::compact`],
/// so differences between snapshots measure the work in between.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStatistics {
    /// Vector-addition compute cache counters.
    pub add_vec: CacheStats,
    /// Matrix-addition compute cache counters.
    pub add_mat: CacheStats,
    /// Matrix–vector compute cache counters.
    pub mv: CacheStats,
    /// Matrix–matrix compute cache counters.
    pub mm: CacheStats,
    /// Weight-handle operation cache counters (interned `mul`/`add` pairs).
    pub wop: CacheStats,
    /// Weight-handle normalization cache counters (whole-node rows).
    pub wnorm: CacheStats,
    /// Vector nodes currently allocated (live + garbage).
    pub vec_nodes: usize,
    /// Matrix nodes currently allocated (live + garbage).
    pub mat_nodes: usize,
    /// Entries in the vector unique table.
    pub vec_unique_len: usize,
    /// Slot count of the vector unique table.
    pub vec_unique_capacity: usize,
    /// Entries in the matrix unique table.
    pub mat_unique_len: usize,
    /// Slot count of the matrix unique table.
    pub mat_unique_capacity: usize,
    /// Distinct interned weights.
    pub distinct_weights: usize,
    /// Number of [`Manager::compact`] runs over this manager's lifetime.
    pub compactions: u64,
}

impl EngineStatistics {
    /// Aggregate hit rate over all four compute caches, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups =
            self.add_vec.lookups + self.add_mat.lookups + self.mv.lookups + self.mm.lookups;
        let hits = self.add_vec.hits + self.add_mat.hits + self.mv.hits + self.mm.hits;
        if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        }
    }

    /// Aggregate hit rate over the weight-handle caches (pair operations
    /// and node normalization), in `[0, 1]`. These hits are ring/complex
    /// operations that were skipped entirely — the lever that closes the
    /// algebraic/numeric throughput gap.
    pub fn weight_cache_hit_rate(&self) -> f64 {
        let lookups = self.wop.lookups + self.wnorm.lookups;
        let hits = self.wop.hits + self.wnorm.hits;
        if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        }
    }

    /// Adds another snapshot field-wise. Callers aggregating per-job
    /// statistics into a session or service total use this; counters
    /// (including the size/capacity gauges) are summed, matching the
    /// carry-across-compaction semantics of the cache counters.
    pub fn absorb(&mut self, other: &EngineStatistics) {
        for (a, b) in [
            (&mut self.add_vec, &other.add_vec),
            (&mut self.add_mat, &other.add_mat),
            (&mut self.mv, &other.mv),
            (&mut self.mm, &other.mm),
            (&mut self.wop, &other.wop),
            (&mut self.wnorm, &other.wnorm),
        ] {
            a.absorb(b);
        }
        self.vec_nodes += other.vec_nodes;
        self.mat_nodes += other.mat_nodes;
        self.vec_unique_len += other.vec_unique_len;
        self.vec_unique_capacity += other.vec_unique_capacity;
        self.mat_unique_len += other.mat_unique_len;
        self.mat_unique_capacity += other.mat_unique_capacity;
        self.distinct_weights += other.distinct_weights;
        self.compactions += other.compactions;
    }

    /// Load factor of the vector unique table, in `[0, 1)`.
    pub fn vec_unique_load(&self) -> f64 {
        self.vec_unique_len as f64 / self.vec_unique_capacity.max(1) as f64
    }

    /// Load factor of the matrix unique table, in `[0, 1)`.
    pub fn mat_unique_load(&self) -> f64 {
        self.mat_unique_len as f64 / self.mat_unique_capacity.max(1) as f64
    }
}

/// A QMDD manager for a fixed number of qubits over one weight system.
///
/// Owns the node arenas, the unique tables (hash-consing: structurally
/// equal nodes are shared), the interned weight table and the compute
/// caches. All decision diagrams live inside a manager and are referenced
/// by [`Edge`]s.
///
/// Because every node is normalized on construction ([Sec. II-B] of the
/// paper), QMDDs are **canonical**: two edges are equal iff they represent
/// the same matrix/vector — equivalence checking is `O(1)` root comparison.
///
/// # Fail-soft operation
///
/// A [`RunBudget`] installed with [`Manager::set_budget`] caps allocated
/// nodes, distinct weights, coefficient bit-width and wall-clock time.
/// With a budget active, use the fallible `try_*` entry points
/// ([`Manager::try_mat_vec`](Self::try_mat_vec) and friends): they return a
/// structured [`EngineError`] instead of panicking, leaving the manager in
/// a consistent state (all previously built DDs remain valid). The
/// infallible APIs are thin wrappers that panic, preserving the historical
/// behaviour.
///
/// # Examples
///
/// ```
/// use aq_dd::{GateMatrix, Manager, NumericContext};
///
/// let mut m = Manager::new(NumericContext::new(), 2);
/// let state = m.basis_state(0b00);
/// let h0 = m.gate(&GateMatrix::h(), 0, &[]);
/// let cx = m.gate(&GateMatrix::x(), 1, &[(0, true)]);
/// let bell = {
///     let s = m.mat_vec(&h0, &state);
///     m.mat_vec(&cx, &s)
/// };
/// let amps = m.amplitudes(&bell);
/// assert!((amps[0].re - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
/// assert!((amps[3].re - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
/// assert!(amps[1].abs() < 1e-12 && amps[2].abs() < 1e-12);
/// ```
#[derive(Debug)]
pub struct Manager<W: WeightContext> {
    pub(crate) ctx: W,
    pub(crate) n_qubits: u32,
    pub(crate) table: W::Table,
    pub(crate) vec_nodes: Vec<VecNode>,
    pub(crate) mat_nodes: Vec<MatNode>,
    pub(crate) vec_unique: UniqueTable,
    pub(crate) mat_unique: UniqueTable,
    pub(crate) add_vec_cache: LossyCache<(Edge<VecId>, Edge<VecId>), Edge<VecId>>,
    pub(crate) add_mat_cache: LossyCache<(Edge<MatId>, Edge<MatId>), Edge<MatId>>,
    pub(crate) mv_cache: LossyCache<(MatId, VecId), Edge<VecId>>,
    pub(crate) mm_cache: LossyCache<(MatId, MatId), Edge<MatId>>,
    /// Handle-level caches for weight pair ops and node normalization.
    pub(crate) wops: WeightOpCache,
    pub(crate) cache_capacity: usize,
    pub(crate) compactions: u64,
    /// Active resource budget (unlimited by default). `budget_active`
    /// caches `!budget.is_unlimited()` so the hot-path probe is one
    /// branch when no budget is set.
    budget: RunBudget,
    budget_active: bool,
    /// Epoch for the wall-clock deadline.
    budget_epoch: Instant,
    /// Probe counter: the deadline (which needs an `Instant::now` syscall)
    /// is only checked every [`DEADLINE_PROBE_PERIOD`]th probe.
    probe_tick: u32,
}

/// How many budget probes elapse between wall-clock checks (the other
/// limits are plain integer comparisons and are checked on every probe).
const DEADLINE_PROBE_PERIOD: u32 = 64;

/// Remapped root edges returned by [`Manager::compact`]: the vector roots
/// and matrix roots, in input order.
pub type CompactedRoots = (Vec<Edge<VecId>>, Vec<Edge<MatId>>);

impl<W: WeightContext> Manager<W> {
    /// Creates an empty manager for `n_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is zero.
    pub fn new(ctx: W, n_qubits: u32) -> Self {
        Manager::with_cache_capacity(ctx, n_qubits, DEFAULT_CACHE_CAPACITY)
    }

    /// Creates a manager whose four compute caches each have
    /// `cache_capacity` direct-mapped slots (rounded up to a power of two).
    ///
    /// Smaller caches trade recomputation for memory; results are identical
    /// either way because the caches are lossy memoisation, not state.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is zero.
    pub fn with_cache_capacity(ctx: W, n_qubits: u32, cache_capacity: usize) -> Self {
        assert!(n_qubits > 0, "need at least one qubit");
        let table = ctx.new_table();
        Manager {
            ctx,
            n_qubits,
            table,
            vec_nodes: Vec::new(),
            mat_nodes: Vec::new(),
            vec_unique: UniqueTable::new(),
            mat_unique: UniqueTable::new(),
            add_vec_cache: LossyCache::new(cache_capacity),
            add_mat_cache: LossyCache::new(cache_capacity),
            mv_cache: LossyCache::new(cache_capacity),
            mm_cache: LossyCache::new(cache_capacity),
            wops: WeightOpCache::new(cache_capacity),
            cache_capacity,
            compactions: 0,
            budget: RunBudget::default(),
            budget_active: false,
            budget_epoch: Instant::now(),
            probe_tick: 0,
        }
    }

    /// Installs a resource budget and resets its wall-clock epoch.
    ///
    /// Subsequent `try_*` operations fail with a structured
    /// [`EngineError`] when a limit is crossed; the infallible wrappers
    /// panic instead. Install [`RunBudget::unlimited`] to remove limits.
    pub fn set_budget(&mut self, budget: RunBudget) {
        self.budget_active = !budget.is_unlimited();
        self.budget = budget;
        self.budget_epoch = Instant::now();
        self.probe_tick = 0;
    }

    /// The active resource budget.
    pub fn budget(&self) -> RunBudget {
        self.budget
    }

    /// One cheap budget probe: integer comparisons on every call, a
    /// wall-clock read every [`DEADLINE_PROBE_PERIOD`]th call. Free (one
    /// predictable branch) when no budget is installed.
    #[inline]
    pub(crate) fn budget_probe(&mut self) -> Result<(), EngineError> {
        if !self.budget_active {
            return Ok(());
        }
        self.budget_probe_cold()
    }

    #[cold]
    fn budget_probe_cold(&mut self) -> Result<(), EngineError> {
        if let Some(limit) = self.budget.max_nodes {
            let allocated = self.vec_nodes.len() + self.mat_nodes.len();
            if allocated > limit {
                return Err(EngineError::NodeBudgetExceeded { allocated, limit });
            }
        }
        if let Some(limit) = self.budget.max_distinct_weights {
            let distinct = self.table.len();
            if distinct > limit {
                return Err(EngineError::WeightBudgetExceeded { distinct, limit });
            }
        }
        if let Some(limit) = self.budget.deadline {
            // the first probe after `set_budget` checks immediately, so
            // already-expired deadlines fail fast in tests and harnesses
            if self.probe_tick.is_multiple_of(DEADLINE_PROBE_PERIOD) {
                let elapsed = self.budget_epoch.elapsed();
                if elapsed > limit {
                    return Err(EngineError::DeadlineExceeded { elapsed, limit });
                }
            }
            self.probe_tick = self.probe_tick.wrapping_add(1);
        }
        Ok(())
    }

    /// A snapshot of the engine's counters: per-cache hits/misses/evictions,
    /// unique-table load, weight-table size and compaction count.
    pub fn statistics(&self) -> EngineStatistics {
        EngineStatistics {
            add_vec: self.add_vec_cache.stats(),
            add_mat: self.add_mat_cache.stats(),
            mv: self.mv_cache.stats(),
            mm: self.mm_cache.stats(),
            wop: self.wops.pair_stats(),
            wnorm: self.wops.norm_stats(),
            vec_nodes: self.vec_nodes.len(),
            mat_nodes: self.mat_nodes.len(),
            vec_unique_len: self.vec_unique.len(),
            vec_unique_capacity: self.vec_unique.capacity(),
            mat_unique_len: self.mat_unique.len(),
            mat_unique_capacity: self.mat_unique.capacity(),
            distinct_weights: self.table.len(),
            compactions: self.compactions,
        }
    }

    /// Resets the manager to the pristine state of `Manager::new(ctx,
    /// n_qubits)` while keeping its grown allocations: node arenas,
    /// unique-table slot arrays and compute-cache slots survive with their
    /// capacity intact but no contents. A long-lived worker session calls
    /// this between jobs so the next job skips the allocation and
    /// unique-table growth-rehash cost of a cold manager.
    ///
    /// The weight table is replaced wholesale (`ctx.new_table()`): numeric
    /// ε-interning is path-dependent on table contents, so carrying
    /// interned weights across jobs would make results depend on job
    /// order. After a reset, every result this manager produces is
    /// bit-identical to a cold manager's — only capacity-style statistics
    /// (`*_unique_capacity`) can differ.
    ///
    /// All counters restart at zero and the budget reverts to unlimited,
    /// so per-job [`Manager::statistics`] snapshots stay pure; callers
    /// wanting session-lifetime totals should take a snapshot before the
    /// reset and fold it with [`EngineStatistics::absorb`].
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is zero.
    pub fn reset_session(&mut self, ctx: W, n_qubits: u32) {
        assert!(n_qubits > 0, "need at least one qubit");
        self.table = ctx.new_table();
        self.ctx = ctx;
        self.n_qubits = n_qubits;
        self.vec_nodes.clear();
        self.mat_nodes.clear();
        self.vec_unique.reset_in_place();
        self.mat_unique.reset_in_place();
        self.add_vec_cache.reset();
        self.add_mat_cache.reset();
        self.mv_cache.reset();
        self.mm_cache.reset();
        self.wops.reset();
        self.compactions = 0;
        self.budget = RunBudget::default();
        self.budget_active = false;
        self.budget_epoch = Instant::now();
        self.probe_tick = 0;
    }

    /// Like [`Manager::reset_session`], but first runs the full structural
    /// invariant checker ([`Manager::validate`]) over the *retained* state
    /// from the previous job. A session reusing a warm manager after a
    /// budget abort (or any other suspect exit) calls this so a
    /// partially-applied gate, a dangling weight id or a de-normalized node
    /// cannot leak into the next job: if the old state fails validation the
    /// manager is left untouched and the caller must rebuild cold.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvariantViolation`] from the pre-reset validation;
    /// on error no reset has happened.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is zero.
    pub fn validated_reset_session(&mut self, ctx: W, n_qubits: u32) -> Result<(), EngineError> {
        self.validate()?;
        self.reset_session(ctx, n_qubits);
        Ok(())
    }

    /// Memory retained across a session reset, in arena/table slots: node
    /// arena capacities plus unique-table slot counts. Sessions compare
    /// this against a retention budget to decide between resetting in
    /// place (keep the warm allocations) and dropping the manager (give
    /// the memory back after an unusually large job).
    pub fn retained_capacity(&self) -> usize {
        self.vec_nodes.capacity()
            + self.mat_nodes.capacity()
            + self.vec_unique.capacity()
            + self.mat_unique.capacity()
    }

    /// The number of qubits.
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// The weight context.
    pub fn ctx(&self) -> &W {
        &self.ctx
    }

    /// Number of distinct weights currently interned.
    pub fn distinct_weights(&self) -> usize {
        self.table.len()
    }

    /// Looks up an interned weight value.
    pub fn weight(&self, id: WeightId) -> &W::Value {
        self.table.get(id)
    }

    /// Interns a weight value, collapsing ε-zeros to the canonical zero id.
    ///
    /// # Errors
    ///
    /// Fails on weight-table overflow, or when the value's coefficient
    /// bit-width exceeds the budget's `max_weight_bits`.
    pub fn try_intern(&mut self, v: W::Value) -> Result<WeightId, EngineError> {
        if self.ctx.is_zero(&v) {
            return Ok(WeightId::ZERO);
        }
        if let Some(limit) = self.budget.max_weight_bits {
            let bits = self.ctx.value_bits(&v);
            if bits > limit {
                return Err(EngineError::WeightBitsExceeded { bits, limit });
            }
        }
        self.table.try_intern(v)
    }

    /// Like [`Manager::try_intern`] but panics on failure.
    ///
    /// # Panics
    ///
    /// Panics on weight-table overflow or a crossed bit-width budget.
    pub fn intern(&mut self, v: W::Value) -> WeightId {
        self.try_intern(v).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Interned product of two weights.
    pub(crate) fn try_w_mul(&mut self, a: WeightId, b: WeightId) -> Result<WeightId, EngineError> {
        if a == WeightId::ZERO || b == WeightId::ZERO {
            return Ok(WeightId::ZERO);
        }
        if a == WeightId::ONE {
            return Ok(b);
        }
        if b == WeightId::ONE {
            return Ok(a);
        }
        if let Some(r) = self.wops.get_pair(OP_MUL, a, b) {
            return Ok(r);
        }
        let v = self.ctx.mul(self.table.get(a), self.table.get(b));
        let r = self.try_intern(v)?;
        self.wops.put_pair(OP_MUL, a, b, r);
        Ok(r)
    }

    /// Like [`Manager::try_w_mul`] but panics on budget exhaustion.
    pub(crate) fn w_mul(&mut self, a: WeightId, b: WeightId) -> WeightId {
        self.try_w_mul(a, b).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Interned sum of two weights.
    pub(crate) fn try_w_add(&mut self, a: WeightId, b: WeightId) -> Result<WeightId, EngineError> {
        if a == WeightId::ZERO {
            return Ok(b);
        }
        if b == WeightId::ZERO {
            return Ok(a);
        }
        if let Some(r) = self.wops.get_pair(OP_ADD, a, b) {
            return Ok(r);
        }
        let v = self.ctx.add(self.table.get(a), self.table.get(b));
        let r = self.try_intern(v)?;
        self.wops.put_pair(OP_ADD, a, b, r);
        Ok(r)
    }

    /// Normalizes a 2-weight row entirely at the handle level: trivial rows
    /// (all non-zero entries sharing one id) resolve without touching the
    /// weight table, everything else goes through the normalization cache
    /// with the value-level [`WeightContext::normalize`] as the miss path.
    ///
    /// Returns `(normalized ids, η)`; η is [`WeightId::ZERO`] exactly for
    /// the all-zero row.
    fn try_normalize_weights2(
        &mut self,
        key: [WeightId; 2],
    ) -> Result<([WeightId; 2], WeightId), EngineError> {
        if let Some(hit) = normalize_ids_trivial(&key) {
            return Ok(hit);
        }
        if let Some(hit) = self.wops.get_norm2(&key) {
            return Ok(hit);
        }
        let mut vals = [
            self.table.get(key[0]).clone(),
            self.table.get(key[1]).clone(),
        ];
        let Some(eta) = self.ctx.normalize(&mut vals) else {
            return Ok(([WeightId::ZERO; 2], WeightId::ZERO));
        };
        let [v0, v1] = vals;
        let ws = [self.try_intern(v0)?, self.try_intern(v1)?];
        let eta = self.try_intern(eta)?;
        self.wops.put_norm2(key, (ws, eta));
        Ok((ws, eta))
    }

    /// 4-weight (matrix-row) analogue of
    /// [`Manager::try_normalize_weights2`].
    fn try_normalize_weights4(
        &mut self,
        key: [WeightId; 4],
    ) -> Result<([WeightId; 4], WeightId), EngineError> {
        if let Some(hit) = normalize_ids_trivial(&key) {
            return Ok(hit);
        }
        if let Some(hit) = self.wops.get_norm4(&key) {
            return Ok(hit);
        }
        let mut vals = [
            self.table.get(key[0]).clone(),
            self.table.get(key[1]).clone(),
            self.table.get(key[2]).clone(),
            self.table.get(key[3]).clone(),
        ];
        let Some(eta) = self.ctx.normalize(&mut vals) else {
            return Ok(([WeightId::ZERO; 4], WeightId::ZERO));
        };
        let [v0, v1, v2, v3] = vals;
        let ws = [
            self.try_intern(v0)?,
            self.try_intern(v1)?,
            self.try_intern(v2)?,
            self.try_intern(v3)?,
        ];
        let eta = self.try_intern(eta)?;
        self.wops.put_norm4(key, (ws, eta));
        Ok((ws, eta))
    }

    /// Creates (or finds) a normalized vector node and returns the edge to
    /// it carrying the extracted normalization factor.
    pub(crate) fn try_make_vec_node(
        &mut self,
        var: u32,
        children: [Edge<VecId>; 2],
    ) -> Result<Edge<VecId>, EngineError> {
        self.budget_probe()?;
        let (ws, eta) = self.try_normalize_weights2([children[0].w, children[1].w])?;
        if eta == WeightId::ZERO {
            return Ok(Edge::ZERO_VEC);
        }
        let e0 = Self::vec_edge(ws[0], children[0].n);
        let e1 = Self::vec_edge(ws[1], children[1].n);
        let node = VecNode {
            var,
            children: [e0, e1],
        };
        // the node hash is computed exactly once here; table growth reuses it
        let hash = fx_hash(&node);
        let nodes = &self.vec_nodes;
        let id = match self.vec_unique.find(hash, |i| nodes[i as usize] == node) {
            Some(id) => VecId(id),
            None => {
                let id = u32::try_from(self.vec_nodes.len())
                    .map_err(|_| EngineError::NodeArenaOverflow)?;
                self.vec_nodes.push(node);
                self.vec_unique.insert(hash, id);
                VecId(id)
            }
        };
        Ok(Edge { w: eta, n: id })
    }

    pub(crate) fn make_vec_node(&mut self, var: u32, children: [Edge<VecId>; 2]) -> Edge<VecId> {
        self.try_make_vec_node(var, children)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    #[inline]
    fn vec_edge(w: WeightId, n: VecId) -> Edge<VecId> {
        if w == WeightId::ZERO {
            Edge::ZERO_VEC
        } else {
            Edge { w, n }
        }
    }

    /// Creates (or finds) a normalized matrix node.
    pub(crate) fn try_make_mat_node(
        &mut self,
        var: u32,
        children: [Edge<MatId>; 4],
    ) -> Result<Edge<MatId>, EngineError> {
        self.budget_probe()?;
        let (ws, eta) = self.try_normalize_weights4([
            children[0].w,
            children[1].w,
            children[2].w,
            children[3].w,
        ])?;
        if eta == WeightId::ZERO {
            return Ok(Edge::ZERO_MAT);
        }
        let mut edges = [Edge::ZERO_MAT; 4];
        for (i, &w) in ws.iter().enumerate() {
            if w != WeightId::ZERO {
                edges[i] = Edge {
                    w,
                    n: children[i].n,
                };
            }
        }
        let node = MatNode {
            var,
            children: edges,
        };
        let hash = fx_hash(&node);
        let nodes = &self.mat_nodes;
        let id = match self.mat_unique.find(hash, |i| nodes[i as usize] == node) {
            Some(id) => MatId(id),
            None => {
                let id = u32::try_from(self.mat_nodes.len())
                    .map_err(|_| EngineError::NodeArenaOverflow)?;
                self.mat_nodes.push(node);
                self.mat_unique.insert(hash, id);
                MatId(id)
            }
        };
        Ok(Edge { w: eta, n: id })
    }

    pub(crate) fn make_mat_node(&mut self, var: u32, children: [Edge<MatId>; 4]) -> Edge<MatId> {
        self.try_make_mat_node(var, children)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Extracts bit `n_qubits − 1 − var` of `index`, treating bit positions
    /// at and above 64 as zero — registers wider than 64 qubits address
    /// only the low 2⁶⁴ computational basis states, but must not overflow
    /// the shift (a debug panic / masked wrap in release builds).
    #[inline]
    fn index_bit(&self, index: u64, var: u32) -> u64 {
        let shift = self.n_qubits - 1 - var;
        if shift >= u64::BITS {
            0
        } else {
            (index >> shift) & 1
        }
    }

    /// The computational basis state `|index⟩` (qubit 0 is the most
    /// significant bit, matching the variable order).
    ///
    /// For registers wider than 64 qubits, the high qubits (which a `u64`
    /// index cannot address) are `|0⟩`.
    ///
    /// # Errors
    ///
    /// Fails when a budget limit is crossed.
    pub fn try_basis_state(&mut self, index: u64) -> Result<Edge<VecId>, EngineError> {
        assert!(
            self.n_qubits >= 64 || index < 1u64 << self.n_qubits,
            "basis state index out of range"
        );
        let mut e = Edge {
            w: WeightId::ONE,
            n: VecId::TERMINAL,
        };
        for var in (0..self.n_qubits).rev() {
            let bit = self.index_bit(index, var);
            let children = if bit == 0 {
                [e, Edge::ZERO_VEC]
            } else {
                [Edge::ZERO_VEC, e]
            };
            e = self.try_make_vec_node(var, children)?;
        }
        Ok(e)
    }

    /// Like [`Manager::try_basis_state`] but panics on budget exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^n_qubits` (for `n_qubits < 64`), or when a
    /// budget limit is crossed.
    pub fn basis_state(&mut self, index: u64) -> Edge<VecId> {
        self.try_basis_state(index)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// The matrix DD with a single `1` entry at `(row, col)` — the outer
    /// product `|row⟩⟨col|`. Building-block for sparse operators such as
    /// the quantum-walk factors.
    ///
    /// For registers wider than 64 qubits, the high qubits take the
    /// `(0, 0)` block (a `u64` cannot address them).
    ///
    /// # Errors
    ///
    /// Fails when a budget limit is crossed.
    pub fn try_unit_matrix(&mut self, row: u64, col: u64) -> Result<Edge<MatId>, EngineError> {
        let n = self.n_qubits;
        assert!(
            n >= 64 || (row < 1u64 << n && col < 1u64 << n),
            "unit matrix index out of range"
        );
        let mut e = Edge {
            w: WeightId::ONE,
            n: MatId::TERMINAL,
        };
        for var in (0..n).rev() {
            let r = self.index_bit(row, var) as usize;
            let c = self.index_bit(col, var) as usize;
            let mut children = [Edge::ZERO_MAT; 4];
            children[2 * r + c] = e;
            e = self.try_make_mat_node(var, children)?;
        }
        Ok(e)
    }

    /// Like [`Manager::try_unit_matrix`] but panics on budget exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range (for `n_qubits < 64`), or
    /// when a budget limit is crossed.
    pub fn unit_matrix(&mut self, row: u64, col: u64) -> Edge<MatId> {
        self.try_unit_matrix(row, col)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// The identity operator on all qubits.
    ///
    /// # Errors
    ///
    /// Fails when a budget limit is crossed.
    pub fn try_identity(&mut self) -> Result<Edge<MatId>, EngineError> {
        let mut e = Edge {
            w: WeightId::ONE,
            n: MatId::TERMINAL,
        };
        for var in (0..self.n_qubits).rev() {
            e = self.try_make_mat_node(var, [e, Edge::ZERO_MAT, Edge::ZERO_MAT, e])?;
        }
        Ok(e)
    }

    /// Like [`Manager::try_identity`] but panics on budget exhaustion.
    ///
    /// # Panics
    ///
    /// Panics when a budget limit is crossed.
    pub fn identity(&mut self) -> Edge<MatId> {
        self.try_identity().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Total nodes currently allocated (live + garbage); used to trigger
    /// [`Manager::compact`].
    pub fn allocated_nodes(&self) -> usize {
        self.vec_nodes.len() + self.mat_nodes.len()
    }

    /// Clears all compute caches (unique tables and nodes are kept;
    /// lifetime counters are preserved, with the dropped entries recorded
    /// in [`CacheStats::cleared`]).
    pub fn clear_caches(&mut self) {
        self.add_vec_cache.clear();
        self.add_mat_cache.clear();
        self.mv_cache.clear();
        self.mm_cache.clear();
        self.wops.clear();
    }

    /// Rebuilds the manager keeping only the DDs reachable from the given
    /// roots, returning the remapped roots in order (vector roots first).
    ///
    /// This is the package's garbage collection: simulations create large
    /// amounts of dead nodes and weights; compaction copies the live
    /// structure into fresh arenas and drops everything else (including
    /// all compute caches).
    ///
    /// # Errors
    ///
    /// Fails when a budget limit is crossed mid-copy (e.g. the live
    /// structure alone exceeds `max_nodes`, or the deadline passes). On
    /// failure the manager is left **unchanged** — the original roots stay
    /// valid, so callers can still extract partial results.
    pub fn try_compact(
        &mut self,
        vec_roots: &[Edge<VecId>],
        mat_roots: &[Edge<MatId>],
    ) -> Result<CompactedRoots, EngineError> {
        // Count the live cache entries as cleared *before* their stats are
        // carried over, so the documented accounting identity holds across
        // compactions too.
        self.clear_caches();
        let mut fresh =
            Manager::with_cache_capacity(self.ctx.clone(), self.n_qubits, self.cache_capacity);
        // lifetime counters and the budget survive compaction so they
        // measure/limit whole runs
        fresh.compactions = self.compactions + 1;
        fresh.budget = self.budget;
        fresh.budget_active = self.budget_active;
        fresh.budget_epoch = self.budget_epoch;
        fresh.probe_tick = self.probe_tick;
        fresh
            .add_vec_cache
            .absorb_stats(&self.add_vec_cache.stats());
        fresh
            .add_mat_cache
            .absorb_stats(&self.add_mat_cache.stats());
        fresh.mv_cache.absorb_stats(&self.mv_cache.stats());
        fresh.mm_cache.absorb_stats(&self.mm_cache.stats());
        fresh
            .wops
            .absorb_stats(&self.wops.pair_stats(), &self.wops.norm_stats());
        // Copy into `fresh` while `self` stays intact; only swap on
        // success so a mid-copy abort cannot lose the caller's roots.
        let mut vec_map: FxHashMap<VecId, VecId> = FxHashMap::default();
        let mut mat_map: FxHashMap<MatId, MatId> = FxHashMap::default();
        let mut new_vecs = Vec::with_capacity(vec_roots.len());
        for e in vec_roots {
            let n = copy_vec(self, &mut fresh, e.n, &mut vec_map)?;
            let w = fresh.try_intern(self.table.get(e.w).clone())?;
            new_vecs.push(Edge { w, n });
        }
        let mut new_mats = Vec::with_capacity(mat_roots.len());
        for e in mat_roots {
            let n = copy_mat(self, &mut fresh, e.n, &mut mat_map)?;
            let w = fresh.try_intern(self.table.get(e.w).clone())?;
            new_mats.push(Edge { w, n });
        }
        *self = fresh;
        #[cfg(feature = "validate-invariants")]
        self.validate()
            // aq-lint: allow(R1): opt-in debug feature whose whole point is to fail loudly
            .expect("compaction must preserve the structural invariants");
        Ok((new_vecs, new_mats))
    }

    /// Like [`Manager::try_compact`] but panics on budget exhaustion.
    ///
    /// # Panics
    ///
    /// Panics when a budget limit is crossed mid-copy.
    pub fn compact(
        &mut self,
        vec_roots: &[Edge<VecId>],
        mat_roots: &[Edge<MatId>],
    ) -> CompactedRoots {
        self.try_compact(vec_roots, mat_roots)
            .unwrap_or_else(|e| panic!("{e}"))
    }
}

fn copy_vec<W: WeightContext>(
    old: &Manager<W>,
    new: &mut Manager<W>,
    id: VecId,
    map: &mut FxHashMap<VecId, VecId>,
) -> Result<VecId, EngineError> {
    if id.is_terminal() {
        return Ok(VecId::TERMINAL);
    }
    if let Some(&m) = map.get(&id) {
        return Ok(m);
    }
    let node = old.vec_nodes[id.0 as usize];
    let mut children = [Edge::ZERO_VEC; 2];
    for (i, c) in node.children.iter().enumerate() {
        if c.is_zero() {
            continue;
        }
        let n = copy_vec(old, new, c.n, map)?;
        let w = new.try_intern(old.table.get(c.w).clone())?;
        children[i] = Edge { w, n };
    }
    // Children were already normalized, so re-making the node extracts a
    // factor of exactly 1 and reuses the same structure.
    let e = new.try_make_vec_node(node.var, children)?;
    debug_assert_eq!(
        e.w,
        WeightId::ONE,
        "copy of a normalized node must not rescale"
    );
    map.insert(id, e.n);
    Ok(e.n)
}

fn copy_mat<W: WeightContext>(
    old: &Manager<W>,
    new: &mut Manager<W>,
    id: MatId,
    map: &mut FxHashMap<MatId, MatId>,
) -> Result<MatId, EngineError> {
    if id.is_terminal() {
        return Ok(MatId::TERMINAL);
    }
    if let Some(&m) = map.get(&id) {
        return Ok(m);
    }
    let node = old.mat_nodes[id.0 as usize];
    let mut children = [Edge::ZERO_MAT; 4];
    for (i, c) in node.children.iter().enumerate() {
        if c.is_zero() {
            continue;
        }
        let n = copy_mat(old, new, c.n, map)?;
        let w = new.try_intern(old.table.get(c.w).clone())?;
        children[i] = Edge { w, n };
    }
    let e = new.try_make_mat_node(node.var, children)?;
    debug_assert_eq!(
        e.w,
        WeightId::ONE,
        "copy of a normalized node must not rescale"
    );
    map.insert(id, e.n);
    Ok(e.n)
}
