//! The QMDD manager: arenas, unique tables, interning, construction.

use crate::cache::{CacheStats, LossyCache};
use crate::edge::{Edge, MatId, MatNode, VecId, VecNode};
use crate::fxhash::{fx_hash, FxHashMap};
use crate::unique::UniqueTable;
use crate::weight::{WeightContext, WeightId, WeightTable};

/// Default slot count for each compute cache (`2^16` direct-mapped slots).
const DEFAULT_CACHE_CAPACITY: usize = 1 << 16;

/// A point-in-time snapshot of the engine's internal counters.
///
/// Obtained from [`Manager::statistics`]. Cache counters are lifetime
/// totals: they survive [`Manager::clear_caches`] and [`Manager::compact`],
/// so differences between snapshots measure the work in between.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStatistics {
    /// Vector-addition compute cache counters.
    pub add_vec: CacheStats,
    /// Matrix-addition compute cache counters.
    pub add_mat: CacheStats,
    /// Matrix–vector compute cache counters.
    pub mv: CacheStats,
    /// Matrix–matrix compute cache counters.
    pub mm: CacheStats,
    /// Vector nodes currently allocated (live + garbage).
    pub vec_nodes: usize,
    /// Matrix nodes currently allocated (live + garbage).
    pub mat_nodes: usize,
    /// Entries in the vector unique table.
    pub vec_unique_len: usize,
    /// Slot count of the vector unique table.
    pub vec_unique_capacity: usize,
    /// Entries in the matrix unique table.
    pub mat_unique_len: usize,
    /// Slot count of the matrix unique table.
    pub mat_unique_capacity: usize,
    /// Distinct interned weights.
    pub distinct_weights: usize,
    /// Number of [`Manager::compact`] runs over this manager's lifetime.
    pub compactions: u64,
}

impl EngineStatistics {
    /// Aggregate hit rate over all four compute caches, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups =
            self.add_vec.lookups + self.add_mat.lookups + self.mv.lookups + self.mm.lookups;
        let hits = self.add_vec.hits + self.add_mat.hits + self.mv.hits + self.mm.hits;
        if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        }
    }

    /// Load factor of the vector unique table, in `[0, 1)`.
    pub fn vec_unique_load(&self) -> f64 {
        self.vec_unique_len as f64 / self.vec_unique_capacity.max(1) as f64
    }

    /// Load factor of the matrix unique table, in `[0, 1)`.
    pub fn mat_unique_load(&self) -> f64 {
        self.mat_unique_len as f64 / self.mat_unique_capacity.max(1) as f64
    }
}

/// A QMDD manager for a fixed number of qubits over one weight system.
///
/// Owns the node arenas, the unique tables (hash-consing: structurally
/// equal nodes are shared), the interned weight table and the compute
/// caches. All decision diagrams live inside a manager and are referenced
/// by [`Edge`]s.
///
/// Because every node is normalized on construction ([Sec. II-B] of the
/// paper), QMDDs are **canonical**: two edges are equal iff they represent
/// the same matrix/vector — equivalence checking is `O(1)` root comparison.
///
/// # Examples
///
/// ```
/// use aq_dd::{GateMatrix, Manager, NumericContext};
///
/// let mut m = Manager::new(NumericContext::new(), 2);
/// let state = m.basis_state(0b00);
/// let h0 = m.gate(&GateMatrix::h(), 0, &[]);
/// let cx = m.gate(&GateMatrix::x(), 1, &[(0, true)]);
/// let bell = {
///     let s = m.mat_vec(&h0, &state);
///     m.mat_vec(&cx, &s)
/// };
/// let amps = m.amplitudes(&bell);
/// assert!((amps[0].re - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
/// assert!((amps[3].re - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
/// assert!(amps[1].abs() < 1e-12 && amps[2].abs() < 1e-12);
/// ```
#[derive(Debug)]
pub struct Manager<W: WeightContext> {
    pub(crate) ctx: W,
    pub(crate) n_qubits: u32,
    pub(crate) table: W::Table,
    pub(crate) vec_nodes: Vec<VecNode>,
    pub(crate) mat_nodes: Vec<MatNode>,
    pub(crate) vec_unique: UniqueTable,
    pub(crate) mat_unique: UniqueTable,
    pub(crate) add_vec_cache: LossyCache<(Edge<VecId>, Edge<VecId>), Edge<VecId>>,
    pub(crate) add_mat_cache: LossyCache<(Edge<MatId>, Edge<MatId>), Edge<MatId>>,
    pub(crate) mv_cache: LossyCache<(MatId, VecId), Edge<VecId>>,
    pub(crate) mm_cache: LossyCache<(MatId, MatId), Edge<MatId>>,
    cache_capacity: usize,
    compactions: u64,
}

impl<W: WeightContext> Manager<W> {
    /// Creates an empty manager for `n_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is zero.
    pub fn new(ctx: W, n_qubits: u32) -> Self {
        Manager::with_cache_capacity(ctx, n_qubits, DEFAULT_CACHE_CAPACITY)
    }

    /// Creates a manager whose four compute caches each have
    /// `cache_capacity` direct-mapped slots (rounded up to a power of two).
    ///
    /// Smaller caches trade recomputation for memory; results are identical
    /// either way because the caches are lossy memoisation, not state.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is zero.
    pub fn with_cache_capacity(ctx: W, n_qubits: u32, cache_capacity: usize) -> Self {
        assert!(n_qubits > 0, "need at least one qubit");
        let table = ctx.new_table();
        Manager {
            ctx,
            n_qubits,
            table,
            vec_nodes: Vec::new(),
            mat_nodes: Vec::new(),
            vec_unique: UniqueTable::new(),
            mat_unique: UniqueTable::new(),
            add_vec_cache: LossyCache::new(cache_capacity),
            add_mat_cache: LossyCache::new(cache_capacity),
            mv_cache: LossyCache::new(cache_capacity),
            mm_cache: LossyCache::new(cache_capacity),
            cache_capacity,
            compactions: 0,
        }
    }

    /// A snapshot of the engine's counters: per-cache hits/misses/evictions,
    /// unique-table load, weight-table size and compaction count.
    pub fn statistics(&self) -> EngineStatistics {
        EngineStatistics {
            add_vec: self.add_vec_cache.stats(),
            add_mat: self.add_mat_cache.stats(),
            mv: self.mv_cache.stats(),
            mm: self.mm_cache.stats(),
            vec_nodes: self.vec_nodes.len(),
            mat_nodes: self.mat_nodes.len(),
            vec_unique_len: self.vec_unique.len(),
            vec_unique_capacity: self.vec_unique.capacity(),
            mat_unique_len: self.mat_unique.len(),
            mat_unique_capacity: self.mat_unique.capacity(),
            distinct_weights: self.table.len(),
            compactions: self.compactions,
        }
    }

    /// The number of qubits.
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// The weight context.
    pub fn ctx(&self) -> &W {
        &self.ctx
    }

    /// Number of distinct weights currently interned.
    pub fn distinct_weights(&self) -> usize {
        self.table.len()
    }

    /// Looks up an interned weight value.
    pub fn weight(&self, id: WeightId) -> &W::Value {
        self.table.get(id)
    }

    /// Interns a weight value, collapsing ε-zeros to the canonical zero id.
    pub fn intern(&mut self, v: W::Value) -> WeightId {
        if self.ctx.is_zero(&v) {
            return WeightId::ZERO;
        }
        self.table.intern(v)
    }

    /// Interned product of two weights.
    pub(crate) fn w_mul(&mut self, a: WeightId, b: WeightId) -> WeightId {
        if a == WeightId::ZERO || b == WeightId::ZERO {
            return WeightId::ZERO;
        }
        if a == WeightId::ONE {
            return b;
        }
        if b == WeightId::ONE {
            return a;
        }
        let v = self.ctx.mul(self.table.get(a), self.table.get(b));
        self.intern(v)
    }

    /// Interned sum of two weights.
    pub(crate) fn w_add(&mut self, a: WeightId, b: WeightId) -> WeightId {
        if a == WeightId::ZERO {
            return b;
        }
        if b == WeightId::ZERO {
            return a;
        }
        let v = self.ctx.add(self.table.get(a), self.table.get(b));
        self.intern(v)
    }

    /// Creates (or finds) a normalized vector node and returns the edge to
    /// it carrying the extracted normalization factor.
    pub(crate) fn make_vec_node(&mut self, var: u32, children: [Edge<VecId>; 2]) -> Edge<VecId> {
        let mut vals = [
            self.table.get(children[0].w).clone(),
            self.table.get(children[1].w).clone(),
        ];
        let Some(eta) = self.ctx.normalize(&mut vals) else {
            return Edge::ZERO_VEC;
        };
        let [v0, v1] = vals;
        let e0 = self.norm_child(v0, children[0].n);
        let e1 = self.norm_child(v1, children[1].n);
        let node = VecNode {
            var,
            children: [e0, e1],
        };
        // the node hash is computed exactly once here; table growth reuses it
        let hash = fx_hash(&node);
        let nodes = &self.vec_nodes;
        let id = match self.vec_unique.find(hash, |i| nodes[i as usize] == node) {
            Some(id) => VecId(id),
            None => {
                let id = u32::try_from(self.vec_nodes.len()).expect("node arena overflow");
                self.vec_nodes.push(node);
                self.vec_unique.insert(hash, id);
                VecId(id)
            }
        };
        Edge {
            w: self.intern(eta),
            n: id,
        }
    }

    fn norm_child(&mut self, v: W::Value, n: VecId) -> Edge<VecId> {
        let w = self.intern(v);
        if w == WeightId::ZERO {
            Edge::ZERO_VEC
        } else {
            Edge { w, n }
        }
    }

    /// Creates (or finds) a normalized matrix node.
    pub(crate) fn make_mat_node(&mut self, var: u32, children: [Edge<MatId>; 4]) -> Edge<MatId> {
        let mut vals = [
            self.table.get(children[0].w).clone(),
            self.table.get(children[1].w).clone(),
            self.table.get(children[2].w).clone(),
            self.table.get(children[3].w).clone(),
        ];
        let Some(eta) = self.ctx.normalize(&mut vals) else {
            return Edge::ZERO_MAT;
        };
        let mut edges = [Edge::ZERO_MAT; 4];
        for (i, v) in vals.into_iter().enumerate() {
            let w = self.intern(v);
            edges[i] = if w == WeightId::ZERO {
                Edge::ZERO_MAT
            } else {
                Edge {
                    w,
                    n: children[i].n,
                }
            };
        }
        let node = MatNode {
            var,
            children: edges,
        };
        let hash = fx_hash(&node);
        let nodes = &self.mat_nodes;
        let id = match self.mat_unique.find(hash, |i| nodes[i as usize] == node) {
            Some(id) => MatId(id),
            None => {
                let id = u32::try_from(self.mat_nodes.len()).expect("node arena overflow");
                self.mat_nodes.push(node);
                self.mat_unique.insert(hash, id);
                MatId(id)
            }
        };
        Edge {
            w: self.intern(eta),
            n: id,
        }
    }

    /// The computational basis state `|index⟩` (qubit 0 is the most
    /// significant bit, matching the variable order).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^n_qubits`.
    pub fn basis_state(&mut self, index: u64) -> Edge<VecId> {
        assert!(
            self.n_qubits >= 64 || index < 1u64 << self.n_qubits,
            "basis state index out of range"
        );
        let mut e = Edge {
            w: WeightId::ONE,
            n: VecId::TERMINAL,
        };
        for var in (0..self.n_qubits).rev() {
            let bit = (index >> (self.n_qubits - 1 - var)) & 1;
            let children = if bit == 0 {
                [e, Edge::ZERO_VEC]
            } else {
                [Edge::ZERO_VEC, e]
            };
            e = self.make_vec_node(var, children);
        }
        e
    }

    /// The matrix DD with a single `1` entry at `(row, col)` — the outer
    /// product `|row⟩⟨col|`. Building-block for sparse operators such as
    /// the quantum-walk factors.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn unit_matrix(&mut self, row: u64, col: u64) -> Edge<MatId> {
        let n = self.n_qubits;
        assert!(
            n >= 64 || (row < 1u64 << n && col < 1u64 << n),
            "unit matrix index out of range"
        );
        let mut e = Edge {
            w: WeightId::ONE,
            n: MatId::TERMINAL,
        };
        for var in (0..n).rev() {
            let r = ((row >> (n - 1 - var)) & 1) as usize;
            let c = ((col >> (n - 1 - var)) & 1) as usize;
            let mut children = [Edge::ZERO_MAT; 4];
            children[2 * r + c] = e;
            e = self.make_mat_node(var, children);
        }
        e
    }

    /// The identity operator on all qubits.
    pub fn identity(&mut self) -> Edge<MatId> {
        let mut e = Edge {
            w: WeightId::ONE,
            n: MatId::TERMINAL,
        };
        for var in (0..self.n_qubits).rev() {
            e = self.make_mat_node(var, [e, Edge::ZERO_MAT, Edge::ZERO_MAT, e]);
        }
        e
    }

    /// Total nodes currently allocated (live + garbage); used to trigger
    /// [`Manager::compact`].
    pub fn allocated_nodes(&self) -> usize {
        self.vec_nodes.len() + self.mat_nodes.len()
    }

    /// Clears all compute caches (unique tables and nodes are kept;
    /// lifetime counters are preserved).
    pub fn clear_caches(&mut self) {
        self.add_vec_cache.clear();
        self.add_mat_cache.clear();
        self.mv_cache.clear();
        self.mm_cache.clear();
    }

    /// Rebuilds the manager keeping only the DDs reachable from the given
    /// roots, returning the remapped roots in order (vector roots first).
    ///
    /// This is the package's garbage collection: simulations create large
    /// amounts of dead nodes and weights; compaction copies the live
    /// structure into fresh arenas and drops everything else (including
    /// all compute caches).
    pub fn compact(
        &mut self,
        vec_roots: &[Edge<VecId>],
        mat_roots: &[Edge<MatId>],
    ) -> (Vec<Edge<VecId>>, Vec<Edge<MatId>>) {
        let mut fresh =
            Manager::with_cache_capacity(self.ctx.clone(), self.n_qubits, self.cache_capacity);
        // lifetime counters survive compaction so they measure whole runs
        fresh.compactions = self.compactions + 1;
        fresh
            .add_vec_cache
            .absorb_stats(&self.add_vec_cache.stats());
        fresh
            .add_mat_cache
            .absorb_stats(&self.add_mat_cache.stats());
        fresh.mv_cache.absorb_stats(&self.mv_cache.stats());
        fresh.mm_cache.absorb_stats(&self.mm_cache.stats());
        let old = std::mem::replace(self, fresh);
        let mut vec_map: FxHashMap<VecId, VecId> = FxHashMap::default();
        let mut mat_map: FxHashMap<MatId, MatId> = FxHashMap::default();
        let new_vecs = vec_roots
            .iter()
            .map(|e| {
                let n = copy_vec(&old, self, e.n, &mut vec_map);
                let w = self.intern(old.table.get(e.w).clone());
                Edge { w, n }
            })
            .collect();
        let new_mats = mat_roots
            .iter()
            .map(|e| {
                let n = copy_mat(&old, self, e.n, &mut mat_map);
                let w = self.intern(old.table.get(e.w).clone());
                Edge { w, n }
            })
            .collect();
        (new_vecs, new_mats)
    }
}

fn copy_vec<W: WeightContext>(
    old: &Manager<W>,
    new: &mut Manager<W>,
    id: VecId,
    map: &mut FxHashMap<VecId, VecId>,
) -> VecId {
    if id.is_terminal() {
        return VecId::TERMINAL;
    }
    if let Some(&m) = map.get(&id) {
        return m;
    }
    let node = old.vec_nodes[id.0 as usize];
    let mut children = [Edge::ZERO_VEC; 2];
    for (i, c) in node.children.iter().enumerate() {
        if c.is_zero() {
            continue;
        }
        let n = copy_vec(old, new, c.n, map);
        let w = new.intern(old.table.get(c.w).clone());
        children[i] = Edge { w, n };
    }
    // Children were already normalized, so re-making the node extracts a
    // factor of exactly 1 and reuses the same structure.
    let e = new.make_vec_node(node.var, children);
    debug_assert_eq!(
        e.w,
        WeightId::ONE,
        "copy of a normalized node must not rescale"
    );
    map.insert(id, e.n);
    e.n
}

fn copy_mat<W: WeightContext>(
    old: &Manager<W>,
    new: &mut Manager<W>,
    id: MatId,
    map: &mut FxHashMap<MatId, MatId>,
) -> MatId {
    if id.is_terminal() {
        return MatId::TERMINAL;
    }
    if let Some(&m) = map.get(&id) {
        return m;
    }
    let node = old.mat_nodes[id.0 as usize];
    let mut children = [Edge::ZERO_MAT; 4];
    for (i, c) in node.children.iter().enumerate() {
        if c.is_zero() {
            continue;
        }
        let n = copy_mat(old, new, c.n, map);
        let w = new.intern(old.table.get(c.w).clone());
        children[i] = Edge { w, n };
    }
    let e = new.make_mat_node(node.var, children);
    debug_assert_eq!(
        e.w,
        WeightId::ONE,
        "copy of a normalized node must not rescale"
    );
    map.insert(id, e.n);
    e.n
}
