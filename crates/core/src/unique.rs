//! Open-addressing unique table for hash-consing nodes and weights.
//!
//! The table stores only `(precomputed hash, id)` pairs; the actual entry
//! data lives in the owner's arena. This halves memory compared to a
//! `HashMap<Node, Id>` (which would duplicate every node) and means growth
//! rehashes never touch the entries themselves — the hash of each entry is
//! computed exactly once, when it is interned.

/// Sentinel id marking an empty slot. Arena ids are dense indices and the
/// `u32::MAX` terminal is never interned, so the value is free.
const EMPTY: u32 = u32::MAX;

/// An open-addressing (linear probing) index from precomputed hashes to
/// arena ids.
#[derive(Debug, Clone)]
pub(crate) struct UniqueTable {
    /// `(hash, id)` slots; `id == EMPTY` marks a free slot.
    slots: Vec<(u64, u32)>,
    /// `slots.len() - 1`; slot count is a power of two.
    mask: usize,
    len: usize,
}

impl UniqueTable {
    const INITIAL_SLOTS: usize = 1 << 10;

    pub fn new() -> Self {
        UniqueTable {
            slots: vec![(0, EMPTY); Self::INITIAL_SLOTS],
            mask: Self::INITIAL_SLOTS - 1,
            len: 0,
        }
    }

    /// Number of interned entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Current slot count (capacity before the next growth is `3/4` of it).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Looks up an entry by its hash, confirming candidates with `eq`
    /// (hash collisions are possible; `eq(id)` must compare the actual
    /// entry against the probe key).
    #[inline]
    pub fn find(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        let mut i = (hash as usize) & self.mask;
        loop {
            let (h, id) = self.slots[i];
            if id == EMPTY {
                return None;
            }
            if h == hash && eq(id) {
                return Some(id);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Inserts an id under a precomputed hash. The caller must have checked
    /// with [`UniqueTable::find`] that no equal entry exists.
    pub fn insert(&mut self, hash: u64, id: u32) {
        debug_assert_ne!(id, EMPTY, "the sentinel id cannot be interned");
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        self.insert_slot(hash, id);
        self.len += 1;
    }

    #[inline]
    fn insert_slot(&mut self, hash: u64, id: u32) {
        let mut i = (hash as usize) & self.mask;
        while self.slots[i].1 != EMPTY {
            i = (i + 1) & self.mask;
        }
        self.slots[i] = (hash, id);
    }

    /// Empties the table while keeping the grown slot array. A session
    /// reusing a manager across jobs pays the growth rehashes only once:
    /// after a reset the table re-interns the next job's nodes into
    /// already-sized slots. Lookup results are unaffected — an empty
    /// table is an empty table regardless of capacity.
    pub fn reset_in_place(&mut self) {
        self.slots.fill((0, EMPTY));
        self.len = 0;
    }

    /// The raw slot array, for snapshot serialization. Persisting the
    /// slots verbatim (rather than re-inserting on load) keeps the probe
    /// layout and capacity of a reloaded table bit-identical to the
    /// original — reloaded statistics match exactly.
    pub fn snapshot_slots(&self) -> &[(u64, u32)] {
        &self.slots
    }

    /// Rebuilds a table from a snapshotted slot array.
    ///
    /// # Errors
    ///
    /// Returns a description when the slot count is not a power of two, the
    /// occupied-slot count disagrees with `expected_len`, or the load
    /// factor is above the growth threshold (states [`UniqueTable::insert`]
    /// can never produce).
    pub fn from_snapshot_slots(
        slots: Vec<(u64, u32)>,
        expected_len: usize,
    ) -> Result<Self, String> {
        if slots.len() < Self::INITIAL_SLOTS || !slots.len().is_power_of_two() {
            return Err(format!(
                "slot count {} is not a power of two ≥ {}",
                slots.len(),
                Self::INITIAL_SLOTS
            ));
        }
        let len = slots.iter().filter(|&&(_, id)| id != EMPTY).count();
        if len != expected_len {
            return Err(format!(
                "{len} occupied slot(s) but header claims {expected_len}"
            ));
        }
        if len * 4 > slots.len() * 3 {
            return Err(format!(
                "load factor {len}/{} above the growth threshold",
                slots.len()
            ));
        }
        let mask = slots.len() - 1;
        Ok(UniqueTable { slots, mask, len })
    }

    /// Doubles the slot array, reusing the stored hashes (entries are never
    /// rehashed).
    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![(0, EMPTY); new_len]);
        self.mask = new_len - 1;
        for (h, id) in old {
            if id != EMPTY {
                self.insert_slot(h, id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fxhash::fx_hash;

    #[test]
    fn find_insert_roundtrip_with_growth() {
        let mut t = UniqueTable::new();
        let entries: Vec<u64> = (0..5000u64).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
        for (i, &e) in entries.iter().enumerate() {
            let h = fx_hash(&e);
            assert_eq!(t.find(h, |id| entries[id as usize] == e), None);
            t.insert(h, i as u32);
        }
        assert_eq!(t.len(), entries.len());
        assert!(t.capacity() >= entries.len());
        for (i, &e) in entries.iter().enumerate() {
            let h = fx_hash(&e);
            assert_eq!(t.find(h, |id| entries[id as usize] == e), Some(i as u32));
        }
    }

    #[test]
    fn colliding_hashes_resolved_by_eq() {
        let mut t = UniqueTable::new();
        let entries = ["alpha", "beta"];
        let h = 0x42; // force both entries onto the same probe chain
        t.insert(h, 0);
        t.insert(h, 1);
        assert_eq!(t.find(h, |id| entries[id as usize] == "beta"), Some(1));
        assert_eq!(t.find(h, |id| entries[id as usize] == "alpha"), Some(0));
        assert_eq!(t.find(h, |id| entries[id as usize] == "gamma"), None);
    }
}
