//! Node identifiers and weighted edges.

use std::fmt;

use crate::weight::WeightId;

/// Identifier of a vector-DD node (radix-2 branching) inside a manager.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VecId(pub(crate) u32);

/// Identifier of a matrix-DD node (radix-4 branching) inside a manager.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MatId(pub(crate) u32);

impl VecId {
    /// The shared terminal node.
    pub const TERMINAL: VecId = VecId(u32::MAX);

    /// Returns `true` for the terminal.
    pub fn is_terminal(self) -> bool {
        self == VecId::TERMINAL
    }
}

impl MatId {
    /// The shared terminal node.
    pub const TERMINAL: MatId = MatId(u32::MAX);

    /// Returns `true` for the terminal.
    pub fn is_terminal(self) -> bool {
        self == MatId::TERMINAL
    }
}

impl fmt::Debug for VecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_terminal() {
            write!(f, "vT")
        } else {
            write!(f, "v{}", self.0)
        }
    }
}

impl fmt::Debug for MatId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_terminal() {
            write!(f, "mT")
        } else {
            write!(f, "m{}", self.0)
        }
    }
}

/// A weighted edge: the fundamental QMDD reference. To read a matrix entry
/// or amplitude, multiply the weights along the root-to-terminal path
/// (Example 3 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Edge<N> {
    /// Interned edge weight.
    pub w: WeightId,
    /// Target node (or the terminal).
    pub n: N,
}

impl Edge<VecId> {
    /// The canonical zero edge (weight 0 pointing at the terminal).
    pub const ZERO_VEC: Edge<VecId> = Edge {
        w: WeightId::ZERO,
        n: VecId::TERMINAL,
    };
}

impl Edge<MatId> {
    /// The canonical zero edge (weight 0 pointing at the terminal).
    pub const ZERO_MAT: Edge<MatId> = Edge {
        w: WeightId::ZERO,
        n: MatId::TERMINAL,
    };
}

impl<N: Copy + PartialEq> Edge<N> {
    /// Returns `true` for the canonical zero edge.
    pub fn is_zero(&self) -> bool {
        self.w == WeightId::ZERO
    }
}

/// A vector-DD node: branches on one qubit with two successors
/// (`|0⟩` branch, `|1⟩` branch).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) struct VecNode {
    pub var: u32,
    pub children: [Edge<VecId>; 2],
}

/// A matrix-DD node: branches on one qubit with four successors ordered
/// `(row, col)` = `(0,0), (0,1), (1,0), (1,1)` — top-left, top-right,
/// bottom-left, bottom-right sub-matrix as in Fig. 1 of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) struct MatNode {
    pub var: u32,
    pub children: [Edge<MatId>; 4],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_markers() {
        assert!(VecId::TERMINAL.is_terminal());
        assert!(MatId::TERMINAL.is_terminal());
        assert!(!VecId(0).is_terminal());
        assert!(Edge::<VecId>::ZERO_VEC.is_zero());
        assert!(Edge::<MatId>::ZERO_MAT.is_zero());
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", VecId::TERMINAL), "vT");
        assert_eq!(format!("{:?}", MatId(3)), "m3");
    }
}
