//! QMDD — Quantum Multiple-valued Decision Diagrams with interchangeable
//! numeric and exact algebraic edge weights.
//!
//! This crate is the primary contribution of the reproduced paper: a QMDD
//! package in which the *same* decision-diagram engine runs over three edge
//! weight systems:
//!
//! * [`NumericContext`] — IEEE 754 double-precision complex weights with a
//!   configurable tolerance value ε (the state of the art the paper
//!   evaluates; Sec. III).
//! * [`QomegaContext`] — exact weights in the cyclotomic field `Q[ω]`,
//!   normalized by dividing through the leftmost non-zero weight using
//!   field inverses (the paper's Algorithm 2).
//! * [`GcdContext`] — exact weights in the ring `D[ω]`, normalized by
//!   extracting canonical greatest common divisors (the paper's
//!   Algorithm 3, using that `Z[ω]` is a Euclidean ring).
//!
//! A QMDD represents a `2ⁿ × 2ⁿ` unitary (or a `2ⁿ` state vector) as a DAG
//! whose nodes branch on one qubit each and whose edges carry scalar
//! weights; sub-matrices that differ only by a scalar share structure. The
//! engine provides addition, matrix–vector and matrix–matrix
//! multiplication, direct construction of (multi-)controlled gate DDs,
//! state-vector extraction, node counting and compaction, with compute
//! caches memoising every operation.
//!
//! # Examples
//!
//! Build the 2-qubit operator `H ⊗ I` of Fig. 1 of the paper and check that
//! it has exactly one node per level (the redundancy QMDDs exist to catch):
//!
//! ```
//! use aq_dd::{GateMatrix, Manager, QomegaContext};
//!
//! let mut m = Manager::new(QomegaContext::new(), 2);
//! let h = m.gate(&GateMatrix::h(), 0, &[]);
//! assert_eq!(m.mat_nodes(&h), 2);
//!
//! // applying it twice gives the identity: HH = I
//! let hh = m.mat_mul(&h, &h);
//! assert_eq!(hh, m.identity());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

mod algebraic;
mod cache;
#[cfg(feature = "chaos")]
mod chaos;
mod dot;
mod edge;
mod error;
mod extract;
pub mod fxhash;
mod gates;
mod invariant;
mod manager;
mod measure;
mod numeric;
mod ops;
pub mod snapshot;
mod unique;
mod verify;
mod weight;
mod wops;

pub use algebraic::{GcdContext, QomegaContext};
pub use cache::CacheStats;
pub use edge::{Edge, MatId, VecId};
pub use error::{EngineError, RunBudget};
pub use gates::{GateEntry, GateMatrix, UnrepresentableGateError};
pub use manager::{EngineStatistics, Manager};
pub use measure::StateSampler;
pub use numeric::{NormScheme, NumericContext};
pub use verify::kron_states;
pub use weight::{WeightContext, WeightId, WeightTable};
