//! Deterministic corruption hooks for fault-injection testing.
//!
//! Only compiled under the `chaos` feature. The serve chaos suite uses
//! [`Manager::chaos_corrupt`] to plant a *targeted* structural defect in a
//! warm manager — exactly the kind of damage a partially-applied gate or a
//! stray write would leave behind — and then asserts that the session
//! quarantine layer catches it via [`Manager::validate`] before the manager
//! is ever reused for another job.
//!
//! Every mutation planted here is provably caught by the invariant checker:
//! an out-of-range `var` trips the "variable out of range" check, and a
//! dangling child [`WeightId`] trips the "weight id out of range" edge
//! check. The choice of mutation and its target node are pure functions of
//! the seed, so a corruption schedule replays identically across runs.

use crate::edge::{MatNode, VecNode};
use crate::manager::Manager;
use crate::weight::{WeightContext, WeightId, WeightTable};

/// SplitMix64 mixer: decorrelates consecutive seeds into well-spread
/// choices without any RNG state.
fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl<W: WeightContext> Manager<W> {
    /// Plants one seed-determined structural defect in this manager's
    /// retained state: either a node `var` pushed past `n_qubits`, or a
    /// child edge's weight id dangled past the weight-table length. Both
    /// are guaranteed to be reported by [`Manager::validate`].
    ///
    /// Prefers the matrix arena when both have nodes (matrix nodes are the
    /// common retained state after a gate-heavy job). Returns `false` when
    /// both arenas are empty — there is nothing to corrupt and the manager
    /// is left untouched.
    pub fn chaos_corrupt(&mut self, seed: u64) -> bool {
        let r = mix(seed);
        let dangle_weight = r & 1 == 1;
        let dangling = WeightId((self.table.len() as u32).wrapping_add((r >> 1) as u32 % 7));
        if !self.mat_nodes.is_empty() {
            let idx = (r >> 8) as usize % self.mat_nodes.len();
            let node: &mut MatNode = &mut self.mat_nodes[idx];
            if dangle_weight {
                let c = (r >> 4) as usize % 4;
                node.children[c].w = dangling;
            } else {
                node.var = self.n_qubits + 1 + (r >> 4) as u32 % 7;
            }
            true
        } else if !self.vec_nodes.is_empty() {
            let idx = (r >> 8) as usize % self.vec_nodes.len();
            let node: &mut VecNode = &mut self.vec_nodes[idx];
            if dangle_weight {
                let c = (r >> 4) as usize % 2;
                node.children[c].w = dangling;
            } else {
                node.var = self.n_qubits + 1 + (r >> 4) as u32 % 7;
            }
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{GateMatrix, Manager, NumericContext, QomegaContext};

    #[test]
    fn corruption_is_caught_by_validate() {
        for seed in 0..32u64 {
            let mut m = Manager::new(NumericContext::new(), 3);
            let h = m.gate(&GateMatrix::h(), 0, &[]);
            let s = m.basis_state(0);
            let _ = m.mat_vec(&h, &s);
            assert!(m.validate().is_ok(), "pristine manager must validate");
            assert!(m.chaos_corrupt(seed), "non-empty arenas must corrupt");
            assert!(
                m.validate().is_err(),
                "seed {seed}: corruption must be caught by validate()"
            );
        }
    }

    #[test]
    fn empty_manager_has_nothing_to_corrupt() {
        let mut m = Manager::new(QomegaContext::new(), 2);
        assert!(!m.chaos_corrupt(7));
        assert!(m.validate().is_ok());
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let build = || {
            let mut m = Manager::new(NumericContext::new(), 3);
            let h = m.gate(&GateMatrix::h(), 1, &[]);
            let s = m.basis_state(0b101);
            let _ = m.mat_vec(&h, &s);
            m
        };
        for seed in [0u64, 1, 0xDEAD_BEEF] {
            let mut a = build();
            let mut b = build();
            a.chaos_corrupt(seed);
            b.chaos_corrupt(seed);
            let ea = a.validate().unwrap_err().to_string();
            let eb = b.validate().unwrap_err().to_string();
            assert_eq!(ea, eb, "seed {seed}: same seed must plant the same defect");
        }
    }
}
