//! Graphviz DOT export of decision diagrams (Fig. 1-style pictures).

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::edge::{Edge, MatId, VecId};
use crate::manager::Manager;
use crate::weight::{WeightContext, WeightTable};

impl<W: WeightContext> Manager<W> {
    /// Renders a vector DD as Graphviz DOT — one box per node labelled
    /// with its qubit, weighted edges annotated with their (approximate)
    /// complex value, exactly like the diagrams in the paper's Fig. 1.
    ///
    /// ```
    /// use aq_dd::{GateMatrix, Manager, QomegaContext};
    ///
    /// let mut m = Manager::new(QomegaContext::new(), 2);
    /// let s = m.basis_state(0b10);
    /// let dot = m.vec_to_dot(&s);
    /// assert!(dot.starts_with("digraph"));
    /// assert!(dot.contains("q0"));
    /// ```
    pub fn vec_to_dot(&self, e: &Edge<VecId>) -> String {
        let mut out = String::from("digraph qmdd {\n  rankdir=TB;\n  node [shape=circle];\n");
        let _ = writeln!(out, "  root [shape=point];");
        let _ = writeln!(
            out,
            "  root -> {} [label=\"{}\"];",
            vec_name(e.n),
            self.weight_label(e.w)
        );
        let mut seen = HashSet::new();
        let mut stack = vec![e.n];
        let _ = writeln!(out, "  terminal [shape=box, label=\"1\"];");
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n) {
                continue;
            }
            let node = self.vec_nodes[n.0 as usize];
            let _ = writeln!(out, "  {} [label=\"q{}\"];", vec_name(n), node.var);
            for (i, c) in node.children.iter().enumerate() {
                if c.is_zero() {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "  {} -> {} [label=\"{}: {}\"];",
                    vec_name(n),
                    vec_name(c.n),
                    i,
                    self.weight_label(c.w)
                );
                stack.push(c.n);
            }
        }
        out.push_str("}\n");
        out
    }

    /// Renders a matrix DD as Graphviz DOT (children labelled by their
    /// `(row, col)` block as in the paper's Fig. 1b/1c).
    pub fn mat_to_dot(&self, e: &Edge<MatId>) -> String {
        let mut out = String::from("digraph qmdd {\n  rankdir=TB;\n  node [shape=circle];\n");
        let _ = writeln!(out, "  root [shape=point];");
        let _ = writeln!(
            out,
            "  root -> {} [label=\"{}\"];",
            mat_name(e.n),
            self.weight_label(e.w)
        );
        let mut seen = HashSet::new();
        let mut stack = vec![e.n];
        let _ = writeln!(out, "  terminal [shape=box, label=\"1\"];");
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n) {
                continue;
            }
            let node = self.mat_nodes[n.0 as usize];
            let _ = writeln!(out, "  {} [label=\"q{}\"];", mat_name(n), node.var);
            for (i, c) in node.children.iter().enumerate() {
                if c.is_zero() {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "  {} -> {} [label=\"({},{}): {}\"];",
                    mat_name(n),
                    mat_name(c.n),
                    i >> 1,
                    i & 1,
                    self.weight_label(c.w)
                );
                stack.push(c.n);
            }
        }
        out.push_str("}\n");
        out
    }

    fn weight_label(&self, w: crate::WeightId) -> String {
        let c = self.ctx.to_complex(self.table.get(w));
        // aq-lint: allow(R5): display-only check for an exactly-real weight
        if c.im == 0.0 {
            format!("{:.4}", c.re)
        } else {
            format!("{:.4}{:+.4}i", c.re, c.im)
        }
    }
}

fn vec_name(n: VecId) -> String {
    if n.is_terminal() {
        "terminal".to_string()
    } else {
        format!("v{}", n.0)
    }
}

fn mat_name(n: MatId) -> String {
    if n.is_terminal() {
        "terminal".to_string()
    } else {
        format!("m{}", n.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GateMatrix, QomegaContext};

    #[test]
    fn fig1c_dot_structure() {
        // H ⊗ I₂ — the paper's Fig. 1c: one node per level plus terminal.
        let mut m = Manager::new(QomegaContext::new(), 2);
        let h = m.gate(&GateMatrix::h(), 0, &[]);
        let dot = m.mat_to_dot(&h);
        assert!(dot.contains("label=\"q0\""));
        assert!(dot.contains("label=\"q1\""));
        assert!(dot.contains("0.7071"), "root weight 1/√2 shown: {dot}");
        // the (1,1) block of the root carries weight −1
        assert!(dot.contains("(1,1): -1.0000"), "{dot}");
        assert_eq!(dot.matches("[label=\"q").count(), 2, "two nodes only");
    }

    #[test]
    fn vector_dot_contains_all_branches() {
        let mut m = Manager::new(QomegaContext::new(), 2);
        let z = m.basis_state(0);
        let hd = m.gate(&GateMatrix::h(), 1, &[]);
        let s = m.mat_vec(&hd, &z);
        let dot = m.vec_to_dot(&s);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("terminal"));
        assert!(dot.contains("0: 1.0000"));
        assert!(dot.contains("1: 1.0000"));
    }

    #[test]
    fn zero_edge_renders() {
        let m = Manager::new(QomegaContext::new(), 1);
        let dot = m.vec_to_dot(&Edge::ZERO_VEC);
        assert!(dot.contains("root -> terminal"));
    }
}
