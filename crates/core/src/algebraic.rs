//! The exact algebraic weight systems: `Q[ω]` (Algorithm 2) and the
//! GCD-normalized `D[ω]` (Algorithm 3).

use std::hash::Hash;
use std::sync::Mutex;

use aq_bigint::{IBig, UBig};
use aq_rings::assoc::AssocMemo;
use aq_rings::{Complex64, Domega, Qomega, Zomega};

use crate::error::EngineError;
use crate::fxhash::fx_hash;
use crate::snapshot::{ByteReader, ByteWriter};
use crate::unique::UniqueTable;
use crate::weight::{WeightContext, WeightId, WeightTable};

/// Serializes a `Z[ω]` element as four decimal coefficient strings
/// (the bigint radix I/O — exact at any width).
fn put_zomega(z: &Zomega, out: &mut ByteWriter) {
    for c in z.coeffs() {
        out.put_str(&c.to_string());
    }
}

fn take_ibig(r: &mut ByteReader<'_>) -> Result<IBig, String> {
    let s = r.take_str()?;
    s.parse::<IBig>()
        .map_err(|e| format!("bad integer `{s}`: {e}"))
}

fn take_zomega(r: &mut ByteReader<'_>) -> Result<Zomega, String> {
    let a = take_ibig(r)?;
    let b = take_ibig(r)?;
    let c = take_ibig(r)?;
    let d = take_ibig(r)?;
    Ok(Zomega::new(a, b, c, d))
}

/// Generic exact-deduplication weight table: canonical forms are hashable,
/// so equality is structural.
///
/// Values are stored once in an arena; the index holds only precomputed
/// hashes and ids, so interning hashes each value exactly once and never
/// clones it into a map key.
#[derive(Debug)]
pub struct ExactTable<V> {
    values: Vec<V>,
    index: UniqueTable,
}

impl<V: Clone + Eq + Hash> ExactTable<V> {
    fn with_constants(zero: V, one: V) -> Self {
        let mut t = ExactTable {
            values: Vec::new(),
            index: UniqueTable::new(),
        };
        let z = t.intern(zero);
        let o = t.intern(one);
        debug_assert_eq!(z, WeightId::ZERO);
        debug_assert_eq!(o, WeightId::ONE);
        t
    }
}

impl<V: Clone + Eq + Hash> WeightTable for ExactTable<V> {
    type Value = V;

    fn try_intern(&mut self, v: V) -> Result<WeightId, EngineError> {
        let hash = fx_hash(&v);
        let values = &self.values;
        if let Some(id) = self.index.find(hash, |i| values[i as usize] == v) {
            return Ok(WeightId(id));
        }
        let id = u32::try_from(self.values.len()).map_err(|_| EngineError::WeightTableOverflow)?;
        self.values.push(v);
        self.index.insert(hash, id);
        Ok(WeightId(id))
    }

    fn get(&self, id: WeightId) -> &V {
        &self.values[id.index()]
    }

    fn len(&self) -> usize {
        self.values.len()
    }
}

/// The `Q[ω]` weight system with field-inverse normalization — the paper's
/// **Algorithm 2** and the scheme that “always outperformed the
/// normalization scheme that uses GCDs” in the evaluation (Sec. V-B).
///
/// Every weight is an exact element of the cyclotomic field `Q[ω]`; node
/// weights are normalized by dividing through the leftmost non-zero
/// weight, which is always possible because `Q[ω]` is a field.
///
/// # Examples
///
/// ```
/// use aq_dd::{GateMatrix, Manager, QomegaContext};
///
/// let mut m = Manager::new(QomegaContext::new(), 1);
/// let h = m.gate(&GateMatrix::h(), 0, &[]);
/// let t = m.gate(&GateMatrix::t(), 0, &[]);
/// // (TH)·(TH)⁻¹ never leaves the exact ring, so equality is structural:
/// let th = m.mat_mul(&t, &h);
/// assert_ne!(th, m.identity());
/// ```
#[derive(Debug, Clone, Default)]
pub struct QomegaContext;

impl QomegaContext {
    /// Creates the context.
    pub fn new() -> Self {
        QomegaContext
    }
}

impl WeightContext for QomegaContext {
    type Value = Qomega;
    type Table = ExactTable<Qomega>;

    fn new_table(&self) -> Self::Table {
        ExactTable::with_constants(Qomega::zero(), Qomega::one())
    }

    fn zero(&self) -> Qomega {
        Qomega::zero()
    }

    fn one(&self) -> Qomega {
        Qomega::one()
    }

    fn add(&self, a: &Qomega, b: &Qomega) -> Qomega {
        a + b
    }

    fn mul(&self, a: &Qomega, b: &Qomega) -> Qomega {
        a * b
    }

    fn neg(&self, a: &Qomega) -> Qomega {
        -a
    }

    fn conj(&self, a: &Qomega) -> Qomega {
        a.conj()
    }

    fn is_canonical_value(&self, v: &Qomega) -> bool {
        v.numerator().repr_is_canonical()
    }

    fn is_zero(&self, a: &Qomega) -> bool {
        a.is_zero()
    }

    fn normalize(&self, ws: &mut [Qomega]) -> Option<Qomega> {
        // Algorithm 2: divide all weights by the leftmost non-zero one.
        let pivot = ws.iter().position(|w| !w.is_zero())?;
        let eta = ws[pivot].clone();
        // aq-lint: allow(R1): position() selected a non-zero weight, which is invertible in Q[omega]
        let inv = eta.inverse().expect("pivot is non-zero");
        for (i, w) in ws.iter_mut().enumerate() {
            if i == pivot {
                *w = Qomega::one();
            } else if !w.is_zero() {
                *w = &*w * &inv;
            }
        }
        Some(eta)
    }

    fn from_exact(&self, d: &Domega) -> Qomega {
        Qomega::from(d.clone())
    }

    fn from_approx(&self, _c: Complex64) -> Option<Qomega> {
        None // irrational angles must be Clifford+T-compiled first
    }

    fn sqrt_inv(&self, a: &Qomega) -> Option<Qomega> {
        // 1/√p is representable exactly iff p = √2^{-k} with even k:
        // then 1/√p = √2^{k/2}. Dyadic probabilities (1/2^m) all have
        // this form; everything else leaves the field.
        if a.numerator().is_one() && a.denom().is_one() && a.k() % 2 == 0 {
            Some(Qomega::from(Domega::new(Zomega::one(), -(a.k() / 2))))
        } else {
            None
        }
    }

    fn to_complex(&self, a: &Qomega) -> Complex64 {
        a.to_complex64()
    }

    fn value_bits(&self, a: &Qomega) -> u64 {
        a.coeff_bits()
    }

    fn kind(&self) -> &'static str {
        "qomega"
    }

    fn write_value(&self, v: &Qomega, out: &mut ByteWriter) {
        put_zomega(v.numerator(), out);
        out.put_i64(v.k());
        out.put_str(&v.denom().to_string());
    }

    fn read_value(&self, r: &mut ByteReader<'_>) -> Result<Qomega, String> {
        let num = take_zomega(r)?;
        let k = r.take_i64()?;
        let denom_str = r.take_str()?;
        let denom = UBig::from_decimal_str(&denom_str)
            .map_err(|e| format!("bad denominator `{denom_str}`: {e}"))?;
        if denom.is_zero() {
            return Err("zero denominator".into());
        }
        // Qomega::new reduces; a canonically stored value round-trips
        // structurally unchanged.
        Ok(Qomega::new(num, k, denom))
    }
}

/// The `D[ω]` weight system with canonical-GCD normalization — the paper's
/// **Algorithm 3**, enabled by `Z[ω]` being a Euclidean ring.
///
/// Node weights are divided by a greatest common divisor adjusted to the
/// canonical associate (norm-reduced, rotation-minimal), so the diagram is
/// canonical without ever leaving `D[ω]`.
///
/// The GCD extraction is **lazy**: [`GcdContext::normalize`] runs one plain
/// Euclidean GCD chain over the raw numerators (the per-weight `√2`
/// denominator exponents stay pending and are re-reduced once per weight),
/// then performs a single — memoized — canonical-associate search. Because
/// the canonical associate is unit-invariant, the result is bit-identical
/// to eager per-step canonicalization, at a fraction of the cost.
#[derive(Debug)]
pub struct GcdContext {
    /// Memo for the canonical-associate triple `(z_c, unit, unit⁻¹)` — the
    /// dominant cost of Algorithm 3, and highly repetitive across nodes.
    memo: Mutex<AssocMemo>,
}

/// Slot count of the per-context canonical-associate memo (bounded,
/// direct-mapped, lossy — identical results on hit or miss).
const ASSOC_MEMO_SLOTS: usize = 1 << 12;

impl GcdContext {
    /// Creates the context.
    pub fn new() -> Self {
        GcdContext {
            memo: Mutex::new(AssocMemo::new(ASSOC_MEMO_SLOTS)),
        }
    }

    /// `(hits, misses)` of the canonical-associate memo.
    pub fn assoc_memo_stats(&self) -> (u64, u64) {
        self.lock_memo().stats()
    }

    /// Locks the memo. The lock is uncontended in practice (managers are
    /// moved across threads, not shared), and the memo holds no invariant
    /// that a panic mid-`triple` could break — a poisoned lock is safe to
    /// keep using.
    fn lock_memo(&self) -> std::sync::MutexGuard<'_, AssocMemo> {
        self.memo.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Clone for GcdContext {
    fn clone(&self) -> Self {
        // The memo is lossy cache state, not semantics: a clone with a
        // fresh memo produces bit-identical normalizations.
        GcdContext::new()
    }
}

impl Default for GcdContext {
    fn default() -> Self {
        GcdContext::new()
    }
}

impl WeightContext for GcdContext {
    type Value = Domega;
    type Table = ExactTable<Domega>;

    fn new_table(&self) -> Self::Table {
        ExactTable::with_constants(Domega::zero(), Domega::one())
    }

    fn zero(&self) -> Domega {
        Domega::zero()
    }

    fn one(&self) -> Domega {
        Domega::one()
    }

    fn add(&self, a: &Domega, b: &Domega) -> Domega {
        a + b
    }

    fn mul(&self, a: &Domega, b: &Domega) -> Domega {
        a * b
    }

    fn neg(&self, a: &Domega) -> Domega {
        -a
    }

    fn conj(&self, a: &Domega) -> Domega {
        a.conj()
    }

    fn is_canonical_value(&self, v: &Domega) -> bool {
        // `is_reduced` is exactly "no pending lazy-GCD state": minimal √2
        // exponent and canonical (inline-where-it-fits) coefficients.
        v.is_reduced()
    }

    fn is_zero(&self, a: &Domega) -> bool {
        a.is_zero()
    }

    fn normalize(&self, ws: &mut [Domega]) -> Option<Domega> {
        // Algorithm 3, lazily: a plain Euclidean GCD chain over the raw
        // numerators (denominator exponents stay pending), then a single
        // memoized canonical-associate search and one cheap exact division
        // per weight. The GCD is unique only up to units, and the pending
        // `√2` powers shift it by further `D[ω]` units — both absorbed by
        // the unit-invariant canonical associate, so the output is
        // bit-identical to eager per-step canonicalization.
        let pivot = ws.iter().position(|w| !w.is_zero())?;
        let mut g: Option<Zomega> = None;
        for w in ws.iter() {
            if w.is_zero() {
                continue;
            }
            g = Some(match g {
                None => w.numerator().clone(),
                Some(acc) => acc.gcd(w.numerator()),
            });
            // Early exit: a unit GCD cannot shrink further.
            if g.as_ref().is_some_and(|g| g.euclidean_value().is_one()) {
                break;
            }
        }
        // aq-lint: allow(R1): the pivot exists, so at least one numerator contributed
        let g = g.expect("pivot exists");

        // Exact division by g in Z[ω], hoisting the division setup
        // (conjugate, Galois factor, field norm) out of the per-weight loop:
        // num/g = num·conj(g)·σ(N(g)) / fieldnorm(g), coordinate-exact
        // whenever g | num — which holds for every numerator by
        // construction of the GCD.
        let g_div = if g.is_one() {
            None
        } else {
            let n = g.norm();
            let denom = n.field_norm();
            let sigma = Zomega::new(n.v.clone(), IBig::zero(), -&n.v, n.u.clone());
            Some((&g.conj() * &sigma, denom))
        };
        let div_g = |num: &Zomega| match &g_div {
            None => num.clone(),
            Some((adj, denom)) => (num * adj).div_scalar_exact(denom),
        };

        // One canonical-associate search on z = w_pivot/g (memoized): the
        // batched replacement for per-step `gcd_canonical` calls.
        let z = Domega::new(div_g(ws[pivot].numerator()), ws[pivot].k());
        let (zc, unit, unit_inv) = self.lock_memo().triple(&z);
        // η = g·unit, so that w_pivot/η = canonical associate z_c.
        let eta = &Domega::from(g) * &unit;
        for (i, w) in ws.iter_mut().enumerate() {
            if w.is_zero() {
                continue;
            }
            if i == pivot {
                *w = Domega::from(zc.clone());
            } else {
                // w/η = (num/g)/√2^k · unit⁻¹ — the pending exponent is
                // paid here, once, by Domega's canonical reduction.
                let q = Domega::new(div_g(w.numerator()), w.k());
                *w = &q * &unit_inv;
            }
        }
        Some(eta)
    }

    fn from_exact(&self, d: &Domega) -> Domega {
        d.clone()
    }

    fn from_approx(&self, _c: Complex64) -> Option<Domega> {
        None
    }

    fn sqrt_inv(&self, a: &Domega) -> Option<Domega> {
        // same criterion as `Q[ω]`: p must be an even power of √2
        if a.numerator().is_one() && a.k() % 2 == 0 {
            Some(Domega::new(Zomega::one(), -(a.k() / 2)))
        } else {
            None
        }
    }

    fn to_complex(&self, a: &Domega) -> Complex64 {
        a.to_complex64()
    }

    fn value_bits(&self, a: &Domega) -> u64 {
        a.coeff_bits()
    }

    fn kind(&self) -> &'static str {
        "gcd-domega"
    }

    fn write_value(&self, v: &Domega, out: &mut ByteWriter) {
        put_zomega(v.numerator(), out);
        out.put_i64(v.k());
    }

    fn read_value(&self, r: &mut ByteReader<'_>) -> Result<Domega, String> {
        let num = take_zomega(r)?;
        let k = r.take_i64()?;
        Ok(Domega::new(num, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aq_rings::assoc::gcd_canonical;
    use aq_rings::Zomega;

    fn dw(a: i64, b: i64, c: i64, d: i64, k: i64) -> Domega {
        Domega::new(Zomega::new(a.into(), b.into(), c.into(), d.into()), k)
    }

    #[test]
    fn exact_table_dedups_structurally() {
        let ctx = QomegaContext::new();
        let mut t = ctx.new_table();
        let a = t.intern(Qomega::from_int_ratio(1, 3));
        let b = t.intern(&Qomega::from_int_ratio(2, 3) - &Qomega::from_int_ratio(1, 3));
        assert_eq!(a, b, "canonical forms must coincide");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn qomega_normalize_leftmost_becomes_one() {
        let ctx = QomegaContext::new();
        let mut ws = [
            Qomega::zero(),
            Qomega::from(Domega::one_over_sqrt2()),
            Qomega::from_int(-1),
            Qomega::from_int_ratio(3, 5),
        ];
        let orig = ws.clone();
        let eta = ctx.normalize(&mut ws).expect("nonzero");
        assert!(ws[1].is_one());
        for (w, o) in ws.iter().zip(&orig) {
            assert_eq!(&(&eta * w), o, "η·w' must reproduce w");
        }
    }

    #[test]
    fn qomega_normalize_all_zero() {
        let ctx = QomegaContext::new();
        assert!(ctx
            .normalize(&mut [Qomega::zero(), Qomega::zero()])
            .is_none());
    }

    #[test]
    fn gcd_normalize_reproduces_weights() {
        let ctx = GcdContext::new();
        let mut ws = [
            dw(0, 0, 0, 6, 1),
            dw(0, 0, 0, -9, 1),
            Domega::zero(),
            dw(0, 0, 3, 3, 1),
        ];
        let orig = ws.clone();
        let eta = ctx.normalize(&mut ws).expect("nonzero");
        for (w, o) in ws.iter().zip(&orig) {
            assert_eq!(&(&eta * w), o);
        }
        // the common factor 3 (times units) must have been extracted:
        // remaining weights have coprime numerators.
        let g = gcd_canonical(ws.iter()).expect("nonzero");
        assert!(
            g.euclidean_value().is_one(),
            "weights still share a factor: {g:?}"
        );
    }

    #[test]
    fn lazy_normalize_is_bit_identical_to_eager_reference() {
        // The eager Algorithm 3 this PR replaced: canonical GCD up front,
        // full Q[ω] field division per weight. The lazy path must agree
        // bitwise (canonical Domega representation is unique, so value
        // equality is structural equality).
        fn eager(ws: &mut [Domega]) -> Option<Domega> {
            let div = |a: &Domega, b: &Domega| {
                (&Qomega::from(a.clone()) / &Qomega::from(b.clone()))
                    .to_domega()
                    .expect("exact by construction")
            };
            let g = Domega::from(gcd_canonical(ws.iter())?);
            let pivot = ws.iter().position(|w| !w.is_zero()).expect("gcd found one");
            let z = div(&ws[pivot], &g);
            let (zc, unit) = aq_rings::assoc::canonical_associate(&z);
            let eta = &g * &unit;
            for (i, w) in ws.iter_mut().enumerate() {
                if w.is_zero() {
                    continue;
                }
                if i == pivot {
                    *w = Domega::from(zc.clone());
                } else {
                    *w = div(w, &eta);
                }
            }
            Some(eta)
        }

        let ctx = GcdContext::new();
        let tuples: Vec<Vec<Domega>> = vec![
            vec![dw(0, 0, 0, 6, 1), dw(0, 0, 0, -9, 1), dw(0, 0, 3, 3, 1)],
            vec![Domega::zero(), dw(1, 0, 2, 3, 0), dw(0, 1, 1, -1, 2)],
            vec![dw(2, 2, 0, 4, 1), dw(0, 0, 0, 2, 3), dw(0, 0, 0, 0, 0)],
            vec![dw(0, 0, 0, 5, 0), dw(0, 0, 0, 7, 0)],
            vec![dw(1, 1, 1, 3, 5), dw(-7, 2, 0, 0, -3)],
            vec![dw(0, 0, 0, 1, 1), dw(0, 0, 0, 1, 1)], // identical weights
            vec![Domega::zero(), dw(3, -1, 4, 2, 2)],   // single non-zero
        ];
        // run each tuple twice so the second pass exercises memo hits
        for _ in 0..2 {
            for t in &tuples {
                let mut lazy = t.clone();
                let mut reference = t.clone();
                let eta_lazy = ctx.normalize(&mut lazy);
                let eta_eager = eager(&mut reference);
                assert_eq!(eta_lazy, eta_eager, "η differs for {t:?}");
                assert_eq!(lazy, reference, "weights differ for {t:?}");
            }
        }
        let (hits, misses) = ctx.assoc_memo_stats();
        assert!(hits > 0, "second pass must hit the memo");
        assert!(misses > 0);
    }

    #[test]
    fn gcd_normalize_is_unit_invariant() {
        let ctx = GcdContext::new();
        let base = [dw(1, 0, 2, 3, 0), dw(0, 1, 1, -1, 2), dw(2, 2, 0, 4, 1)];
        let mut w1 = base.clone();
        let n1 = ctx.normalize(&mut w1).expect("nonzero");
        // scale all weights by a unit: ω/√2
        let u = &Domega::omega() * &Domega::one_over_sqrt2();
        let mut w2 = base.clone();
        for w in &mut w2 {
            *w = &*w * &u;
        }
        let n2 = ctx.normalize(&mut w2).expect("nonzero");
        assert_eq!(w1, w2, "normalized weights must be scale-invariant");
        assert_eq!(&n2, &(&n1 * &u));
    }

    #[test]
    fn algebraic_contexts_reject_irrational_gates() {
        let c = Complex64::from_polar_unit(0.3);
        assert!(QomegaContext::new().from_approx(c).is_none());
        assert!(GcdContext::new().from_approx(c).is_none());
    }

    #[test]
    fn value_bits_grow_with_coefficients() {
        let ctx = QomegaContext::new();
        let big = Qomega::from_int_ratio(i64::MAX, 3);
        assert!(ctx.value_bits(&big) >= 60);
        assert_eq!(ctx.value_bits(&Qomega::one()), 1);
    }
}
