//! Gate matrices and direct construction of (multi-)controlled gate DDs.

use std::fmt;

use aq_rings::{Complex64, Domega, Zomega};

use crate::edge::{Edge, MatId};
use crate::error::EngineError;
use crate::manager::Manager;
use crate::weight::{WeightContext, WeightId};

/// A 2×2 single-qubit gate matrix whose entries are either exact `D[ω]`
/// constants (Clifford+T and friends) or approximate complex doubles
/// (arbitrary rotations).
///
/// Exact entries are representable in *every* weight system; approximate
/// entries only in the numeric one — algebraic managers reject them, which
/// is precisely why the paper compiles the GSE rotations to Clifford+T
/// with Quipper before simulating them algebraically.
///
/// # Examples
///
/// ```
/// use aq_dd::GateMatrix;
///
/// assert!(GateMatrix::t().is_exact());
/// assert!(!GateMatrix::rz(0.123).is_exact());
/// ```
#[derive(Clone, PartialEq)]
pub struct GateMatrix {
    name: String,
    entries: [GateEntry; 4],
}

/// One entry of a [`GateMatrix`].
#[derive(Clone, PartialEq, Debug)]
pub enum GateEntry {
    /// An exact element of `D[ω]`.
    Exact(Domega),
    /// A complex double (for gates outside the Clifford+T entry ring).
    Approx(Complex64),
}

impl GateMatrix {
    /// Creates a gate from four exact entries in row-major order.
    pub fn from_exact(name: impl Into<String>, entries: [Domega; 4]) -> Self {
        let [a, b, c, d] = entries;
        GateMatrix {
            name: name.into(),
            entries: [
                GateEntry::Exact(a),
                GateEntry::Exact(b),
                GateEntry::Exact(c),
                GateEntry::Exact(d),
            ],
        }
    }

    /// Creates a gate from four complex entries in row-major order.
    pub fn from_complex(name: impl Into<String>, entries: [Complex64; 4]) -> Self {
        let [a, b, c, d] = entries;
        GateMatrix {
            name: name.into(),
            entries: [
                GateEntry::Approx(a),
                GateEntry::Approx(b),
                GateEntry::Approx(c),
                GateEntry::Approx(d),
            ],
        }
    }

    /// The gate's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Entries in row-major order.
    pub fn entries(&self) -> &[GateEntry; 4] {
        &self.entries
    }

    /// Returns `true` if every entry is an exact `D[ω]` constant.
    pub fn is_exact(&self) -> bool {
        self.entries
            .iter()
            .all(|e| matches!(e, GateEntry::Exact(_)))
    }

    /// The entries evaluated to complex doubles.
    pub fn to_complex(&self) -> [Complex64; 4] {
        let get = |e: &GateEntry| match e {
            GateEntry::Exact(d) => d.to_complex64(),
            GateEntry::Approx(c) => *c,
        };
        [
            get(&self.entries[0]),
            get(&self.entries[1]),
            get(&self.entries[2]),
            get(&self.entries[3]),
        ]
    }

    /// Hadamard `H = 1/√2 [[1, 1], [1, −1]]`.
    pub fn h() -> Self {
        let s = Domega::one_over_sqrt2();
        GateMatrix::from_exact("H", [s.clone(), s.clone(), s.clone(), -&s])
    }

    /// Pauli `X` (NOT).
    pub fn x() -> Self {
        GateMatrix::from_exact(
            "X",
            [Domega::zero(), Domega::one(), Domega::one(), Domega::zero()],
        )
    }

    /// Pauli `Y`.
    pub fn y() -> Self {
        GateMatrix::from_exact(
            "Y",
            [Domega::zero(), -&Domega::i(), Domega::i(), Domega::zero()],
        )
    }

    /// Pauli `Z`.
    pub fn z() -> Self {
        GateMatrix::from_exact(
            "Z",
            [
                Domega::one(),
                Domega::zero(),
                Domega::zero(),
                -&Domega::one(),
            ],
        )
    }

    /// Phase gate `S = diag(1, i) = T²`.
    pub fn s() -> Self {
        GateMatrix::from_exact(
            "S",
            [Domega::one(), Domega::zero(), Domega::zero(), Domega::i()],
        )
    }

    /// Inverse phase gate `S† = diag(1, −i)`.
    pub fn sdg() -> Self {
        GateMatrix::from_exact(
            "Sdg",
            [Domega::one(), Domega::zero(), Domega::zero(), -&Domega::i()],
        )
    }

    /// `T = diag(1, ω)`, the π/4 gate.
    pub fn t() -> Self {
        GateMatrix::from_exact(
            "T",
            [
                Domega::one(),
                Domega::zero(),
                Domega::zero(),
                Domega::omega(),
            ],
        )
    }

    /// `T† = diag(1, ω⁷)`.
    pub fn tdg() -> Self {
        GateMatrix::from_exact(
            "Tdg",
            [
                Domega::one(),
                Domega::zero(),
                Domega::zero(),
                Domega::from(Zomega::omega().pow(7)),
            ],
        )
    }

    /// `√X = 1/2 [[1+i, 1−i], [1−i, 1+i]]` (exact in `D[ω]`).
    pub fn sx() -> Self {
        let half = |z: Zomega| Domega::new(z, 2); // z / 2
        let one_plus_i = &Zomega::one() + &Zomega::i();
        let one_minus_i = &Zomega::one() - &Zomega::i();
        GateMatrix::from_exact(
            "SX",
            [
                half(one_plus_i.clone()),
                half(one_minus_i.clone()),
                half(one_minus_i),
                half(one_plus_i),
            ],
        )
    }

    /// The adjoint (conjugate transpose) of the gate — its inverse, since
    /// gate matrices are unitary.
    ///
    /// ```
    /// use aq_dd::GateMatrix;
    /// assert_eq!(GateMatrix::t().adjoint().entries(), GateMatrix::tdg().entries());
    /// ```
    pub fn adjoint(&self) -> GateMatrix {
        let conj = |e: &GateEntry| match e {
            GateEntry::Exact(d) => GateEntry::Exact(d.conj()),
            GateEntry::Approx(c) => GateEntry::Approx(c.conj()),
        };
        GateMatrix {
            name: format!("{}†", self.name),
            entries: [
                conj(&self.entries[0]),
                conj(&self.entries[2]),
                conj(&self.entries[1]),
                conj(&self.entries[3]),
            ],
        }
    }

    /// Phase gate `diag(1, e^{iθ})`. Exact when θ is a multiple of π/4,
    /// approximate otherwise.
    pub fn phase(theta: f64) -> Self {
        if let Some(j) = multiple_of_pi_over_4(theta) {
            return GateMatrix::from_exact(
                format!("P({theta:.4})"),
                [
                    Domega::one(),
                    Domega::zero(),
                    Domega::zero(),
                    Domega::from(Zomega::omega().pow(j)),
                ],
            );
        }
        GateMatrix::from_complex(
            format!("P({theta:.4})"),
            [
                Complex64::ONE,
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::from_polar_unit(theta),
            ],
        )
    }

    /// `Rz(θ) = diag(e^{−iθ/2}, e^{iθ/2})`.
    pub fn rz(theta: f64) -> Self {
        GateMatrix::from_complex(
            format!("Rz({theta:.4})"),
            [
                Complex64::from_polar_unit(-theta / 2.0),
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::from_polar_unit(theta / 2.0),
            ],
        )
    }

    /// `Ry(θ)` rotation.
    pub fn ry(theta: f64) -> Self {
        let (s, c) = (theta / 2.0).sin_cos();
        GateMatrix::from_complex(
            format!("Ry({theta:.4})"),
            [
                Complex64::new(c, 0.0),
                Complex64::new(-s, 0.0),
                Complex64::new(s, 0.0),
                Complex64::new(c, 0.0),
            ],
        )
    }

    /// `Rx(θ)` rotation.
    pub fn rx(theta: f64) -> Self {
        let (s, c) = (theta / 2.0).sin_cos();
        GateMatrix::from_complex(
            format!("Rx({theta:.4})"),
            [
                Complex64::new(c, 0.0),
                Complex64::new(0.0, -s),
                Complex64::new(0.0, -s),
                Complex64::new(c, 0.0),
            ],
        )
    }
}

/// Detects θ = j·π/4 (within double rounding), returning `j mod 8`.
fn multiple_of_pi_over_4(theta: f64) -> Option<u32> {
    let q = theta / std::f64::consts::FRAC_PI_4;
    let j = q.round();
    if (q - j).abs() < 1e-12 {
        Some((j.rem_euclid(8.0)) as u32 % 8)
    } else {
        None
    }
}

impl fmt::Debug for GateMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GateMatrix({})", self.name)
    }
}

/// Error returned when a gate matrix cannot be represented in the
/// manager's weight system (e.g. an arbitrary rotation in an algebraic
/// manager).
///
/// Kept for backwards compatibility; [`Manager::try_gate`] now reports
/// this condition as [`EngineError::UnrepresentableGate`], which this
/// type converts into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnrepresentableGateError {
    gate: String,
}

impl From<UnrepresentableGateError> for EngineError {
    fn from(e: UnrepresentableGateError) -> EngineError {
        EngineError::UnrepresentableGate { gate: e.gate }
    }
}

impl fmt::Display for UnrepresentableGateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gate `{}` has entries outside this weight system; compile it to Clifford+T first",
            self.gate
        )
    }
}

impl std::error::Error for UnrepresentableGateError {}

impl<W: WeightContext> Manager<W> {
    /// Builds the operator DD for `gate` applied to `target` under the
    /// given `(qubit, polarity)` controls (`true` = control on `|1⟩`).
    ///
    /// The construction is direct and bottom-up — no Kronecker products,
    /// no exponential intermediates: identity chains for untouched qubits,
    /// diagonal control nodes, the 2×2 body at the target level.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnrepresentableGate`] if an entry is not
    /// representable in the weight system (see [`GateMatrix`]), or a
    /// budget error when a limit is crossed.
    ///
    /// # Panics
    ///
    /// Panics if `target` or a control is out of range, or a control
    /// coincides with the target.
    pub fn try_gate(
        &mut self,
        gate: &GateMatrix,
        target: u32,
        controls: &[(u32, bool)],
    ) -> Result<Edge<MatId>, EngineError> {
        assert!(target < self.n_qubits, "target out of range");
        for &(c, _) in controls {
            assert!(c < self.n_qubits, "control out of range");
            assert!(c != target, "control coincides with target");
        }

        let mut entry_ids = [WeightId::ZERO; 4];
        for (i, e) in gate.entries().iter().enumerate() {
            let v =
                match e {
                    GateEntry::Exact(d) => self.ctx.from_exact(d),
                    GateEntry::Approx(c) => self.ctx.from_approx(*c).ok_or_else(|| {
                        EngineError::UnrepresentableGate {
                            gate: gate.name().to_string(),
                        }
                    })?,
                };
            entry_ids[i] = self.try_intern(v)?;
        }

        let is_control = |v: u32| controls.iter().find(|&&(c, _)| c == v).map(|&(_, p)| p);

        // Identity chains id(v) for levels v..n−1 are built lazily.
        let mut id_below = Edge {
            w: WeightId::ONE,
            n: MatId::TERMINAL,
        };

        // Four block edges, bottom-up below the target.
        let mut blocks: [Edge<MatId>; 4] = entry_ids.map(|w| {
            if w == WeightId::ZERO {
                Edge::ZERO_MAT
            } else {
                Edge {
                    w,
                    n: MatId::TERMINAL,
                }
            }
        });

        for v in (target + 1..self.n_qubits).rev() {
            if let Some(pol) = is_control(v) {
                let mut nb = [Edge::ZERO_MAT; 4];
                for (i, b) in blocks.iter().enumerate() {
                    let diag = if i == 0 || i == 3 {
                        id_below
                    } else {
                        Edge::ZERO_MAT
                    };
                    nb[i] = if pol {
                        self.try_make_mat_node(v, [diag, Edge::ZERO_MAT, Edge::ZERO_MAT, *b])?
                    } else {
                        self.try_make_mat_node(v, [*b, Edge::ZERO_MAT, Edge::ZERO_MAT, diag])?
                    };
                }
                blocks = nb;
            } else {
                let mut nb = [Edge::ZERO_MAT; 4];
                for (i, b) in blocks.iter().enumerate() {
                    nb[i] = self.try_make_mat_node(v, [*b, Edge::ZERO_MAT, Edge::ZERO_MAT, *b])?;
                }
                blocks = nb;
            }
            id_below =
                self.try_make_mat_node(v, [id_below, Edge::ZERO_MAT, Edge::ZERO_MAT, id_below])?;
        }

        // Target level combines the four blocks into one node; the
        // identity chain is extended across the target for controls above.
        let mut e = self.try_make_mat_node(target, blocks)?;
        let mut id_from =
            self.try_make_mat_node(target, [id_below, Edge::ZERO_MAT, Edge::ZERO_MAT, id_below])?;

        for v in (0..target).rev() {
            e = if let Some(pol) = is_control(v) {
                if pol {
                    self.try_make_mat_node(v, [id_from, Edge::ZERO_MAT, Edge::ZERO_MAT, e])?
                } else {
                    self.try_make_mat_node(v, [e, Edge::ZERO_MAT, Edge::ZERO_MAT, id_from])?
                }
            } else {
                self.try_make_mat_node(v, [e, Edge::ZERO_MAT, Edge::ZERO_MAT, e])?
            };
            id_from =
                self.try_make_mat_node(v, [id_from, Edge::ZERO_MAT, Edge::ZERO_MAT, id_from])?;
        }
        Ok(e)
    }

    /// Like [`Manager::try_gate`] but panics on unrepresentable entries —
    /// convenient for exact gates.
    ///
    /// # Panics
    ///
    /// Panics if the gate is not representable in this weight system, on a
    /// crossed budget limit, or on the index errors of
    /// [`Manager::try_gate`].
    pub fn gate(
        &mut self,
        gate: &GateMatrix,
        target: u32,
        controls: &[(u32, bool)],
    ) -> Edge<MatId> {
        self.try_gate(gate, target, controls)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a SWAP between two qubits as three CNOTs.
    ///
    /// # Panics
    ///
    /// Panics if the qubits coincide or are out of range.
    pub fn swap(&mut self, a: u32, b: u32) -> Edge<MatId> {
        assert!(a != b, "swap of a qubit with itself");
        let x = GateMatrix::x();
        let c1 = self.gate(&x, b, &[(a, true)]);
        let c2 = self.gate(&x, a, &[(b, true)]);
        let m = self.mat_mul(&c2, &c1);
        self.mat_mul(&c1, &m)
    }
}
