//! A fast, non-cryptographic hasher for the engine's hot paths.
//!
//! The standard library's default `SipHash` is DoS-resistant but costs tens
//! of cycles per write; unique-table and compute-cache keys here are small
//! fixed-size integer tuples produced by the engine itself, so a
//! multiplicative FxHash-style mix (as used by rustc) is both safe and
//! several times faster.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// The golden-ratio multiplier (`2^64 / φ`, forced odd).
const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// Multiplicative word-at-a-time hasher (FxHash).
///
/// Each written word is xor-ed into the state, which is then rotated and
/// multiplied by [`SEED`]; short integer keys hash in a handful of cycles.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // aq-lint: allow(R1): chunks_exact(8) yields exactly 8-byte slices
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

/// Hashes a value once with [`FxHasher`] (for tables that store precomputed
/// hashes).
#[inline]
pub fn fx_hash<T: Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_value_sensitive() {
        assert_eq!(fx_hash(&(1u32, 2u32)), fx_hash(&(1u32, 2u32)));
        assert_ne!(fx_hash(&(1u32, 2u32)), fx_hash(&(2u32, 1u32)));
        assert_ne!(fx_hash(&0u64), fx_hash(&1u64));
    }

    #[test]
    fn byte_writes_cover_remainders() {
        // exercise the chunked `write` path with non-multiple-of-8 lengths
        for len in 0..20usize {
            let bytes: Vec<u8> = (0..len as u8).collect();
            let mut h = FxHasher::default();
            h.write(&bytes);
            let first = h.finish();
            let mut h2 = FxHasher::default();
            h2.write(&bytes);
            assert_eq!(first, h2.finish());
        }
    }

    #[test]
    fn fx_map_basic() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * i);
        }
        assert_eq!(m.get(&31), Some(&961));
        assert_eq!(m.len(), 1000);
    }
}
