//! Verification-oriented operations: exact inner products, operator
//! adjoints, Kronecker composition and measurement sampling.
//!
//! These are the design-task payoffs of an exact representation that the
//! paper highlights (Sec. V-B): with canonical algebraic diagrams,
//! fidelities and unitarity checks are computed without any numerical
//! error at all.

use std::collections::HashMap;

use crate::edge::{Edge, MatId, VecId};
use crate::manager::Manager;
use crate::weight::{WeightContext, WeightId, WeightTable};

impl<W: WeightContext> Manager<W> {
    /// The inner product `⟨a|b⟩`, computed in the weight system itself —
    /// **exactly** for the algebraic contexts.
    ///
    /// For normalized states, `⟨ψ|ψ⟩ = 1` holds structurally; two states
    /// are equal iff their fidelity `|⟨a|b⟩|²` is 1.
    ///
    /// # Examples
    ///
    /// ```
    /// use aq_dd::{GateMatrix, Manager, QomegaContext, WeightContext};
    ///
    /// let mut m = Manager::new(QomegaContext::new(), 2);
    /// let z = m.basis_state(0);
    /// let h = m.gate(&GateMatrix::h(), 0, &[]);
    /// let plus = m.mat_vec(&h, &z);
    /// // ⟨0|+⟩ = 1/√2, exactly:
    /// let ip = m.inner_product(&z, &plus);
    /// assert_eq!(ip, m.ctx().from_exact(&aq_rings::Domega::one_over_sqrt2()));
    /// ```
    pub fn inner_product(&mut self, a: &Edge<VecId>, b: &Edge<VecId>) -> W::Value {
        if a.is_zero() || b.is_zero() {
            return self.ctx.zero();
        }
        let mut memo = HashMap::new();
        let sub = self.ip_rec(a.n, b.n, &mut memo);
        let wa = self.ctx.conj(self.table.get(a.w));
        let wb = self.table.get(b.w).clone();
        let top = self.ctx.mul(&wa, &wb);
        self.ctx.mul(&top, &sub)
    }

    fn ip_rec(
        &mut self,
        a: VecId,
        b: VecId,
        memo: &mut HashMap<(VecId, VecId), W::Value>,
    ) -> W::Value {
        if a.is_terminal() {
            debug_assert!(b.is_terminal(), "rank mismatch in inner product");
            return self.ctx.one();
        }
        if let Some(hit) = memo.get(&(a, b)) {
            return hit.clone();
        }
        let na = self.vec_nodes[a.0 as usize];
        let nb = self.vec_nodes[b.0 as usize];
        debug_assert_eq!(na.var, nb.var, "level mismatch in inner product");
        let mut acc = self.ctx.zero();
        for i in 0..2 {
            let ca = na.children[i];
            let cb = nb.children[i];
            if ca.is_zero() || cb.is_zero() {
                continue;
            }
            let sub = self.ip_rec(ca.n, cb.n, memo);
            let wa = self.ctx.conj(self.table.get(ca.w));
            let wb = self.table.get(cb.w).clone();
            let w = self.ctx.mul(&wa, &wb);
            let term = self.ctx.mul(&w, &sub);
            acc = self.ctx.add(&acc, &term);
        }
        memo.insert((a, b), acc.clone());
        acc
    }

    /// The adjoint (conjugate transpose) `U†` of an operator DD.
    ///
    /// With it, unitarity is an O(1) check after one multiplication:
    /// `U · U† == identity()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use aq_dd::{GateMatrix, Manager, QomegaContext};
    ///
    /// let mut m = Manager::new(QomegaContext::new(), 2);
    /// let t = m.gate(&GateMatrix::t(), 1, &[(0, true)]);
    /// let tdg = m.mat_adjoint(&t);
    /// let prod = m.mat_mul(&t, &tdg);
    /// assert_eq!(prod, m.identity());
    /// ```
    pub fn mat_adjoint(&mut self, e: &Edge<MatId>) -> Edge<MatId> {
        if e.is_zero() {
            return Edge::ZERO_MAT;
        }
        let mut memo = HashMap::new();
        let sub = self.adj_rec(e.n, &mut memo);
        let w = self.ctx.conj(self.table.get(e.w));
        let wid = self.intern(w);
        let top = self.w_mul(wid, sub.w);
        if top == WeightId::ZERO {
            Edge::ZERO_MAT
        } else {
            Edge { w: top, n: sub.n }
        }
    }

    fn adj_rec(&mut self, n: MatId, memo: &mut HashMap<MatId, Edge<MatId>>) -> Edge<MatId> {
        if n.is_terminal() {
            return Edge {
                w: WeightId::ONE,
                n: MatId::TERMINAL,
            };
        }
        if let Some(&hit) = memo.get(&n) {
            return hit;
        }
        let node = self.mat_nodes[n.0 as usize];
        // transpose: (r,c) ↦ (c,r), i.e. children 1 and 2 swap
        let order = [0usize, 2, 1, 3];
        let mut children = [Edge::ZERO_MAT; 4];
        for (i, &src) in order.iter().enumerate() {
            let c = node.children[src];
            if c.is_zero() {
                continue;
            }
            let sub = self.adj_rec(c.n, memo);
            let w = self.ctx.conj(self.table.get(c.w));
            let wid = self.intern(w);
            let combined = self.w_mul(wid, sub.w);
            if combined != WeightId::ZERO {
                children[i] = Edge {
                    w: combined,
                    n: sub.n,
                };
            }
        }
        let e = self.make_mat_node(node.var, children);
        memo.insert(n, e);
        e
    }

    /// Samples a computational-basis measurement outcome from a state DD.
    ///
    /// `unit_random` must return values uniform in `[0, 1)`; branch
    /// probabilities are computed from the (converted) weights, so the
    /// sampling distribution matches [`Manager::amplitudes`] squared.
    ///
    /// # Panics
    ///
    /// Panics if `e` is the zero edge (nothing to measure).
    pub fn sample_measurement(
        &mut self,
        e: &Edge<VecId>,
        mut unit_random: impl FnMut() -> f64,
    ) -> u64 {
        assert!(!e.is_zero(), "cannot measure the zero vector");
        let mut norms: HashMap<VecId, f64> = HashMap::new();
        let total = self.subtree_norm(e.n, &mut norms);
        debug_assert!(total > 0.0, "state has zero norm");

        let mut outcome = 0u64;
        let mut node = e.n;
        while !node.is_terminal() {
            let n = self.vec_nodes[node.0 as usize];
            let weight_prob = |m: &mut Self, c: Edge<VecId>, norms: &mut HashMap<VecId, f64>| {
                if c.is_zero() {
                    0.0
                } else {
                    let w = m.ctx.to_complex(m.table.get(c.w)).norm_sqr();
                    w * m.subtree_norm(c.n, norms)
                }
            };
            let p0 = weight_prob(self, n.children[0], &mut norms);
            let p1 = weight_prob(self, n.children[1], &mut norms);
            let r = unit_random() * (p0 + p1);
            let bit = usize::from(r >= p0);
            outcome = (outcome << 1) | bit as u64;
            node = n.children[bit].n;
        }
        outcome
    }

    /// Squared norm of the sub-vector rooted at `n` (weight-1 edge).
    fn subtree_norm(&mut self, n: VecId, memo: &mut HashMap<VecId, f64>) -> f64 {
        if n.is_terminal() {
            return 1.0;
        }
        if let Some(&hit) = memo.get(&n) {
            return hit;
        }
        let node = self.vec_nodes[n.0 as usize];
        let mut total = 0.0;
        for c in node.children {
            if c.is_zero() {
                continue;
            }
            let w = self.ctx.to_complex(self.table.get(c.w)).norm_sqr();
            total += w * self.subtree_norm(c.n, memo);
        }
        memo.insert(n, total);
        total
    }
}

/// Kronecker composition of two states from (possibly different) managers
/// over the same weight system: builds `|a⟩ ⊗ |b⟩` in a fresh manager on
/// `n_a + n_b` qubits.
///
/// # Examples
///
/// ```
/// use aq_dd::{kron_states, GateMatrix, Manager, QomegaContext};
///
/// let mut ma = Manager::new(QomegaContext::new(), 1);
/// let plus = {
///     let z = ma.basis_state(0);
///     let h = ma.gate(&GateMatrix::h(), 0, &[]);
///     ma.mat_vec(&h, &z)
/// };
/// let mut mb = Manager::new(QomegaContext::new(), 2);
/// let one = mb.basis_state(0b11);
/// let (mut m, composed) = kron_states(QomegaContext::new(), (&ma, &plus), (&mb, &one));
/// let amps = m.amplitudes(&composed);
/// assert!((amps[0b011].re - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
/// assert!((amps[0b111].re - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
/// ```
pub fn kron_states<W: WeightContext>(
    ctx: W,
    a: (&Manager<W>, &Edge<VecId>),
    b: (&Manager<W>, &Edge<VecId>),
) -> (Manager<W>, Edge<VecId>) {
    let (ma, ea) = a;
    let (mb, eb) = b;
    let n = ma.n_qubits() + mb.n_qubits();
    let mut dst = Manager::new(ctx, n);
    if ea.is_zero() || eb.is_zero() {
        return (dst, Edge::ZERO_VEC);
    }

    // copy b shifted below a's levels
    let shift = ma.n_qubits();
    let mut memo_b: HashMap<VecId, Edge<VecId>> = HashMap::new();
    let b_root = copy_shifted(mb, &mut dst, eb.n, shift, &mut memo_b);

    // copy a, grafting b's root (with weight folded in) onto terminals
    let wb = dst.intern(mb.weight(eb.w).clone());
    let graft = Edge {
        w: dst.w_mul(wb, b_root.w),
        n: b_root.n,
    };
    let mut memo_a: HashMap<VecId, Edge<VecId>> = HashMap::new();
    let a_root = graft_above(ma, &mut dst, ea.n, graft, &mut memo_a);
    let wa = dst.intern(ma.weight(ea.w).clone());
    let w0 = dst.w_mul(wa, a_root.w);
    (dst, Edge { w: w0, n: a_root.n })
}

fn copy_shifted<W: WeightContext>(
    src: &Manager<W>,
    dst: &mut Manager<W>,
    n: VecId,
    shift: u32,
    memo: &mut HashMap<VecId, Edge<VecId>>,
) -> Edge<VecId> {
    if n.is_terminal() {
        return Edge {
            w: WeightId::ONE,
            n: VecId::TERMINAL,
        };
    }
    if let Some(&hit) = memo.get(&n) {
        return hit;
    }
    let node = src.vec_nodes[n.0 as usize];
    let mut children = [Edge::ZERO_VEC; 2];
    for (i, c) in node.children.iter().enumerate() {
        if c.is_zero() {
            continue;
        }
        let sub = copy_shifted(src, dst, c.n, shift, memo);
        let w = dst.intern(src.weight(c.w).clone());
        let combined = dst.w_mul(w, sub.w);
        if combined != WeightId::ZERO {
            children[i] = Edge {
                w: combined,
                n: sub.n,
            };
        }
    }
    let e = dst.make_vec_node(node.var + shift, children);
    memo.insert(n, e);
    e
}

fn graft_above<W: WeightContext>(
    src: &Manager<W>,
    dst: &mut Manager<W>,
    n: VecId,
    graft: Edge<VecId>,
    memo: &mut HashMap<VecId, Edge<VecId>>,
) -> Edge<VecId> {
    if n.is_terminal() {
        return graft;
    }
    if let Some(&hit) = memo.get(&n) {
        return hit;
    }
    let node = src.vec_nodes[n.0 as usize];
    let mut children = [Edge::ZERO_VEC; 2];
    for (i, c) in node.children.iter().enumerate() {
        if c.is_zero() {
            continue;
        }
        let sub = graft_above(src, dst, c.n, graft, memo);
        let w = dst.intern(src.weight(c.w).clone());
        let combined = dst.w_mul(w, sub.w);
        if combined != WeightId::ZERO {
            children[i] = Edge {
                w: combined,
                n: sub.n,
            };
        }
    }
    let e = dst.make_vec_node(node.var, children);
    memo.insert(n, e);
    e
}
