//! Reading decision diagrams back out: amplitudes, matrices, node counts.

use std::collections::HashSet;

use aq_rings::Complex64;

use crate::edge::{Edge, MatId, VecId};
use crate::manager::Manager;
use crate::weight::{WeightContext, WeightTable};

impl<W: WeightContext> Manager<W> {
    /// The full `2ⁿ` amplitude vector, evaluated to complex doubles.
    ///
    /// For algebraic contexts the path products are computed **exactly**
    /// and converted only at the end — this is the reference vector
    /// `v_alg` of the paper's accuracy metric (footnote 8).
    pub fn amplitudes(&mut self, e: &Edge<VecId>) -> Vec<Complex64> {
        let dim = 1usize << self.n_qubits;
        let mut out = vec![Complex64::ZERO; dim];
        if e.is_zero() {
            return out;
        }
        let root_w = self.table.get(e.w).clone();
        self.walk_amplitudes(e.n, root_w, 0, 0, &mut out);
        out
    }

    fn walk_amplitudes(
        &mut self,
        n: VecId,
        acc: W::Value,
        prefix: usize,
        depth: u32,
        out: &mut [Complex64],
    ) {
        if n.is_terminal() {
            debug_assert_eq!(depth, self.n_qubits, "short path in vector DD");
            out[prefix] = self.ctx.to_complex(&acc);
            return;
        }
        let node = self.vec_nodes[n.0 as usize];
        for (bit, child) in node.children.into_iter().enumerate() {
            if child.is_zero() {
                continue;
            }
            let w = self.ctx.mul(&acc, self.table.get(child.w));
            self.walk_amplitudes(child.n, w, (prefix << 1) | bit, depth + 1, out);
        }
    }

    /// A single amplitude `⟨index|ψ⟩` (qubit 0 = most significant bit),
    /// computed along one root-to-terminal path.
    ///
    /// For registers wider than 64 qubits, the high qubits (which a `u64`
    /// index cannot address) are read as `|0⟩` — mirroring
    /// [`Manager::basis_state`](Self::basis_state).
    pub fn amplitude(&self, e: &Edge<VecId>, index: u64) -> Complex64 {
        if e.is_zero() {
            return Complex64::ZERO;
        }
        let mut acc = self.table.get(e.w).clone();
        let mut n = e.n;
        let mut depth = 0;
        while !n.is_terminal() {
            let node = self.vec_nodes[n.0 as usize];
            let shift = self.n_qubits - 1 - depth;
            let bit = if shift >= u64::BITS {
                0
            } else {
                ((index >> shift) & 1) as usize
            };
            let child = node.children[bit];
            if child.is_zero() {
                return Complex64::ZERO;
            }
            acc = self.ctx.mul(&acc, self.table.get(child.w));
            n = child.n;
            depth += 1;
        }
        self.ctx.to_complex(&acc)
    }

    /// The full `2ⁿ × 2ⁿ` operator matrix in row-major order. Exponential —
    /// test/diagnostic use only.
    pub fn matrix(&mut self, e: &Edge<MatId>) -> Vec<Vec<Complex64>> {
        let dim = 1usize << self.n_qubits;
        let mut out = vec![vec![Complex64::ZERO; dim]; dim];
        if e.is_zero() {
            return out;
        }
        let root_w = self.table.get(e.w).clone();
        self.walk_matrix(e.n, root_w, 0, 0, &mut out);
        out
    }

    fn walk_matrix(
        &mut self,
        n: MatId,
        acc: W::Value,
        row: usize,
        col: usize,
        out: &mut [Vec<Complex64>],
    ) {
        if n.is_terminal() {
            out[row][col] = self.ctx.to_complex(&acc);
            return;
        }
        let node = self.mat_nodes[n.0 as usize];
        for (i, child) in node.children.into_iter().enumerate() {
            if child.is_zero() {
                continue;
            }
            let (r, c) = (i >> 1, i & 1);
            let w = self.ctx.mul(&acc, self.table.get(child.w));
            self.walk_matrix(child.n, w, (row << 1) | r, (col << 1) | c, out);
        }
    }

    /// Number of distinct non-terminal nodes reachable from a vector edge —
    /// the size metric of Figs. 2–5 of the paper.
    pub fn vec_nodes(&self, e: &Edge<VecId>) -> usize {
        let mut seen = HashSet::new();
        let mut stack = vec![e.n];
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n) {
                continue;
            }
            for c in self.vec_nodes[n.0 as usize].children {
                if !c.is_zero() {
                    stack.push(c.n);
                }
            }
        }
        seen.len()
    }

    /// Number of distinct non-terminal nodes reachable from a matrix edge.
    pub fn mat_nodes(&self, e: &Edge<MatId>) -> usize {
        let mut seen = HashSet::new();
        let mut stack = vec![e.n];
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n) {
                continue;
            }
            for c in self.mat_nodes[n.0 as usize].children {
                if !c.is_zero() {
                    stack.push(c.n);
                }
            }
        }
        seen.len()
    }

    /// Largest coefficient bit-width among the weights reachable from a
    /// vector edge (1 for floats) — the growth metric behind the GSE
    /// overhead analysis in Sec. V-B of the paper.
    pub fn max_weight_bits(&self, e: &Edge<VecId>) -> u64 {
        let mut best = self.ctx.value_bits(self.table.get(e.w));
        let mut seen = HashSet::new();
        let mut stack = vec![e.n];
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n) {
                continue;
            }
            for c in self.vec_nodes[n.0 as usize].children {
                if !c.is_zero() {
                    best = best.max(self.ctx.value_bits(self.table.get(c.w)));
                    stack.push(c.n);
                }
            }
        }
        best
    }

    /// Edge-weight statistics of a state DD: `(total_edges, unit_edges)`
    /// counting non-zero edges reachable from `e` (including the root).
    ///
    /// The fraction of *trivial* (weight-1) edges is the quantity the
    /// paper uses to explain why `Q[ω]` normalization outperforms the GCD
    /// scheme (Sec. V-B): trivial weights make the arithmetic cheap.
    pub fn vec_weight_stats(&self, e: &Edge<VecId>) -> (usize, usize) {
        use crate::weight::WeightId;
        if e.is_zero() {
            return (0, 0);
        }
        let mut total = 1;
        let mut unit = usize::from(e.w == WeightId::ONE);
        let mut seen = HashSet::new();
        let mut stack = vec![e.n];
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n) {
                continue;
            }
            for c in self.vec_nodes[n.0 as usize].children {
                if !c.is_zero() {
                    total += 1;
                    unit += usize::from(c.w == WeightId::ONE);
                    stack.push(c.n);
                }
            }
        }
        (total, unit)
    }

    /// The squared norm `⟨ψ|ψ⟩` of a state DD (exactly 1 for algebraic
    /// simulations of unitary circuits; drifts for numeric ones).
    pub fn norm_sqr(&mut self, e: &Edge<VecId>) -> f64 {
        self.amplitudes(e).iter().map(|a| a.norm_sqr()).sum()
    }
}
