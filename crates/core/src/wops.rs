//! Weight-handle operation caches: interned [`WeightId`]s as the currency
//! of the hot path.
//!
//! Every weight an operation touches is already interned, so a pair of ids
//! identifies the exact inputs of a ring operation. Caching
//! `(op, id, id) → id` lets repeated multiplications and additions skip
//! both the ring arithmetic *and* the intern-table probe; caching
//! `[ids] → ([ids], η)` does the same for whole-node normalization — where
//! the expensive work of the algebraic contexts (field inverses, GCD
//! chains, canonical associates) actually lives.
//!
//! Both caches are direct-mapped [`LossyCache`]s: bounded, eviction on
//! collision, identical results on hit or miss. Soundness rests on the
//! weight table being append-only — an id never changes its value within a
//! manager's lifetime, and compaction/snapshot-load build fresh managers
//! with fresh (empty) caches.

use crate::cache::{CacheStats, LossyCache};
use crate::weight::WeightId;

/// Op tag for addition in the pair cache.
pub(crate) const OP_ADD: u8 = 0;
/// Op tag for multiplication in the pair cache.
pub(crate) const OP_MUL: u8 = 1;

/// The per-manager weight-operation cache bundle.
#[derive(Debug)]
pub(crate) struct WeightOpCache {
    /// `(op, a, b) → a ∘ b` for commutative ring ops on interned weights.
    /// Keys are canonically ordered (`a ≤ b`) so both operand orders hit.
    pairs: LossyCache<(u8, WeightId, WeightId), WeightId>,
    /// Whole-node normalization of a 2-weight (vector node) row:
    /// `[w0, w1] → ([w0', w1'], η)`, all interned.
    norm2: LossyCache<[WeightId; 2], ([WeightId; 2], WeightId)>,
    /// Whole-node normalization of a 4-weight (matrix node) row.
    norm4: LossyCache<[WeightId; 4], ([WeightId; 4], WeightId)>,
}

impl WeightOpCache {
    /// Creates the bundle with `capacity` slots per cache.
    pub fn new(capacity: usize) -> Self {
        WeightOpCache {
            pairs: LossyCache::new(capacity),
            norm2: LossyCache::new(capacity),
            norm4: LossyCache::new(capacity),
        }
    }

    /// Looks up a commutative pair op, canonicalizing the operand order.
    #[inline]
    pub fn get_pair(&mut self, op: u8, a: WeightId, b: WeightId) -> Option<WeightId> {
        self.pairs.get(&Self::pair_key(op, a, b))
    }

    /// Records a pair-op result.
    #[inline]
    pub fn put_pair(&mut self, op: u8, a: WeightId, b: WeightId, r: WeightId) {
        self.pairs.insert(Self::pair_key(op, a, b), r);
    }

    #[inline]
    fn pair_key(op: u8, a: WeightId, b: WeightId) -> (u8, WeightId, WeightId) {
        if a <= b {
            (op, a, b)
        } else {
            (op, b, a)
        }
    }

    /// Looks up a 2-weight normalization.
    #[inline]
    pub fn get_norm2(&mut self, key: &[WeightId; 2]) -> Option<([WeightId; 2], WeightId)> {
        self.norm2.get(key)
    }

    /// Records a 2-weight normalization.
    #[inline]
    pub fn put_norm2(&mut self, key: [WeightId; 2], r: ([WeightId; 2], WeightId)) {
        self.norm2.insert(key, r);
    }

    /// Looks up a 4-weight normalization.
    #[inline]
    pub fn get_norm4(&mut self, key: &[WeightId; 4]) -> Option<([WeightId; 4], WeightId)> {
        self.norm4.get(key)
    }

    /// Records a 4-weight normalization.
    #[inline]
    pub fn put_norm4(&mut self, key: [WeightId; 4], r: ([WeightId; 4], WeightId)) {
        self.norm4.insert(key, r);
    }

    /// Lifetime counters of the pair-op cache.
    pub fn pair_stats(&self) -> CacheStats {
        self.pairs.stats()
    }

    /// Combined lifetime counters of both normalization caches.
    pub fn norm_stats(&self) -> CacheStats {
        let mut s = self.norm2.stats();
        s.absorb(&self.norm4.stats());
        s
    }

    /// Drops all entries (counters are kept, dropped entries recorded in
    /// [`CacheStats::cleared`]).
    pub fn clear(&mut self) {
        self.pairs.clear();
        self.norm2.clear();
        self.norm4.clear();
    }

    /// Empties all three caches and zeroes their counters, keeping slot
    /// allocations (see [`LossyCache::reset`]). Used by session resets
    /// between jobs.
    pub fn reset(&mut self) {
        self.pairs.reset();
        self.norm2.reset();
        self.norm4.reset();
    }

    /// Adds previously accumulated counters (statistics survive
    /// compaction). The merged norm counters land on the 2-weight cache;
    /// [`WeightOpCache::norm_stats`] reports the sum either way.
    pub fn absorb_stats(&mut self, pairs: &CacheStats, norm: &CacheStats) {
        self.pairs.absorb_stats(pairs);
        self.norm2.absorb_stats(norm);
    }
}

/// Handle-only normalization for the trivial (and extremely common) rows:
/// every non-zero entry is the *same* interned weight `w` — basis states,
/// identity blocks, permutation gates. Then the normalized row maps `w ↦ 1`
/// (zeros stay zero) with `η = w`, in every weight system:
/// leftmost/max-magnitude division, the `Q[ω]` field inverse and the
/// canonical-GCD extraction all divide the row by exactly `w`.
///
/// Returns `(normalized ids, η id)`; for the all-zero row η is
/// [`WeightId::ZERO`]. `None` means the row is non-trivial and needs the
/// value-level normalize.
pub(crate) fn normalize_ids_trivial<const N: usize>(
    key: &[WeightId; N],
) -> Option<([WeightId; N], WeightId)> {
    let mut common: Option<WeightId> = None;
    for &w in key {
        if w == WeightId::ZERO {
            continue;
        }
        match common {
            None => common = Some(w),
            Some(c) if c == w => {}
            Some(_) => return None,
        }
    }
    let eta = match common {
        None => return Some(([WeightId::ZERO; N], WeightId::ZERO)),
        Some(w) => w,
    };
    let mapped = key.map(|w| {
        if w == WeightId::ZERO {
            WeightId::ZERO
        } else {
            WeightId::ONE
        }
    });
    Some((mapped, eta))
}

#[cfg(test)]
mod tests {
    use super::*;

    const W2: WeightId = WeightId(2);
    const W3: WeightId = WeightId(3);

    #[test]
    fn pair_key_is_commutative() {
        let mut c = WeightOpCache::new(8);
        c.put_pair(OP_MUL, W3, W2, WeightId(9));
        assert_eq!(c.get_pair(OP_MUL, W2, W3), Some(WeightId(9)));
        assert_eq!(c.get_pair(OP_MUL, W3, W2), Some(WeightId(9)));
        // a different op tag is a different key
        assert_eq!(c.get_pair(OP_ADD, W2, W3), None);
    }

    #[test]
    fn norm_stats_merge_both_widths() {
        let mut c = WeightOpCache::new(8);
        c.put_norm2([W2, W3], ([WeightId::ONE, W2], W3));
        c.put_norm4([W2, W3, W2, W3], ([WeightId::ONE; 4], W2));
        assert_eq!(c.get_norm2(&[W2, W3]), Some(([WeightId::ONE, W2], W3)));
        assert_eq!(c.get_norm4(&[W2, W3, W2, W3]).map(|r| r.1), Some(W2));
        let s = c.norm_stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.insertions, 2);
    }

    #[test]
    fn trivial_rows_resolve_without_table_access() {
        use WeightId as W;
        // all-zero
        assert_eq!(
            normalize_ids_trivial(&[W::ZERO, W::ZERO]),
            Some(([W::ZERO, W::ZERO], W::ZERO))
        );
        // single non-zero, either slot
        assert_eq!(
            normalize_ids_trivial(&[W::ZERO, W2]),
            Some(([W::ZERO, W::ONE], W2))
        );
        assert_eq!(
            normalize_ids_trivial(&[W2, W::ZERO]),
            Some(([W::ONE, W::ZERO], W2))
        );
        // identity-block pattern
        assert_eq!(
            normalize_ids_trivial(&[W2, W::ZERO, W::ZERO, W2]),
            Some(([W::ONE, W::ZERO, W::ZERO, W::ONE], W2))
        );
        // two distinct non-zero weights: not trivial
        assert_eq!(normalize_ids_trivial(&[W2, W3]), None);
    }
}
