//! Engine-level tests for the QMDD package: gate semantics, canonicity,
//! agreement between the numeric and both algebraic weight systems.

use aq_dd::{
    Edge, GateMatrix, GcdContext, Manager, MatId, NormScheme, NumericContext, QomegaContext, VecId,
    WeightContext,
};
use aq_rings::Complex64;

/// `(gate, target, controls)` triple used throughout these tests.
type GateSpec = (GateMatrix, u32, Vec<(u32, bool)>);

const EPS: f64 = 1e-10;

fn assert_matrix_close(got: &[Vec<Complex64>], want: &[Vec<Complex64>]) {
    assert_eq!(got.len(), want.len());
    for (gr, wr) in got.iter().zip(want) {
        for (g, w) in gr.iter().zip(wr) {
            assert!((*g - *w).abs() < EPS, "entry {g:?} vs {w:?}");
        }
    }
}

fn run_for_all_contexts(f: impl Fn(&mut dyn FnMut(u32) -> Box<dyn ContextRunner>)) {
    let mut make: Box<dyn FnMut(u32) -> Box<dyn ContextRunner>> =
        Box::new(|n| Box::new(Runner::new(NumericContext::new(), n)));
    f(&mut make);
    let mut make: Box<dyn FnMut(u32) -> Box<dyn ContextRunner>> =
        Box::new(|n| Box::new(Runner::new(QomegaContext::new(), n)));
    f(&mut make);
    let mut make: Box<dyn FnMut(u32) -> Box<dyn ContextRunner>> =
        Box::new(|n| Box::new(Runner::new(GcdContext::new(), n)));
    f(&mut make);
}

/// Object-safe wrapper so the same test body runs over every context.
trait ContextRunner {
    fn basis(&mut self, idx: u64) -> (usize, usize);
    fn apply_and_amplitudes(&mut self, ops: &[GateSpec], start: u64) -> Vec<Complex64>;
    fn gate_matrix(&mut self, g: &GateMatrix, t: u32, c: &[(u32, bool)]) -> Vec<Vec<Complex64>>;
    fn circuits_equal(&mut self, a: &[GateSpec], b: &[GateSpec]) -> bool;
}

struct Runner<W: WeightContext> {
    m: Manager<W>,
}

impl<W: WeightContext> Runner<W> {
    fn new(ctx: W, n: u32) -> Self {
        Runner {
            m: Manager::new(ctx, n),
        }
    }

    fn build_unitary(&mut self, ops: &[GateSpec]) -> Edge<MatId> {
        let mut u = self.m.identity();
        for (g, t, c) in ops {
            let gd = self.m.gate(g, *t, c);
            u = self.m.mat_mul(&gd, &u);
        }
        u
    }
}

impl<W: WeightContext> ContextRunner for Runner<W> {
    fn basis(&mut self, idx: u64) -> (usize, usize) {
        let e = self.m.basis_state(idx);
        (self.m.vec_nodes(&e), self.m.distinct_weights())
    }

    fn apply_and_amplitudes(&mut self, ops: &[GateSpec], start: u64) -> Vec<Complex64> {
        let mut state: Edge<VecId> = self.m.basis_state(start);
        for (g, t, c) in ops {
            let gd = self.m.gate(g, *t, c);
            state = self.m.mat_vec(&gd, &state);
        }
        self.m.amplitudes(&state)
    }

    fn gate_matrix(&mut self, g: &GateMatrix, t: u32, c: &[(u32, bool)]) -> Vec<Vec<Complex64>> {
        let e = self.m.gate(g, t, c);
        self.m.matrix(&e)
    }

    fn circuits_equal(&mut self, a: &[GateSpec], b: &[GateSpec]) -> bool {
        let ua = self.build_unitary(a);
        let ub = self.build_unitary(b);
        ua == ub // O(1) root comparison — canonicity
    }
}

#[test]
fn basis_states_have_n_nodes() {
    run_for_all_contexts(|make| {
        let mut r = make(4);
        let (nodes, _) = r.basis(0b1010);
        assert_eq!(nodes, 4);
    });
}

#[test]
fn single_qubit_gate_matrices() {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    let cases: Vec<(GateMatrix, Vec<Vec<Complex64>>)> = vec![
        (
            GateMatrix::h(),
            vec![
                vec![Complex64::new(s, 0.0), Complex64::new(s, 0.0)],
                vec![Complex64::new(s, 0.0), Complex64::new(-s, 0.0)],
            ],
        ),
        (
            GateMatrix::x(),
            vec![
                vec![Complex64::ZERO, Complex64::ONE],
                vec![Complex64::ONE, Complex64::ZERO],
            ],
        ),
        (
            GateMatrix::y(),
            vec![
                vec![Complex64::ZERO, Complex64::new(0.0, -1.0)],
                vec![Complex64::I, Complex64::ZERO],
            ],
        ),
        (
            GateMatrix::z(),
            vec![
                vec![Complex64::ONE, Complex64::ZERO],
                vec![Complex64::ZERO, Complex64::new(-1.0, 0.0)],
            ],
        ),
        (
            GateMatrix::t(),
            vec![
                vec![Complex64::ONE, Complex64::ZERO],
                vec![Complex64::ZERO, Complex64::new(s, s)],
            ],
        ),
        (
            GateMatrix::s(),
            vec![
                vec![Complex64::ONE, Complex64::ZERO],
                vec![Complex64::ZERO, Complex64::I],
            ],
        ),
    ];
    run_for_all_contexts(|make| {
        for (g, want) in &cases {
            let mut r = make(1);
            let got = r.gate_matrix(g, 0, &[]);
            assert_matrix_close(&got, want);
        }
    });
}

#[test]
fn fig1_h_tensor_i_has_one_node_per_level() {
    // Fig. 1 of the paper: U = H ⊗ I₂ is one node per level in a QMDD.
    run_for_all_contexts(|make| {
        let mut r = make(2);
        let got = r.gate_matrix(&GateMatrix::h(), 0, &[]);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let want = vec![
            vec![
                Complex64::new(s, 0.0),
                Complex64::ZERO,
                Complex64::new(s, 0.0),
                Complex64::ZERO,
            ],
            vec![
                Complex64::ZERO,
                Complex64::new(s, 0.0),
                Complex64::ZERO,
                Complex64::new(s, 0.0),
            ],
            vec![
                Complex64::new(s, 0.0),
                Complex64::ZERO,
                Complex64::new(-s, 0.0),
                Complex64::ZERO,
            ],
            vec![
                Complex64::ZERO,
                Complex64::new(s, 0.0),
                Complex64::ZERO,
                Complex64::new(-s, 0.0),
            ],
        ];
        assert_matrix_close(&got, &want);
    });
    // node count: exactly 2 (checked in the crate doc example as well)
    let mut m = Manager::new(QomegaContext::new(), 2);
    let h = m.gate(&GateMatrix::h(), 0, &[]);
    assert_eq!(m.mat_nodes(&h), 2);
}

#[test]
fn cnot_matrix_matches_paper_example_2() {
    run_for_all_contexts(|make| {
        let mut r = make(2);
        let got = r.gate_matrix(&GateMatrix::x(), 1, &[(0, true)]);
        let want = vec![
            vec![
                Complex64::ONE,
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::ZERO,
            ],
            vec![
                Complex64::ZERO,
                Complex64::ONE,
                Complex64::ZERO,
                Complex64::ZERO,
            ],
            vec![
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::ONE,
            ],
            vec![
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::ONE,
                Complex64::ZERO,
            ],
        ];
        assert_matrix_close(&got, &want);
    });
}

#[test]
fn control_below_target_works() {
    // CNOT with control qubit 1, target qubit 0: |x,y⟩ ↦ |x⊕y, y⟩
    run_for_all_contexts(|make| {
        let mut r = make(2);
        let got = r.gate_matrix(&GateMatrix::x(), 0, &[(1, true)]);
        let want = vec![
            vec![
                Complex64::ONE,
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::ZERO,
            ],
            vec![
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::ONE,
            ],
            vec![
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::ONE,
                Complex64::ZERO,
            ],
            vec![
                Complex64::ZERO,
                Complex64::ONE,
                Complex64::ZERO,
                Complex64::ZERO,
            ],
        ];
        assert_matrix_close(&got, &want);
    });
}

#[test]
fn negative_control() {
    // X on target 1 when control 0 is |0⟩
    run_for_all_contexts(|make| {
        let mut r = make(2);
        let got = r.gate_matrix(&GateMatrix::x(), 1, &[(0, false)]);
        let want = vec![
            vec![
                Complex64::ZERO,
                Complex64::ONE,
                Complex64::ZERO,
                Complex64::ZERO,
            ],
            vec![
                Complex64::ONE,
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::ZERO,
            ],
            vec![
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::ONE,
                Complex64::ZERO,
            ],
            vec![
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::ONE,
            ],
        ];
        assert_matrix_close(&got, &want);
    });
}

#[test]
fn toffoli_truth_table() {
    run_for_all_contexts(|make| {
        for input in 0u64..8 {
            let mut r = make(3);
            let amps =
                r.apply_and_amplitudes(&[(GateMatrix::x(), 2, vec![(0, true), (1, true)])], input);
            let expected = if input >> 1 == 0b11 { input ^ 1 } else { input };
            for (i, a) in amps.iter().enumerate() {
                let want = if i as u64 == expected { 1.0 } else { 0.0 };
                assert!(
                    (a.re - want).abs() < EPS && a.im.abs() < EPS,
                    "input {input}: amplitude {i} = {a:?}"
                );
            }
        }
    });
}

#[test]
fn ghz_state_all_contexts() {
    run_for_all_contexts(|make| {
        let mut r = make(3);
        let amps = r.apply_and_amplitudes(
            &[
                (GateMatrix::h(), 0, vec![]),
                (GateMatrix::x(), 1, vec![(0, true)]),
                (GateMatrix::x(), 2, vec![(1, true)]),
            ],
            0,
        );
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!((amps[0].re - s).abs() < EPS);
        assert!((amps[7].re - s).abs() < EPS);
        for a in &amps[1..7] {
            assert!(a.abs() < EPS);
        }
    });
}

#[test]
fn hh_not_identity_under_exact_floating_point() {
    // The trade-off of Sec. III in miniature: with ε = 0, the floating
    // point (1/√2)² + (1/√2)² = 0.999…8 ≠ 1, so HH fails to equal I —
    // while every algebraic manager (and a tolerant numeric one) gets it.
    let mut r = Runner::new(NumericContext::new(), 1);
    assert!(!r.circuits_equal(
        &[(GateMatrix::h(), 0, vec![]), (GateMatrix::h(), 0, vec![])],
        &[],
    ));
}

#[test]
fn hh_equals_identity_via_root_comparison() {
    // Tolerant numeric + both exact contexts recognise the identities.
    let mut runners: Vec<Box<dyn ContextRunner>> = vec![
        Box::new(Runner::new(NumericContext::with_eps(1e-12), 3)),
        Box::new(Runner::new(QomegaContext::new(), 3)),
        Box::new(Runner::new(GcdContext::new(), 3)),
    ];
    for r in &mut runners {
        assert!(r.circuits_equal(
            &[(GateMatrix::h(), 1, vec![]), (GateMatrix::h(), 1, vec![]),],
            &[],
        ));
        // HZH = X — a classic Clifford identity, checked in O(1)
        assert!(r.circuits_equal(
            &[
                (GateMatrix::h(), 0, vec![]),
                (GateMatrix::z(), 0, vec![]),
                (GateMatrix::h(), 0, vec![]),
            ],
            &[(GateMatrix::x(), 0, vec![])],
        ));
        // T⁴ = Z
        assert!(r.circuits_equal(
            &[
                (GateMatrix::t(), 2, vec![]),
                (GateMatrix::t(), 2, vec![]),
                (GateMatrix::t(), 2, vec![]),
                (GateMatrix::t(), 2, vec![]),
            ],
            &[(GateMatrix::z(), 2, vec![])],
        ));
        // and something that must differ
        assert!(!r.circuits_equal(
            &[(GateMatrix::t(), 0, vec![])],
            &[(GateMatrix::s(), 0, vec![])],
        ));
    }
}

#[test]
fn sx_squares_to_x() {
    run_for_all_contexts(|make| {
        let mut r = make(1);
        assert!(r.circuits_equal(
            &[(GateMatrix::sx(), 0, vec![]), (GateMatrix::sx(), 0, vec![]),],
            &[(GateMatrix::x(), 0, vec![])],
        ));
    });
}

#[test]
fn numeric_rotations_compose() {
    // Rz(a)·Rz(b) = Rz(a+b) — numeric context only.
    let mut m = Manager::new(NumericContext::with_eps(1e-12), 2);
    let a = m.gate(&GateMatrix::rz(0.3), 0, &[]);
    let b = m.gate(&GateMatrix::rz(0.4), 0, &[]);
    let ab = m.mat_mul(&a, &b);
    let want = m.gate(&GateMatrix::rz(0.7), 0, &[]);
    assert_eq!(
        ab, want,
        "ε-tolerant manager should identify Rz(0.3+0.4) with Rz(0.7)"
    );
}

#[test]
fn algebraic_contexts_reject_rotations() {
    let mut m = Manager::new(QomegaContext::new(), 1);
    assert!(m.try_gate(&GateMatrix::rz(0.123), 0, &[]).is_err());
    // …but π/4 multiples are exact:
    assert!(m
        .try_gate(&GateMatrix::phase(std::f64::consts::FRAC_PI_4), 0, &[])
        .is_ok());
    let mut g = Manager::new(GcdContext::new(), 1);
    assert!(g.try_gate(&GateMatrix::ry(1.0), 0, &[]).is_err());
}

#[test]
fn swap_permutes_basis_states() {
    run_for_all_contexts(|make| {
        // swap is built from 3 CNOTs; verify on |01⟩ → |10⟩ via circuits
        let mut r = make(2);
        let amps = r.apply_and_amplitudes(
            &[
                (GateMatrix::x(), 1, vec![]), // |01⟩
                (GateMatrix::x(), 1, vec![(0, true)]),
                (GateMatrix::x(), 0, vec![(1, true)]),
                (GateMatrix::x(), 1, vec![(0, true)]),
            ],
            0,
        );
        assert!((amps[0b10].re - 1.0).abs() < EPS);
    });
}

#[test]
fn swap_helper_matches_three_cnots() {
    let mut m = Manager::new(QomegaContext::new(), 3);
    let sw = m.swap(0, 2);
    let x = GateMatrix::x();
    let c1 = m.gate(&x, 2, &[(0, true)]);
    let c2 = m.gate(&x, 0, &[(2, true)]);
    let t0 = m.mat_mul(&c2, &c1);
    let want = m.mat_mul(&c1, &t0);
    assert_eq!(sw, want);
}

#[test]
fn compact_preserves_structure_and_frees_garbage() {
    let mut m = Manager::new(NumericContext::new(), 5);
    let mut state = m.basis_state(0);
    let h = GateMatrix::h();
    for q in 0..5 {
        let g = m.gate(&h, q, &[]);
        state = m.mat_vec(&g, &state);
    }
    let amps_before = m.amplitudes(&state);
    let nodes_before = m.vec_nodes(&state);
    let allocated_before = m.allocated_nodes();

    let (vs, _) = m.compact(&[state], &[]);
    let state = vs[0];
    assert_eq!(m.vec_nodes(&state), nodes_before);
    assert!(m.allocated_nodes() <= allocated_before);
    let amps_after = m.amplitudes(&state);
    for (a, b) in amps_before.iter().zip(&amps_after) {
        assert!((*a - *b).abs() < EPS);
    }
}

#[test]
fn uniform_superposition_is_one_node_per_level() {
    // H^⊗n |0…0⟩ has maximal redundancy: a single node per level.
    run_for_all_contexts(|make| {
        let mut r = make(6);
        let amps = r.apply_and_amplitudes(
            &(0..6)
                .map(|q| (GateMatrix::h(), q, vec![]))
                .collect::<Vec<_>>(),
            0,
        );
        let want = 1.0 / 8.0;
        for a in amps {
            assert!((a.re - want).abs() < EPS && a.im.abs() < EPS);
        }
    });
    let mut m = Manager::new(QomegaContext::new(), 6);
    let mut state = m.basis_state(0);
    for q in 0..6 {
        let g = m.gate(&GateMatrix::h(), q, &[]);
        state = m.mat_vec(&g, &state);
    }
    assert_eq!(m.vec_nodes(&state), 6);
}

#[test]
fn max_magnitude_scheme_matches_leftmost_values() {
    let mut a = Manager::new(
        NumericContext::with_eps_and_scheme(0.0, NormScheme::Leftmost),
        3,
    );
    let mut b = Manager::new(
        NumericContext::with_eps_and_scheme(0.0, NormScheme::MaxMagnitude),
        3,
    );
    let ops = [
        (GateMatrix::h(), 0u32),
        (GateMatrix::t(), 1u32),
        (GateMatrix::h(), 2u32),
        (GateMatrix::y(), 1u32),
    ];
    let mut sa = a.basis_state(3);
    let mut sb = b.basis_state(3);
    for (g, q) in &ops {
        let ga = a.gate(g, *q, &[]);
        sa = a.mat_vec(&ga, &sa);
        let gb = b.gate(g, *q, &[]);
        sb = b.mat_vec(&gb, &sb);
    }
    let va = a.amplitudes(&sa);
    let vb = b.amplitudes(&sb);
    for (x, y) in va.iter().zip(&vb) {
        assert!((*x - *y).abs() < EPS, "{x:?} vs {y:?}");
    }
}

#[test]
fn zero_tolerance_blowup_vs_tolerant_compactness() {
    // The accuracy/compactness trade-off in miniature: repeated H-pairs on
    // all qubits keep an exact manager's state at n nodes, while ε = 0
    // floating point may (and typically does) accumulate distinct weights.
    let n = 8;
    let mut exact = Manager::new(QomegaContext::new(), n);
    let mut state = exact.basis_state(0);
    for round in 0..4 {
        let _ = round;
        for q in 0..n {
            let g = exact.gate(&GateMatrix::h(), q, &[]);
            state = exact.mat_vec(&g, &state);
            let g2 = exact.gate(&GateMatrix::t(), q, &[]);
            state = exact.mat_vec(&g2, &state);
        }
    }
    // exact representation recognises every redundancy
    assert!(exact.vec_nodes(&state) <= n as usize);
}

#[test]
fn session_reset_reproduces_cold_results_bit_identically() {
    // A worker session resets its manager between jobs instead of building
    // a fresh one. The contract: after `reset_session`, every result is
    // bit-identical to a cold manager's, and every statistic except the
    // (possibly inherited-larger) unique-table capacities matches too.
    fn check<W: WeightContext>(make: &dyn Fn() -> W) {
        let ops: Vec<GateSpec> = vec![
            (GateMatrix::h(), 0, vec![]),
            (GateMatrix::x(), 2, vec![(0, true)]),
            (GateMatrix::t(), 1, vec![]),
            (GateMatrix::h(), 1, vec![]),
            (GateMatrix::x(), 1, vec![(2, true)]),
        ];
        let apply = |m: &mut Manager<W>| {
            let mut s = m.basis_state(0);
            for (g, t, c) in &ops {
                let gd = m.gate(g, *t, c);
                s = m.mat_vec(&gd, &s);
            }
            m.amplitudes(&s)
        };
        let mut cold = Manager::new(make(), 3);
        let cold_amps = apply(&mut cold);
        let cold_stats = cold.statistics();

        // dirty an unrelated-shaped manager, then reset it for the job
        let mut warm = Manager::new(make(), 2);
        let mut s = warm.basis_state(1);
        for q in 0..2 {
            let g = warm.gate(&GateMatrix::h(), q, &[]);
            s = warm.mat_vec(&g, &s);
        }
        warm.reset_session(make(), 3);
        let warm_amps = apply(&mut warm);
        let warm_stats = warm.statistics();

        assert_eq!(cold_amps.len(), warm_amps.len());
        for (a, b) in cold_amps.iter().zip(&warm_amps) {
            assert_eq!(a.re.to_bits(), b.re.to_bits(), "{a:?} vs {b:?}");
            assert_eq!(a.im.to_bits(), b.im.to_bits(), "{a:?} vs {b:?}");
        }
        // Everything but the capacity gauges must match a cold run exactly.
        let mut masked = warm_stats;
        masked.vec_unique_capacity = cold_stats.vec_unique_capacity;
        masked.mat_unique_capacity = cold_stats.mat_unique_capacity;
        assert_eq!(masked, cold_stats, "warm-vs-cold statistics diverged");
        assert!(warm.retained_capacity() >= cold.retained_capacity());
    }
    check(&NumericContext::new);
    check(&QomegaContext::new);
    check(&GcdContext::new);
}
