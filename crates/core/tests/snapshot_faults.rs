//! Fault-injection tests for the snapshot layer: truncation at every
//! prefix, a bit flip in every byte, version skew, and context mismatch
//! must all surface as structured `EngineError::Snapshot*` values — never
//! a panic and never a silently-wrong diagram.

use aq_dd::{EngineError, GateMatrix, Manager, NumericContext, QomegaContext};

/// A small but non-trivial snapshot: every section is non-empty and the
/// weight table carries non-constant entries.
fn sample_snapshot() -> Vec<u8> {
    let mut m = Manager::new(NumericContext::with_eps(1e-10), 3);
    let s = m.basis_state(0b010);
    let h = m.gate(&GateMatrix::h(), 0, &[]);
    let s = m.mat_vec(&h, &s);
    let t = m.gate(&GateMatrix::t(), 2, &[(0, true)]);
    let s = m.mat_vec(&t, &s);
    m.snapshot_to_bytes(&[s], &[t])
}

fn load(bytes: &[u8]) -> Result<(), EngineError> {
    Manager::snapshot_from_bytes(NumericContext::with_eps(1e-10), bytes).map(|_| ())
}

#[test]
fn pristine_snapshot_loads() {
    load(&sample_snapshot()).expect("uncorrupted snapshot must load");
}

#[test]
fn every_truncation_is_rejected_structurally() {
    let bytes = sample_snapshot();
    for len in 0..bytes.len() {
        let err = load(&bytes[..len]).expect_err("truncated snapshot must not load");
        assert!(
            err.is_snapshot(),
            "truncation at {len}/{} produced a non-snapshot error: {err}",
            bytes.len()
        );
    }
}

#[test]
fn every_single_bit_flip_is_rejected_structurally() {
    let bytes = sample_snapshot();
    for i in 0..bytes.len() {
        let mut corrupted = bytes.clone();
        corrupted[i] ^= 1 << (i % 8);
        let err = load(&corrupted).expect_err("bit-flipped snapshot must not load");
        assert!(
            err.is_snapshot(),
            "bit flip at byte {i} produced a non-snapshot error: {err}"
        );
    }
}

#[test]
fn version_skew_is_reported_as_such() {
    let mut bytes = sample_snapshot();
    // version is the little-endian u32 right after the 8-byte magic
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    let err = load(&bytes).expect_err("foreign version must not load");
    assert_eq!(
        err,
        EngineError::SnapshotVersionSkew {
            found: 99,
            supported: aq_dd::snapshot::MANAGER_VERSION,
        }
    );
}

#[test]
fn wrong_context_kind_is_a_mismatch() {
    let bytes = sample_snapshot();
    let err = Manager::snapshot_from_bytes(QomegaContext::new(), &bytes)
        .map(|_| ())
        .expect_err("numeric snapshot must not load into an algebraic context");
    assert!(matches!(err, EngineError::SnapshotMismatch { .. }), "{err}");
}

#[test]
fn wrong_context_parameters_are_a_mismatch() {
    let bytes = sample_snapshot();
    for ctx in [
        NumericContext::with_eps(1e-5),
        NumericContext::new(),
        NumericContext::with_eps_and_scheme(1e-10, aq_dd::NormScheme::MaxMagnitude),
    ] {
        let err = Manager::snapshot_from_bytes(ctx, &bytes)
            .map(|_| ())
            .expect_err("wrong ε or scheme must not load");
        assert!(matches!(err, EngineError::SnapshotMismatch { .. }), "{err}");
    }
}

#[test]
fn missing_file_is_an_io_error() {
    let err = Manager::load_snapshot(
        NumericContext::new(),
        "/nonexistent/definitely/not/here.aqdd",
    )
    .map(|_| ())
    .expect_err("missing file");
    assert!(matches!(err, EngineError::SnapshotIo { .. }), "{err}");
    assert!(err.is_snapshot());
}

#[test]
fn garbage_and_empty_files_are_rejected() {
    for bytes in [&b""[..], &b"not a snapshot at all"[..], &[0u8; 64][..]] {
        let err = load(bytes).expect_err("garbage must not load");
        assert!(err.is_snapshot(), "{err}");
    }
}

#[test]
fn exact_coefficients_fault_injection() {
    // the algebraic path serializes bigint coefficient strings — corrupt
    // those too
    let mut m = Manager::new(QomegaContext::new(), 3);
    let mut s = m.basis_state(0);
    for _ in 0..6 {
        let h = m.gate(&GateMatrix::h(), 1, &[]);
        let t = m.gate(&GateMatrix::t(), 1, &[]);
        s = m.mat_vec(&h, &s);
        s = m.mat_vec(&t, &s);
    }
    let bytes = m.snapshot_to_bytes(&[s], &[]);
    Manager::snapshot_from_bytes(QomegaContext::new(), &bytes).expect("pristine loads");
    for i in (0..bytes.len()).step_by(3) {
        let mut corrupted = bytes.clone();
        corrupted[i] = corrupted[i].wrapping_add(0x41);
        if corrupted[i] == bytes[i] {
            continue;
        }
        let err = Manager::snapshot_from_bytes(QomegaContext::new(), &corrupted)
            .map(|_| ())
            .expect_err("corrupted algebraic snapshot must not load");
        assert!(err.is_snapshot(), "byte {i}: {err}");
    }
}
