//! Snapshot round-trip property tests: random Clifford+T circuits →
//! snapshot → load must reproduce the manager bit-identically — node and
//! weight counts, unique-table capacities, root edges, and exact inner
//! products — for both the numeric and the exact algebraic contexts.

use aq_dd::{
    Edge, EngineStatistics, GateMatrix, Manager, NumericContext, QomegaContext, VecId,
    WeightContext,
};
use aq_testutil::proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    H(u32),
    X(u32),
    S(u32),
    T(u32),
    Tdg(u32),
    Cx(u32, u32),
}

fn op(n: u32) -> impl Strategy<Value = Op> {
    let q = 0..n;
    prop_oneof![
        q.clone().prop_map(Op::H),
        q.clone().prop_map(Op::X),
        q.clone().prop_map(Op::S),
        q.clone().prop_map(Op::T),
        q.clone().prop_map(Op::Tdg),
        (0..n, 0..n).prop_filter_map("distinct", |(a, b)| (a != b).then_some(Op::Cx(a, b))),
    ]
}

fn apply<W: WeightContext>(m: &mut Manager<W>, state: Edge<VecId>, o: &Op) -> Edge<VecId> {
    let (g, t, c): (GateMatrix, u32, Vec<(u32, bool)>) = match o {
        Op::H(q) => (GateMatrix::h(), *q, vec![]),
        Op::X(q) => (GateMatrix::x(), *q, vec![]),
        Op::S(q) => (GateMatrix::s(), *q, vec![]),
        Op::T(q) => (GateMatrix::t(), *q, vec![]),
        Op::Tdg(q) => (GateMatrix::tdg(), *q, vec![]),
        Op::Cx(c0, t0) => (GateMatrix::x(), *t0, vec![(*c0, true)]),
    };
    let gd = m.gate(&g, t, &c);
    m.mat_vec(&gd, &state)
}

/// The counters a reloaded manager must reproduce exactly (cache counters
/// are lifetime totals of *operations run*, which a load does not replay).
fn structural(stats: &EngineStatistics) -> (usize, usize, usize, usize, usize, usize, usize, u64) {
    (
        stats.vec_nodes,
        stats.mat_nodes,
        stats.vec_unique_len,
        stats.vec_unique_capacity,
        stats.mat_unique_len,
        stats.mat_unique_capacity,
        stats.distinct_weights,
        stats.compactions,
    )
}

fn roundtrip<W: WeightContext>(ctx: W, ops: &[Op], start: u64)
where
    W::Value: PartialEq + std::fmt::Debug,
{
    let mut m = Manager::new(ctx.clone(), 4);
    let mut s = m.basis_state(start);
    for o in ops {
        s = apply(&mut m, s, o);
    }
    let ip_before = {
        let z = m.basis_state(start);
        m.inner_product(&z, &s)
    };
    let stats_before = m.statistics();

    let bytes = m.snapshot_to_bytes(&[s], &[]);
    let (mut m2, vec_roots, mat_roots) =
        Manager::snapshot_from_bytes(ctx, &bytes).expect("round-trip load");

    assert_eq!(vec_roots, vec![s], "root edge must round-trip verbatim");
    assert!(mat_roots.is_empty());
    assert_eq!(
        structural(&m2.statistics()),
        structural(&stats_before),
        "node/weight counts must be bit-identical"
    );
    let ip_after = {
        let z = m2.basis_state(start);
        m2.inner_product(&z, &vec_roots[0])
    };
    assert_eq!(ip_before, ip_after, "inner products must match exactly");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn numeric_snapshot_roundtrips(ops in prop::collection::vec(op(4), 0..25), start in 0u64..16) {
        roundtrip(NumericContext::with_eps(1e-10), &ops, start);
    }

    #[test]
    fn numeric_exact_snapshot_roundtrips(ops in prop::collection::vec(op(4), 0..25), start in 0u64..16) {
        roundtrip(NumericContext::new(), &ops, start);
    }

    #[test]
    fn qomega_snapshot_roundtrips(ops in prop::collection::vec(op(4), 0..25), start in 0u64..16) {
        roundtrip(QomegaContext::new(), &ops, start);
    }
}

#[test]
fn snapshot_survives_a_file_round_trip() {
    let dir = std::env::temp_dir().join("aq_dd_snapshot_roundtrip");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("grover.aqdd");

    let mut m = Manager::new(QomegaContext::new(), 3);
    let s = m.basis_state(0b101);
    let h = m.gate(&GateMatrix::h(), 0, &[]);
    let s = m.mat_vec(&h, &s);
    let cx = m.gate(&GateMatrix::x(), 2, &[(0, true)]);
    let s = m.mat_vec(&cx, &s);

    m.save_snapshot(&path, &[s], &[cx]).expect("save");
    let (mut m2, vec_roots, mat_roots) =
        Manager::load_snapshot(QomegaContext::new(), &path).expect("load");
    assert_eq!(vec_roots, vec![s]);
    assert_eq!(mat_roots, vec![cx]);
    assert_eq!(m2.amplitudes(&vec_roots[0]), m.amplitudes(&s));
    std::fs::remove_file(&path).ok();
}

#[test]
fn gcd_snapshot_roundtrips_inline_and_promoted_coefficients() {
    use aq_bigint::IBig;
    use aq_dd::GcdContext;
    use aq_rings::{Domega, Zomega};

    // weights on both sides of the i64 inline boundary, including ones
    // whose coefficients only exist in the heap-promoted representation
    let big = &(&IBig::from(i64::MAX) * &IBig::from(7)) + &IBig::from(12345);
    let values = [
        Domega::new(Zomega::new(1.into(), 0.into(), 1.into(), 1.into()), 3),
        Domega::new(
            Zomega::new(i64::MAX.into(), i64::MIN.into(), 1.into(), 0.into()),
            1,
        ),
        Domega::new(
            Zomega::new(big.clone(), (-&big).clone(), 3.into(), big.clone()),
            5,
        ),
        Domega::from(Zomega::new(
            IBig::zero(),
            big.clone(),
            IBig::zero(),
            IBig::one(),
        )),
    ];
    let mut m = Manager::new(GcdContext::new(), 2);
    let s = m.basis_state(0);
    let mut ids = Vec::new();
    for v in &values {
        assert!(v.is_reduced(), "test values must be canonical");
        ids.push(m.intern(v.clone()));
    }
    // mixed-repr forms must round-trip the decimal-string serialization
    let bytes = m.snapshot_to_bytes(&[s], &[]);
    let (m2, roots, _) = Manager::snapshot_from_bytes(GcdContext::new(), &bytes).expect("load");
    assert_eq!(roots, vec![s]);
    assert_eq!(m2.distinct_weights(), m.distinct_weights());
    for (v, id) in values.iter().zip(&ids) {
        let loaded = m2.weight(*id);
        assert_eq!(loaded, v, "weight w{} must be bit-identical", id.index());
        assert!(loaded.is_reduced(), "reloaded weight must stay canonical");
    }
    // inline values stay inline, promoted values stay promoted
    assert!(m2.weight(ids[0]).numerator().is_inline());
    assert!(m2.weight(ids[1]).numerator().is_inline());
    assert!(!m2.weight(ids[2]).numerator().is_inline());
    assert!(!m2.weight(ids[3]).numerator().is_inline());
}

#[test]
fn gcd_context_snapshot_roundtrips() {
    use aq_dd::GcdContext;
    let mut m = Manager::new(GcdContext::new(), 3);
    let mut s = m.basis_state(0);
    for o in [Op::H(0), Op::T(0), Op::Cx(0, 2), Op::S(1), Op::Tdg(2)] {
        s = apply(&mut m, s, &o);
    }
    let bytes = m.snapshot_to_bytes(&[s], &[]);
    let (m2, roots, _) = Manager::snapshot_from_bytes(GcdContext::new(), &bytes).expect("load");
    assert_eq!(roots, vec![s]);
    assert_eq!(structural(&m2.statistics()), structural(&m.statistics()));
}
