//! Integration tests for `Manager::validate`: healthy managers pass in
//! every context, and (under the `validate-invariants` feature) the
//! automatic post-compaction check runs on real workloads.

use aq_dd::{GateMatrix, GcdContext, Manager, NormScheme, NumericContext, QomegaContext};

#[test]
fn fresh_managers_validate_in_every_context() {
    Manager::new(NumericContext::new(), 2).validate().unwrap();
    Manager::new(NumericContext::with_eps(1e-4), 2)
        .validate()
        .unwrap();
    Manager::new(QomegaContext::new(), 2).validate().unwrap();
    Manager::new(GcdContext::new(), 2).validate().unwrap();
}

#[test]
fn busy_managers_validate_including_max_magnitude() {
    for eps in [0.0, 1e-10, 1e-3] {
        for scheme in [NormScheme::Leftmost, NormScheme::MaxMagnitude] {
            let mut m = Manager::new(NumericContext::with_eps_and_scheme(eps, scheme), 4);
            let mut s = m.basis_state(0b0110);
            for q in 0..4 {
                let h = m.gate(&GateMatrix::h(), q, &[]);
                s = m.mat_vec(&h, &s);
                let t = m.gate(&GateMatrix::t(), (q + 1) % 4, &[(q, true)]);
                s = m.mat_vec(&t, &s);
            }
            m.validate()
                .unwrap_or_else(|e| panic!("eps {eps}, {scheme:?}: {e}"));
        }
    }
}

#[test]
fn compaction_preserves_invariants() {
    // with `validate-invariants` enabled this also exercises the automatic
    // post-compaction self-check inside try_compact
    let mut m = Manager::new(QomegaContext::new(), 4);
    let mut s = m.basis_state(0);
    for q in 0..4 {
        let h = m.gate(&GateMatrix::h(), q, &[]);
        s = m.mat_vec(&h, &s);
        let t = m.gate(&GateMatrix::t(), q, &[]);
        s = m.mat_vec(&t, &s);
    }
    let (vs, _) = m.compact(&[s], &[]);
    m.validate().expect("compacted manager is canonical");
    assert_eq!(vs.len(), 1);
}
