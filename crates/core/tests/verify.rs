//! Tests for the verification operations: inner products, adjoints,
//! Kronecker composition and measurement sampling.

use aq_dd::{
    kron_states, GateMatrix, GcdContext, Manager, NumericContext, QomegaContext, WeightContext,
};
use aq_rings::{Domega, Qomega};

#[test]
fn inner_product_of_state_with_itself_is_exactly_one() {
    let mut m = Manager::new(QomegaContext::new(), 4);
    let mut s = m.basis_state(0);
    for q in 0..4 {
        let h = m.gate(&GateMatrix::h(), q, &[]);
        s = m.mat_vec(&h, &s);
        let t = m.gate(&GateMatrix::t(), q, &[]);
        s = m.mat_vec(&t, &s);
    }
    let ip = m.inner_product(&s, &s);
    assert!(ip.is_one(), "⟨ψ|ψ⟩ must be literally 1, got {ip:?}");
}

#[test]
fn inner_product_of_orthogonal_states_is_exactly_zero() {
    let mut m = Manager::new(QomegaContext::new(), 3);
    let a = m.basis_state(2);
    let b = m.basis_state(5);
    assert!(m.inner_product(&a, &b).is_zero());
    // and after the same unitary, still orthogonal — exactly
    let h = m.gate(&GateMatrix::h(), 1, &[]);
    let t = m.gate(&GateMatrix::t(), 2, &[]);
    let ua = {
        let x = m.mat_vec(&h, &a);
        m.mat_vec(&t, &x)
    };
    let ub = {
        let x = m.mat_vec(&h, &b);
        m.mat_vec(&t, &x)
    };
    assert!(m.inner_product(&ua, &ub).is_zero());
}

#[test]
fn inner_product_matches_amplitude_sum() {
    let mut m = Manager::new(NumericContext::with_eps(1e-13), 3);
    let mut a = m.basis_state(1);
    let mut b = m.basis_state(6);
    for (q, g) in [
        (0, GateMatrix::h()),
        (1, GateMatrix::y()),
        (2, GateMatrix::t()),
    ] {
        let gd = m.gate(&g, q, &[]);
        a = m.mat_vec(&gd, &a);
    }
    for (q, g) in [(2, GateMatrix::h()), (0, GateMatrix::s())] {
        let gd = m.gate(&g, q, &[]);
        b = m.mat_vec(&gd, &b);
    }
    let ip = m.inner_product(&a, &b);
    let va = m.amplitudes(&a);
    let vb = m.amplitudes(&b);
    let direct = va
        .iter()
        .zip(&vb)
        .fold(aq_rings::Complex64::ZERO, |acc, (x, y)| acc + x.conj() * *y);
    assert!((ip - direct).abs() < 1e-12, "{ip:?} vs {direct:?}");
}

#[test]
fn adjoint_of_unitary_is_inverse_in_every_context() {
    fn check<W: WeightContext>(ctx: W) {
        let mut m = Manager::new(ctx, 3);
        let mut u = m.identity();
        for (g, t, c) in [
            (GateMatrix::h(), 0u32, vec![]),
            (GateMatrix::t(), 1, vec![(0u32, true)]),
            (GateMatrix::y(), 2, vec![]),
            (GateMatrix::x(), 2, vec![(1, true), (0, false)]),
            (GateMatrix::sx(), 1, vec![]),
        ] {
            let gd = m.gate(&g, t, &c);
            u = m.mat_mul(&gd, &u);
        }
        let udg = m.mat_adjoint(&u);
        let left = m.mat_mul(&u, &udg);
        let right = m.mat_mul(&udg, &u);
        let id = m.identity();
        assert_eq!(left, id, "U·U† = I");
        assert_eq!(right, id, "U†·U = I");
    }
    check(QomegaContext::new());
    check(GcdContext::new());
    check(NumericContext::with_eps(1e-12));
}

#[test]
fn adjoint_is_involution_and_matches_known_daggers() {
    let mut m = Manager::new(QomegaContext::new(), 1);
    let t = m.gate(&GateMatrix::t(), 0, &[]);
    let tdg = m.gate(&GateMatrix::tdg(), 0, &[]);
    assert_eq!(m.mat_adjoint(&t), tdg);
    let again = m.mat_adjoint(&tdg);
    assert_eq!(again, t);
    // self-adjoint gates
    for g in [GateMatrix::h(), GateMatrix::x(), GateMatrix::z()] {
        let gd = m.gate(&g, 0, &[]);
        assert_eq!(m.mat_adjoint(&gd), gd, "{g:?} is Hermitian");
    }
}

#[test]
fn kron_composes_independent_registers() {
    let ctx = QomegaContext::new();
    let mut ma = Manager::new(ctx.clone(), 2);
    let bell = {
        let z = ma.basis_state(0);
        let h = ma.gate(&GateMatrix::h(), 0, &[]);
        let cx = ma.gate(&GateMatrix::x(), 1, &[(0, true)]);
        let s = ma.mat_vec(&h, &z);
        ma.mat_vec(&cx, &s)
    };
    let mut mb = Manager::new(ctx.clone(), 1);
    let one = mb.basis_state(1);

    let (mut m, composed) = kron_states(ctx, (&ma, &bell), (&mb, &one));
    assert_eq!(m.n_qubits(), 3);
    let amps = m.amplitudes(&composed);
    let s = std::f64::consts::FRAC_1_SQRT_2;
    assert!((amps[0b001].re - s).abs() < 1e-12);
    assert!((amps[0b111].re - s).abs() < 1e-12);
    for i in [0b000, 0b010, 0b011, 0b100, 0b101, 0b110] {
        assert!(amps[i].abs() < 1e-12);
    }
    // norm still exactly 1
    let ip = m.inner_product(&composed, &composed);
    assert!(ip.is_one());
}

#[test]
fn kron_with_zero_is_zero() {
    let ctx = QomegaContext::new();
    let mut ma = Manager::new(ctx.clone(), 1);
    let a = ma.basis_state(0);
    let mb = Manager::new(ctx.clone(), 1);
    let (_, z) = kron_states(ctx, (&ma, &a), (&mb, &aq_dd::Edge::ZERO_VEC));
    assert!(z.is_zero());
}

#[test]
fn sampling_matches_distribution() {
    // Biased two-outcome state with exactly known probabilities.
    let mut m = Manager::new(QomegaContext::new(), 5);
    let a = m.basis_state(0);
    let b = m.basis_state(31);
    let half = m.intern(Qomega::from(Domega::one_over_sqrt2().mul_sqrt2_pow(-1))); // 1/2
    let s3_half = {
        // √3/2 is NOT in Q[ω]; use weights 1/2 and (1+i√2)/2 instead:
        // |w|² = 3/4 — giving probabilities 1/4 and 3/4.
        let v = &Qomega::from(Domega::one_plus_i_sqrt2()) * &Qomega::from_int_ratio(1, 1);
        let v = &v * &Qomega::from(Domega::one().div_sqrt2_pow(2));
        m.intern(v)
    };
    let sa = m.vec_scale(&a, half);
    let sb = m.vec_scale(&b, s3_half);
    let state = m.vec_add(&sa, &sb);

    // deterministic "random" stream
    let mut seed = 0x2545f4914f6cdd1du64;
    let mut rng = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut hits = [0u32; 2];
    for _ in 0..4000 {
        match m.sample_measurement(&state, &mut rng) {
            0 => hits[0] += 1,
            31 => hits[1] += 1,
            other => panic!("impossible outcome {other}"),
        }
    }
    let p0 = hits[0] as f64 / 4000.0;
    assert!((p0 - 0.25).abs() < 0.05, "P(0) = {p0}, expected 0.25");
}
