//! Property tests for the QMDD engine: random Clifford+T circuits must
//! produce identical states across all three weight systems, preserve
//! norms, and satisfy canonicity invariants.

use aq_dd::{
    Edge, GateMatrix, GcdContext, Manager, NumericContext, QomegaContext, VecId, WeightContext,
};
use aq_testutil::proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    H(u32),
    X(u32),
    Y(u32),
    Z(u32),
    S(u32),
    T(u32),
    Tdg(u32),
    Cx(u32, u32),
    Ccx(u32, u32, u32),
}

fn op(n: u32) -> impl Strategy<Value = Op> {
    let q = 0..n;
    prop_oneof![
        q.clone().prop_map(Op::H),
        q.clone().prop_map(Op::X),
        q.clone().prop_map(Op::Y),
        q.clone().prop_map(Op::Z),
        q.clone().prop_map(Op::S),
        q.clone().prop_map(Op::T),
        q.clone().prop_map(Op::Tdg),
        (0..n, 0..n).prop_filter_map("distinct", |(a, b)| (a != b).then_some(Op::Cx(a, b))),
        (0..n, 0..n, 0..n).prop_filter_map("distinct", |(a, b, c)| {
            (a != b && b != c && a != c).then_some(Op::Ccx(a, b, c))
        }),
    ]
}

fn apply<W: WeightContext>(m: &mut Manager<W>, state: Edge<VecId>, o: &Op) -> Edge<VecId> {
    let (g, t, c): (GateMatrix, u32, Vec<(u32, bool)>) = match o {
        Op::H(q) => (GateMatrix::h(), *q, vec![]),
        Op::X(q) => (GateMatrix::x(), *q, vec![]),
        Op::Y(q) => (GateMatrix::y(), *q, vec![]),
        Op::Z(q) => (GateMatrix::z(), *q, vec![]),
        Op::S(q) => (GateMatrix::s(), *q, vec![]),
        Op::T(q) => (GateMatrix::t(), *q, vec![]),
        Op::Tdg(q) => (GateMatrix::tdg(), *q, vec![]),
        Op::Cx(c0, t0) => (GateMatrix::x(), *t0, vec![(*c0, true)]),
        Op::Ccx(c0, c1, t0) => (GateMatrix::x(), *t0, vec![(*c0, true), (*c1, true)]),
    };
    let gd = m.gate(&g, t, &c);
    m.mat_vec(&gd, &state)
}

const N: u32 = 4;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_contexts_agree_on_amplitudes(ops in prop::collection::vec(op(N), 0..25), start in 0u64..16) {
        let mut nm = Manager::new(NumericContext::with_eps(1e-13), N);
        let mut qm = Manager::new(QomegaContext::new(), N);
        let mut gm = Manager::new(GcdContext::new(), N);
        let mut sn = nm.basis_state(start);
        let mut sq = qm.basis_state(start);
        let mut sg = gm.basis_state(start);
        for o in &ops {
            sn = apply(&mut nm, sn, o);
            sq = apply(&mut qm, sq, o);
            sg = apply(&mut gm, sg, o);
        }
        let an = nm.amplitudes(&sn);
        let aq = qm.amplitudes(&sq);
        let ag = gm.amplitudes(&sg);
        for i in 0..an.len() {
            prop_assert!((an[i] - aq[i]).abs() < 1e-9, "numeric vs Qω at {i}: {:?} vs {:?}", an[i], aq[i]);
            prop_assert!((aq[i] - ag[i]).abs() < 1e-12, "Qω vs GCD at {i}: {:?} vs {:?}", aq[i], ag[i]);
        }
    }

    #[test]
    fn unitarity_preserves_norm(ops in prop::collection::vec(op(N), 0..30), start in 0u64..16) {
        let mut m = Manager::new(QomegaContext::new(), N);
        let mut s = m.basis_state(start);
        for o in &ops {
            s = apply(&mut m, s, o);
        }
        let norm = m.norm_sqr(&s);
        prop_assert!((norm - 1.0).abs() < 1e-10, "norm drifted: {norm}");
    }

    #[test]
    fn canonicity_same_state_same_edge(ops in prop::collection::vec(op(N), 0..15), start in 0u64..16) {
        // Build the same state twice in one manager: edges must be equal.
        let mut m = Manager::new(QomegaContext::new(), N);
        let mut s1 = m.basis_state(start);
        let mut s2 = m.basis_state(start);
        for o in &ops {
            s1 = apply(&mut m, s1, o);
        }
        for o in &ops {
            s2 = apply(&mut m, s2, o);
        }
        prop_assert_eq!(s1, s2);
    }

    #[test]
    fn gcd_and_qomega_node_counts_match(ops in prop::collection::vec(op(N), 0..20), start in 0u64..16) {
        // Both algebraic schemes detect exactly the real redundancies, so
        // their diagrams have identical size (only weights differ).
        let mut qm = Manager::new(QomegaContext::new(), N);
        let mut gm = Manager::new(GcdContext::new(), N);
        let mut sq = qm.basis_state(start);
        let mut sg = gm.basis_state(start);
        for o in &ops {
            sq = apply(&mut qm, sq, o);
            sg = apply(&mut gm, sg, o);
        }
        prop_assert_eq!(qm.vec_nodes(&sq), gm.vec_nodes(&sg));
    }

    #[test]
    fn compact_is_semantically_identity(ops in prop::collection::vec(op(N), 0..20)) {
        let mut m = Manager::new(GcdContext::new(), N);
        let mut s = m.basis_state(0);
        for o in &ops {
            s = apply(&mut m, s, o);
        }
        let before = m.amplitudes(&s);
        let nodes_before = m.vec_nodes(&s);
        let (vs, _) = m.compact(&[s], &[]);
        let after = m.amplitudes(&vs[0]);
        prop_assert_eq!(m.vec_nodes(&vs[0]), nodes_before);
        for (a, b) in before.iter().zip(&after) {
            prop_assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn mat_mul_matches_sequential_application(ops in prop::collection::vec(op(3), 1..10), start in 0u64..8) {
        // (G_k ⋯ G_1)|ψ⟩ built as one operator equals step-by-step application.
        let mut m = Manager::new(QomegaContext::new(), 3);
        let mut u = m.identity();
        let mut s_seq = m.basis_state(start);
        for o in &ops {
            s_seq = apply(&mut m, s_seq, o);
            let g = match o {
                Op::H(q) => m.gate(&GateMatrix::h(), *q, &[]),
                Op::X(q) => m.gate(&GateMatrix::x(), *q, &[]),
                Op::Y(q) => m.gate(&GateMatrix::y(), *q, &[]),
                Op::Z(q) => m.gate(&GateMatrix::z(), *q, &[]),
                Op::S(q) => m.gate(&GateMatrix::s(), *q, &[]),
                Op::T(q) => m.gate(&GateMatrix::t(), *q, &[]),
                Op::Tdg(q) => m.gate(&GateMatrix::tdg(), *q, &[]),
                Op::Cx(c, t) => m.gate(&GateMatrix::x(), *t, &[(*c, true)]),
                Op::Ccx(c0, c1, t) => m.gate(&GateMatrix::x(), *t, &[(*c0, true), (*c1, true)]),
            };
            u = m.mat_mul(&g, &u);
        }
        let basis = m.basis_state(start);
        let s_mat = m.mat_vec(&u, &basis);
        prop_assert_eq!(s_mat, s_seq, "canonicity: same state must be the same edge");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn inner_products_are_unitarily_invariant(ops in prop::collection::vec(op(3), 0..12), x in 0u64..8, y in 0u64..8) {
        // ⟨Ua|Ub⟩ = ⟨a|b⟩ for any circuit unitary U, exactly.
        let mut m = Manager::new(QomegaContext::new(), 3);
        let mut a = m.basis_state(x);
        let mut b = m.basis_state(y);
        let before = m.inner_product(&a, &b);
        for o in &ops {
            a = apply(&mut m, a, o);
            b = apply(&mut m, b, o);
        }
        let after = m.inner_product(&a, &b);
        prop_assert_eq!(before, after);
    }

    #[test]
    fn adjoint_is_an_involution_on_random_unitaries(ops in prop::collection::vec(op(3), 1..10)) {
        let mut m = Manager::new(QomegaContext::new(), 3);
        let mut u = m.identity();
        for o in &ops {
            u = {
                let g = match o {
                    Op::H(q) => m.gate(&GateMatrix::h(), *q, &[]),
                    Op::X(q) => m.gate(&GateMatrix::x(), *q, &[]),
                    Op::Y(q) => m.gate(&GateMatrix::y(), *q, &[]),
                    Op::Z(q) => m.gate(&GateMatrix::z(), *q, &[]),
                    Op::S(q) => m.gate(&GateMatrix::s(), *q, &[]),
                    Op::T(q) => m.gate(&GateMatrix::t(), *q, &[]),
                    Op::Tdg(q) => m.gate(&GateMatrix::tdg(), *q, &[]),
                    Op::Cx(c, t) => m.gate(&GateMatrix::x(), *t, &[(*c, true)]),
                    Op::Ccx(c0, c1, t) => {
                        m.gate(&GateMatrix::x(), *t, &[(*c0, true), (*c1, true)])
                    }
                };
                m.mat_mul(&g, &u)
            };
        }
        let dag = m.mat_adjoint(&u);
        let back = m.mat_adjoint(&dag);
        prop_assert_eq!(back, u);
        // and unitarity: U·U† = I
        let prod = m.mat_mul(&u, &dag);
        let id = m.identity();
        prop_assert_eq!(prod, id);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gate_builder_matches_dense_construction(
        target in 0u32..4,
        controls in prop::collection::vec((0u32..4, any::<bool>()), 0..3),
        gate_pick in 0usize..6,
    ) {
        // deduplicate controls and drop ones colliding with the target
        let mut seen = std::collections::HashSet::new();
        let controls: Vec<(u32, bool)> = controls
            .into_iter()
            .filter(|&(q, _)| q != target && seen.insert(q))
            .collect();
        let gate = match gate_pick {
            0 => GateMatrix::h(),
            1 => GateMatrix::x(),
            2 => GateMatrix::y(),
            3 => GateMatrix::t(),
            4 => GateMatrix::sx(),
            _ => GateMatrix::sdg(),
        };
        let n = 4u32;
        let mut m = Manager::new(NumericContext::with_eps(1e-13), n);
        let e = m.gate(&gate, target, &controls);
        let got = m.matrix(&e);

        // dense construction straight from the definition
        let u = gate.to_complex();
        let dim = 1usize << n;
        let tbit = 1usize << (n - 1 - target);
        #[allow(clippy::needless_range_loop)] // row/col are basis states, not just indices
        for col in 0..dim {
            let fires = controls.iter().all(|&(c, pol)| {
                ((col >> (n - 1 - c)) & 1 == 1) == pol
            });
            for row in 0..dim {
                let want = if !fires {
                    if row == col { aq_rings::Complex64::ONE } else { aq_rings::Complex64::ZERO }
                } else if row & !tbit == col & !tbit {
                    let r = usize::from(row & tbit != 0);
                    let c = usize::from(col & tbit != 0);
                    u[2 * r + c]
                } else {
                    aq_rings::Complex64::ZERO
                };
                prop_assert!(
                    (got[row][col] - want).abs() < 1e-10,
                    "entry ({row},{col}): {:?} vs {want:?}",
                    got[row][col]
                );
            }
        }
    }
}
