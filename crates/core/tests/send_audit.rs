//! Compile-time thread-safety audit for the serving layer.
//!
//! `aq-serve` moves managers (inside simulators/jobs) across worker
//! threads: one `Manager` per worker, never shared. That requires `Send`
//! but not `Sync`. These assertions are checked by the compiler — if a
//! non-`Send` member (an `Rc`, a raw pointer, a thread-local handle) ever
//! sneaks into the engine, this test stops compiling rather than the
//! server failing at a distance.

use aq_dd::{
    Edge, EngineError, EngineStatistics, GcdContext, Manager, MatId, NumericContext, QomegaContext,
    RunBudget, VecId,
};

fn assert_send<T: Send>() {}
fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn managers_over_every_context_are_send() {
    assert_send::<Manager<NumericContext>>();
    assert_send::<Manager<QomegaContext>>();
    assert_send::<Manager<GcdContext>>();
}

#[test]
fn contexts_and_plain_data_are_send_and_sync() {
    assert_send_sync::<NumericContext>();
    assert_send_sync::<QomegaContext>();
    assert_send_sync::<GcdContext>();
    assert_send_sync::<Edge<VecId>>();
    assert_send_sync::<Edge<MatId>>();
    assert_send_sync::<EngineError>();
    assert_send_sync::<EngineStatistics>();
    assert_send_sync::<RunBudget>();
}
