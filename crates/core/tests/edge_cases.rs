//! Edge-case and failure-injection tests for the QMDD engine.

use aq_dd::{
    Edge, GateMatrix, GcdContext, Manager, NumericContext, QomegaContext, WeightContext, WeightId,
};
use aq_rings::{Complex64, Qomega};

#[test]
#[should_panic(expected = "need at least one qubit")]
fn zero_qubit_manager_rejected() {
    let _ = Manager::new(QomegaContext::new(), 0);
}

#[test]
#[should_panic(expected = "basis state index out of range")]
fn basis_state_out_of_range() {
    let mut m = Manager::new(QomegaContext::new(), 2);
    let _ = m.basis_state(4);
}

#[test]
#[should_panic(expected = "unit matrix index out of range")]
fn unit_matrix_out_of_range() {
    let mut m = Manager::new(QomegaContext::new(), 2);
    let _ = m.unit_matrix(0, 7);
}

#[test]
#[should_panic(expected = "target out of range")]
fn gate_target_out_of_range() {
    let mut m = Manager::new(QomegaContext::new(), 2);
    let _ = m.gate(&GateMatrix::x(), 2, &[]);
}

#[test]
#[should_panic(expected = "control coincides with target")]
fn gate_control_on_target() {
    let mut m = Manager::new(QomegaContext::new(), 2);
    let _ = m.gate(&GateMatrix::x(), 1, &[(1, true)]);
}

#[test]
#[should_panic(expected = "cannot measure the zero vector")]
fn measuring_zero_vector_panics() {
    let mut m = Manager::new(QomegaContext::new(), 1);
    let _ = m.sample_measurement(&Edge::ZERO_VEC, || 0.5);
}

#[test]
fn interning_zero_always_yields_the_zero_id() {
    let mut m = Manager::new(QomegaContext::new(), 1);
    assert_eq!(m.intern(Qomega::zero()), WeightId::ZERO);
    let diff = &Qomega::from_int_ratio(2, 7) - &Qomega::from_int_ratio(2, 7);
    assert_eq!(m.intern(diff), WeightId::ZERO);
    // numeric: ε-close-to-zero collapses too
    let mut n = Manager::new(NumericContext::with_eps(1e-6), 1);
    assert_eq!(n.intern(Complex64::new(1e-9, -1e-9)), WeightId::ZERO);
}

#[test]
fn scaling_by_zero_gives_the_zero_edge() {
    let mut m = Manager::new(QomegaContext::new(), 2);
    let s = m.basis_state(1);
    let z = m.vec_scale(&s, WeightId::ZERO);
    assert!(z.is_zero());
    let id = m.identity();
    assert!(m.mat_scale(&id, WeightId::ZERO).is_zero());
}

#[test]
fn adding_a_state_to_its_negation_is_zero() {
    let mut m = Manager::new(GcdContext::new(), 3);
    let mut s = m.basis_state(5);
    for q in 0..3 {
        let h = m.gate(&GateMatrix::h(), q, &[]);
        s = m.mat_vec(&h, &s);
    }
    let minus_one = {
        let v = m.ctx().neg(&m.ctx().one());
        m.intern(v)
    };
    let neg = m.vec_scale(&s, minus_one);
    let sum = m.vec_add(&s, &neg);
    assert!(sum.is_zero(), "ψ − ψ must cancel structurally");
}

#[test]
fn all_zero_children_normalize_to_zero_edge() {
    // mat_add of x and −x for operators
    let mut m = Manager::new(QomegaContext::new(), 2);
    let g = m.gate(&GateMatrix::t(), 0, &[(1, false)]);
    let minus_one = {
        let v = m.ctx().neg(&m.ctx().one());
        m.intern(v)
    };
    let ng = m.mat_scale(&g, minus_one);
    assert!(m.mat_add(&g, &ng).is_zero());
}

#[test]
fn single_qubit_manager_works() {
    let mut m = Manager::new(NumericContext::new(), 1);
    let s = m.basis_state(1);
    assert_eq!(m.vec_nodes(&s), 1);
    let x = m.gate(&GateMatrix::x(), 0, &[]);
    let flipped = m.mat_vec(&x, &s);
    assert!((m.amplitudes(&flipped)[0].re - 1.0).abs() < 1e-15);
}

#[test]
fn many_controls_mixed_polarities() {
    // X on q3 iff q0=1, q1=0, q2=1 — check the full truth table.
    let mut m = Manager::new(QomegaContext::new(), 4);
    let g = m.gate(&GateMatrix::x(), 3, &[(0, true), (1, false), (2, true)]);
    let mat = m.matrix(&g);
    for input in 0..16usize {
        let fires = (input >> 3) & 1 == 1 && (input >> 2) & 1 == 0 && (input >> 1) & 1 == 1;
        let expected = if fires { input ^ 1 } else { input };
        for (r, row) in mat.iter().enumerate() {
            let want = if r == expected { 1.0 } else { 0.0 };
            assert!(
                (row[input].re - want).abs() < 1e-12 && row[input].im.abs() < 1e-12,
                "input {input:04b}: row {r} = {:?}",
                row[input]
            );
        }
    }
}

#[test]
fn weight_table_growth_is_observable() {
    // ε = 0: every new double is a new weight; ε = 1e-2: everything merges.
    let run = |eps: f64| {
        let mut m = Manager::new(NumericContext::with_eps(eps), 4);
        let mut s = m.basis_state(0);
        for q in 0..4 {
            let h = m.gate(&GateMatrix::h(), q, &[]);
            s = m.mat_vec(&h, &s);
            let t = m.gate(&GateMatrix::t(), q, &[]);
            s = m.mat_vec(&t, &s);
        }
        m.distinct_weights()
    };
    assert!(
        run(0.0) >= run(1e-2),
        "looser ε must not grow the table more"
    );
}

#[test]
fn wide_register_basis_state_does_not_overflow_the_shift() {
    // 72 qubits: a u64 index only addresses the low 64; the high qubits
    // read as |0⟩ instead of hitting a shift-overflow panic.
    let mut m = Manager::new(QomegaContext::new(), 72);
    let s = m.basis_state(5);
    assert_eq!(m.vec_nodes(&s), 72);
    assert!((m.amplitude(&s, 5).re - 1.0).abs() < 1e-15);
    assert_eq!(m.amplitude(&s, 6).re, 0.0);
    // the all-ones u64 index is in range on a wide register
    let top = m.basis_state(u64::MAX);
    assert!((m.amplitude(&top, u64::MAX).re - 1.0).abs() < 1e-15);
    assert_eq!(m.amplitude(&top, 0).re, 0.0);
}

#[test]
fn wide_register_unit_matrix_maps_col_to_row() {
    let mut m = Manager::new(QomegaContext::new(), 70);
    let u = m.unit_matrix(3, 7);
    let col = m.basis_state(7);
    let mapped = m.mat_vec(&u, &col);
    assert!((m.amplitude(&mapped, 3).re - 1.0).abs() < 1e-15);
    assert_eq!(m.amplitude(&mapped, 7).re, 0.0);
    // gates still apply on a wide register: X on qubit 69 flips index
    // bit 0 (qubit q addresses index bit n−1−q)
    let x = m.gate(&GateMatrix::x(), 69, &[]);
    let flipped = m.mat_vec(&x, &mapped);
    assert!((m.amplitude(&flipped, 2).re - 1.0).abs() < 1e-15);
}

#[test]
fn compact_with_matrix_roots() {
    let mut m = Manager::new(QomegaContext::new(), 3);
    let a = m.gate(&GateMatrix::h(), 0, &[]);
    let b = m.gate(&GateMatrix::t(), 2, &[(0, true)]);
    let prod = m.mat_mul(&a, &b);
    let before = m.matrix(&prod);
    let (_, ms) = m.compact(&[], &[prod]);
    let after = m.matrix(&ms[0]);
    for (ra, rb) in before.iter().zip(&after) {
        for (x, y) in ra.iter().zip(rb) {
            assert!((*x - *y).abs() < 1e-12);
        }
    }
}
