//! Resource-budget behaviour: `try_*` operations must return structured
//! [`EngineError`]s when a [`RunBudget`] limit is crossed, leaving the
//! manager's live diagrams intact for partial-result extraction, while
//! the infallible wrappers panic with the same message.

use std::time::Duration;

use aq_dd::{
    Edge, EngineError, GateMatrix, Manager, NumericContext, QomegaContext, RunBudget, VecId,
    WeightContext,
};

/// Runs H/T layers until an operation fails, returning the error and the
/// last fully-applied state.
fn step_until_abort<W: WeightContext>(
    m: &mut Manager<W>,
    max_layers: usize,
) -> (Option<EngineError>, Edge<VecId>) {
    let mut state = m.try_basis_state(0).expect("start state within budget");
    for layer in 0..max_layers {
        // H then T on the same qubit, cycling qubits: (TH)^k per qubit
        // grows both entanglement (nodes) and coefficient bit-widths
        let q = ((layer / 2) % m.n_qubits() as usize) as u32;
        let gate = if layer % 2 == 0 {
            GateMatrix::h()
        } else {
            GateMatrix::t()
        };
        let g = match m.try_gate(&gate, q, &[]) {
            Ok(g) => g,
            Err(e) => return (Some(e), state),
        };
        match m.try_mat_vec(&g, &state) {
            Ok(next) => state = next,
            Err(e) => return (Some(e), state),
        }
    }
    (None, state)
}

#[test]
fn node_budget_aborts_with_structured_error() {
    let mut m = Manager::new(QomegaContext::new(), 6);
    m.set_budget(RunBudget::unlimited().with_max_nodes(10));
    let (err, state) = step_until_abort(&mut m, 200);
    let err = err.expect("tiny node budget must trip");
    assert!(err.is_budget(), "budget error expected, got {err}");
    assert!(
        err.to_string().contains("node budget exceeded"),
        "got: {err}"
    );
    // the last good state is still readable — fail-soft, not poisoned
    let probs: f64 = m.amplitudes(&state).iter().map(|a| a.norm_sqr()).sum();
    assert!((probs - 1.0).abs() < 1e-9, "partial state must stay unit");
}

#[test]
fn weight_budget_aborts_with_structured_error() {
    let mut m = Manager::new(NumericContext::with_eps(0.0), 4);
    m.set_budget(RunBudget::unlimited().with_max_distinct_weights(6));
    let (err, _) = step_until_abort(&mut m, 400);
    let err = err.expect("ε = 0 grows distinct weights without bound");
    assert!(err.is_budget());
    assert!(
        err.to_string().contains("weight budget exceeded"),
        "got: {err}"
    );
}

#[test]
fn weight_bits_budget_aborts_with_structured_error() {
    // exact H/T layers grow coefficient bit-widths monotonically — the
    // blow-up the paper's Fig. 5 measures. A tiny cap must trip.
    let mut m = Manager::new(QomegaContext::new(), 4);
    m.set_budget(RunBudget::unlimited().with_max_weight_bits(6));
    let (err, _) = step_until_abort(&mut m, 400);
    let err = err.expect("algebraic bit-widths grow without bound");
    assert!(err.is_budget());
    assert!(
        err.to_string().contains("weight bit-width budget exceeded"),
        "got: {err}"
    );
}

#[test]
fn expired_deadline_fails_the_first_operation() {
    let mut m = Manager::new(QomegaContext::new(), 4);
    m.set_budget(RunBudget::unlimited().with_deadline(Duration::ZERO));
    let err = m
        .try_basis_state(0)
        .expect_err("zero deadline must fail fast");
    assert!(err.is_budget());
    assert!(err.to_string().contains("deadline exceeded"), "got: {err}");
}

#[test]
fn lifting_the_budget_resumes_the_same_manager() {
    let mut m = Manager::new(QomegaContext::new(), 6);
    m.set_budget(RunBudget::unlimited().with_max_nodes(10));
    let (err, state) = step_until_abort(&mut m, 200);
    assert!(err.is_some());
    // lift the budget: the identical manager (tables, caches, diagrams)
    // keeps working — aborts never poison engine state
    m.set_budget(RunBudget::unlimited());
    let h = m.gate(&GateMatrix::h(), 0, &[]);
    let next = m.mat_vec(&h, &state);
    let probs: f64 = m.amplitudes(&next).iter().map(|a| a.norm_sqr()).sum();
    assert!((probs - 1.0).abs() < 1e-9);
}

#[test]
fn failed_compaction_leaves_roots_valid() {
    let mut m = Manager::new(QomegaContext::new(), 5);
    let mut state = m.basis_state(0);
    for q in 0..5 {
        let h = m.gate(&GateMatrix::h(), q, &[]);
        state = m.mat_vec(&h, &state);
    }
    let before = m.amplitudes(&state);
    // a budget too small for even the live set: compaction must abort
    // atomically, leaving the old arenas (and the root) untouched
    m.set_budget(RunBudget::unlimited().with_max_nodes(1));
    let err = m
        .try_compact(&[state], &[])
        .expect_err("live set exceeds the budget");
    assert!(err.is_budget());
    m.set_budget(RunBudget::unlimited());
    let after = m.amplitudes(&state);
    assert_eq!(before.len(), after.len());
    for (x, y) in before.iter().zip(&after) {
        assert!(
            (*x - *y).norm_sqr() < 1e-24,
            "roots must survive a failed compact"
        );
    }
}

#[test]
#[should_panic(expected = "node budget exceeded")]
fn infallible_wrappers_panic_with_the_structured_message() {
    let mut m = Manager::new(QomegaContext::new(), 6);
    m.set_budget(RunBudget::unlimited().with_max_nodes(4));
    let mut state = m.basis_state(0);
    for q in 0..6 {
        let h = m.gate(&GateMatrix::h(), q, &[]);
        state = m.mat_vec(&h, &state);
    }
}

#[test]
fn budget_accessors_round_trip() {
    let b = RunBudget::unlimited()
        .with_max_nodes(100)
        .with_max_distinct_weights(50)
        .with_max_weight_bits(64)
        .with_deadline(Duration::from_secs(1));
    assert!(!b.is_unlimited());
    let mut m = Manager::new(QomegaContext::new(), 2);
    assert!(m.budget().is_unlimited());
    m.set_budget(b);
    assert_eq!(m.budget().max_nodes, Some(100));
    assert_eq!(m.budget().max_distinct_weights, Some(50));
    assert_eq!(m.budget().max_weight_bits, Some(64));
    assert_eq!(m.budget().deadline, Some(Duration::from_secs(1)));
}
