//! A small, fast, deterministic pseudo-random number generator
//! (xorshift64* seeded through SplitMix64).
//!
//! Not cryptographically secure — this is test/benchmark support and the
//! welded-tree workload generator, where only determinism and reasonable
//! statistical quality matter.

/// Deterministic 64-bit PRNG (xorshift64* core, SplitMix64 seeding).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

/// SplitMix64 step: decorrelates arbitrary (possibly tiny) seeds.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a seed; equal seeds give equal streams.
    pub fn from_seed(seed: u64) -> Rng {
        // xorshift state must be non-zero
        let state = splitmix64(seed).max(1);
        Rng { state }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        // Lemire multiply-shift with rejection: unbiased, one division
        // only on the (rare) retry path.
        let mut m = (self.next_u64() as u128) * (n as u128);
        if (m as u64) < n {
            let threshold = n.wrapping_neg() % n;
            while (m as u64) < threshold {
                m = (self.next_u64() as u128) * (n as u128);
            }
        }
        (m >> 64) as u64
    }

    /// Fair coin flip.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::from_seed(42);
        let mut b = Rng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::from_seed(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_in_range_and_covers() {
        let mut rng = Rng::from_seed(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.below(5) as usize;
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_f64_bounds() {
        let mut rng = Rng::from_seed(9);
        for _ in 0..1000 {
            let f = rng.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::from_seed(1);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }
}
