//! A micro-benchmark timer: the offline stand-in for Criterion.
//!
//! Each measurement warms the closure up, calibrates an iteration count
//! to a ~200 ms window, and prints a single `name ... ns/iter` line.
//! The workspace's benches compare orders of magnitude, so tight
//! confidence intervals are deliberately out of scope.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement window per benchmark.
const TARGET: Duration = Duration::from_millis(200);

/// Measures `f`, prints `name: <ns>/iter`, and returns the nanoseconds
/// per iteration.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> f64 {
    // warm-up and calibration: double the batch until it takes >= 10ms
    let mut batch = 1u64;
    let per_iter_estimate = loop {
        let t0 = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let dt = t0.elapsed();
        if dt >= Duration::from_millis(10) {
            break dt.as_secs_f64() / batch as f64;
        }
        batch = batch.saturating_mul(2);
    };
    let iters = ((TARGET.as_secs_f64() / per_iter_estimate) as u64).clamp(1, 1_000_000_000);
    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let ns = t0.elapsed().as_secs_f64() * 1e9 / iters as f64;
    println!("{name:<44} {ns:>14.1} ns/iter  ({iters} iters)");
    ns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let ns = bench("noop_sum", || (0..100u64).sum::<u64>());
        assert!(ns > 0.0);
    }
}
