//! Self-contained test support for the workspace: a deterministic RNG, a
//! miniature property-testing harness with a `proptest`-compatible macro
//! surface, and a micro-benchmark timer.
//!
//! The container this workspace builds in has **no network access**, so
//! crates-io dev-dependencies (`rand`, `proptest`, `criterion`) cannot be
//! resolved. This crate replaces the small slices of their APIs the
//! workspace actually uses, keeping `cargo build && cargo test` fully
//! offline. Unlike `proptest` proper there is no shrinking and no failure
//! persistence — cases are generated from a seed derived from the test
//! name, so failures reproduce deterministically across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod proptest;
pub mod rng;

pub use rng::Rng;
