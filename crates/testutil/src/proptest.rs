//! A miniature property-testing harness with a `proptest`-compatible
//! macro surface.
//!
//! Supports the subset the workspace's tests use: range and `any::<T>()`
//! strategies, tuples, `prop::collection::vec`, `prop_map`,
//! `prop_filter_map`, `prop_oneof!`, `prop_assume!`, `prop_assert!`,
//! `prop_assert_eq!` and the `proptest! { ... }` test-block macro with an
//! optional `#![proptest_config(...)]` header.
//!
//! Differences from `proptest` proper: no shrinking, no persistence file,
//! and cases are seeded deterministically from the test name (so a
//! failure reproduces identically on every run).

use crate::rng::Rng;
use std::ops::Range;

/// Everything the test files import with `use ..::proptest::prelude::*`.
pub mod prelude {
    pub use super::prop;
    pub use super::{any, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// The `prop::` module path used by `prop::collection::vec(...)`.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        use super::super::{Strategy, VecStrategy};
        use std::ops::Range;

        /// A strategy producing `Vec`s with lengths drawn from `len`
        /// and elements drawn from `elem`.
        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }
    }
}

/// Number of cases to run per property.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// How many accepted (non-rejected) cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Marker returned (via `Err`) when `prop_assume!` rejects a case.
#[derive(Debug, Clone, Copy)]
pub struct Rejected;

/// A generator of random values, the object the combinators compose.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut Rng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Maps through `f`, resampling whenever it returns `None`.
    /// The label describes the accepted cases (diagnostics only).
    fn prop_filter_map<T, F: Fn(Self::Value) -> Option<T>>(
        self,
        label: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            f,
            label,
        }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut Rng) -> T {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut Rng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    label: &'static str,
}

impl<S: Strategy, T, F: Fn(S::Value) -> Option<T>> Strategy for FilterMap<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut Rng) -> T {
        for _ in 0..100_000 {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map(\"{}\") rejected 100000 samples",
            self.label
        );
    }
}

/// Uniform choice among type-erased strategies; built by `prop_oneof!`.
pub struct OneOf<T> {
    variants: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// A strategy sampling uniformly from `variants`.
    ///
    /// # Panics
    ///
    /// Panics if `variants` is empty.
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { variants }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut Rng) -> T {
        let i = rng.below(self.variants.len() as u64) as usize;
        self.variants[i].sample(rng)
    }
}

/// See [`prop::collection::vec`].
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut Rng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start).max(1) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.elem.sample(rng)).collect()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Types with a full-domain default strategy (the `any::<T>()` form).
pub trait Arb: Sized {
    /// Draws an unconstrained value.
    fn arb_sample(rng: &mut Rng) -> Self;
}

macro_rules! arb_uint {
    ($($t:ty),*) => {$(
        impl Arb for $t {
            fn arb_sample(rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arb for bool {
    fn arb_sample(rng: &mut Rng) -> bool {
        rng.gen_bool()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arb> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut Rng) -> T {
        T::arb_sample(rng)
    }
}

/// The full-domain strategy for `T` (`any::<u64>()`, `any::<bool>()`, …).
pub fn any<T: Arb>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut Rng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// FNV-1a over the test name: the per-test deterministic seed.
fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Runs `config.cases` accepted cases of `case`, retrying rejected ones
/// (bounded). Called by the `proptest!` macro expansion.
///
/// # Panics
///
/// Panics (failing the test) if rejection exhausts the retry budget;
/// assertion failures inside `case` propagate as normal panics.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut Rng) -> Result<(), Rejected>,
{
    let mut rng = Rng::from_seed(seed_from_name(name));
    let mut accepted = 0u32;
    let mut rejected = 0u64;
    let budget = config.cases as u64 * 64 + 1024;
    while accepted < config.cases {
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(Rejected) => {
                rejected += 1;
                assert!(
                    rejected < budget,
                    "property `{name}`: too many rejected cases ({rejected})"
                );
            }
        }
    }
}

/// Defines property tests. Mirrors `proptest::proptest!`:
///
/// ```
/// use aq_testutil::proptest::prelude::*;
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     # #[allow(unused)]
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # addition_commutes();
/// ```
///
/// (In real use each function carries `#[test]`.)
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::proptest::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::proptest::run_cases($cfg, stringify!($name), |rng| {
                    $(let $arg = $crate::proptest::Strategy::sample(&($strat), rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    (|| -> ::std::result::Result<(), $crate::proptest::Rejected> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
}

/// Rejects the current case unless the condition holds (the case is
/// retried with fresh values and does not count towards the total).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::proptest::Rejected);
        }
    };
}

/// Uniform choice among the listed strategies (all arms must generate the
/// same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::proptest::OneOf::new(vec![
            $($crate::proptest::Strategy::boxed($s)),+
        ])
    };
}

/// Asserts within a property (an alias for `assert!` — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality within a property (an alias for `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn map_and_ranges(x in even(), y in -50i64..50, b in any::<bool>()) {
            prop_assert!(x % 2 == 0);
            prop_assert!((-50..50).contains(&y));
            let _ = b;
        }

        #[test]
        fn assume_retries(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }

        #[test]
        fn filter_map_and_oneof(v in prop_oneof![
            (0u32..5, 0u32..5).prop_filter_map("distinct", |(a, b)| (a != b).then_some((a, b))),
            (5u32..9).prop_map(|a| (a, a)),
        ]) {
            let (a, b) = v;
            prop_assert!(a < 5 && a != b || a >= 5 && a == b);
        }

        #[test]
        fn collection_vec(xs in prop::collection::vec(any::<u8>(), 0..8)) {
            prop_assert!(xs.len() < 8);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::Rng;
        let mut out1 = Vec::new();
        let mut out2 = Vec::new();
        for out in [&mut out1, &mut out2] {
            super::run_cases(ProptestConfig::with_cases(10), "det", |rng: &mut Rng| {
                out.push((0u64..100).sample(rng));
                Ok(())
            });
        }
        assert_eq!(out1, out2);
    }
}
