//! # aq-serve — a concurrent batch-simulation service
//!
//! A std-only serving layer over the `aqudd` engine: clients submit
//! circuit-simulation jobs (by name or inline QASM, with a weight scheme
//! and a **mandatory** resource budget), a hand-rolled worker pool runs
//! them fail-soft, and a `metrics` verb exposes live counters, queue
//! depth, latency histograms and per-worker engine statistics.
//!
//! Three layers, each usable on its own:
//!
//! - [`ServeCore`] — queue + registry + worker pool; speak typed
//!   [`Request`]/[`Response`] to it directly or through the in-process
//!   [`Client`].
//! - [`Server`] — line-delimited JSON over TCP localhost (the
//!   `aq-served` binary); [`TcpClient`] / the `aq-cli` binary talk to
//!   it.
//! - [`protocol`] — the wire grammar, circuit specs and request parsing,
//!   reusable without a socket.
//!
//! Design notes live in the workspace `DESIGN.md` ("Service layer").

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod backoff;
pub mod cache;
pub mod client;
pub mod faults;
pub mod json;
pub mod lockaudit;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod service;

pub use backoff::Backoff;
pub use cache::{CacheKey, ResultCache, ResultCacheStats};
pub use client::{Client, RetryPolicy, TcpClient};
pub use faults::{ChaosKill, FaultCounters, FaultPlan, StallPhase};
pub use json::Json;
pub use metrics::{
    histogram_quantile_ms, LatencyHistogram, Metrics, WorkerStats, LATENCY_BUCKETS,
    LATENCY_BUCKET_EDGES_US,
};
pub use protocol::{CircuitSpec, Request, SubmitRequest, MAX_FRAME_BYTES, MAX_QUBITS, MAX_SHOTS};
pub use queue::{AdmissionError, JobQueue};
pub use server::Server;
pub use service::{
    JobState, JobStatusReport, MetricsReport, Response, SchemeClass, ServeConfig, ServeCore,
    WorkerReport,
};
