//! Content-addressed result cache: repeated submissions of the same
//! simulation short-circuit before the queue.
//!
//! Simulation results are a pure function of (circuit, start state,
//! scheme, extraction width) — the engine's lossy compute caches never
//! change results, and the scheme label encodes ε for numeric jobs. The
//! cache key therefore addresses *content*: the canonical circuit
//! fingerprint plus every request parameter that can alter the reply a
//! client sees — including the job kind: a seeded sampling job and a
//! plain run over the same circuit carry a [`JobKind`] discriminant (with
//! the sampler's `shots` and `seed`) so they can never answer for each
//! other. Two budgets that differ only within the same
//! power-of-two **budget class** are considered equivalent: a completed
//! outcome proves the work fit the smaller budget of the class, and
//! quantizing keeps near-miss budgets from fragmenting the cache.
//! Wall-clock deadlines are deliberately **excluded** from the key — a
//! cached hit costs no engine time, so any deadline is trivially met.
//!
//! Only *completed, non-resumed* outcomes are cached: aborted outcomes
//! depend on wall-clock and checkpoint paths, and resumed jobs start from
//! snapshot state the key cannot see.
//!
//! Eviction is least-recently-used over a monotonic touch tick, bounded
//! by a fixed capacity. Hit/miss/insert/evict counters feed the `metrics`
//! verb.

use std::collections::HashMap;

use aq_circuits::Circuit;
use aq_dd::RunBudget;
use aq_sim::{circuit_fingerprint, JobOutcome, SampleParams, SchemeSpec};

/// The job-kind tag inside a [`CacheKey`]: a plain simulation run and a
/// seeded sampling job over the *same* circuit produce different replies
/// (amplitudes vs a histogram), so the kind — and for sampling, the
/// exact `(shots, seed)` pair — is part of the cache identity. Two
/// sampling submissions hit the same entry only when their histograms
/// are guaranteed bit-identical.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum JobKind {
    /// Full simulation reporting `top_k` amplitudes.
    Run,
    /// Seeded shot sampling.
    Sample {
        /// Shots drawn.
        shots: u64,
        /// Sampler RNG seed.
        seed: u64,
    },
}

/// Identity of one cacheable simulation request.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonical circuit fingerprint (gate-by-gate FNV over the ops).
    circuit: u64,
    /// Scheme label — encodes the kind *and* ε for numeric schemes.
    scheme: String,
    /// Start basis state.
    start: u64,
    /// Measurement extraction width.
    top_k: usize,
    /// Power-of-two quantized (max_nodes, max_distinct_weights,
    /// max_weight_bits); `u64::MAX` encodes "unlimited".
    budget_class: [u64; 3],
    /// Run vs sample discriminant (with the sampler's shots and seed).
    kind: JobKind,
}

impl CacheKey {
    /// Builds the key for one submission; `sample` is `Some` exactly for
    /// sampling jobs.
    pub fn new(
        circuit: &Circuit,
        start: u64,
        scheme: &SchemeSpec,
        top_k: usize,
        budget: &RunBudget,
        sample: Option<SampleParams>,
    ) -> CacheKey {
        let quantize = |v: Option<u64>| match v {
            None => u64::MAX,
            Some(0) => 0,
            Some(n) => n.next_power_of_two(),
        };
        CacheKey {
            circuit: circuit_fingerprint(circuit),
            scheme: scheme.label(),
            start,
            top_k,
            budget_class: [
                quantize(budget.max_nodes.map(|n| n as u64)),
                quantize(budget.max_distinct_weights.map(|n| n as u64)),
                quantize(budget.max_weight_bits),
            ],
            kind: match sample {
                None => JobKind::Run,
                Some(p) => JobKind::Sample {
                    shots: p.shots,
                    seed: p.seed,
                },
            },
        }
    }
}

/// Lifetime counters of the result cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Lookups that found a memoized outcome.
    pub hits: u64,
    /// Lookups that found nothing (the job went to the queue).
    pub misses: u64,
    /// Completed outcomes stored.
    pub insertions: u64,
    /// Entries dropped to make room (LRU order).
    pub evictions: u64,
}

impl ResultCacheStats {
    /// Hit rate in `[0, 1]`; `0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

#[derive(Debug)]
struct Entry {
    outcome: JobOutcome,
    /// Last-touched tick (insert or hit), for LRU eviction.
    touched: u64,
}

/// A bounded LRU of completed [`JobOutcome`]s keyed by [`CacheKey`].
/// Capacity 0 disables the cache entirely (every lookup misses, nothing
/// is stored) — sessions-only benchmarking and bit-identity tests use
/// that mode.
#[derive(Debug)]
pub struct ResultCache {
    map: HashMap<CacheKey, Entry>,
    capacity: usize,
    tick: u64,
    stats: ResultCacheStats,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` outcomes.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            map: HashMap::new(),
            capacity,
            tick: 0,
            stats: ResultCacheStats::default(),
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Memoized outcomes currently stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ResultCacheStats {
        self.stats
    }

    /// Looks up a memoized outcome, counting the hit or miss and
    /// refreshing the entry's LRU position on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<JobOutcome> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.touched = tick;
                self.stats.hits += 1;
                Some(entry.outcome.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores a completed outcome, evicting the least-recently-used entry
    /// when full. Callers must only pass completed, non-resumed outcomes
    /// (see the module docs); a no-op at capacity 0.
    pub fn insert(&mut self, key: CacheKey, outcome: JobOutcome) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.map.get_mut(&key) {
            entry.outcome = outcome;
            entry.touched = tick;
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some(lru) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.touched)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&lru);
                self.stats.evictions += 1;
            }
        }
        self.map.insert(
            key,
            Entry {
                outcome,
                touched: tick,
            },
        );
        self.stats.insertions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aq_dd::EngineStatistics;

    fn outcome(gates: usize) -> JobOutcome {
        JobOutcome {
            gates_applied: gates,
            seconds: 0.0,
            final_nodes: 1,
            statistics: EngineStatistics::default(),
            top_probabilities: vec![(0, 1.0)],
            resumed: false,
            sample: None,
            aborted: None,
        }
    }

    fn key(marked: u64) -> CacheKey {
        let c = aq_circuits::grover(3, marked);
        CacheKey::new(
            &c,
            0,
            &SchemeSpec::Qomega,
            4,
            &RunBudget::unlimited().with_max_nodes(1000),
            None,
        )
    }

    #[test]
    fn keys_distinguish_circuit_scheme_start_and_budget_class() {
        let c = aq_circuits::grover(3, 1);
        let b = RunBudget::unlimited().with_max_nodes(1000);
        let base = CacheKey::new(&c, 0, &SchemeSpec::Qomega, 4, &b, None);
        assert_eq!(base, CacheKey::new(&c, 0, &SchemeSpec::Qomega, 4, &b, None));
        // same power-of-two budget class coalesces
        let near = RunBudget::unlimited().with_max_nodes(600);
        assert_eq!(
            base,
            CacheKey::new(&c, 0, &SchemeSpec::Qomega, 4, &near, None)
        );
        // a different class does not
        let far = RunBudget::unlimited().with_max_nodes(100_000);
        assert_ne!(
            base,
            CacheKey::new(&c, 0, &SchemeSpec::Qomega, 4, &far, None)
        );
        // deadlines are excluded from the key
        let dl = b.with_deadline(std::time::Duration::from_secs(1));
        assert_eq!(
            base,
            CacheKey::new(&c, 0, &SchemeSpec::Qomega, 4, &dl, None)
        );
        // ε is part of the scheme label, so it is part of the key
        assert_ne!(
            CacheKey::new(&c, 0, &SchemeSpec::Numeric { eps: 0.0 }, 4, &b, None),
            CacheKey::new(&c, 0, &SchemeSpec::Numeric { eps: 1e-10 }, 4, &b, None),
        );
        assert_ne!(base, CacheKey::new(&c, 1, &SchemeSpec::Qomega, 4, &b, None));
        assert_ne!(base, CacheKey::new(&c, 0, &SchemeSpec::Qomega, 8, &b, None));
        let c2 = aq_circuits::grover(3, 2);
        assert_ne!(
            base,
            CacheKey::new(&c2, 0, &SchemeSpec::Qomega, 4, &b, None)
        );
    }

    /// Regression: a `run` and a `sample` over the same circuit, scheme
    /// and budget must never answer for each other — a histogram reply
    /// served where amplitudes were asked (or vice versa) would be a
    /// protocol corruption the client cannot detect.
    #[test]
    fn run_and_sample_keys_never_collide() {
        let c = aq_circuits::grover(3, 1);
        let b = RunBudget::unlimited().with_max_nodes(1000);
        let sp = |shots, seed| Some(SampleParams { shots, seed });
        let run = CacheKey::new(&c, 0, &SchemeSpec::Qomega, 4, &b, None);
        let sample = CacheKey::new(&c, 0, &SchemeSpec::Qomega, 4, &b, sp(1024, 0));
        assert_ne!(run, sample);
        // equal sampling parameters coalesce (bit-identical histograms)…
        assert_eq!(
            sample,
            CacheKey::new(&c, 0, &SchemeSpec::Qomega, 4, &b, sp(1024, 0))
        );
        // …but shots and seed are both part of the identity
        assert_ne!(
            sample,
            CacheKey::new(&c, 0, &SchemeSpec::Qomega, 4, &b, sp(2048, 0))
        );
        assert_ne!(
            sample,
            CacheKey::new(&c, 0, &SchemeSpec::Qomega, 4, &b, sp(1024, 1))
        );
    }

    #[test]
    fn lru_eviction_and_counters() {
        let mut cache = ResultCache::new(2);
        cache.insert(key(1), outcome(1));
        cache.insert(key(2), outcome(2));
        assert!(cache.get(&key(1)).is_some(), "touch 1 so 2 becomes LRU");
        cache.insert(key(3), outcome(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(2)).is_none(), "2 was evicted as LRU");
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());
        let s = cache.stats();
        assert_eq!(s.insertions, 3);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 1);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn capacity_zero_disables_storage() {
        let mut cache = ResultCache::new(0);
        cache.insert(key(1), outcome(1));
        assert!(cache.is_empty());
        assert!(cache.get(&key(1)).is_none());
        assert_eq!(cache.stats().insertions, 0);
        assert_eq!(cache.stats().misses, 1);
    }
}
