//! The TCP front-end: line-delimited JSON over localhost.
//!
//! One thread per connection, each serving any number of requests. The
//! framing layer is deliberately paranoid — a frame longer than
//! [`MAX_FRAME_BYTES`](crate::protocol::MAX_FRAME_BYTES) gets a
//! structured error and the connection is closed (there is no way to
//! resynchronise mid-frame); malformed JSON or unknown verbs get a
//! structured error and the connection *stays open*. Nothing a client
//! sends can panic the server.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::protocol::{error_response, Request, MAX_FRAME_BYTES};
use crate::service::{Response, ServeCore};

/// What reading one frame produced.
enum Frame {
    /// A complete line (without the trailing newline).
    Line(Vec<u8>),
    /// Peer closed the connection cleanly.
    Eof,
    /// The line exceeded [`MAX_FRAME_BYTES`]; the connection is
    /// unrecoverable.
    Oversized,
}

/// Reads one newline-terminated frame, refusing to buffer more than
/// `MAX_FRAME_BYTES` of it.
fn read_frame(reader: &mut BufReader<TcpStream>) -> io::Result<Frame> {
    let mut line = Vec::new();
    let mut limited = reader.take((MAX_FRAME_BYTES + 1) as u64);
    limited.read_until(b'\n', &mut line)?;
    if line.is_empty() {
        return Ok(Frame::Eof);
    }
    if line.last() != Some(&b'\n') {
        // Either the peer hung up mid-line (short frame, no newline) or
        // the frame is oversized. Distinguish by length.
        if line.len() > MAX_FRAME_BYTES {
            return Ok(Frame::Oversized);
        }
        // Truncated final line: treat as a complete (garbage) frame so
        // the parser can answer with a structured error before EOF.
    }
    while line.last() == Some(&b'\n') || line.last() == Some(&b'\r') {
        line.pop();
    }
    Ok(Frame::Line(line))
}

fn write_line(stream: &mut TcpStream, line: &str) -> io::Result<()> {
    crate::lockaudit::blocking_op("tcp write_line");
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// A bound TCP server wrapping a [`ServeCore`].
#[derive(Debug)]
pub struct Server {
    core: Arc<ServeCore>,
    listener: TcpListener,
    addr: SocketAddr,
    stopping: Arc<AtomicBool>,
}

impl Server {
    /// Binds to `127.0.0.1:port` (`port = 0` picks an ephemeral port;
    /// read it back with [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(core: Arc<ServeCore>, port: u16) -> io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        Ok(Server {
            core,
            listener,
            addr,
            stopping: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves connections until a `shutdown` request completes. Blocks
    /// the calling thread.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures (per-connection errors are
    /// contained in their threads).
    pub fn run(self) -> io::Result<()> {
        for conn in self.listener.incoming() {
            if self.stopping.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) => return Err(e),
            };
            let core = Arc::clone(&self.core);
            let stopping = Arc::clone(&self.stopping);
            let addr = self.addr;
            std::thread::Builder::new()
                .name("aq-serve-conn".into())
                .spawn(move || {
                    serve_connection(stream, core, stopping, addr);
                })
                .ok();
        }
        Ok(())
    }
}

fn serve_connection(
    stream: TcpStream,
    core: Arc<ServeCore>,
    stopping: Arc<AtomicBool>,
    server_addr: SocketAddr,
) {
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(f) => f,
            Err(_) => return, // connection-level I/O failure; nothing to say
        };
        let line = match frame {
            Frame::Eof => return,
            Frame::Oversized => {
                let _ = write_line(
                    &mut writer,
                    &error_response(&format!(
                        "frame exceeds {MAX_FRAME_BYTES} bytes; closing connection"
                    )),
                );
                return;
            }
            Frame::Line(bytes) => bytes,
        };
        if line.iter().all(|b| b.is_ascii_whitespace()) {
            continue; // ignore blank keep-alive lines
        }
        let text = match std::str::from_utf8(&line) {
            Ok(t) => t,
            Err(_) => {
                let _ = write_line(&mut writer, &error_response("frame is not valid UTF-8"));
                continue;
            }
        };
        let request = match Request::parse(text) {
            Ok(r) => r,
            Err(reason) => {
                let _ = write_line(&mut writer, &error_response(&reason));
                continue;
            }
        };
        let is_shutdown = matches!(request, Request::Shutdown);
        let response = core.handle(request);
        let _ = write_line(&mut writer, &response.render());
        if is_shutdown && matches!(response, Response::ShutdownDone { .. }) {
            // Stop the accept loop: raise the flag, then poke the
            // listener with a throwaway connection so `incoming()`
            // returns and observes it.
            stopping.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(server_addr);
            return;
        }
    }
}
