//! The TCP front-end: line-delimited JSON over localhost, served by a
//! single-threaded event loop.
//!
//! The loop multiplexes every connection over nonblocking sockets: one
//! `accept` pass, one read/parse pass, one pending-verb poll, one write
//! pass, then (only when nothing moved) a short idle sleep. No thread is
//! ever spawned per connection, so the old failure mode — a refused
//! `thread::spawn` silently dropping the socket — cannot exist; instead a
//! connection beyond [`ServeConfig::max_connections`] receives a
//! structured `error` response, is counted in the `metrics` verb, and is
//! closed.
//!
//! The framing layer stays deliberately paranoid — a frame longer than
//! [`MAX_FRAME_BYTES`](crate::protocol::MAX_FRAME_BYTES) gets a
//! structured error and the connection is closed (there is no way to
//! resynchronise mid-frame); malformed JSON or unknown verbs get a
//! structured error and the connection *stays open*; a truncated final
//! line before EOF is answered as a (garbage) frame. Nothing a client
//! sends can panic or stall the server: requests are handled with the
//! core's non-blocking verb surface, so a slow `wait` on one connection
//! never delays another.
//!
//! [`ServeConfig::max_connections`]: crate::service::ServeConfig::max_connections

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::faults::StallPhase;
use crate::protocol::{error_response, Request, MAX_FRAME_BYTES};
use crate::service::{Response, ServeCore};

/// How long the loop sleeps when a full pass made no progress.
const IDLE_SLEEP: Duration = Duration::from_micros(500);

/// How often an otherwise-busy loop still runs a supervision pass (an
/// idle loop supervises every idle sleep anyway).
const SUPERVISE_EVERY: Duration = Duration::from_millis(25);

/// Read chunk size per `read` call.
const READ_CHUNK: usize = 4096;

/// A verb whose response is not ready yet; re-polled by the loop.
#[derive(Debug)]
enum Pending {
    /// `wait`: resolves when the job turns terminal or the deadline
    /// passes.
    Wait { job: u64, deadline: Instant },
    /// `drain`: resolves when nothing is pending in the registry.
    Drain,
    /// `shutdown`: resolves when the pool is idle and joined.
    Shutdown {
        evicted_queued: u64,
        cancelled_running: u64,
    },
}

/// Per-connection state in the event loop.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// At most one in-flight slow verb; while set, later frames stay
    /// buffered so responses keep request order.
    pending: Option<Pending>,
    /// Close once `write_buf` drains (oversized frame or shutdown).
    close_after_flush: bool,
    saw_eof: bool,
    dead: bool,
    /// Per-connection shutdown flush deadline: set when a stop begins and
    /// this connection still has bytes (or a verb) in flight. Reaped —
    /// and counted — once exceeded, so one unread socket cannot hold the
    /// process (or other connections' flushes) hostage.
    flush_deadline: Option<Instant>,
    /// Chaos-injected I/O stall: the named phase makes no progress until
    /// the instant passes (purely a scheduling deferral — no sleeping).
    stall: Option<(StallPhase, Instant)>,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            pending: None,
            close_after_flush: false,
            saw_eof: false,
            dead: false,
            flush_deadline: None,
            stall: None,
        }
    }

    /// Whether a chaos stall currently defers `phase` for this
    /// connection (an `Accept` stall defers every phase). Clears the
    /// stall once its window has passed.
    fn stalled(&mut self, phase: StallPhase, now: Instant) -> bool {
        match self.stall {
            Some((_, until)) if now >= until => {
                self.stall = None;
                false
            }
            Some((p, _)) => p == phase || p == StallPhase::Accept,
            None => false,
        }
    }

    /// Queues one response line for the write pass.
    fn push_line(&mut self, line: &str) {
        self.write_buf.extend_from_slice(line.as_bytes());
        self.write_buf.push(b'\n');
    }

    /// Drains the socket into `read_buf` without blocking. Returns
    /// whether anything happened.
    fn pump_reads(&mut self) -> bool {
        if self.dead || self.saw_eof || self.close_after_flush {
            return false;
        }
        let mut progress = false;
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            // Past the frame bound there is nothing useful to buffer —
            // the parse pass will answer Oversized and close.
            if self.read_buf.len() > MAX_FRAME_BYTES {
                break;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.saw_eof = true;
                    progress = true;
                    break;
                }
                Ok(n) => {
                    self.read_buf
                        .extend_from_slice(chunk.get(..n).unwrap_or_default());
                    progress = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        progress
    }

    /// Parses and handles buffered frames until one goes pending, the
    /// buffer runs dry, or the connection turns unrecoverable.
    fn process_frames(&mut self, core: &Arc<ServeCore>, stopping: &mut bool) -> bool {
        if self.dead {
            return false;
        }
        let mut progress = false;
        while self.pending.is_none() && !self.close_after_flush {
            let line = match self.read_buf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    let mut line: Vec<u8> = self.read_buf.drain(..=pos).collect();
                    while line.last() == Some(&b'\n') || line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    line
                }
                // No newline within the frame bound: unrecoverable.
                None if self.read_buf.len() > MAX_FRAME_BYTES => {
                    self.push_line(&error_response(&format!(
                        "frame exceeds {MAX_FRAME_BYTES} bytes; closing connection"
                    )));
                    self.close_after_flush = true;
                    progress = true;
                    break;
                }
                // Peer hung up mid-line: answer the truncated tail as a
                // complete (garbage) frame before the close.
                None if self.saw_eof && !self.read_buf.is_empty() => {
                    let mut line = std::mem::take(&mut self.read_buf);
                    while line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    line
                }
                None => break,
            };
            progress = true;
            if line.len() > MAX_FRAME_BYTES {
                self.push_line(&error_response(&format!(
                    "frame exceeds {MAX_FRAME_BYTES} bytes; closing connection"
                )));
                self.close_after_flush = true;
                break;
            }
            if line.iter().all(|b| b.is_ascii_whitespace()) {
                continue; // ignore blank keep-alive lines
            }
            let text = match std::str::from_utf8(&line) {
                Ok(t) => t,
                Err(_) => {
                    self.push_line(&error_response("frame is not valid UTF-8"));
                    continue;
                }
            };
            match Request::parse(text) {
                Err(reason) => self.push_line(&error_response(&reason)),
                Ok(Request::Wait { job, timeout }) => match core.poll_wait(job) {
                    Some(resp) => self.push_line(&resp.render()),
                    None => {
                        self.pending = Some(Pending::Wait {
                            job,
                            deadline: Instant::now() + timeout,
                        });
                    }
                },
                Ok(Request::Drain) => {
                    core.begin_drain();
                    match core.try_drain() {
                        Some(resp) => self.push_line(&resp.render()),
                        None => self.pending = Some(Pending::Drain),
                    }
                }
                Ok(Request::Shutdown) => {
                    let (evicted_queued, cancelled_running) = core.begin_shutdown();
                    match core.try_complete_shutdown(evicted_queued, cancelled_running) {
                        Some(resp) => {
                            self.push_line(&resp.render());
                            self.close_after_flush = true;
                            *stopping = true;
                        }
                        None => {
                            self.pending = Some(Pending::Shutdown {
                                evicted_queued,
                                cancelled_running,
                            });
                        }
                    }
                }
                // submit / status / metrics never block.
                Ok(req) => self.push_line(&core.handle(req).render()),
            }
        }
        progress
    }

    /// Re-polls this connection's pending verb, if any.
    fn poll_pending(
        &mut self,
        core: &Arc<ServeCore>,
        epoch_moved: bool,
        now: Instant,
        stopping: &mut bool,
    ) -> bool {
        match self.pending {
            None => false,
            Some(Pending::Wait { job, deadline }) => {
                if !(epoch_moved || *stopping || now >= deadline) {
                    return false;
                }
                if let Some(resp) = core.poll_wait(job) {
                    self.pending = None;
                    self.push_line(&resp.render());
                    return true;
                }
                if now >= deadline {
                    self.pending = None;
                    let resp = Response::Error {
                        message: format!("timed out waiting for job {job}"),
                    };
                    self.push_line(&resp.render());
                    return true;
                }
                false
            }
            Some(Pending::Drain) => match core.try_drain() {
                Some(resp) => {
                    self.pending = None;
                    self.push_line(&resp.render());
                    true
                }
                None => false,
            },
            Some(Pending::Shutdown {
                evicted_queued,
                cancelled_running,
            }) => match core.try_complete_shutdown(evicted_queued, cancelled_running) {
                Some(resp) => {
                    self.pending = None;
                    self.push_line(&resp.render());
                    self.close_after_flush = true;
                    *stopping = true;
                    true
                }
                None => false,
            },
        }
    }

    /// Writes as much of `write_buf` as the socket accepts without
    /// blocking; marks the connection dead once a close-after-flush has
    /// fully drained (or the peer is gone).
    fn flush_writes(&mut self) -> bool {
        if self.dead {
            return false;
        }
        let mut progress = false;
        while !self.write_buf.is_empty() {
            match self.stream.write(&self.write_buf) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.write_buf.drain(..n);
                    progress = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.write_buf.is_empty() && self.close_after_flush {
            self.dead = true;
        }
        progress
    }

    /// Whether the connection has nothing left to do and can be dropped.
    fn finished(&self) -> bool {
        self.dead
            || (self.saw_eof
                && self.read_buf.is_empty()
                && self.pending.is_none()
                && self.write_buf.is_empty())
    }
}

/// Best-effort structured refusal for a connection over the cap; bounded
/// by a short write timeout so a hostile peer cannot stall the loop.
fn refuse_connection(mut stream: TcpStream) {
    crate::lockaudit::blocking_op("refuse connection over cap");
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let line = error_response("server connection limit reached; retry later");
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
}

/// A bound TCP server wrapping a [`ServeCore`].
#[derive(Debug)]
pub struct Server {
    core: Arc<ServeCore>,
    listener: TcpListener,
    addr: SocketAddr,
}

impl Server {
    /// Binds to `127.0.0.1:port` (`port = 0` picks an ephemeral port;
    /// read it back with [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(core: Arc<ServeCore>, port: u16) -> io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        Ok(Server {
            core,
            listener,
            addr,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Runs the event loop until a `shutdown` request completes and its
    /// response has been flushed (or the flush grace expires). Blocks the
    /// calling thread.
    ///
    /// # Errors
    ///
    /// Propagates listener-level I/O failures (per-connection errors are
    /// contained to their connection).
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let core = self.core;
        let mut conns: Vec<Conn> = Vec::new();
        let mut stopping = false;
        let mut last_epoch = core.completion_epoch();
        let mut conn_seq: u64 = 0;
        let mut last_supervise = Instant::now();
        loop {
            let mut progress = false;

            // 0. Supervision pass: reap dead workers, recover orphaned
            // jobs, respawn under budget. Bounded to one pass per
            // interval while the loop is busy; an idle loop supervises
            // on every idle wakeup.
            let now = Instant::now();
            if now.saturating_duration_since(last_supervise) >= SUPERVISE_EVERY {
                last_supervise = now;
                core.supervise();
            }

            // 1. Accept everything waiting (unless stopping).
            if !stopping {
                loop {
                    match self.listener.accept() {
                        Ok((stream, _peer)) => {
                            progress = true;
                            if conns.len() >= core.config().max_connections {
                                core.note_connection_rejected();
                                refuse_connection(stream);
                                continue;
                            }
                            if stream.set_nonblocking(true).is_err() {
                                core.note_connection_rejected();
                                continue;
                            }
                            core.note_connection_accepted();
                            let mut conn = Conn::new(stream);
                            if let Some((phase, dur)) =
                                core.config().fault_plan.conn_stall(conn_seq)
                            {
                                conn.stall = Some((phase, Instant::now() + dur));
                            }
                            conn_seq += 1;
                            conns.push(conn);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => break,
                        Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                        Err(e) => return Err(e),
                    }
                }
            }

            // 2. Read and handle what each connection has buffered.
            let now = Instant::now();
            for conn in &mut conns {
                if conn.stalled(StallPhase::Read, now) {
                    continue;
                }
                progress |= conn.pump_reads();
                progress |= conn.process_frames(&core, &mut stopping);
            }

            // 3. Re-poll pending slow verbs when anything completed.
            let epoch = core.completion_epoch();
            let epoch_moved = epoch != last_epoch;
            last_epoch = epoch;
            let now = Instant::now();
            for conn in &mut conns {
                progress |= conn.poll_pending(&core, epoch_moved, now, &mut stopping);
            }

            // 4. Write pass.
            let now = Instant::now();
            for conn in &mut conns {
                if conn.stalled(StallPhase::Write, now) {
                    continue;
                }
                progress |= conn.flush_writes();
            }

            // 5. Reap finished connections.
            let before = conns.len();
            conns.retain(|c| !c.finished());
            progress |= conns.len() != before;

            if stopping {
                // Each connection gets its *own* flush grace, so one
                // peer that never reads cannot spend the whole window
                // and starve everyone else's flush (the old global
                // deadline did exactly that under a slow-loris reader).
                let now = Instant::now();
                let grace = core.config().shutdown_conn_flush_grace;
                for conn in &mut conns {
                    if conn.dead || (conn.write_buf.is_empty() && conn.pending.is_none()) {
                        continue;
                    }
                    let deadline = *conn.flush_deadline.get_or_insert(now + grace);
                    if now >= deadline {
                        conn.dead = true;
                        core.note_connection_reaped();
                        progress = true;
                    }
                }
                let drained = conns
                    .iter()
                    .all(|c| c.dead || (c.write_buf.is_empty() && c.pending.is_none()));
                if drained {
                    return Ok(());
                }
            }
            if !progress {
                crate::lockaudit::blocking_op("event-loop idle sleep");
                core.supervise();
                last_supervise = Instant::now();
                crate::backoff::sleep(IDLE_SLEEP);
            }
        }
    }
}
