//! Live service metrics: lifecycle counters, queue depth, a log-spaced
//! latency histogram, and per-worker aggregated engine statistics.
//!
//! Counters are atomics (updated from worker and connection threads
//! without locks); the reconciliation identity the service guarantees at
//! quiescence is
//!
//! ```text
//! submitted == completed + aborted + rejected
//! ```
//!
//! where `aborted` includes evictions (tracked separately in `evicted`
//! as well) and `rejected` counts submissions that never became jobs.
//! Jobs served straight from the result cache complete without touching
//! a worker, so `completed == worker jobs + cache-served jobs`.

use crate::lockaudit::DebugMutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use aq_dd::EngineStatistics;
use aq_sim::SessionStats;

/// Upper edges (microseconds) of the latency histogram buckets: log-spaced
/// at factor 2 from 100µs to ~26s, plus a final implicit overflow bucket.
///
/// The previous linear millisecond buckets quantized every sub-5ms job to
/// the same handful of edges (`server_p50_ms` could only ever read 5, 25
/// or 50 under load); factor-2 spacing bounds the quantile overestimate at
/// 2× at every scale and resolves sub-millisecond latencies — which is
/// where cache-served jobs live.
pub const LATENCY_BUCKET_EDGES_US: [u64; 19] = [
    100, 200, 400, 800, 1_600, 3_200, 6_400, 12_800, 25_600, 51_200, 102_400, 204_800, 409_600,
    819_200, 1_638_400, 3_276_800, 6_553_600, 13_107_200, 26_214_400,
];

/// Number of histogram buckets (the edges plus the overflow bucket).
pub const LATENCY_BUCKETS: usize = LATENCY_BUCKET_EDGES_US.len() + 1;

/// A hand-rolled fixed-bucket histogram of job latencies
/// (submission-to-terminal-state, queue wait included).
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    /// Records one latency observation.
    pub fn record(&self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let idx = LATENCY_BUCKET_EDGES_US
            .iter()
            .position(|&edge| us <= edge)
            .unwrap_or(LATENCY_BUCKET_EDGES_US.len());
        if let Some(bucket) = self.buckets.get(idx) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot of the per-bucket counts.
    pub fn counts(&self) -> [u64; LATENCY_BUCKETS] {
        std::array::from_fn(|i| {
            self.buckets
                .get(i)
                .map_or(0, |bucket| bucket.load(Ordering::Relaxed))
        })
    }
}

/// Upper-bound estimate of quantile `q` (in `[0, 1]`) from bucket counts:
/// the upper edge of the bucket containing the q-th observation, in
/// (fractional) milliseconds. With factor-2 edges the estimate is within
/// one bucket — at most 2× — of the true quantile. `None` while empty;
/// the overflow bucket reports the last edge (i.e. "≥ 26214.4").
pub fn histogram_quantile_ms(counts: &[u64; LATENCY_BUCKETS], q: f64) -> Option<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
    let last_edge = LATENCY_BUCKET_EDGES_US.last().copied().unwrap_or(0);
    let mut seen = 0;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            let us = LATENCY_BUCKET_EDGES_US.get(i).copied().unwrap_or(last_edge);
            return Some(us as f64 / 1_000.0);
        }
    }
    None
}

/// Aggregated per-worker measurements, accumulated after every job.
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Jobs this worker ran to a terminal state.
    pub jobs: u64,
    /// Summed engine counters over every job the worker ran.
    pub engine: EngineStatistics,
    /// Summed wall-clock seconds spent inside job step loops.
    pub busy_seconds: f64,
    /// Jobs that reused the worker's warm session manager instead of
    /// building a cold one.
    pub warm_reuses: u64,
    /// Session managers dropped for exceeding the retention budget.
    pub session_shrinks: u64,
    /// Session managers quarantined (panic, unvalidated abort, or failed
    /// suspect validation).
    pub quarantines: u64,
    /// Suspect session managers that passed pre-reuse validation.
    pub validations: u64,
    /// Suspect session managers whose retained state failed validation.
    pub validate_failures: u64,
    /// Cold session builds that replaced a quarantined manager.
    pub rebuilds: u64,
}

/// Sums two [`EngineStatistics`] field-wise. Thin wrapper around
/// [`EngineStatistics::absorb`], kept for callers outside the engine.
pub fn add_engine_statistics(acc: &mut EngineStatistics, s: &EngineStatistics) {
    acc.absorb(s);
}

/// The service's shared metrics state.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Submit requests received (accepted + rejected).
    pub submitted: AtomicU64,
    /// Jobs that ran the whole circuit (including cache-served jobs).
    pub completed: AtomicU64,
    /// Jobs that stopped early (budget, engine error, or eviction).
    pub aborted: AtomicU64,
    /// Submissions refused by admission control.
    pub rejected: AtomicU64,
    /// Subset of `aborted` that were evicted by drain/shutdown/cancel.
    pub evicted: AtomicU64,
    /// Jobs currently inside a worker.
    pub running: AtomicU64,
    /// Completed jobs answered from the result cache without queueing.
    pub cache_served: AtomicU64,
    /// TCP connections accepted by the event loop.
    pub connections_accepted: AtomicU64,
    /// Connections refused (with a structured error response) because the
    /// event loop was at its connection cap.
    pub connections_rejected: AtomicU64,
    /// Connections dropped at shutdown because they exceeded their
    /// per-connection flush grace.
    pub connections_reaped_at_shutdown: AtomicU64,
    /// Worker threads found dead by the supervisor (panicked out of the
    /// worker loop; clean retirements are not deaths).
    pub worker_deaths: AtomicU64,
    /// Worker threads respawned by the supervisor.
    pub worker_respawns: AtomicU64,
    /// Submissions rejected because the estimated queue wait already
    /// exceeded the job's deadline (subset of `rejected`).
    pub shed_deadline: AtomicU64,
    /// Completed sampling jobs — a subset of `completed`, including
    /// histograms answered from the result cache.
    pub samples: AtomicU64,
    /// Total shots drawn across completed sampling jobs.
    pub shots: AtomicU64,
    /// Latency from submission to terminal state.
    pub latency: LatencyHistogram,
    /// Per-worker aggregates, indexed by worker id.
    pub workers: DebugMutex<Vec<WorkerStats>>,
}

impl Metrics {
    /// Creates metrics storage for `workers` workers.
    pub fn new(workers: usize) -> Self {
        Metrics {
            workers: DebugMutex::new("metrics.workers", vec![WorkerStats::default(); workers]),
            ..Metrics::default()
        }
    }

    /// Folds one finished job into a worker's aggregate row. `session`
    /// carries the worker session's lifetime recycling counters; the row
    /// stores the latest snapshot (the counters are already cumulative).
    pub fn record_worker_job(
        &self,
        worker: usize,
        engine: &EngineStatistics,
        seconds: f64,
        session: SessionStats,
    ) {
        let mut rows = self.workers.lock();
        if let Some(row) = rows.get_mut(worker) {
            row.jobs += 1;
            row.busy_seconds += seconds;
            row.engine.absorb(engine);
            row.warm_reuses = session.warm_reuses;
            row.session_shrinks = session.shrinks;
            row.quarantines = session.quarantines;
            row.validations = session.validations;
            row.validate_failures = session.validate_failures;
            row.rebuilds = session.rebuilds;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        for us in [50, 100, 150, 999, 80_000, 80_000, 80_000, 400_000] {
            h.record(Duration::from_micros(us));
        }
        h.record(Duration::from_secs(30)); // overflow
        h.record(Duration::from_secs(3_000)); // far overflow
        let counts = h.counts();
        assert_eq!(counts.iter().sum::<u64>(), 10);
        assert_eq!(counts[0], 2, "50µs and 100µs in the ≤100µs bucket");
        assert_eq!(counts[LATENCY_BUCKETS - 1], 2, "both overflows");
        assert_eq!(histogram_quantile_ms(&counts, 0.5), Some(102.4));
        assert_eq!(histogram_quantile_ms(&counts, 1.0), Some(26_214.4));
        assert_eq!(histogram_quantile_ms(&counts, 0.0), Some(0.1));
        assert_eq!(
            histogram_quantile_ms(&[0; LATENCY_BUCKETS], 0.5),
            None,
            "empty histogram has no quantiles"
        );
    }

    /// Regression for the coarse-bucket bug: p50/p99 of a known sample
    /// must land within one (factor-2) bucket of the true quantiles, at
    /// sub-millisecond scales too.
    #[test]
    fn quantiles_land_within_one_bucket_of_truth() {
        let h = LatencyHistogram::default();
        // 100 samples: true p50 = 3ms, true p99 = 40ms, with a
        // sub-millisecond cluster the old linear buckets flattened.
        let mut sample_us: Vec<u64> = Vec::new();
        sample_us.extend(std::iter::repeat_n(150, 20)); // 0.15ms
        sample_us.extend(std::iter::repeat_n(3_000, 70)); // 3ms
        sample_us.extend(std::iter::repeat_n(40_000, 9)); // 40ms
        sample_us.push(700_000); // one 700ms straggler
        for &us in &sample_us {
            h.record(Duration::from_micros(us));
        }
        let counts = h.counts();

        let p50 = histogram_quantile_ms(&counts, 0.50).expect("non-empty");
        let p99 = histogram_quantile_ms(&counts, 0.99).expect("non-empty");
        // upper-edge estimates: at least the true value, at most 2× it
        assert!(
            (3.0..=6.0).contains(&p50),
            "p50 {p50} not within one bucket of 3ms"
        );
        assert!(
            (40.0..=80.0).contains(&p99),
            "p99 {p99} not within one bucket of 40ms"
        );

        // the sub-ms cluster is resolved, not folded into a 1ms bucket
        let p10 = histogram_quantile_ms(&counts, 0.10).expect("non-empty");
        assert!(
            (0.15..=0.3).contains(&p10),
            "p10 {p10} must stay sub-millisecond"
        );
    }

    #[test]
    fn engine_statistics_sum_fieldwise() {
        let mut a = EngineStatistics::default();
        let mut one = EngineStatistics::default();
        one.mv.lookups = 10;
        one.mv.hits = 7;
        one.vec_nodes = 5;
        one.compactions = 1;
        add_engine_statistics(&mut a, &one);
        add_engine_statistics(&mut a, &one);
        assert_eq!(a.mv.lookups, 20);
        assert_eq!(a.mv.hits, 14);
        assert_eq!(a.vec_nodes, 10);
        assert_eq!(a.compactions, 2);
    }

    #[test]
    fn worker_rows_take_latest_session_snapshot() {
        let m = Metrics::new(1);
        let e = EngineStatistics::default();
        let s1 = SessionStats {
            jobs: 1,
            ..SessionStats::default()
        };
        let s2 = SessionStats {
            jobs: 2,
            warm_reuses: 1,
            ..SessionStats::default()
        };
        m.record_worker_job(0, &e, 0.1, s1);
        m.record_worker_job(0, &e, 0.1, s2);
        let rows = m.workers.lock();
        assert_eq!(rows[0].jobs, 2);
        assert_eq!(rows[0].warm_reuses, 1, "cumulative, not summed twice");
    }
}
