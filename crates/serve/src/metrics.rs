//! Live service metrics: lifecycle counters, queue depth, a fixed-bucket
//! latency histogram, and per-worker aggregated engine statistics.
//!
//! Counters are atomics (updated from worker and connection threads
//! without locks); the reconciliation identity the service guarantees at
//! quiescence is
//!
//! ```text
//! submitted == completed + aborted + rejected
//! ```
//!
//! where `aborted` includes evictions (tracked separately in `evicted`
//! as well) and `rejected` counts submissions that never became jobs.

use crate::lockaudit::DebugMutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use aq_dd::EngineStatistics;

/// Upper edges (milliseconds) of the latency histogram buckets; a final
/// implicit overflow bucket catches everything slower.
pub const LATENCY_BUCKET_EDGES_MS: [u64; 12] =
    [1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000];

/// Number of histogram buckets (the edges plus the overflow bucket).
pub const LATENCY_BUCKETS: usize = LATENCY_BUCKET_EDGES_MS.len() + 1;

/// A hand-rolled fixed-bucket histogram of job latencies
/// (submission-to-terminal-state, queue wait included).
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    /// Records one latency observation.
    pub fn record(&self, latency: Duration) {
        let ms = latency.as_millis() as u64;
        let idx = LATENCY_BUCKET_EDGES_MS
            .iter()
            .position(|&edge| ms <= edge)
            .unwrap_or(LATENCY_BUCKET_EDGES_MS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the per-bucket counts.
    pub fn counts(&self) -> [u64; LATENCY_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

/// Upper-bound estimate of quantile `q` (in `[0, 1]`) from bucket counts:
/// the upper edge of the bucket containing the q-th observation, in
/// milliseconds (`None` while empty; the overflow bucket reports the last
/// edge, i.e. "≥ 5000").
pub fn histogram_quantile_ms(counts: &[u64; LATENCY_BUCKETS], q: f64) -> Option<u64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
    let mut seen = 0;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            const LAST_EDGE: u64 = LATENCY_BUCKET_EDGES_MS[LATENCY_BUCKET_EDGES_MS.len() - 1];
            return Some(LATENCY_BUCKET_EDGES_MS.get(i).copied().unwrap_or(LAST_EDGE));
        }
    }
    None
}

/// Aggregated per-worker measurements, accumulated after every job.
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Jobs this worker ran to a terminal state.
    pub jobs: u64,
    /// Summed engine counters over every job the worker ran.
    pub engine: EngineStatistics,
    /// Summed wall-clock seconds spent inside job step loops.
    pub busy_seconds: f64,
}

/// Sums two [`EngineStatistics`] field-wise (the engine itself has no
/// cross-manager aggregation — each job runs its own manager).
pub fn add_engine_statistics(acc: &mut EngineStatistics, s: &EngineStatistics) {
    for (a, b) in [
        (&mut acc.add_vec, &s.add_vec),
        (&mut acc.add_mat, &s.add_mat),
        (&mut acc.mv, &s.mv),
        (&mut acc.mm, &s.mm),
        (&mut acc.wop, &s.wop),
        (&mut acc.wnorm, &s.wnorm),
    ] {
        a.lookups += b.lookups;
        a.hits += b.hits;
        a.misses += b.misses;
        a.insertions += b.insertions;
        a.evictions += b.evictions;
        a.updates += b.updates;
        a.cleared += b.cleared;
    }
    acc.vec_nodes += s.vec_nodes;
    acc.mat_nodes += s.mat_nodes;
    acc.vec_unique_len += s.vec_unique_len;
    acc.vec_unique_capacity += s.vec_unique_capacity;
    acc.mat_unique_len += s.mat_unique_len;
    acc.mat_unique_capacity += s.mat_unique_capacity;
    acc.distinct_weights += s.distinct_weights;
    acc.compactions += s.compactions;
}

/// The service's shared metrics state.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Submit requests received (accepted + rejected).
    pub submitted: AtomicU64,
    /// Jobs that ran the whole circuit.
    pub completed: AtomicU64,
    /// Jobs that stopped early (budget, engine error, or eviction).
    pub aborted: AtomicU64,
    /// Submissions refused by admission control.
    pub rejected: AtomicU64,
    /// Subset of `aborted` that were evicted by drain/shutdown/cancel.
    pub evicted: AtomicU64,
    /// Jobs currently inside a worker.
    pub running: AtomicU64,
    /// Latency from submission to terminal state.
    pub latency: LatencyHistogram,
    /// Per-worker aggregates, indexed by worker id.
    pub workers: DebugMutex<Vec<WorkerStats>>,
}

impl Metrics {
    /// Creates metrics storage for `workers` workers.
    pub fn new(workers: usize) -> Self {
        Metrics {
            workers: DebugMutex::new("metrics.workers", vec![WorkerStats::default(); workers]),
            ..Metrics::default()
        }
    }

    /// Folds one finished job into a worker's aggregate row.
    pub fn record_worker_job(&self, worker: usize, engine: &EngineStatistics, seconds: f64) {
        let mut rows = self.workers.lock();
        if let Some(row) = rows.get_mut(worker) {
            row.jobs += 1;
            row.busy_seconds += seconds;
            add_engine_statistics(&mut row.engine, engine);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        for ms in [0, 1, 3, 9, 80, 80, 80, 400, 6_000, 100_000] {
            h.record(Duration::from_millis(ms));
        }
        let counts = h.counts();
        assert_eq!(counts.iter().sum::<u64>(), 10);
        assert_eq!(counts[0], 2); // 0ms and 1ms in the ≤1ms bucket
        assert_eq!(counts[LATENCY_BUCKETS - 1], 2); // both overflows
        assert_eq!(histogram_quantile_ms(&counts, 0.5), Some(100));
        assert_eq!(histogram_quantile_ms(&counts, 1.0), Some(5_000));
        assert_eq!(histogram_quantile_ms(&counts, 0.0), Some(1));
        assert_eq!(
            histogram_quantile_ms(&[0; LATENCY_BUCKETS], 0.5),
            None,
            "empty histogram has no quantiles"
        );
    }

    #[test]
    fn engine_statistics_sum_fieldwise() {
        let mut a = EngineStatistics::default();
        let mut one = EngineStatistics::default();
        one.mv.lookups = 10;
        one.mv.hits = 7;
        one.vec_nodes = 5;
        one.compactions = 1;
        add_engine_statistics(&mut a, &one);
        add_engine_statistics(&mut a, &one);
        assert_eq!(a.mv.lookups, 20);
        assert_eq!(a.mv.hits, 14);
        assert_eq!(a.vec_nodes, 10);
        assert_eq!(a.compactions, 2);
    }
}
