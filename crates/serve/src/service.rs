//! The service core: admission control, the job registry and lifecycle,
//! and the hand-rolled worker pool.
//!
//! # Job state machine
//!
//! ```text
//! submit ──(admission)──► queued ──► running ──► completed
//!    │                       │          │
//!    │                       │          ├──► aborted   (budget / engine error)
//!    │                       │          └──► aborted*  (evicted: cancelled, checkpointed)
//!    │                       └──► aborted* (evicted: swept at shutdown)
//!    └──► rejected  (full queue, draining, bad request, missing budget,
//!                    no worker pinned to the scheme class)
//! ```
//!
//! `aborted*` evictions carry a checkpoint when anything had run, so the
//! client can resubmit with `resume` and finish bit-identically.
//!
//! Workers are plain OS threads, each *pinned to one scheme class*
//! (numeric or algebraic) and owning one engine `Manager` at a time via
//! its job's `Simulator` — managers are `Send` (see aq-dd's
//! `send_audit`) but never shared. A worker survives anything a job does:
//! engine errors arrive as structured aborts from
//! [`run_job`](aq_sim::run_job), and a panic in the stack below is caught
//! and converted into an aborted outcome.
//!
//! # Supervision
//!
//! Even the catch-everything worker loop can die — a panic outside the
//! guarded region (chaos injection does this on purpose), a stack
//! overflow aborting the unwind, a bug in the loop itself. The
//! [`ServeCore::supervise`] pass runs on every request and every event
//! loop tick and walks the worker slots through a small state machine:
//!
//! ```text
//!           spawn ok                    thread finished, not clean
//!   Spawning ───────► Live ──────────────────────────┐
//!      ▲                │ clean exit (queue closed)   │ death: orphaned job
//!      │ backoff due    ▼                             ▼ aborted `transient:`
//!      │            Retired ◄──(budget exhausted)── Respawning
//!      └────────────────────────────────────────────────┘
//! ```
//!
//! Each death recovers the orphaned job as a `transient:` abort, then
//! respawns the worker after a seeded, jittered exponential backoff —
//! until the class's restart budget runs out. A class with no slot left
//! outside `Retired` is **unhealthy**: its queued jobs are evicted once
//! (with a reason), and new submissions are refused with a
//! `retry_after_ms` hint instead of queueing into a black hole.

use std::collections::HashMap;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use aq_circuits::Circuit;
use aq_dd::EngineStatistics;
use aq_sim::{
    EngineSession, JobAbortInfo, JobOutcome, JobSpec, SampleParams, SchemeSpec, SessionConfig,
    SimOptions,
};

use crate::backoff::Backoff;
use crate::cache::{CacheKey, ResultCache, ResultCacheStats};
use crate::faults::{ChaosKill, FaultCounters, FaultPlan};
use crate::json::Json;
use crate::lockaudit::{DebugCondvar, DebugMutex, DebugMutexGuard};
use crate::metrics::{
    histogram_quantile_ms, Metrics, WorkerStats, LATENCY_BUCKETS, LATENCY_BUCKET_EDGES_US,
};
use crate::protocol::{Request, SubmitRequest};
use crate::queue::{AdmissionError, JobQueue};

/// How long blocking verbs sleep between completion checks; each wakeup
/// also runs a supervision pass, so a dead worker cannot stall `wait`,
/// `drain` or `shutdown` past this granularity.
const SUPERVISE_INTERVAL: Duration = Duration::from_millis(25);

/// The two families of weight systems a worker can be pinned to. Engine
/// managers are cheap per job, but the *working set* (gate caches, weight
/// table shapes) differs sharply between floats and bigint rings — the
/// pool keeps them on separate workers so an exact blow-up job cannot
/// stall the interactive numeric lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeClass {
    /// Tolerance-ε double-precision jobs.
    Numeric,
    /// Exact `Q[ω]` / `D[ω]` jobs.
    Algebraic,
}

impl SchemeClass {
    /// Number of classes (size of per-class arrays in the queue).
    pub const COUNT: usize = 2;

    /// Every class, in [`SchemeClass::index`] order.
    pub const ALL: [SchemeClass; SchemeClass::COUNT] =
        [SchemeClass::Numeric, SchemeClass::Algebraic];

    /// Dense index of this class, for per-class sub-queue arrays.
    pub const fn index(self) -> usize {
        match self {
            SchemeClass::Numeric => 0,
            SchemeClass::Algebraic => 1,
        }
    }

    /// The class a scheme belongs to.
    pub fn of(scheme: &SchemeSpec) -> SchemeClass {
        if scheme.is_algebraic() {
            SchemeClass::Algebraic
        } else {
            SchemeClass::Numeric
        }
    }

    /// Stable lowercase name.
    pub fn as_str(&self) -> &'static str {
        match self {
            SchemeClass::Numeric => "numeric",
            SchemeClass::Algebraic => "algebraic",
        }
    }

    /// Parses a pin-spec token.
    pub fn parse(s: &str) -> Option<SchemeClass> {
        match s {
            "numeric" => Some(SchemeClass::Numeric),
            "algebraic" => Some(SchemeClass::Algebraic),
            _ => None,
        }
    }
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker pins, one entry per worker thread.
    pub workers: Vec<SchemeClass>,
    /// Bound on queued (not yet running) jobs.
    pub queue_capacity: usize,
    /// Where per-job abort/eviction checkpoints are written.
    pub checkpoint_dir: PathBuf,
    /// Bound on memoized completed outcomes in the content-addressed
    /// result cache (`0` disables the cache).
    pub result_cache_capacity: usize,
    /// Per-worker session retention budget, in arena/unique-table slots
    /// (see [`aq_sim::SessionConfig::max_retained_capacity`]).
    pub session_max_retained_capacity: usize,
    /// Bound on simultaneously open TCP connections in the event loop;
    /// connections beyond it receive a structured error and are closed.
    pub max_connections: usize,
    /// Worker respawns the supervisor may spend per scheme class before
    /// marking the class unhealthy.
    pub restart_budget: u32,
    /// Nominal first respawn delay (jittered to `[d/2, d)`).
    pub backoff_base: Duration,
    /// Nominal respawn delay cap.
    pub backoff_cap: Duration,
    /// Seed for the supervisor's deterministic backoff jitter (each
    /// worker slot derives its own stream from this).
    pub supervisor_seed: u64,
    /// Run the structural invariant checker on a suspect warm session
    /// manager before reusing it (see
    /// [`aq_sim::SessionConfig::suspect_validate`]).
    pub session_suspect_validate: bool,
    /// The `retry_after_ms` hint attached to refusals for an unhealthy
    /// scheme class.
    pub unhealthy_retry_after: Duration,
    /// Per-connection flush grace at shutdown: a connection that cannot
    /// take its final bytes within this window is reaped (and counted)
    /// instead of starving other connections' flushes.
    pub shutdown_conn_flush_grace: Duration,
    /// Deterministic fault-injection plan (inert by default; only active
    /// under the `chaos` feature).
    pub fault_plan: FaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: vec![SchemeClass::Numeric, SchemeClass::Algebraic],
            queue_capacity: 64,
            checkpoint_dir: std::env::temp_dir().join("aq-serve-checkpoints"),
            result_cache_capacity: 256,
            session_max_retained_capacity: SessionConfig::default().max_retained_capacity,
            max_connections: 128,
            restart_budget: 3,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            supervisor_seed: 0x5EED_507E,
            session_suspect_validate: true,
            unhealthy_retry_after: Duration::from_secs(5),
            shutdown_conn_flush_grace: Duration::from_secs(1),
            fault_plan: FaultPlan::none(),
        }
    }
}

impl ServeConfig {
    /// `n` workers pinned alternately numeric, algebraic, numeric, … —
    /// the default mix for a general-purpose server.
    pub fn with_workers(n: usize) -> Self {
        ServeConfig {
            workers: (0..n.max(1))
                .map(|i| {
                    if i % 2 == 0 {
                        SchemeClass::Numeric
                    } else {
                        SchemeClass::Algebraic
                    }
                })
                .collect(),
            ..ServeConfig::default()
        }
    }
}

/// Lifecycle position of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// Inside a worker.
    Running,
    /// The whole circuit was applied.
    Completed,
    /// Stopped early (budget, engine error, or eviction).
    Aborted,
}

impl JobState {
    /// Stable lowercase name.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Aborted => "aborted",
        }
    }

    /// Whether the job will never change state again.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Completed | JobState::Aborted)
    }
}

/// Everything a worker needs to run one admitted job.
#[derive(Debug)]
struct JobWork {
    circuit: Circuit,
    start: u64,
    scheme: SchemeSpec,
    options: SimOptions,
    label: String,
    resume: Option<PathBuf>,
    top_k: usize,
    sample: Option<SampleParams>,
}

/// Registry entry for one admitted job.
#[derive(Debug)]
struct JobRecord {
    state: JobState,
    label: String,
    scheme: String,
    priority: u8,
    submitted_at: Instant,
    outcome: Option<JobOutcome>,
    cancel: Arc<AtomicBool>,
    /// Result-cache key to fill on completion. `None` for resumed jobs
    /// (their outcome depends on checkpoint state the key cannot see) and
    /// for jobs that were themselves served from the cache.
    cache_key: Option<CacheKey>,
}

#[derive(Debug, Default)]
struct Registry {
    map: HashMap<u64, JobRecord>,
    /// Jobs admitted but not yet terminal (queued + running), maintained
    /// under this lock so drain/shutdown can wait race-free.
    pending: u64,
}

#[derive(Debug)]
struct Shared {
    cfg: ServeConfig,
    queue: JobQueue<JobWork>,
    registry: DebugMutex<Registry>,
    /// Signalled on every terminal transition (wait/drain listeners).
    terminal: DebugCondvar,
    next_id: AtomicU64,
    metrics: Metrics,
    /// Content-addressed memo of completed outcomes. Locked strictly
    /// *after* releasing the registry lock (never both at once).
    result_cache: DebugMutex<ResultCache>,
    /// Bumped on every terminal transition; the event loop re-polls its
    /// pending `wait` verbs only when this moves.
    completion_epoch: AtomicU64,
}

impl Shared {
    fn lock_registry(&self) -> DebugMutexGuard<'_, Registry> {
        self.registry.lock()
    }

    /// Moves a job to a terminal state and does every piece of
    /// bookkeeping that hangs off it.
    fn finish_job(&self, id: u64, outcome: JobOutcome) {
        let mut reg = self.lock_registry();
        let Some(rec) = reg.map.get_mut(&id) else {
            return;
        };
        if rec.state.is_terminal() {
            return;
        }
        let latency = rec.submitted_at.elapsed();
        let aborted = outcome.aborted.as_ref();
        rec.state = if aborted.is_none() {
            JobState::Completed
        } else {
            JobState::Aborted
        };
        match aborted {
            None => {
                self.metrics.completed.fetch_add(1, Ordering::Relaxed);
                if let Some(report) = &outcome.sample {
                    self.metrics.samples.fetch_add(1, Ordering::Relaxed);
                    self.metrics
                        .shots
                        .fetch_add(report.shots, Ordering::Relaxed);
                }
            }
            Some(info) => {
                self.metrics.aborted.fetch_add(1, Ordering::Relaxed);
                if info.evicted {
                    self.metrics.evicted.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        // A completed, non-resumed outcome with a key becomes a cache
        // fill — staged here and performed only after the registry lock
        // is released (lock-order discipline: never hold two locks).
        let fill = if outcome.aborted.is_none() && !outcome.resumed {
            rec.cache_key.take().map(|key| (key, outcome.clone()))
        } else {
            None
        };
        rec.outcome = Some(outcome);
        self.metrics.latency.record(latency);
        reg.pending = reg.pending.saturating_sub(1);
        drop(reg);
        if let Some((key, memo)) = fill {
            self.result_cache.lock().insert(key, memo);
        }
        self.completion_epoch.fetch_add(1, Ordering::Release);
        self.terminal.notify_all();
    }
}

/// A typed job status (what the `status`/`wait` verbs report).
#[derive(Debug, Clone)]
pub struct JobStatusReport {
    /// Job id.
    pub job: u64,
    /// Current lifecycle state.
    pub state: JobState,
    /// The job's checkpoint/report label.
    pub label: String,
    /// Scheme label (`numeric_eps…`, `qomega`, `gcd`).
    pub scheme: String,
    /// Queue priority it was admitted with.
    pub priority: u8,
    /// Terminal measurements (present once completed/aborted).
    pub outcome: Option<JobOutcome>,
}

/// One worker's row in the metrics report.
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// Worker index.
    pub worker: usize,
    /// Scheme class the worker is pinned to.
    pub class: SchemeClass,
    /// Aggregates over the jobs it ran.
    pub stats: WorkerStats,
}

/// One scheme class's supervision health in the metrics report.
#[derive(Debug, Clone)]
pub struct ClassHealthReport {
    /// The class.
    pub class: SchemeClass,
    /// Worker slots configured for this class.
    pub configured: u64,
    /// Slots currently live (thread running).
    pub live: u64,
    /// Slots waiting out a respawn backoff (or mid-spawn).
    pub respawning: u64,
    /// Respawns already spent from the class's restart budget.
    pub restarts_used: u32,
    /// The configured restart budget.
    pub restart_budget: u32,
    /// Whether the class still accepts jobs (some slot is not retired).
    /// Classes with no configured workers are reported healthy here;
    /// admission rejects them with the static no-worker reason instead.
    pub healthy: bool,
}

/// A point-in-time metrics snapshot (the `metrics` verb).
#[derive(Debug, Clone)]
pub struct MetricsReport {
    /// Submit requests received (accepted + rejected).
    pub submitted: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs aborted (including evictions).
    pub aborted: u64,
    /// Submissions refused.
    pub rejected: u64,
    /// Evicted subset of `aborted`.
    pub evicted: u64,
    /// Jobs waiting in the queue right now.
    pub queue_depth: u64,
    /// Jobs inside workers right now.
    pub running: u64,
    /// Completed jobs answered from the result cache without queueing
    /// (subset of `completed`).
    pub cache_served: u64,
    /// Result-cache lifetime counters.
    pub cache: ResultCacheStats,
    /// Memoized outcomes currently stored.
    pub cache_entries: u64,
    /// Configured result-cache bound.
    pub cache_capacity: u64,
    /// TCP connections accepted by the event loop.
    pub connections_accepted: u64,
    /// Connections refused at the connection cap.
    pub connections_rejected: u64,
    /// Latency histogram bucket counts (edges in
    /// [`LATENCY_BUCKET_EDGES_US`], plus overflow).
    pub latency_counts: [u64; LATENCY_BUCKETS],
    /// Median latency upper bound, fractional ms.
    pub p50_ms: Option<f64>,
    /// 99th-percentile latency upper bound, fractional ms.
    pub p99_ms: Option<f64>,
    /// Per-worker aggregates.
    pub workers: Vec<WorkerReport>,
    /// Worker threads the supervisor found dead.
    pub worker_deaths: u64,
    /// Worker threads the supervisor respawned.
    pub worker_respawns: u64,
    /// Submissions rejected by deadline-aware load shedding (subset of
    /// `rejected`).
    pub shed_deadline: u64,
    /// Completed sampling jobs (subset of `completed`; cache-served
    /// histograms included).
    pub samples: u64,
    /// Total shots drawn across completed sampling jobs.
    pub shots: u64,
    /// Connections dropped at shutdown for exceeding their flush grace.
    pub connections_reaped_at_shutdown: u64,
    /// Per-class supervision health.
    pub health: Vec<ClassHealthReport>,
    /// Fault-injection counters when a chaos plan is active.
    pub chaos: Option<FaultCounters>,
}

impl MetricsReport {
    /// The accounting identity the service guarantees at quiescence.
    pub fn reconciles(&self) -> bool {
        self.submitted == self.completed + self.aborted + self.rejected
            && self.queue_depth == 0
            && self.running == 0
    }
}

/// A typed response (rendered to one JSON line by [`Response::render`]).
#[derive(Debug, Clone)]
pub enum Response {
    /// Job admitted.
    Submitted {
        /// Assigned job id.
        job: u64,
    },
    /// Submission refused by admission control.
    Rejected {
        /// Why.
        reason: String,
        /// When present, the earliest point retrying makes sense (class
        /// unhealthy, queue full, or deadline-shed): a hint, not a
        /// guarantee. Absent for permanent refusals (bad request, no
        /// worker configured, draining).
        retry_after_ms: Option<u64>,
    },
    /// Job status (from `status` or `wait`).
    Status(Box<JobStatusReport>),
    /// `status`/`wait` named a job the registry has never seen.
    UnknownJob {
        /// The id asked about.
        job: u64,
    },
    /// Metrics snapshot.
    Metrics(Box<MetricsReport>),
    /// Drain finished: admission stopped, everything terminal.
    Drained {
        /// Completed-job count at drain time.
        completed: u64,
        /// Aborted-job count at drain time.
        aborted: u64,
    },
    /// Shutdown finished: workers joined.
    ShutdownDone {
        /// Queued jobs swept out without running.
        evicted_queued: u64,
        /// Running jobs cancelled (checkpointed where possible).
        cancelled_running: u64,
    },
    /// Protocol-level failure (`ok:false`).
    Error {
        /// What went wrong.
        message: String,
    },
}

impl Response {
    /// Renders the response as one compact JSON line (no newline).
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    fn to_json(&self) -> Json {
        match self {
            Response::Submitted { job } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("verb", Json::str("submit")),
                ("job", Json::Num(*job as f64)),
                ("state", Json::str("queued")),
            ]),
            Response::Rejected {
                reason,
                retry_after_ms,
            } => {
                let mut pairs = vec![
                    ("ok", Json::Bool(true)),
                    ("verb", Json::str("submit")),
                    ("state", Json::str("rejected")),
                    ("reason", Json::str(reason.as_str())),
                ];
                if let Some(ms) = retry_after_ms {
                    pairs.push(("retry_after_ms", Json::Num(*ms as f64)));
                }
                Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
            }
            Response::Status(s) => {
                let mut pairs = vec![
                    ("ok", Json::Bool(true)),
                    ("verb", Json::str("status")),
                    ("job", Json::Num(s.job as f64)),
                    ("state", Json::str(s.state.as_str())),
                    ("label", Json::str(s.label.as_str())),
                    ("scheme", Json::str(s.scheme.as_str())),
                    ("priority", Json::Num(s.priority as f64)),
                ];
                if let Some(o) = &s.outcome {
                    pairs.push(("gates_applied", Json::Num(o.gates_applied as f64)));
                    pairs.push(("seconds", Json::Num(o.seconds)));
                    pairs.push(("final_nodes", Json::Num(o.final_nodes as f64)));
                    pairs.push(("resumed", Json::Bool(o.resumed)));
                    pairs.push(("cache_hit_rate", Json::Num(o.statistics.cache_hit_rate())));
                    pairs.push((
                        "top",
                        Json::Arr(
                            o.top_probabilities
                                .iter()
                                .map(|(i, p)| Json::Arr(vec![Json::Num(*i as f64), Json::Num(*p)]))
                                .collect(),
                        ),
                    ));
                    if let Some(r) = &o.sample {
                        pairs.push((
                            "sample",
                            Json::obj(vec![
                                ("shots", Json::Num(r.shots as f64)),
                                ("seed", Json::Num(r.seed as f64)),
                                ("forked", Json::Bool(r.forked)),
                                (
                                    "counts",
                                    Json::Arr(
                                        r.counts
                                            .iter()
                                            .map(|(i, n)| {
                                                Json::Arr(vec![
                                                    Json::Num(*i as f64),
                                                    Json::Num(*n as f64),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                                (
                                    "probabilities",
                                    Json::Arr(
                                        r.probabilities
                                            .iter()
                                            .map(|p| {
                                                let mut fields = vec![
                                                    (
                                                        "index".to_string(),
                                                        Json::Num(p.index as f64),
                                                    ),
                                                    ("p".to_string(), Json::Num(p.probability)),
                                                ];
                                                if let Some(e) = &p.exact {
                                                    fields.push((
                                                        "exact".to_string(),
                                                        Json::str(e.as_str()),
                                                    ));
                                                }
                                                Json::Obj(fields)
                                            })
                                            .collect(),
                                    ),
                                ),
                            ]),
                        ));
                    }
                    if let Some(a) = &o.aborted {
                        pairs.push(("reason", Json::str(a.reason.as_str())));
                        pairs.push(("evicted", Json::Bool(a.evicted)));
                        pairs.push((
                            "checkpoint",
                            match &a.checkpoint {
                                Some(p) => Json::str(p.display().to_string()),
                                None => Json::Null,
                            },
                        ));
                    }
                }
                Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
            }
            Response::UnknownJob { job } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("verb", Json::str("status")),
                ("job", Json::Num(*job as f64)),
                ("state", Json::str("unknown")),
            ]),
            Response::Metrics(m) => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("verb", Json::str("metrics")),
                ("submitted", Json::Num(m.submitted as f64)),
                ("completed", Json::Num(m.completed as f64)),
                ("aborted", Json::Num(m.aborted as f64)),
                ("rejected", Json::Num(m.rejected as f64)),
                ("evicted", Json::Num(m.evicted as f64)),
                ("queue_depth", Json::Num(m.queue_depth as f64)),
                ("running", Json::Num(m.running as f64)),
                ("worker_deaths", Json::Num(m.worker_deaths as f64)),
                ("worker_respawns", Json::Num(m.worker_respawns as f64)),
                ("shed_deadline", Json::Num(m.shed_deadline as f64)),
                ("samples", Json::Num(m.samples as f64)),
                ("shots", Json::Num(m.shots as f64)),
                (
                    "result_cache",
                    Json::obj(vec![
                        ("served", Json::Num(m.cache_served as f64)),
                        ("hits", Json::Num(m.cache.hits as f64)),
                        ("misses", Json::Num(m.cache.misses as f64)),
                        ("insertions", Json::Num(m.cache.insertions as f64)),
                        ("evictions", Json::Num(m.cache.evictions as f64)),
                        ("hit_rate", Json::Num(m.cache.hit_rate())),
                        ("entries", Json::Num(m.cache_entries as f64)),
                        ("capacity", Json::Num(m.cache_capacity as f64)),
                    ]),
                ),
                (
                    "connections",
                    Json::obj(vec![
                        ("accepted", Json::Num(m.connections_accepted as f64)),
                        ("rejected", Json::Num(m.connections_rejected as f64)),
                        (
                            "reaped_at_shutdown",
                            Json::Num(m.connections_reaped_at_shutdown as f64),
                        ),
                    ]),
                ),
                (
                    "latency_ms",
                    Json::obj(vec![
                        (
                            "bucket_edges",
                            Json::Arr(
                                LATENCY_BUCKET_EDGES_US
                                    .iter()
                                    .map(|&e| Json::Num(e as f64 / 1_000.0))
                                    .collect(),
                            ),
                        ),
                        (
                            "counts",
                            Json::Arr(
                                m.latency_counts
                                    .iter()
                                    .map(|&c| Json::Num(c as f64))
                                    .collect(),
                            ),
                        ),
                        ("p50", m.p50_ms.map(Json::Num).unwrap_or(Json::Null)),
                        ("p99", m.p99_ms.map(Json::Num).unwrap_or(Json::Null)),
                    ]),
                ),
                (
                    "workers",
                    Json::Arr(
                        m.workers
                            .iter()
                            .map(|w| {
                                Json::obj(vec![
                                    ("worker", Json::Num(w.worker as f64)),
                                    ("class", Json::str(w.class.as_str())),
                                    ("jobs", Json::Num(w.stats.jobs as f64)),
                                    ("busy_seconds", Json::Num(w.stats.busy_seconds)),
                                    ("cache_hit_rate", Json::Num(w.stats.engine.cache_hit_rate())),
                                    (
                                        "nodes_allocated",
                                        Json::Num(
                                            (w.stats.engine.vec_nodes + w.stats.engine.mat_nodes)
                                                as f64,
                                        ),
                                    ),
                                    ("compactions", Json::Num(w.stats.engine.compactions as f64)),
                                    ("warm_reuses", Json::Num(w.stats.warm_reuses as f64)),
                                    ("session_shrinks", Json::Num(w.stats.session_shrinks as f64)),
                                    ("quarantines", Json::Num(w.stats.quarantines as f64)),
                                    ("validations", Json::Num(w.stats.validations as f64)),
                                    (
                                        "validate_failures",
                                        Json::Num(w.stats.validate_failures as f64),
                                    ),
                                    ("rebuilds", Json::Num(w.stats.rebuilds as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "health",
                    Json::Arr(
                        m.health
                            .iter()
                            .map(|h| {
                                Json::obj(vec![
                                    ("class", Json::str(h.class.as_str())),
                                    ("configured", Json::Num(h.configured as f64)),
                                    ("live", Json::Num(h.live as f64)),
                                    ("respawning", Json::Num(h.respawning as f64)),
                                    ("restarts_used", Json::Num(h.restarts_used as f64)),
                                    ("restart_budget", Json::Num(h.restart_budget as f64)),
                                    ("healthy", Json::Bool(h.healthy)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "chaos",
                    match &m.chaos {
                        None => Json::Null,
                        Some(c) => Json::obj(vec![
                            ("kills", Json::Num(c.kills as f64)),
                            ("corruptions", Json::Num(c.corruptions as f64)),
                            ("stalls", Json::Num(c.stalls as f64)),
                            ("wakeups", Json::Num(c.wakeups as f64)),
                        ]),
                    },
                ),
            ]),
            Response::Drained { completed, aborted } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("verb", Json::str("drain")),
                ("state", Json::str("drained")),
                ("completed", Json::Num(*completed as f64)),
                ("aborted", Json::Num(*aborted as f64)),
            ]),
            Response::ShutdownDone {
                evicted_queued,
                cancelled_running,
            } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("verb", Json::str("shutdown")),
                ("state", Json::str("stopped")),
                ("evicted_queued", Json::Num(*evicted_queued as f64)),
                ("cancelled_running", Json::Num(*cancelled_running as f64)),
            ]),
            Response::Error { message } => Json::obj(vec![
                ("ok", Json::Bool(false)),
                ("error", Json::str(message.as_str())),
            ]),
        }
    }
}

/// Supervision state of one worker thread slot.
#[derive(Debug)]
enum WorkerState {
    /// Thread spawned and, as far as the supervisor knows, running.
    Live(JoinHandle<()>),
    /// Thread died; a respawn is scheduled at the given instant.
    Respawning {
        /// When the backoff expires and the slot may spawn again.
        at: Instant,
    },
    /// A supervision pass is handling this slot right now (reaping the
    /// finished thread or spawning a new one) with the lock released.
    Spawning,
    /// Permanently stopped: clean exit after queue close, or the class's
    /// restart budget ran out.
    Retired,
}

/// One worker thread's slot in the supervisor.
#[derive(Debug)]
struct WorkerSlot {
    class: SchemeClass,
    state: WorkerState,
    /// Bumped on every respawn; names the thread.
    generation: u64,
    /// Id of the job the thread is running right now (`0` when idle).
    /// On death the supervisor recovers it as a `transient:` abort.
    current_job: Arc<AtomicU64>,
    /// Set by the worker loop just before a normal return; a finished
    /// thread that never set it died.
    clean_exit: Arc<AtomicBool>,
    /// This slot's deterministic jittered respawn-delay schedule.
    backoff: Backoff,
}

/// Supervisor state: the worker slots plus per-class restart accounting.
#[derive(Debug)]
struct Supervisor {
    slots: Vec<WorkerSlot>,
    /// Respawns spent per class, against `ServeConfig::restart_budget`.
    restarts_used: [u32; SchemeClass::COUNT],
    /// Whether the once-per-exhaustion queue eviction sweep already ran
    /// for an unhealthy class.
    unhealthy_swept: [bool; SchemeClass::COUNT],
    /// Supervision pass counter (drives deterministic spurious wakeups).
    tick: u64,
}

impl Supervisor {
    /// Restart-budget units already spent for `class`.
    fn restarts_used_for(&self, class: SchemeClass) -> u32 {
        self.restarts_used.get(class.index()).copied().unwrap_or(0)
    }

    /// Spends one restart-budget unit for `class` if any remains;
    /// `false` means the budget is exhausted and the slot must retire.
    fn try_spend_restart(&mut self, class: SchemeClass, budget: u32) -> bool {
        match self.restarts_used.get_mut(class.index()) {
            Some(used) if *used < budget => {
                *used += 1;
                true
            }
            _ => false,
        }
    }

    /// Marks `class` as having had its unhealthy eviction sweep; returns
    /// `true` only on the first marking (the sweep runs exactly once).
    fn mark_unhealthy_swept(&mut self, class: SchemeClass) -> bool {
        match self.unhealthy_swept.get_mut(class.index()) {
            Some(swept) if !*swept => {
                *swept = true;
                true
            }
            _ => false,
        }
    }

    /// Phase-3 bookkeeping for one slot: clean exits retire, deaths
    /// respawn while budget remains (spending one unit and advancing the
    /// slot's backoff) and retire once it runs out.
    fn record_outcome(&mut self, idx: usize, died: bool, budget: u32, now: Instant) {
        let Some(class) = self.slots.get(idx).map(|s| s.class) else {
            return;
        };
        let respawn = died && self.try_spend_restart(class, budget);
        if let Some(slot) = self.slots.get_mut(idx) {
            slot.state = if respawn {
                WorkerState::Respawning {
                    at: now + slot.backoff.next_delay(),
                }
            } else {
                WorkerState::Retired
            };
        }
    }
}

/// The running service: queue, registry, metrics and the worker pool.
///
/// Construct with [`ServeCore::start`], talk to it with
/// [`ServeCore::handle`] (directly, through the in-process
/// [`Client`](crate::Client), or via the TCP
/// [`Server`](crate::Server)), and stop it with the `Shutdown` request.
#[derive(Debug)]
pub struct ServeCore {
    shared: Arc<Shared>,
    /// Locked strictly on its own (never while holding the registry,
    /// queue or metrics locks, and nothing else is locked under it).
    supervisor: DebugMutex<Supervisor>,
}

/// Spawns (or respawns) one worker thread for a slot, resetting the
/// slot's shared flags first.
fn spawn_worker(
    shared: &Arc<Shared>,
    idx: usize,
    class: SchemeClass,
    generation: u64,
    current_job: &Arc<AtomicU64>,
    clean_exit: &Arc<AtomicBool>,
) -> io::Result<JoinHandle<()>> {
    current_job.store(0, Ordering::Release);
    clean_exit.store(false, Ordering::Release);
    let shared = Arc::clone(shared);
    let current_job = Arc::clone(current_job);
    let clean_exit = Arc::clone(clean_exit);
    std::thread::Builder::new()
        .name(format!("aq-serve-worker-{idx}-g{generation}"))
        .spawn(move || worker_loop(shared, idx, class, current_job, clean_exit))
}

impl ServeCore {
    /// Starts the worker pool and returns the core.
    ///
    /// # Errors
    ///
    /// [`io::Error`] if a worker thread cannot be spawned (the OS is out
    /// of threads); any workers already started are shut down again.
    pub fn start(cfg: ServeConfig) -> io::Result<Arc<ServeCore>> {
        std::fs::create_dir_all(&cfg.checkpoint_dir).ok();
        let workers = cfg.workers.clone();
        let backoff_base = cfg.backoff_base;
        let backoff_cap = cfg.backoff_cap;
        let seed = cfg.supervisor_seed;
        let shared = Arc::new(Shared {
            queue: JobQueue::new(cfg.queue_capacity),
            metrics: Metrics::new(workers.len()),
            registry: DebugMutex::new("serve.registry", Registry::default()),
            terminal: DebugCondvar::new(),
            next_id: AtomicU64::new(1),
            result_cache: DebugMutex::new(
                "serve.result_cache",
                ResultCache::new(cfg.result_cache_capacity),
            ),
            completion_epoch: AtomicU64::new(0),
            cfg,
        });
        let mut slots: Vec<WorkerSlot> = Vec::with_capacity(workers.len());
        for (idx, &class) in workers.iter().enumerate() {
            let current_job = Arc::new(AtomicU64::new(0));
            let clean_exit = Arc::new(AtomicBool::new(false));
            match spawn_worker(&shared, idx, class, 0, &current_job, &clean_exit) {
                Ok(h) => slots.push(WorkerSlot {
                    class,
                    state: WorkerState::Live(h),
                    generation: 0,
                    current_job,
                    clean_exit,
                    backoff: Backoff::new(backoff_base, backoff_cap, seed.wrapping_add(idx as u64)),
                }),
                Err(e) => {
                    shared.queue.close();
                    for slot in slots {
                        if let WorkerState::Live(h) = slot.state {
                            h.join().ok();
                        }
                    }
                    return Err(e);
                }
            }
        }
        Ok(Arc::new(ServeCore {
            shared,
            supervisor: DebugMutex::new(
                "serve.supervisor",
                Supervisor {
                    slots,
                    restarts_used: [0; SchemeClass::COUNT],
                    unhealthy_swept: [false; SchemeClass::COUNT],
                    tick: 0,
                },
            ),
        }))
    }

    /// The configuration the core was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.cfg
    }

    /// Handles one request to a terminal response. `Wait`, `Drain` and
    /// `Shutdown` block the calling thread (that is their contract).
    /// Every request starts with a supervision pass, so a dead worker is
    /// noticed at the next request at the latest.
    pub fn handle(&self, request: Request) -> Response {
        self.supervise();
        match request {
            Request::Submit(submit) => self.submit(*submit),
            Request::Status { job } => self.status(job),
            Request::Wait { job, timeout } => self.wait(job, timeout),
            Request::Metrics => Response::Metrics(Box::new(self.metrics_report())),
            Request::Drain => self.drain(),
            Request::Shutdown => self.shutdown(),
        }
    }

    /// One supervision pass: reap finished worker threads, recover jobs
    /// orphaned by deaths as `transient:` aborts, respawn dead workers
    /// under the per-class restart budget (with jittered exponential
    /// backoff), and — when a class just ran out of budget — evict its
    /// queued jobs once so nothing waits on a class that cannot serve.
    ///
    /// Runs on every request, every event-loop tick, and every wakeup of
    /// a blocking verb; safe to call concurrently (the `Spawning`
    /// placeholder state keeps two passes off the same slot).
    pub fn supervise(&self) {
        let shared = &self.shared;

        // Phase 1 (supervisor lock): collect finished threads and due
        // respawns, marking their slots `Spawning` so a concurrent pass
        // skips them. No joins or spawns under the lock.
        type Reaped = (usize, JoinHandle<()>, Arc<AtomicU64>, Arc<AtomicBool>);
        type PendingSpawn = (usize, SchemeClass, u64, Arc<AtomicU64>, Arc<AtomicBool>);
        let mut finished: Vec<Reaped> = Vec::new();
        let mut to_spawn: Vec<PendingSpawn> = Vec::new();
        let spurious;
        {
            let mut sup = self.supervisor.lock();
            sup.tick += 1;
            spurious = shared.cfg.fault_plan.spurious_wakeup(sup.tick);
            let now = Instant::now();
            for (idx, slot) in sup.slots.iter_mut().enumerate() {
                let due = match &slot.state {
                    WorkerState::Live(h) => {
                        if h.is_finished() {
                            let state = std::mem::replace(&mut slot.state, WorkerState::Spawning);
                            if let WorkerState::Live(h) = state {
                                finished.push((
                                    idx,
                                    h,
                                    Arc::clone(&slot.current_job),
                                    Arc::clone(&slot.clean_exit),
                                ));
                            }
                        }
                        false
                    }
                    WorkerState::Respawning { at } => *at <= now,
                    WorkerState::Spawning | WorkerState::Retired => false,
                };
                if due {
                    slot.state = WorkerState::Spawning;
                    slot.generation += 1;
                    to_spawn.push((
                        idx,
                        slot.class,
                        slot.generation,
                        Arc::clone(&slot.current_job),
                        Arc::clone(&slot.clean_exit),
                    ));
                }
            }
        }

        // Phase 2 (no locks): join the finished threads, classify clean
        // exit vs death, recover orphaned jobs, and spawn due respawns.
        let mut outcomes: Vec<(usize, bool)> = Vec::new(); // (slot, died)
        for (idx, handle, current_job, clean_exit) in finished {
            crate::lockaudit::blocking_op("join finished worker");
            let panicked = handle.join().is_err();
            let died = panicked || !clean_exit.load(Ordering::Acquire);
            if died {
                shared.metrics.worker_deaths.fetch_add(1, Ordering::Relaxed);
                let orphan = current_job.swap(0, Ordering::AcqRel);
                if orphan != 0 {
                    shared.metrics.running.fetch_sub(1, Ordering::Relaxed);
                    shared.finish_job(
                        orphan,
                        transient_death_outcome(
                            "transient: worker died mid-job; resubmit to rerun",
                        ),
                    );
                }
            }
            outcomes.push((idx, died));
        }
        let mut spawned: Vec<(usize, io::Result<JoinHandle<()>>)> = Vec::new();
        for (idx, class, generation, current_job, clean_exit) in to_spawn {
            spawned.push((
                idx,
                spawn_worker(shared, idx, class, generation, &current_job, &clean_exit),
            ));
        }

        // Phase 3 (supervisor lock): record the outcomes — schedule
        // respawns under budget, retire otherwise, install spawned
        // threads — and find classes that just became unhealthy.
        let mut sweep: Option<[bool; SchemeClass::COUNT]> = None;
        if !outcomes.is_empty() || !spawned.is_empty() {
            let mut sup = self.supervisor.lock();
            let now = Instant::now();
            let budget = shared.cfg.restart_budget;
            for (idx, died) in outcomes {
                sup.record_outcome(idx, died, budget, now);
            }
            for (idx, result) in spawned {
                match result {
                    Ok(h) => {
                        if let Some(slot) = sup.slots.get_mut(idx) {
                            slot.state = WorkerState::Live(h);
                        }
                        shared
                            .metrics
                            .worker_respawns
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    // Spawn failed (OS out of threads): costs another
                    // budget unit and waits out another backoff.
                    Err(_) => sup.record_outcome(idx, true, budget, now),
                }
            }
            // A class whose every configured slot is retired is
            // unhealthy; sweep its queued jobs exactly once.
            // `SchemeClass::ALL` is in `index()` order, so the zip lines
            // the flags up with the classes without any indexing.
            let mut healthy = [true; SchemeClass::COUNT];
            let mut newly_unhealthy = false;
            for (&class, healthy_flag) in SchemeClass::ALL.iter().zip(healthy.iter_mut()) {
                let mut configured = 0usize;
                let mut alive = 0usize;
                for slot in sup.slots.iter().filter(|s| s.class == class) {
                    configured += 1;
                    if !matches!(slot.state, WorkerState::Retired) {
                        alive += 1;
                    }
                }
                if configured > 0 && alive == 0 {
                    *healthy_flag = false;
                    if sup.mark_unhealthy_swept(class) {
                        newly_unhealthy = true;
                    }
                }
            }
            if newly_unhealthy && !shared.queue.is_closed() {
                sweep = Some(healthy);
            }
        }

        // Phase 4 (no supervisor lock): perform the eviction sweep and
        // the chaos-plan spurious wakeup.
        if let Some(healthy) = sweep {
            let evicted = shared
                .queue
                .evict_unmatched(|class| healthy.get(class.index()).copied().unwrap_or(true));
            for q in evicted {
                shared.finish_job(
                    q.id,
                    evicted_outcome(
                        "evicted: no healthy worker remains for the job's scheme class \
                         (restart budget exhausted)",
                    ),
                );
            }
        }
        if spurious {
            shared.queue.chaos_notify_all();
        }
    }

    /// Whether a configured class has lost every worker slot to the
    /// restart budget. Unconfigured classes are never unhealthy (they
    /// are rejected with the static no-worker reason instead).
    fn class_is_unhealthy(&self, class: SchemeClass) -> bool {
        let sup = self.supervisor.lock();
        let mut configured = 0usize;
        let mut alive = 0usize;
        for slot in sup.slots.iter().filter(|s| s.class == class) {
            configured += 1;
            if !matches!(slot.state, WorkerState::Retired) {
                alive += 1;
            }
        }
        configured > 0 && alive == 0
    }

    /// Per-class supervision health rows for the metrics report.
    fn class_health(&self) -> Vec<ClassHealthReport> {
        let sup = self.supervisor.lock();
        SchemeClass::ALL
            .iter()
            .map(|&class| {
                let mut configured = 0u64;
                let mut live = 0u64;
                let mut respawning = 0u64;
                for slot in sup.slots.iter().filter(|s| s.class == class) {
                    configured += 1;
                    match slot.state {
                        WorkerState::Live(_) => live += 1,
                        WorkerState::Respawning { .. } | WorkerState::Spawning => respawning += 1,
                        WorkerState::Retired => {}
                    }
                }
                ClassHealthReport {
                    class,
                    configured,
                    live,
                    respawning,
                    restarts_used: sup.restarts_used_for(class),
                    restart_budget: self.shared.cfg.restart_budget,
                    healthy: configured == 0 || live + respawning > 0,
                }
            })
            .collect()
    }

    /// Rough wait estimate (ms) for a job of `class` admitted now: the
    /// class's historical mean busy time per job times its queue position,
    /// spread over the live workers — plus the time until the earliest
    /// respawn when nothing is live. Used for `retry_after_ms` hints and
    /// deadline shedding; an estimate, not a promise.
    fn estimated_wait_ms(&self, class: SchemeClass) -> u64 {
        let shared = &self.shared;
        let (mut jobs, mut busy_s) = (0u64, 0.0f64);
        {
            let rows = shared.metrics.workers.lock();
            for (idx, row) in rows.iter().enumerate() {
                if shared.cfg.workers.get(idx) == Some(&class) {
                    jobs += row.jobs;
                    busy_s += row.busy_seconds;
                }
            }
        }
        let depth = shared
            .queue
            .depths()
            .get(class.index())
            .copied()
            .unwrap_or(0) as u64;
        let (live, respawn_wait_ms) = {
            let sup = self.supervisor.lock();
            let now = Instant::now();
            let mut live = 0u64;
            let mut earliest: Option<u64> = None;
            for slot in sup.slots.iter().filter(|s| s.class == class) {
                match &slot.state {
                    WorkerState::Live(_) => live += 1,
                    WorkerState::Respawning { at } => {
                        let ms = at.saturating_duration_since(now).as_millis() as u64;
                        earliest = Some(earliest.map_or(ms, |e: u64| e.min(ms)));
                    }
                    WorkerState::Spawning => earliest = Some(0),
                    WorkerState::Retired => {}
                }
            }
            (live, earliest.unwrap_or(0))
        };
        // No history yet: assume a nominal 50ms/job so the estimate stays
        // a small positive hint instead of zero.
        let avg_ms = if jobs > 0 {
            busy_s * 1_000.0 / jobs as f64
        } else {
            50.0
        };
        let mut est = (avg_ms * (depth + 1) as f64 / live.max(1) as f64) as u64;
        if live == 0 {
            est = est.saturating_add(respawn_wait_ms);
        }
        est.max(1)
    }

    fn submit(&self, req: SubmitRequest) -> Response {
        let shared = &self.shared;
        shared.metrics.submitted.fetch_add(1, Ordering::Relaxed);
        let reject = |reason: String, retry_after_ms: Option<u64>| {
            shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            Response::Rejected {
                reason,
                retry_after_ms,
            }
        };

        // Admission control, cheapest checks first.
        if req.budget.is_unlimited() {
            return reject(
                "a resource budget is mandatory: set budget.max_nodes, budget.max_weights, \
                 budget.max_bits and/or budget.deadline_secs"
                    .into(),
                None,
            );
        }
        let class = SchemeClass::of(&req.scheme);
        if !shared.cfg.workers.contains(&class) {
            return reject(
                format!(
                    "no worker is pinned to the {} scheme class on this server",
                    class.as_str()
                ),
                None,
            );
        }
        // An unhealthy class (restart budget exhausted) refuses with a
        // retry hint rather than queueing into a black hole. Skipped once
        // the queue is closed: draining is permanent, not retryable.
        if !shared.queue.is_closed() && self.class_is_unhealthy(class) {
            return reject(
                format!(
                    "the {} scheme class is unhealthy: its worker restart budget is exhausted",
                    class.as_str()
                ),
                Some(shared.cfg.unhealthy_retry_after.as_millis() as u64),
            );
        }
        let (circuit, start) = match req.circuit.build() {
            Ok(pair) => pair,
            Err(reason) => return reject(reason, None),
        };

        // Content-addressed short-circuit: a repeated submission of work
        // the cache has already seen completes immediately — before the
        // queue, so a hit succeeds even while the queue is full. Resumed
        // jobs are never cacheable (their result depends on checkpoint
        // state the key cannot address).
        let cache_key = if req.resume.is_none() {
            Some(CacheKey::new(
                &circuit,
                start,
                &req.scheme,
                req.top_k,
                &req.budget,
                req.sample,
            ))
        } else {
            None
        };
        let memoized = cache_key
            .as_ref()
            .and_then(|key| shared.result_cache.lock().get(key));

        let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
        let label = format!("{}/{}", req.circuit.label(), req.scheme.label());

        if let Some(outcome) = memoized {
            shared.metrics.cache_served.fetch_add(1, Ordering::Relaxed);
            let record = JobRecord {
                state: JobState::Queued,
                label,
                scheme: req.scheme.label(),
                priority: req.priority,
                submitted_at: Instant::now(),
                outcome: None,
                cancel: Arc::new(AtomicBool::new(false)),
                cache_key: None, // already cached; don't re-insert
            };
            {
                let mut reg = shared.lock_registry();
                reg.map.insert(id, record);
                reg.pending += 1;
            }
            // Completes through the normal terminal path so every counter
            // and the latency histogram (sub-ms buckets) see it.
            shared.finish_job(id, outcome);
            return Response::Submitted { job: id };
        }

        // Deadline-aware load shedding: if the estimated queue wait
        // already eats the job's whole deadline, running it would only
        // burn a worker on a guaranteed budget abort — refuse now, with
        // the estimate as the retry hint. (Checked after the cache: a hit
        // is instant regardless of queue depth.)
        if let Some(deadline) = req.budget.deadline {
            let est_ms = self.estimated_wait_ms(class);
            if Duration::from_millis(est_ms) > deadline {
                shared.metrics.shed_deadline.fetch_add(1, Ordering::Relaxed);
                return reject(
                    format!(
                        "deadline-shed: estimated queue wait {est_ms}ms exceeds the job's \
                         {}ms deadline",
                        deadline.as_millis()
                    ),
                    Some(est_ms),
                );
            }
        }
        let work = JobWork {
            circuit,
            start,
            scheme: req.scheme.clone(),
            options: SimOptions {
                record_trace: false,
                budget: req.budget,
                checkpoint_on_abort: Some(
                    shared.cfg.checkpoint_dir.join(format!("job-{id}.aqckp")),
                ),
                ..SimOptions::default()
            },
            label: label.clone(),
            resume: req.resume.clone(),
            top_k: req.top_k,
            sample: req.sample,
        };
        let record = JobRecord {
            state: JobState::Queued,
            label,
            scheme: req.scheme.label(),
            priority: req.priority,
            submitted_at: Instant::now(),
            outcome: None,
            cancel: Arc::new(AtomicBool::new(false)),
            cache_key,
        };

        // Insert the record before queueing so a fast worker always finds
        // it; roll both back if the queue refuses.
        {
            let mut reg = shared.lock_registry();
            reg.map.insert(id, record);
            reg.pending += 1;
        }
        if let Err(e) = shared.queue.push(id, req.priority, class, work) {
            let mut reg = shared.lock_registry();
            reg.map.remove(&id);
            reg.pending = reg.pending.saturating_sub(1);
            drop(reg);
            // A full queue is worth retrying once it drains; a closed
            // (draining) service is not.
            let hint = match e {
                AdmissionError::Full { .. } => Some(self.estimated_wait_ms(class)),
                AdmissionError::Closed => None,
            };
            return reject(e.to_string(), hint);
        }
        Response::Submitted { job: id }
    }

    fn status(&self, job: u64) -> Response {
        let reg = self.shared.lock_registry();
        match reg.map.get(&job) {
            None => Response::UnknownJob { job },
            Some(rec) => Response::Status(Box::new(JobStatusReport {
                job,
                state: rec.state,
                label: rec.label.clone(),
                scheme: rec.scheme.clone(),
                priority: rec.priority,
                outcome: rec.outcome.clone(),
            })),
        }
    }

    fn wait(&self, job: u64, timeout: Duration) -> Response {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let reg = self.shared.lock_registry();
                match reg.map.get(&job) {
                    None => return Response::UnknownJob { job },
                    Some(rec) if rec.state.is_terminal() => {
                        return Response::Status(Box::new(JobStatusReport {
                            job,
                            state: rec.state,
                            label: rec.label.clone(),
                            scheme: rec.scheme.clone(),
                            priority: rec.priority,
                            outcome: rec.outcome.clone(),
                        }))
                    }
                    Some(_) => {}
                }
                let now = Instant::now();
                if now >= deadline {
                    return Response::Error {
                        message: format!("timed out waiting for job {job}"),
                    };
                }
                let step = (deadline - now).min(SUPERVISE_INTERVAL);
                let (guard, _) = self.shared.terminal.wait_timeout(reg, step);
                drop(guard);
            }
            // Each wakeup supervises (registry lock released first): a
            // worker dying mid-job cannot stall this wait — its death
            // recovers the job as a `transient:` abort within a tick.
            self.supervise();
        }
    }

    /// Assembles a metrics snapshot.
    pub fn metrics_report(&self) -> MetricsReport {
        let shared = &self.shared;
        let latency_counts = shared.metrics.latency.counts();
        let workers = shared
            .metrics
            .workers
            .lock()
            .iter()
            .cloned()
            .enumerate()
            .map(|(worker, stats)| WorkerReport {
                worker,
                // rows and cfg.workers are index-aligned by construction
                class: shared
                    .cfg
                    .workers
                    .get(worker)
                    .copied()
                    .unwrap_or(SchemeClass::Numeric),
                stats,
            })
            .collect();
        let (cache, cache_entries) = {
            let c = shared.result_cache.lock();
            (c.stats(), c.len() as u64)
        };
        MetricsReport {
            submitted: shared.metrics.submitted.load(Ordering::Relaxed),
            completed: shared.metrics.completed.load(Ordering::Relaxed),
            aborted: shared.metrics.aborted.load(Ordering::Relaxed),
            rejected: shared.metrics.rejected.load(Ordering::Relaxed),
            evicted: shared.metrics.evicted.load(Ordering::Relaxed),
            queue_depth: shared.queue.len() as u64,
            running: shared.metrics.running.load(Ordering::Relaxed),
            cache_served: shared.metrics.cache_served.load(Ordering::Relaxed),
            cache,
            cache_entries,
            cache_capacity: shared.cfg.result_cache_capacity as u64,
            connections_accepted: shared.metrics.connections_accepted.load(Ordering::Relaxed),
            connections_rejected: shared.metrics.connections_rejected.load(Ordering::Relaxed),
            p50_ms: histogram_quantile_ms(&latency_counts, 0.50),
            p99_ms: histogram_quantile_ms(&latency_counts, 0.99),
            latency_counts,
            workers,
            worker_deaths: shared.metrics.worker_deaths.load(Ordering::Relaxed),
            worker_respawns: shared.metrics.worker_respawns.load(Ordering::Relaxed),
            shed_deadline: shared.metrics.shed_deadline.load(Ordering::Relaxed),
            samples: shared.metrics.samples.load(Ordering::Relaxed),
            shots: shared.metrics.shots.load(Ordering::Relaxed),
            connections_reaped_at_shutdown: shared
                .metrics
                .connections_reaped_at_shutdown
                .load(Ordering::Relaxed),
            health: self.class_health(),
            chaos: shared.cfg.fault_plan.counters(),
        }
    }

    fn drain(&self) -> Response {
        self.begin_drain();
        loop {
            self.supervise();
            // Supervision just recovered any orphans, so the poll usually
            // succeeds immediately; otherwise sleep one tick (interrupted
            // early by any terminal transition) and supervise again — a
            // worker dying mid-drain therefore cannot hang the drain.
            if let Some(resp) = self.try_drain() {
                return resp;
            }
            let reg = self.shared.lock_registry();
            if reg.pending > 0 {
                let (guard, _) = self.shared.terminal.wait_timeout(reg, SUPERVISE_INTERVAL);
                drop(guard);
            }
        }
    }

    fn shutdown(&self) -> Response {
        let (evicted_queued, cancelled_running) = self.begin_shutdown();
        loop {
            self.supervise();
            if let Some(resp) = self.try_complete_shutdown(evicted_queued, cancelled_running) {
                return resp;
            }
            let reg = self.shared.lock_registry();
            if reg.pending > 0 {
                let (guard, _) = self.shared.terminal.wait_timeout(reg, SUPERVISE_INTERVAL);
                drop(guard);
            }
        }
    }

    // ---- non-blocking verb surface (event loop) -------------------------
    //
    // The TCP event loop cannot park a thread per slow verb, so the three
    // blocking verbs split into begin/poll pairs: `begin_*` performs the
    // state transition, `try_*`/`poll_*` checks for completion without
    // blocking. The loop re-polls when [`ServeCore::completion_epoch`]
    // moves.

    /// The terminal-transition counter; changes whenever a pending `wait`,
    /// `drain` or `shutdown` poll might newly succeed.
    pub fn completion_epoch(&self) -> u64 {
        self.shared.completion_epoch.load(Ordering::Acquire)
    }

    /// Non-blocking `wait` poll: the status once the job is terminal (or
    /// unknown), `None` while it is still in flight.
    pub fn poll_wait(&self, job: u64) -> Option<Response> {
        let reg = self.shared.lock_registry();
        match reg.map.get(&job) {
            None => Some(Response::UnknownJob { job }),
            Some(rec) if rec.state.is_terminal() => {
                Some(Response::Status(Box::new(JobStatusReport {
                    job,
                    state: rec.state,
                    label: rec.label.clone(),
                    scheme: rec.scheme.clone(),
                    priority: rec.priority,
                    outcome: rec.outcome.clone(),
                })))
            }
            Some(_) => None,
        }
    }

    /// Starts a drain: closes admission and aborts *stranded* queued jobs
    /// — jobs whose scheme class has no pinned worker, which would
    /// otherwise leave the drain waiting forever. (Admission normally
    /// prevents them; this is the fail-safe the drain contract needs.)
    pub fn begin_drain(&self) {
        let shared = &self.shared;
        shared.queue.close();
        let stranded = shared
            .queue
            .evict_unmatched(|class| shared.cfg.workers.contains(&class));
        for q in stranded {
            shared.finish_job(
                q.id,
                evicted_outcome("evicted: drain found no worker pinned to the job's scheme class"),
            );
        }
    }

    /// Non-blocking drain poll; call after [`ServeCore::begin_drain`].
    pub fn try_drain(&self) -> Option<Response> {
        let shared = &self.shared;
        if shared.lock_registry().pending > 0 {
            return None;
        }
        Some(Response::Drained {
            completed: shared.metrics.completed.load(Ordering::Relaxed),
            aborted: shared.metrics.aborted.load(Ordering::Relaxed),
        })
    }

    /// Starts a shutdown: closes admission, sweeps out every queued job,
    /// and cancels what is running (each job checkpoints itself). Returns
    /// `(evicted_queued, cancelled_running)` for the final response.
    pub fn begin_shutdown(&self) -> (u64, u64) {
        let shared = &self.shared;
        shared.queue.close();
        let evicted = shared.queue.evict_all();
        let evicted_queued = evicted.len() as u64;
        for q in evicted {
            shared.finish_job(
                q.id,
                evicted_outcome("evicted: shutdown before the job started (resubmit to rerun)"),
            );
        }
        let cancelled_running = {
            let reg = shared.lock_registry();
            let mut n = 0;
            for rec in reg.map.values() {
                if rec.state == JobState::Running {
                    rec.cancel.store(true, Ordering::Relaxed);
                    n += 1;
                }
            }
            n
        };
        (evicted_queued, cancelled_running)
    }

    /// Non-blocking shutdown poll; call after [`ServeCore::begin_shutdown`]
    /// with its counts. Joins the (now idle) worker pool on success.
    pub fn try_complete_shutdown(
        &self,
        evicted_queued: u64,
        cancelled_running: u64,
    ) -> Option<Response> {
        if self.shared.lock_registry().pending > 0 {
            return None;
        }
        // Retire every slot, taking live handles out for the final join.
        // A slot mid-spawn defers the poll: the new thread will be Live
        // (and joinable) at the next supervision pass.
        let handles: Vec<JoinHandle<()>> = {
            let mut sup = self.supervisor.lock();
            if sup
                .slots
                .iter()
                .any(|s| matches!(s.state, WorkerState::Spawning))
            {
                return None;
            }
            sup.slots
                .iter_mut()
                .filter_map(
                    |slot| match std::mem::replace(&mut slot.state, WorkerState::Retired) {
                        WorkerState::Live(h) => Some(h),
                        _ => None,
                    },
                )
                .collect()
        };
        crate::lockaudit::blocking_op("join worker pool");
        for h in handles {
            let _ = h.join();
        }
        Some(Response::ShutdownDone {
            evicted_queued,
            cancelled_running,
        })
    }

    /// Counts one accepted TCP connection (event-loop bookkeeping).
    pub fn note_connection_accepted(&self) {
        self.shared
            .metrics
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one refused TCP connection (cap reached or accept failed).
    pub fn note_connection_rejected(&self) {
        self.shared
            .metrics
            .connections_rejected
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one connection dropped at shutdown because it exceeded its
    /// per-connection flush grace.
    pub fn note_connection_reaped(&self) {
        self.shared
            .metrics
            .connections_reaped_at_shutdown
            .fetch_add(1, Ordering::Relaxed);
    }
}

/// The zero-work aborted outcome drain/shutdown sweeps use.
fn evicted_outcome(reason: &str) -> JobOutcome {
    JobOutcome {
        gates_applied: 0,
        seconds: 0.0,
        final_nodes: 0,
        statistics: EngineStatistics::default(),
        top_probabilities: Vec::new(),
        resumed: false,
        sample: None,
        aborted: Some(JobAbortInfo {
            reason: reason.into(),
            checkpoint: None,
            evicted: true,
        }),
    }
}

/// The zero-work aborted outcome the supervisor writes for a job
/// orphaned by a worker death. `transient:` marks it retryable — the
/// job itself was fine; resubmitting reruns it bit-identically.
fn transient_death_outcome(reason: &str) -> JobOutcome {
    JobOutcome {
        gates_applied: 0,
        seconds: 0.0,
        final_nodes: 0,
        statistics: EngineStatistics::default(),
        top_probabilities: Vec::new(),
        resumed: false,
        sample: None,
        aborted: Some(JobAbortInfo {
            reason: reason.into(),
            checkpoint: None,
            evicted: false,
        }),
    }
}

fn worker_loop(
    shared: Arc<Shared>,
    worker_idx: usize,
    class: SchemeClass,
    current_job: Arc<AtomicU64>,
    clean_exit: Arc<AtomicBool>,
) {
    // The worker's persistent engine session: one warm `Manager` per
    // scheme kind, budget-reset between jobs and reused across them, so
    // steady-state jobs pay no arena/table (re)allocation. A panicking
    // job quarantines its lane (the next job starts cold) — the session
    // itself survives.
    let mut session = EngineSession::new(SessionConfig {
        max_retained_capacity: shared.cfg.session_max_retained_capacity,
        suspect_validate: shared.cfg.session_suspect_validate,
    });
    while let Some(qjob) = shared.queue.pop(class) {
        // Advertise the claim before anything can go wrong: if this
        // thread dies mid-job, the supervisor finds the id here and
        // recovers the job as a `transient:` abort instead of leaving it
        // "running" forever.
        current_job.store(qjob.id, Ordering::Release);
        let cancel = {
            let mut reg = shared.lock_registry();
            let Some(rec) = reg.map.get_mut(&qjob.id) else {
                current_job.store(0, Ordering::Release);
                continue; // record vanished (never happens; stay alive anyway)
            };
            rec.state = JobState::Running;
            Arc::clone(&rec.cancel)
        };
        shared.metrics.running.fetch_add(1, Ordering::Relaxed);

        // Chaos kill point — deliberately *outside* the catch_unwind
        // below, so the panic takes down the whole worker thread and
        // exercises the supervisor's real death/recover/respawn path
        // rather than the per-job guard.
        if shared.cfg.fault_plan.kill_worker(qjob.id) {
            // aq-lint: allow(R8): deliberate chaos-plan worker kill; the supervisor must see a real panic
            std::panic::panic_any(ChaosKill);
        }

        let work = &qjob.payload;
        let spec = JobSpec {
            circuit: &work.circuit,
            start: work.start,
            scheme: work.scheme.clone(),
            options: work.options.clone(),
            label: work.label.clone(),
            resume: work.resume.clone(),
            top_k: work.top_k,
            sample: work.sample,
        };
        // The last line of the never-lose-a-worker defence: session.run is
        // fail-soft by design, but if anything underneath it ever panics
        // the panic is converted into an aborted outcome here.
        let outcome = match catch_unwind(AssertUnwindSafe(|| session.run(&spec, Some(&cancel)))) {
            Ok(outcome) => outcome,
            Err(payload) => {
                // The unwound lane may hold arbitrarily damaged retained
                // state; quarantine it so the next job starts cold.
                session.note_panic(&work.scheme);
                JobOutcome {
                    gates_applied: 0,
                    seconds: 0.0,
                    final_nodes: 0,
                    statistics: EngineStatistics::default(),
                    top_probabilities: Vec::new(),
                    resumed: false,
                    sample: None,
                    aborted: Some(JobAbortInfo {
                        reason: format!(
                            "internal error: job panicked: {}",
                            panic_message(&payload)
                        ),
                        checkpoint: None,
                        evicted: false,
                    }),
                }
            }
        };
        // Chaos corruption point: silently damage the parked manager the
        // job just left warm; the session's suspect-validate pass must
        // catch it before the next warm reuse.
        #[cfg(feature = "chaos")]
        if let Some(seed) = shared.cfg.fault_plan.corrupt_session(qjob.id) {
            if session.chaos_corrupt_parked(&work.scheme, seed) {
                shared.cfg.fault_plan.note_corruption_landed();
            }
        }
        current_job.store(0, Ordering::Release);
        shared.metrics.record_worker_job(
            worker_idx,
            &outcome.statistics,
            outcome.seconds,
            session.stats(),
        );
        shared.metrics.running.fetch_sub(1, Ordering::Relaxed);
        shared.finish_job(qjob.id, outcome);
    }
    clean_exit.store(true, Ordering::Release);
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("<non-string panic payload>")
}
