//! The service core: admission control, the job registry and lifecycle,
//! and the hand-rolled worker pool.
//!
//! # Job state machine
//!
//! ```text
//! submit ──(admission)──► queued ──► running ──► completed
//!    │                       │          │
//!    │                       │          ├──► aborted   (budget / engine error)
//!    │                       │          └──► aborted*  (evicted: cancelled, checkpointed)
//!    │                       └──► aborted* (evicted: swept at shutdown)
//!    └──► rejected  (full queue, draining, bad request, missing budget,
//!                    no worker pinned to the scheme class)
//! ```
//!
//! `aborted*` evictions carry a checkpoint when anything had run, so the
//! client can resubmit with `resume` and finish bit-identically.
//!
//! Workers are plain OS threads, each *pinned to one scheme class*
//! (numeric or algebraic) and owning one engine `Manager` at a time via
//! its job's `Simulator` — managers are `Send` (see aq-dd's
//! `send_audit`) but never shared. A worker survives anything a job does:
//! engine errors arrive as structured aborts from
//! [`run_job`](aq_sim::run_job), and a panic in the stack below is caught
//! and converted into an aborted outcome.

use std::collections::HashMap;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use aq_circuits::Circuit;
use aq_dd::EngineStatistics;
use aq_sim::{
    EngineSession, JobAbortInfo, JobOutcome, JobSpec, SchemeSpec, SessionConfig, SimOptions,
};

use crate::cache::{CacheKey, ResultCache, ResultCacheStats};
use crate::json::Json;
use crate::lockaudit::{DebugCondvar, DebugMutex, DebugMutexGuard};
use crate::metrics::{
    histogram_quantile_ms, Metrics, WorkerStats, LATENCY_BUCKETS, LATENCY_BUCKET_EDGES_US,
};
use crate::protocol::{Request, SubmitRequest};
use crate::queue::JobQueue;

/// The two families of weight systems a worker can be pinned to. Engine
/// managers are cheap per job, but the *working set* (gate caches, weight
/// table shapes) differs sharply between floats and bigint rings — the
/// pool keeps them on separate workers so an exact blow-up job cannot
/// stall the interactive numeric lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeClass {
    /// Tolerance-ε double-precision jobs.
    Numeric,
    /// Exact `Q[ω]` / `D[ω]` jobs.
    Algebraic,
}

impl SchemeClass {
    /// Number of classes (size of per-class arrays in the queue).
    pub const COUNT: usize = 2;

    /// Every class, in [`SchemeClass::index`] order.
    pub const ALL: [SchemeClass; SchemeClass::COUNT] =
        [SchemeClass::Numeric, SchemeClass::Algebraic];

    /// Dense index of this class, for per-class sub-queue arrays.
    pub const fn index(self) -> usize {
        match self {
            SchemeClass::Numeric => 0,
            SchemeClass::Algebraic => 1,
        }
    }

    /// The class a scheme belongs to.
    pub fn of(scheme: &SchemeSpec) -> SchemeClass {
        if scheme.is_algebraic() {
            SchemeClass::Algebraic
        } else {
            SchemeClass::Numeric
        }
    }

    /// Stable lowercase name.
    pub fn as_str(&self) -> &'static str {
        match self {
            SchemeClass::Numeric => "numeric",
            SchemeClass::Algebraic => "algebraic",
        }
    }

    /// Parses a pin-spec token.
    pub fn parse(s: &str) -> Option<SchemeClass> {
        match s {
            "numeric" => Some(SchemeClass::Numeric),
            "algebraic" => Some(SchemeClass::Algebraic),
            _ => None,
        }
    }
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker pins, one entry per worker thread.
    pub workers: Vec<SchemeClass>,
    /// Bound on queued (not yet running) jobs.
    pub queue_capacity: usize,
    /// Where per-job abort/eviction checkpoints are written.
    pub checkpoint_dir: PathBuf,
    /// Bound on memoized completed outcomes in the content-addressed
    /// result cache (`0` disables the cache).
    pub result_cache_capacity: usize,
    /// Per-worker session retention budget, in arena/unique-table slots
    /// (see [`aq_sim::SessionConfig::max_retained_capacity`]).
    pub session_max_retained_capacity: usize,
    /// Bound on simultaneously open TCP connections in the event loop;
    /// connections beyond it receive a structured error and are closed.
    pub max_connections: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: vec![SchemeClass::Numeric, SchemeClass::Algebraic],
            queue_capacity: 64,
            checkpoint_dir: std::env::temp_dir().join("aq-serve-checkpoints"),
            result_cache_capacity: 256,
            session_max_retained_capacity: SessionConfig::default().max_retained_capacity,
            max_connections: 128,
        }
    }
}

impl ServeConfig {
    /// `n` workers pinned alternately numeric, algebraic, numeric, … —
    /// the default mix for a general-purpose server.
    pub fn with_workers(n: usize) -> Self {
        ServeConfig {
            workers: (0..n.max(1))
                .map(|i| {
                    if i % 2 == 0 {
                        SchemeClass::Numeric
                    } else {
                        SchemeClass::Algebraic
                    }
                })
                .collect(),
            ..ServeConfig::default()
        }
    }
}

/// Lifecycle position of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// Inside a worker.
    Running,
    /// The whole circuit was applied.
    Completed,
    /// Stopped early (budget, engine error, or eviction).
    Aborted,
}

impl JobState {
    /// Stable lowercase name.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Aborted => "aborted",
        }
    }

    /// Whether the job will never change state again.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Completed | JobState::Aborted)
    }
}

/// Everything a worker needs to run one admitted job.
#[derive(Debug)]
struct JobWork {
    circuit: Circuit,
    start: u64,
    scheme: SchemeSpec,
    options: SimOptions,
    label: String,
    resume: Option<PathBuf>,
    top_k: usize,
}

/// Registry entry for one admitted job.
#[derive(Debug)]
struct JobRecord {
    state: JobState,
    label: String,
    scheme: String,
    priority: u8,
    submitted_at: Instant,
    outcome: Option<JobOutcome>,
    cancel: Arc<AtomicBool>,
    /// Result-cache key to fill on completion. `None` for resumed jobs
    /// (their outcome depends on checkpoint state the key cannot see) and
    /// for jobs that were themselves served from the cache.
    cache_key: Option<CacheKey>,
}

#[derive(Debug, Default)]
struct Registry {
    map: HashMap<u64, JobRecord>,
    /// Jobs admitted but not yet terminal (queued + running), maintained
    /// under this lock so drain/shutdown can wait race-free.
    pending: u64,
}

#[derive(Debug)]
struct Shared {
    cfg: ServeConfig,
    queue: JobQueue<JobWork>,
    registry: DebugMutex<Registry>,
    /// Signalled on every terminal transition (wait/drain listeners).
    terminal: DebugCondvar,
    next_id: AtomicU64,
    metrics: Metrics,
    /// Content-addressed memo of completed outcomes. Locked strictly
    /// *after* releasing the registry lock (never both at once).
    result_cache: DebugMutex<ResultCache>,
    /// Bumped on every terminal transition; the event loop re-polls its
    /// pending `wait` verbs only when this moves.
    completion_epoch: AtomicU64,
}

impl Shared {
    fn lock_registry(&self) -> DebugMutexGuard<'_, Registry> {
        self.registry.lock()
    }

    /// Moves a job to a terminal state and does every piece of
    /// bookkeeping that hangs off it.
    fn finish_job(&self, id: u64, outcome: JobOutcome) {
        let mut reg = self.lock_registry();
        let Some(rec) = reg.map.get_mut(&id) else {
            return;
        };
        if rec.state.is_terminal() {
            return;
        }
        let latency = rec.submitted_at.elapsed();
        let aborted = outcome.aborted.as_ref();
        rec.state = if aborted.is_none() {
            JobState::Completed
        } else {
            JobState::Aborted
        };
        match aborted {
            None => {
                self.metrics.completed.fetch_add(1, Ordering::Relaxed);
            }
            Some(info) => {
                self.metrics.aborted.fetch_add(1, Ordering::Relaxed);
                if info.evicted {
                    self.metrics.evicted.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        // A completed, non-resumed outcome with a key becomes a cache
        // fill — staged here and performed only after the registry lock
        // is released (lock-order discipline: never hold two locks).
        let fill = if outcome.aborted.is_none() && !outcome.resumed {
            rec.cache_key.take().map(|key| (key, outcome.clone()))
        } else {
            None
        };
        rec.outcome = Some(outcome);
        self.metrics.latency.record(latency);
        reg.pending = reg.pending.saturating_sub(1);
        drop(reg);
        if let Some((key, memo)) = fill {
            self.result_cache.lock().insert(key, memo);
        }
        self.completion_epoch.fetch_add(1, Ordering::Release);
        self.terminal.notify_all();
    }
}

/// A typed job status (what the `status`/`wait` verbs report).
#[derive(Debug, Clone)]
pub struct JobStatusReport {
    /// Job id.
    pub job: u64,
    /// Current lifecycle state.
    pub state: JobState,
    /// The job's checkpoint/report label.
    pub label: String,
    /// Scheme label (`numeric_eps…`, `qomega`, `gcd`).
    pub scheme: String,
    /// Queue priority it was admitted with.
    pub priority: u8,
    /// Terminal measurements (present once completed/aborted).
    pub outcome: Option<JobOutcome>,
}

/// One worker's row in the metrics report.
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// Worker index.
    pub worker: usize,
    /// Scheme class the worker is pinned to.
    pub class: SchemeClass,
    /// Aggregates over the jobs it ran.
    pub stats: WorkerStats,
}

/// A point-in-time metrics snapshot (the `metrics` verb).
#[derive(Debug, Clone)]
pub struct MetricsReport {
    /// Submit requests received (accepted + rejected).
    pub submitted: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs aborted (including evictions).
    pub aborted: u64,
    /// Submissions refused.
    pub rejected: u64,
    /// Evicted subset of `aborted`.
    pub evicted: u64,
    /// Jobs waiting in the queue right now.
    pub queue_depth: u64,
    /// Jobs inside workers right now.
    pub running: u64,
    /// Completed jobs answered from the result cache without queueing
    /// (subset of `completed`).
    pub cache_served: u64,
    /// Result-cache lifetime counters.
    pub cache: ResultCacheStats,
    /// Memoized outcomes currently stored.
    pub cache_entries: u64,
    /// Configured result-cache bound.
    pub cache_capacity: u64,
    /// TCP connections accepted by the event loop.
    pub connections_accepted: u64,
    /// Connections refused at the connection cap.
    pub connections_rejected: u64,
    /// Latency histogram bucket counts (edges in
    /// [`LATENCY_BUCKET_EDGES_US`], plus overflow).
    pub latency_counts: [u64; LATENCY_BUCKETS],
    /// Median latency upper bound, fractional ms.
    pub p50_ms: Option<f64>,
    /// 99th-percentile latency upper bound, fractional ms.
    pub p99_ms: Option<f64>,
    /// Per-worker aggregates.
    pub workers: Vec<WorkerReport>,
}

impl MetricsReport {
    /// The accounting identity the service guarantees at quiescence.
    pub fn reconciles(&self) -> bool {
        self.submitted == self.completed + self.aborted + self.rejected
            && self.queue_depth == 0
            && self.running == 0
    }
}

/// A typed response (rendered to one JSON line by [`Response::render`]).
#[derive(Debug, Clone)]
pub enum Response {
    /// Job admitted.
    Submitted {
        /// Assigned job id.
        job: u64,
    },
    /// Submission refused by admission control.
    Rejected {
        /// Why.
        reason: String,
    },
    /// Job status (from `status` or `wait`).
    Status(Box<JobStatusReport>),
    /// `status`/`wait` named a job the registry has never seen.
    UnknownJob {
        /// The id asked about.
        job: u64,
    },
    /// Metrics snapshot.
    Metrics(Box<MetricsReport>),
    /// Drain finished: admission stopped, everything terminal.
    Drained {
        /// Completed-job count at drain time.
        completed: u64,
        /// Aborted-job count at drain time.
        aborted: u64,
    },
    /// Shutdown finished: workers joined.
    ShutdownDone {
        /// Queued jobs swept out without running.
        evicted_queued: u64,
        /// Running jobs cancelled (checkpointed where possible).
        cancelled_running: u64,
    },
    /// Protocol-level failure (`ok:false`).
    Error {
        /// What went wrong.
        message: String,
    },
}

impl Response {
    /// Renders the response as one compact JSON line (no newline).
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    fn to_json(&self) -> Json {
        match self {
            Response::Submitted { job } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("verb", Json::str("submit")),
                ("job", Json::Num(*job as f64)),
                ("state", Json::str("queued")),
            ]),
            Response::Rejected { reason } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("verb", Json::str("submit")),
                ("state", Json::str("rejected")),
                ("reason", Json::str(reason.as_str())),
            ]),
            Response::Status(s) => {
                let mut pairs = vec![
                    ("ok", Json::Bool(true)),
                    ("verb", Json::str("status")),
                    ("job", Json::Num(s.job as f64)),
                    ("state", Json::str(s.state.as_str())),
                    ("label", Json::str(s.label.as_str())),
                    ("scheme", Json::str(s.scheme.as_str())),
                    ("priority", Json::Num(s.priority as f64)),
                ];
                if let Some(o) = &s.outcome {
                    pairs.push(("gates_applied", Json::Num(o.gates_applied as f64)));
                    pairs.push(("seconds", Json::Num(o.seconds)));
                    pairs.push(("final_nodes", Json::Num(o.final_nodes as f64)));
                    pairs.push(("resumed", Json::Bool(o.resumed)));
                    pairs.push(("cache_hit_rate", Json::Num(o.statistics.cache_hit_rate())));
                    pairs.push((
                        "top",
                        Json::Arr(
                            o.top_probabilities
                                .iter()
                                .map(|(i, p)| Json::Arr(vec![Json::Num(*i as f64), Json::Num(*p)]))
                                .collect(),
                        ),
                    ));
                    if let Some(a) = &o.aborted {
                        pairs.push(("reason", Json::str(a.reason.as_str())));
                        pairs.push(("evicted", Json::Bool(a.evicted)));
                        pairs.push((
                            "checkpoint",
                            match &a.checkpoint {
                                Some(p) => Json::str(p.display().to_string()),
                                None => Json::Null,
                            },
                        ));
                    }
                }
                Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
            }
            Response::UnknownJob { job } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("verb", Json::str("status")),
                ("job", Json::Num(*job as f64)),
                ("state", Json::str("unknown")),
            ]),
            Response::Metrics(m) => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("verb", Json::str("metrics")),
                ("submitted", Json::Num(m.submitted as f64)),
                ("completed", Json::Num(m.completed as f64)),
                ("aborted", Json::Num(m.aborted as f64)),
                ("rejected", Json::Num(m.rejected as f64)),
                ("evicted", Json::Num(m.evicted as f64)),
                ("queue_depth", Json::Num(m.queue_depth as f64)),
                ("running", Json::Num(m.running as f64)),
                (
                    "result_cache",
                    Json::obj(vec![
                        ("served", Json::Num(m.cache_served as f64)),
                        ("hits", Json::Num(m.cache.hits as f64)),
                        ("misses", Json::Num(m.cache.misses as f64)),
                        ("insertions", Json::Num(m.cache.insertions as f64)),
                        ("evictions", Json::Num(m.cache.evictions as f64)),
                        ("hit_rate", Json::Num(m.cache.hit_rate())),
                        ("entries", Json::Num(m.cache_entries as f64)),
                        ("capacity", Json::Num(m.cache_capacity as f64)),
                    ]),
                ),
                (
                    "connections",
                    Json::obj(vec![
                        ("accepted", Json::Num(m.connections_accepted as f64)),
                        ("rejected", Json::Num(m.connections_rejected as f64)),
                    ]),
                ),
                (
                    "latency_ms",
                    Json::obj(vec![
                        (
                            "bucket_edges",
                            Json::Arr(
                                LATENCY_BUCKET_EDGES_US
                                    .iter()
                                    .map(|&e| Json::Num(e as f64 / 1_000.0))
                                    .collect(),
                            ),
                        ),
                        (
                            "counts",
                            Json::Arr(
                                m.latency_counts
                                    .iter()
                                    .map(|&c| Json::Num(c as f64))
                                    .collect(),
                            ),
                        ),
                        ("p50", m.p50_ms.map(Json::Num).unwrap_or(Json::Null)),
                        ("p99", m.p99_ms.map(Json::Num).unwrap_or(Json::Null)),
                    ]),
                ),
                (
                    "workers",
                    Json::Arr(
                        m.workers
                            .iter()
                            .map(|w| {
                                Json::obj(vec![
                                    ("worker", Json::Num(w.worker as f64)),
                                    ("class", Json::str(w.class.as_str())),
                                    ("jobs", Json::Num(w.stats.jobs as f64)),
                                    ("busy_seconds", Json::Num(w.stats.busy_seconds)),
                                    ("cache_hit_rate", Json::Num(w.stats.engine.cache_hit_rate())),
                                    (
                                        "nodes_allocated",
                                        Json::Num(
                                            (w.stats.engine.vec_nodes + w.stats.engine.mat_nodes)
                                                as f64,
                                        ),
                                    ),
                                    ("compactions", Json::Num(w.stats.engine.compactions as f64)),
                                    ("warm_reuses", Json::Num(w.stats.warm_reuses as f64)),
                                    ("session_shrinks", Json::Num(w.stats.session_shrinks as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::Drained { completed, aborted } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("verb", Json::str("drain")),
                ("state", Json::str("drained")),
                ("completed", Json::Num(*completed as f64)),
                ("aborted", Json::Num(*aborted as f64)),
            ]),
            Response::ShutdownDone {
                evicted_queued,
                cancelled_running,
            } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("verb", Json::str("shutdown")),
                ("state", Json::str("stopped")),
                ("evicted_queued", Json::Num(*evicted_queued as f64)),
                ("cancelled_running", Json::Num(*cancelled_running as f64)),
            ]),
            Response::Error { message } => Json::obj(vec![
                ("ok", Json::Bool(false)),
                ("error", Json::str(message.as_str())),
            ]),
        }
    }
}

/// The running service: queue, registry, metrics and the worker pool.
///
/// Construct with [`ServeCore::start`], talk to it with
/// [`ServeCore::handle`] (directly, through the in-process
/// [`Client`](crate::Client), or via the TCP
/// [`Server`](crate::Server)), and stop it with the `Shutdown` request.
#[derive(Debug)]
pub struct ServeCore {
    shared: Arc<Shared>,
    handles: DebugMutex<Vec<JoinHandle<()>>>,
}

impl ServeCore {
    /// Starts the worker pool and returns the core.
    ///
    /// # Errors
    ///
    /// [`io::Error`] if a worker thread cannot be spawned (the OS is out
    /// of threads); any workers already started are shut down again.
    pub fn start(cfg: ServeConfig) -> io::Result<Arc<ServeCore>> {
        std::fs::create_dir_all(&cfg.checkpoint_dir).ok();
        let workers = cfg.workers.clone();
        let shared = Arc::new(Shared {
            queue: JobQueue::new(cfg.queue_capacity),
            metrics: Metrics::new(workers.len()),
            registry: DebugMutex::new("serve.registry", Registry::default()),
            terminal: DebugCondvar::new(),
            next_id: AtomicU64::new(1),
            result_cache: DebugMutex::new(
                "serve.result_cache",
                ResultCache::new(cfg.result_cache_capacity),
            ),
            completion_epoch: AtomicU64::new(0),
            cfg,
        });
        let mut handles = Vec::with_capacity(workers.len());
        for (idx, &class) in workers.iter().enumerate() {
            let worker_shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("aq-serve-worker-{idx}"))
                .spawn(move || worker_loop(worker_shared, idx, class));
            match spawned {
                Ok(h) => handles.push(h),
                Err(e) => {
                    shared.queue.close();
                    for h in handles {
                        h.join().ok();
                    }
                    return Err(e);
                }
            }
        }
        Ok(Arc::new(ServeCore {
            shared,
            handles: DebugMutex::new("serve.handles", handles),
        }))
    }

    /// The configuration the core was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.cfg
    }

    /// Handles one request to a terminal response. `Wait`, `Drain` and
    /// `Shutdown` block the calling thread (that is their contract).
    pub fn handle(&self, request: Request) -> Response {
        match request {
            Request::Submit(submit) => self.submit(*submit),
            Request::Status { job } => self.status(job),
            Request::Wait { job, timeout } => self.wait(job, timeout),
            Request::Metrics => Response::Metrics(Box::new(self.metrics_report())),
            Request::Drain => self.drain(),
            Request::Shutdown => self.shutdown(),
        }
    }

    fn submit(&self, req: SubmitRequest) -> Response {
        let shared = &self.shared;
        shared.metrics.submitted.fetch_add(1, Ordering::Relaxed);
        let reject = |reason: String| {
            shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            Response::Rejected { reason }
        };

        // Admission control, cheapest checks first.
        if req.budget.is_unlimited() {
            return reject(
                "a resource budget is mandatory: set budget.max_nodes, budget.max_weights, \
                 budget.max_bits and/or budget.deadline_secs"
                    .into(),
            );
        }
        let class = SchemeClass::of(&req.scheme);
        if !shared.cfg.workers.contains(&class) {
            return reject(format!(
                "no worker is pinned to the {} scheme class on this server",
                class.as_str()
            ));
        }
        let (circuit, start) = match req.circuit.build() {
            Ok(pair) => pair,
            Err(reason) => return reject(reason),
        };

        // Content-addressed short-circuit: a repeated submission of work
        // the cache has already seen completes immediately — before the
        // queue, so a hit succeeds even while the queue is full. Resumed
        // jobs are never cacheable (their result depends on checkpoint
        // state the key cannot address).
        let cache_key = if req.resume.is_none() {
            Some(CacheKey::new(
                &circuit,
                start,
                &req.scheme,
                req.top_k,
                &req.budget,
            ))
        } else {
            None
        };
        let memoized = cache_key
            .as_ref()
            .and_then(|key| shared.result_cache.lock().get(key));

        let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
        let label = format!("{}/{}", req.circuit.label(), req.scheme.label());

        if let Some(outcome) = memoized {
            shared.metrics.cache_served.fetch_add(1, Ordering::Relaxed);
            let record = JobRecord {
                state: JobState::Queued,
                label,
                scheme: req.scheme.label(),
                priority: req.priority,
                submitted_at: Instant::now(),
                outcome: None,
                cancel: Arc::new(AtomicBool::new(false)),
                cache_key: None, // already cached; don't re-insert
            };
            {
                let mut reg = shared.lock_registry();
                reg.map.insert(id, record);
                reg.pending += 1;
            }
            // Completes through the normal terminal path so every counter
            // and the latency histogram (sub-ms buckets) see it.
            shared.finish_job(id, outcome);
            return Response::Submitted { job: id };
        }
        let work = JobWork {
            circuit,
            start,
            scheme: req.scheme.clone(),
            options: SimOptions {
                record_trace: false,
                budget: req.budget,
                checkpoint_on_abort: Some(
                    shared.cfg.checkpoint_dir.join(format!("job-{id}.aqckp")),
                ),
                ..SimOptions::default()
            },
            label: label.clone(),
            resume: req.resume.clone(),
            top_k: req.top_k,
        };
        let record = JobRecord {
            state: JobState::Queued,
            label,
            scheme: req.scheme.label(),
            priority: req.priority,
            submitted_at: Instant::now(),
            outcome: None,
            cancel: Arc::new(AtomicBool::new(false)),
            cache_key,
        };

        // Insert the record before queueing so a fast worker always finds
        // it; roll both back if the queue refuses.
        {
            let mut reg = shared.lock_registry();
            reg.map.insert(id, record);
            reg.pending += 1;
        }
        if let Err(e) = shared.queue.push(id, req.priority, class, work) {
            let mut reg = shared.lock_registry();
            reg.map.remove(&id);
            reg.pending = reg.pending.saturating_sub(1);
            drop(reg);
            return reject(e.to_string());
        }
        Response::Submitted { job: id }
    }

    fn status(&self, job: u64) -> Response {
        let reg = self.shared.lock_registry();
        match reg.map.get(&job) {
            None => Response::UnknownJob { job },
            Some(rec) => Response::Status(Box::new(JobStatusReport {
                job,
                state: rec.state,
                label: rec.label.clone(),
                scheme: rec.scheme.clone(),
                priority: rec.priority,
                outcome: rec.outcome.clone(),
            })),
        }
    }

    fn wait(&self, job: u64, timeout: Duration) -> Response {
        let deadline = Instant::now() + timeout;
        let mut reg = self.shared.lock_registry();
        loop {
            match reg.map.get(&job) {
                None => return Response::UnknownJob { job },
                Some(rec) if rec.state.is_terminal() => {
                    return Response::Status(Box::new(JobStatusReport {
                        job,
                        state: rec.state,
                        label: rec.label.clone(),
                        scheme: rec.scheme.clone(),
                        priority: rec.priority,
                        outcome: rec.outcome.clone(),
                    }))
                }
                Some(_) => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return Response::Error {
                    message: format!("timed out waiting for job {job}"),
                };
            }
            let (guard, _) = self.shared.terminal.wait_timeout(reg, deadline - now);
            reg = guard;
        }
    }

    /// Assembles a metrics snapshot.
    pub fn metrics_report(&self) -> MetricsReport {
        let shared = &self.shared;
        let latency_counts = shared.metrics.latency.counts();
        let workers = shared
            .metrics
            .workers
            .lock()
            .iter()
            .cloned()
            .enumerate()
            .map(|(worker, stats)| WorkerReport {
                worker,
                class: shared.cfg.workers[worker],
                stats,
            })
            .collect();
        let (cache, cache_entries) = {
            let c = shared.result_cache.lock();
            (c.stats(), c.len() as u64)
        };
        MetricsReport {
            submitted: shared.metrics.submitted.load(Ordering::Relaxed),
            completed: shared.metrics.completed.load(Ordering::Relaxed),
            aborted: shared.metrics.aborted.load(Ordering::Relaxed),
            rejected: shared.metrics.rejected.load(Ordering::Relaxed),
            evicted: shared.metrics.evicted.load(Ordering::Relaxed),
            queue_depth: shared.queue.len() as u64,
            running: shared.metrics.running.load(Ordering::Relaxed),
            cache_served: shared.metrics.cache_served.load(Ordering::Relaxed),
            cache,
            cache_entries,
            cache_capacity: shared.cfg.result_cache_capacity as u64,
            connections_accepted: shared.metrics.connections_accepted.load(Ordering::Relaxed),
            connections_rejected: shared.metrics.connections_rejected.load(Ordering::Relaxed),
            p50_ms: histogram_quantile_ms(&latency_counts, 0.50),
            p99_ms: histogram_quantile_ms(&latency_counts, 0.99),
            latency_counts,
            workers,
        }
    }

    fn drain(&self) -> Response {
        self.begin_drain();
        loop {
            {
                let mut reg = self.shared.lock_registry();
                while reg.pending > 0 {
                    reg = self.shared.terminal.wait(reg);
                }
            }
            // The queue is closed, so pending cannot rise again; the poll
            // succeeds on the first pass in practice and the loop is only
            // belt-and-braces against a re-check racing the unlock.
            if let Some(resp) = self.try_drain() {
                return resp;
            }
        }
    }

    fn shutdown(&self) -> Response {
        let (evicted_queued, cancelled_running) = self.begin_shutdown();
        loop {
            {
                let mut reg = self.shared.lock_registry();
                while reg.pending > 0 {
                    reg = self.shared.terminal.wait(reg);
                }
            }
            if let Some(resp) = self.try_complete_shutdown(evicted_queued, cancelled_running) {
                return resp;
            }
        }
    }

    // ---- non-blocking verb surface (event loop) -------------------------
    //
    // The TCP event loop cannot park a thread per slow verb, so the three
    // blocking verbs split into begin/poll pairs: `begin_*` performs the
    // state transition, `try_*`/`poll_*` checks for completion without
    // blocking. The loop re-polls when [`ServeCore::completion_epoch`]
    // moves.

    /// The terminal-transition counter; changes whenever a pending `wait`,
    /// `drain` or `shutdown` poll might newly succeed.
    pub fn completion_epoch(&self) -> u64 {
        self.shared.completion_epoch.load(Ordering::Acquire)
    }

    /// Non-blocking `wait` poll: the status once the job is terminal (or
    /// unknown), `None` while it is still in flight.
    pub fn poll_wait(&self, job: u64) -> Option<Response> {
        let reg = self.shared.lock_registry();
        match reg.map.get(&job) {
            None => Some(Response::UnknownJob { job }),
            Some(rec) if rec.state.is_terminal() => {
                Some(Response::Status(Box::new(JobStatusReport {
                    job,
                    state: rec.state,
                    label: rec.label.clone(),
                    scheme: rec.scheme.clone(),
                    priority: rec.priority,
                    outcome: rec.outcome.clone(),
                })))
            }
            Some(_) => None,
        }
    }

    /// Starts a drain: closes admission and aborts *stranded* queued jobs
    /// — jobs whose scheme class has no pinned worker, which would
    /// otherwise leave the drain waiting forever. (Admission normally
    /// prevents them; this is the fail-safe the drain contract needs.)
    pub fn begin_drain(&self) {
        let shared = &self.shared;
        shared.queue.close();
        let stranded = shared
            .queue
            .evict_unmatched(|class| shared.cfg.workers.contains(&class));
        for q in stranded {
            shared.finish_job(
                q.id,
                evicted_outcome("evicted: drain found no worker pinned to the job's scheme class"),
            );
        }
    }

    /// Non-blocking drain poll; call after [`ServeCore::begin_drain`].
    pub fn try_drain(&self) -> Option<Response> {
        let shared = &self.shared;
        if shared.lock_registry().pending > 0 {
            return None;
        }
        Some(Response::Drained {
            completed: shared.metrics.completed.load(Ordering::Relaxed),
            aborted: shared.metrics.aborted.load(Ordering::Relaxed),
        })
    }

    /// Starts a shutdown: closes admission, sweeps out every queued job,
    /// and cancels what is running (each job checkpoints itself). Returns
    /// `(evicted_queued, cancelled_running)` for the final response.
    pub fn begin_shutdown(&self) -> (u64, u64) {
        let shared = &self.shared;
        shared.queue.close();
        let evicted = shared.queue.evict_all();
        let evicted_queued = evicted.len() as u64;
        for q in evicted {
            shared.finish_job(
                q.id,
                evicted_outcome("evicted: shutdown before the job started (resubmit to rerun)"),
            );
        }
        let cancelled_running = {
            let reg = shared.lock_registry();
            let mut n = 0;
            for rec in reg.map.values() {
                if rec.state == JobState::Running {
                    rec.cancel.store(true, Ordering::Relaxed);
                    n += 1;
                }
            }
            n
        };
        (evicted_queued, cancelled_running)
    }

    /// Non-blocking shutdown poll; call after [`ServeCore::begin_shutdown`]
    /// with its counts. Joins the (now idle) worker pool on success.
    pub fn try_complete_shutdown(
        &self,
        evicted_queued: u64,
        cancelled_running: u64,
    ) -> Option<Response> {
        if self.shared.lock_registry().pending > 0 {
            return None;
        }
        let handles = std::mem::take(&mut *self.handles.lock());
        crate::lockaudit::blocking_op("join worker pool");
        for h in handles {
            let _ = h.join();
        }
        Some(Response::ShutdownDone {
            evicted_queued,
            cancelled_running,
        })
    }

    /// Counts one accepted TCP connection (event-loop bookkeeping).
    pub fn note_connection_accepted(&self) {
        self.shared
            .metrics
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one refused TCP connection (cap reached or accept failed).
    pub fn note_connection_rejected(&self) {
        self.shared
            .metrics
            .connections_rejected
            .fetch_add(1, Ordering::Relaxed);
    }
}

/// The zero-work aborted outcome drain/shutdown sweeps use.
fn evicted_outcome(reason: &str) -> JobOutcome {
    JobOutcome {
        gates_applied: 0,
        seconds: 0.0,
        final_nodes: 0,
        statistics: EngineStatistics::default(),
        top_probabilities: Vec::new(),
        resumed: false,
        aborted: Some(JobAbortInfo {
            reason: reason.into(),
            checkpoint: None,
            evicted: true,
        }),
    }
}

fn worker_loop(shared: Arc<Shared>, worker_idx: usize, class: SchemeClass) {
    // The worker's persistent engine session: one warm `Manager` per
    // scheme kind, budget-reset between jobs and reused across them, so
    // steady-state jobs pay no arena/table (re)allocation. A panicking
    // job leaves its slot empty (the next job starts cold) — the session
    // itself survives.
    let mut session = EngineSession::new(SessionConfig {
        max_retained_capacity: shared.cfg.session_max_retained_capacity,
    });
    while let Some(qjob) = shared.queue.pop(class) {
        let cancel = {
            let mut reg = shared.lock_registry();
            let Some(rec) = reg.map.get_mut(&qjob.id) else {
                continue; // record vanished (never happens; stay alive anyway)
            };
            rec.state = JobState::Running;
            Arc::clone(&rec.cancel)
        };
        shared.metrics.running.fetch_add(1, Ordering::Relaxed);

        let work = &qjob.payload;
        let spec = JobSpec {
            circuit: &work.circuit,
            start: work.start,
            scheme: work.scheme.clone(),
            options: work.options.clone(),
            label: work.label.clone(),
            resume: work.resume.clone(),
            top_k: work.top_k,
        };
        // The last line of the never-lose-a-worker defence: session.run is
        // fail-soft by design, but if anything underneath it ever panics
        // the panic is converted into an aborted outcome here.
        let outcome = match catch_unwind(AssertUnwindSafe(|| session.run(&spec, Some(&cancel)))) {
            Ok(outcome) => outcome,
            Err(payload) => JobOutcome {
                gates_applied: 0,
                seconds: 0.0,
                final_nodes: 0,
                statistics: EngineStatistics::default(),
                top_probabilities: Vec::new(),
                resumed: false,
                aborted: Some(JobAbortInfo {
                    reason: format!("internal error: job panicked: {}", panic_message(&payload)),
                    checkpoint: None,
                    evicted: false,
                }),
            },
        };
        shared.metrics.record_worker_job(
            worker_idx,
            &outcome.statistics,
            outcome.seconds,
            session.stats(),
        );
        shared.metrics.running.fetch_sub(1, Ordering::Relaxed);
        shared.finish_job(qjob.id, outcome);
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("<non-string panic payload>")
}
