//! Clients: an in-process handle for tests/benchmarks and a TCP line
//! client for the CLI.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use crate::backoff::{self, Backoff};
use crate::protocol::{Request, SubmitRequest, MAX_FRAME_BYTES};
use crate::service::{MetricsReport, Response, ServeCore};

/// How a client resubmits after transient failures: capped jittered
/// exponential backoff, also honouring any `retry_after_ms` hint the
/// server attached (whichever is longer wins).
///
/// Resubmission is idempotent by construction: a completed job's outcome
/// lands in the server's content-addressed result cache, so a retry of
/// work that actually finished is served bit-identically from the cache
/// instead of running twice.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, the first try included (`1` = no retries).
    pub max_attempts: u32,
    /// Nominal first retry delay (jittered to `[d/2, d)`).
    pub base: Duration,
    /// Nominal retry delay cap.
    pub cap: Duration,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed: 0xC11E_4275,
        }
    }
}

/// `Some(server_hint_ms)` when the response is worth retrying: a
/// rejection carrying `retry_after_ms` (class unhealthy, queue full,
/// deadline-shed) or a job aborted with a `transient:` reason (its
/// worker died mid-job; the job itself was fine). Permanent refusals
/// and genuine outcomes return `None`.
fn retry_hint_ms(response: &Response) -> Option<u64> {
    match response {
        Response::Rejected {
            retry_after_ms: Some(ms),
            ..
        } => Some(*ms),
        Response::Status(s) => s
            .outcome
            .as_ref()
            .and_then(|o| o.aborted.as_ref())
            .filter(|a| a.reason.starts_with("transient:"))
            .map(|_| 0),
        _ => None,
    }
}

/// An in-process client: the same request/response surface as the wire,
/// minus serialization. This is what the integration tests and the load
/// benchmark use, so the service semantics are exercised identically
/// with and without TCP in the middle.
#[derive(Debug, Clone)]
pub struct Client {
    core: Arc<ServeCore>,
}

impl Client {
    /// Wraps a running core.
    pub fn new(core: Arc<ServeCore>) -> Client {
        Client { core }
    }

    /// Sends any request.
    pub fn request(&self, request: Request) -> Response {
        self.core.handle(request)
    }

    /// Submits a job.
    pub fn submit(&self, submit: SubmitRequest) -> Response {
        self.core.handle(Request::Submit(Box::new(submit)))
    }

    /// Queries a job's state.
    pub fn status(&self, job: u64) -> Response {
        self.core.handle(Request::Status { job })
    }

    /// Blocks until the job is terminal (or the timeout).
    pub fn wait(&self, job: u64, timeout: Duration) -> Response {
        self.core.handle(Request::Wait { job, timeout })
    }

    /// Fetches a metrics snapshot.
    pub fn metrics(&self) -> MetricsReport {
        self.core.metrics_report()
    }

    /// Runs one job to a terminal state with idempotent resubmission:
    /// submit, wait, and — when the response is a retryable refusal or a
    /// `transient:` abort (worker death) — back off and resubmit, up to
    /// `policy.max_attempts` tries. Returns the last response (a terminal
    /// `Status`, a permanent `Rejected`, or whatever the final attempt
    /// produced when the attempts ran out).
    pub fn run_with_retry(
        &self,
        submit: &SubmitRequest,
        wait_timeout: Duration,
        policy: &RetryPolicy,
    ) -> Response {
        let mut delays = Backoff::new(policy.base, policy.cap, policy.seed);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let response = match self.submit(submit.clone()) {
                Response::Submitted { job } => self.wait(job, wait_timeout),
                other => other,
            };
            let hint_ms = match retry_hint_ms(&response) {
                Some(ms) if attempt < policy.max_attempts.max(1) => ms,
                _ => return response,
            };
            backoff::sleep(delays.next_delay().max(Duration::from_millis(hint_ms)));
        }
    }

    /// Stops admission and waits for in-flight jobs.
    pub fn drain(&self) -> Response {
        self.core.handle(Request::Drain)
    }

    /// Stops the service (evicting/cancelling as documented on the
    /// `Shutdown` request).
    pub fn shutdown(&self) -> Response {
        self.core.handle(Request::Shutdown)
    }
}

/// A blocking TCP client speaking the line protocol.
#[derive(Debug)]
pub struct TcpClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl TcpClient {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(TcpClient {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Sends one raw request line and reads one response line.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; an oversized or missing response line is
    /// reported as [`io::ErrorKind::InvalidData`] /
    /// [`io::ErrorKind::UnexpectedEof`].
    pub fn roundtrip(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_line()
    }

    /// Reads one response line (without sending anything).
    ///
    /// # Errors
    ///
    /// As for [`TcpClient::roundtrip`].
    pub fn read_line(&mut self) -> io::Result<String> {
        let mut buf = Vec::new();
        let mut limited = (&mut self.reader).take((MAX_FRAME_BYTES + 1) as u64);
        limited.read_until(b'\n', &mut buf)?;
        if buf.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        if buf.len() > MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "response frame too large",
            ));
        }
        while buf.last() == Some(&b'\n') || buf.last() == Some(&b'\r') {
            buf.pop();
        }
        String::from_utf8(buf)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response is not UTF-8"))
    }

    /// Sends raw bytes verbatim (fault-injection tests use this to send
    /// deliberately broken frames).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Half-closes the write side, signalling EOF to the server while
    /// keeping the read side open for its final response.
    ///
    /// # Errors
    ///
    /// Propagates the socket shutdown failure.
    pub fn shutdown_write(&mut self) -> io::Result<()> {
        self.writer.shutdown(std::net::Shutdown::Write)
    }
}
