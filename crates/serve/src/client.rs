//! Clients: an in-process handle for tests/benchmarks and a TCP line
//! client for the CLI.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use crate::protocol::{Request, SubmitRequest, MAX_FRAME_BYTES};
use crate::service::{MetricsReport, Response, ServeCore};

/// An in-process client: the same request/response surface as the wire,
/// minus serialization. This is what the integration tests and the load
/// benchmark use, so the service semantics are exercised identically
/// with and without TCP in the middle.
#[derive(Debug, Clone)]
pub struct Client {
    core: Arc<ServeCore>,
}

impl Client {
    /// Wraps a running core.
    pub fn new(core: Arc<ServeCore>) -> Client {
        Client { core }
    }

    /// Sends any request.
    pub fn request(&self, request: Request) -> Response {
        self.core.handle(request)
    }

    /// Submits a job.
    pub fn submit(&self, submit: SubmitRequest) -> Response {
        self.core.handle(Request::Submit(Box::new(submit)))
    }

    /// Queries a job's state.
    pub fn status(&self, job: u64) -> Response {
        self.core.handle(Request::Status { job })
    }

    /// Blocks until the job is terminal (or the timeout).
    pub fn wait(&self, job: u64, timeout: Duration) -> Response {
        self.core.handle(Request::Wait { job, timeout })
    }

    /// Fetches a metrics snapshot.
    pub fn metrics(&self) -> MetricsReport {
        self.core.metrics_report()
    }

    /// Stops admission and waits for in-flight jobs.
    pub fn drain(&self) -> Response {
        self.core.handle(Request::Drain)
    }

    /// Stops the service (evicting/cancelling as documented on the
    /// `Shutdown` request).
    pub fn shutdown(&self) -> Response {
        self.core.handle(Request::Shutdown)
    }
}

/// A blocking TCP client speaking the line protocol.
#[derive(Debug)]
pub struct TcpClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl TcpClient {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(TcpClient {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Sends one raw request line and reads one response line.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; an oversized or missing response line is
    /// reported as [`io::ErrorKind::InvalidData`] /
    /// [`io::ErrorKind::UnexpectedEof`].
    pub fn roundtrip(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_line()
    }

    /// Reads one response line (without sending anything).
    ///
    /// # Errors
    ///
    /// As for [`TcpClient::roundtrip`].
    pub fn read_line(&mut self) -> io::Result<String> {
        let mut buf = Vec::new();
        let mut limited = (&mut self.reader).take((MAX_FRAME_BYTES + 1) as u64);
        limited.read_until(b'\n', &mut buf)?;
        if buf.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        if buf.len() > MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "response frame too large",
            ));
        }
        while buf.last() == Some(&b'\n') || buf.last() == Some(&b'\r') {
            buf.pop();
        }
        String::from_utf8(buf)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response is not UTF-8"))
    }

    /// Sends raw bytes verbatim (fault-injection tests use this to send
    /// deliberately broken frames).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Half-closes the write side, signalling EOF to the server while
    /// keeping the read side open for its final response.
    ///
    /// # Errors
    ///
    /// Propagates the socket shutdown failure.
    pub fn shutdown_write(&mut self) -> io::Result<()> {
        self.writer.shutdown(std::net::Shutdown::Write)
    }
}
