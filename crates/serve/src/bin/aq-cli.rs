//! `aq-cli` — a thin command-line client for `aq-served`.
//!
//! ```text
//! aq-cli --addr=HOST:PORT submit --circuit=grover --n=6 --marked=5
//!        [--scheme=numeric|qomega|gcd] [--eps=1e-10] [--priority=0..9]
//!        [--max-nodes=N] [--max-weights=N] [--max-bits=N]
//!        [--deadline-secs=S] [--resume=PATH] [--top-k=K] [--wait=SECS]
//!        [--retries=N]
//! aq-cli --addr=HOST:PORT sample <submit flags except --resume>
//!        [--shots=N] [--seed=S]
//! aq-cli --addr=HOST:PORT status --job=ID
//! aq-cli --addr=HOST:PORT wait --job=ID [--timeout=SECS]
//! aq-cli --addr=HOST:PORT metrics | drain | shutdown
//! ```
//!
//! `sample` submits a seeded shot-sampling job: the response's terminal
//! status carries a `"sample"` object with the bitstring histogram
//! (`counts` as `[basis index, hits]` pairs summing to `shots`) and the
//! per-outcome probabilities — exact strings included under algebraic
//! schemes. Equal seeds give bit-identical histograms.
//!
//! Prints the server's JSON response line(s) on stdout. Exit status is 0
//! when every response had `"ok":true`, 1 otherwise (a *rejected*
//! submission or *aborted* job is still `ok:true` — inspect `state`).
//!
//! `submit --retries=N` (implies `--wait`) resubmits up to N extra times
//! on retryable failures — a rejection carrying `retry_after_ms`, a
//! `transient:` abort (the worker died mid-job), or a dropped connection
//! — with capped exponential backoff honouring the server's hint. Every
//! attempt's response lines are printed; the exit status reflects the
//! final attempt.

use std::collections::HashMap;
use std::time::Duration;

use aq_serve::{Backoff, Json, TcpClient};

fn usage() -> ! {
    eprintln!(
        "usage: aq-cli --addr=HOST:PORT <submit|sample|status|wait|metrics|drain|shutdown> [flags]\n\
         see `aq-cli --help` in the README \"Serving\" section for flag details"
    );
    std::process::exit(2);
}

fn flag_map(args: &[String]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    for a in args {
        let Some(rest) = a.strip_prefix("--") else {
            usage();
        };
        match rest.split_once('=') {
            Some((k, v)) => map.insert(k.to_string(), v.to_string()),
            None => map.insert(rest.to_string(), String::new()),
        };
    }
    map
}

fn num_field(map: &HashMap<String, String>, key: &str) -> Option<(String, Json)> {
    map.get(key).map(|v| {
        let n: f64 = v.parse().unwrap_or_else(|_| {
            eprintln!("aq-cli: --{key} expects a number, got {v:?}");
            std::process::exit(2);
        });
        (key.replace('-', "_"), Json::Num(n))
    })
}

fn build_submit(map: &HashMap<String, String>, verb: &str) -> String {
    let mut pairs: Vec<(String, Json)> = vec![("verb".into(), Json::str(verb))];
    match map.get("qasm-file") {
        Some(path) => {
            let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("aq-cli: cannot read {path}: {e}");
                std::process::exit(2);
            });
            pairs.push(("qasm".into(), Json::str(src)));
        }
        None => {
            let circuit = map.get("circuit").unwrap_or_else(|| usage());
            pairs.push(("circuit".into(), Json::str(circuit.as_str())));
            for key in [
                "n",
                "marked",
                "height",
                "steps",
                "seed",
                "precision-bits",
                "trotter-slices",
            ] {
                if let Some(p) = num_field(map, key) {
                    pairs.push(p);
                }
            }
        }
    }
    if let Some(s) = map.get("scheme") {
        pairs.push(("scheme".into(), Json::str(s.as_str())));
    }
    for key in ["eps", "priority", "top-k"] {
        if let Some((k, v)) = num_field(map, key) {
            pairs.push((if k == "top_k" { "top_k".into() } else { k }, v));
        }
    }
    if let Some(r) = map.get("resume") {
        pairs.push(("resume".into(), Json::str(r.as_str())));
    }
    if verb == "sample" {
        for key in ["shots", "seed"] {
            if !pairs.iter().any(|(k, _)| k == key) {
                if let Some(p) = num_field(map, key) {
                    pairs.push(p);
                }
            }
        }
    }
    let budget: Vec<(String, Json)> = ["max-nodes", "max-weights", "max-bits", "deadline-secs"]
        .iter()
        .filter_map(|k| num_field(map, k))
        .collect();
    pairs.push(("budget".into(), Json::Obj(budget)));
    Json::Obj(pairs).render()
}

/// One submit+wait exchange on a fresh connection. Returns the wait
/// response (or the submit response when there was no job to wait on),
/// printing every line as it arrives.
fn submit_once(addr: &str, line: &str, wait_secs: f64) -> std::io::Result<Json> {
    let mut client = TcpClient::connect(addr)?;
    let response = client.roundtrip(line)?;
    println!("{response}");
    let parsed = Json::parse(&response)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let Some(job) = parsed.get("job").and_then(Json::as_u64) else {
        return Ok(parsed); // rejected: no job to wait on
    };
    let wait = Json::obj(vec![
        ("verb", Json::str("wait")),
        ("job", Json::Num(job as f64)),
        ("timeout_secs", Json::Num(wait_secs)),
    ])
    .render();
    let response = client.roundtrip(&wait)?;
    println!("{response}");
    Json::parse(&response)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// `Some(server_hint_ms)` when the exchange is worth retrying: a
/// rejection with a `retry_after_ms` hint or a `transient:` abort.
fn retry_hint_ms(response: &Json) -> Option<u64> {
    if response.get("state").and_then(Json::as_str) == Some("rejected") {
        return response.get("retry_after_ms").and_then(Json::as_u64);
    }
    if response.get("state").and_then(Json::as_str) == Some("aborted")
        && response
            .get("reason")
            .and_then(Json::as_str)
            .is_some_and(|r| r.starts_with("transient:"))
    {
        return Some(0);
    }
    None
}

/// The `--retries=N` loop: submit+wait on a fresh connection per
/// attempt, backing off (and honouring the server's hint) between
/// retryable failures. Exits the process with the final attempt's
/// status.
fn submit_with_retries(addr: &str, line: &str, wait_secs: f64, retries: u32) -> ! {
    let mut delays = Backoff::new(Duration::from_millis(50), Duration::from_secs(2), 0xC11);
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let hint = match submit_once(addr, line, wait_secs) {
            Ok(response) => {
                if retry_hint_ms(&response).is_none() {
                    let ok = response.get("ok").and_then(Json::as_bool).unwrap_or(false);
                    std::process::exit(if ok { 0 } else { 1 });
                }
                retry_hint_ms(&response).unwrap_or(0)
            }
            // A dropped connection (the server was mid-restart, or our
            // worker died while we waited) is itself transient.
            Err(e) => {
                eprintln!("aq-cli: attempt {attempt} failed: {e}");
                0
            }
        };
        if attempt > retries {
            eprintln!("aq-cli: giving up after {attempt} attempts");
            std::process::exit(1);
        }
        let delay = delays.next_delay().max(Duration::from_millis(hint));
        eprintln!("aq-cli: retrying in {}ms", delay.as_millis());
        aq_serve::backoff::sleep(delay);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = None;
    let mut verb = None;
    let mut rest = Vec::new();
    for a in &args {
        if let Some(v) = a.strip_prefix("--addr=") {
            addr = Some(v.to_string());
        } else if verb.is_none() && !a.starts_with("--") {
            verb = Some(a.clone());
        } else {
            rest.push(a.clone());
        }
    }
    let (Some(addr), Some(verb)) = (addr, verb) else {
        usage();
    };
    let map = flag_map(&rest);

    let job_line = |map: &HashMap<String, String>, verb: &str, timeout_key: Option<&str>| {
        let job: u64 = map
            .get("job")
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| usage());
        let mut pairs = vec![
            ("verb".into(), Json::str(verb)),
            ("job".into(), Json::Num(job as f64)),
        ];
        if let Some(key) = timeout_key {
            if let Some(t) = map.get(key).and_then(|v| v.parse::<f64>().ok()) {
                pairs.push(("timeout_secs".into(), Json::Num(t)));
            }
        }
        Json::Obj(pairs).render()
    };

    let line = match verb.as_str() {
        "submit" | "sample" => build_submit(&map, &verb),
        "status" => job_line(&map, "status", None),
        "wait" => job_line(&map, "wait", Some("timeout")),
        "metrics" => Json::obj(vec![("verb", Json::str("metrics"))]).render(),
        "drain" => Json::obj(vec![("verb", Json::str("drain"))]).render(),
        "shutdown" => Json::obj(vec![("verb", Json::str("shutdown"))]).render(),
        _ => usage(),
    };

    // `--retries=N` takes the resilient path: submit+wait per attempt on
    // a fresh connection, resubmitting on retryable failures.
    if verb == "submit" || verb == "sample" {
        if let Some(retries) = map.get("retries").and_then(|v| v.parse::<u32>().ok()) {
            let wait_secs = map
                .get("wait")
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or(60.0);
            submit_with_retries(&addr, &line, wait_secs, retries);
        }
    }

    let mut client = TcpClient::connect(&addr).unwrap_or_else(|e| {
        eprintln!("aq-cli: cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    let mut all_ok = true;
    let mut check_and_print = |response: String| {
        let ok = Json::parse(&response)
            .ok()
            .and_then(|j| j.get("ok").and_then(Json::as_bool))
            .unwrap_or(false);
        all_ok &= ok;
        println!("{response}");
        Json::parse(&response).ok()
    };

    let response = client.roundtrip(&line).unwrap_or_else(|e| {
        eprintln!("aq-cli: request failed: {e}");
        std::process::exit(1);
    });
    let parsed = check_and_print(response);

    // `submit --wait=SECS` chains a wait on the job id just returned.
    if verb == "submit" || verb == "sample" {
        if let Some(secs) = map.get("wait").and_then(|v| v.parse::<f64>().ok()) {
            let job = parsed
                .as_ref()
                .and_then(|j| j.get("job"))
                .and_then(Json::as_u64);
            match job {
                Some(job) => {
                    let wait = Json::obj(vec![
                        ("verb", Json::str("wait")),
                        ("job", Json::Num(job as f64)),
                        ("timeout_secs", Json::Num(secs)),
                    ])
                    .render();
                    match client.roundtrip(&wait) {
                        Ok(r) => {
                            check_and_print(r);
                        }
                        Err(e) => {
                            eprintln!("aq-cli: wait failed: {e}");
                            std::process::exit(1);
                        }
                    }
                }
                None => {
                    // Rejected submissions have no job id; nothing to wait on.
                }
            }
        }
    }
    std::process::exit(if all_ok { 0 } else { 1 });
}
