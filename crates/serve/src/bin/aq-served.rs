//! `aq-served` — the batch-simulation server.
//!
//! ```text
//! aq-served [--port=N] [--workers=N | --pin=numeric,algebraic,...]
//!           [--queue=N] [--checkpoint-dir=PATH]
//! ```
//!
//! `--port=0` binds an ephemeral port; the chosen address is printed as
//! a `listening on 127.0.0.1:PORT` line so scripts can scrape it. The
//! process exits after a client sends the `shutdown` verb.

use std::path::PathBuf;
use std::sync::Arc;

use aq_serve::{SchemeClass, ServeConfig, ServeCore, Server};

fn usage() -> ! {
    eprintln!(
        "usage: aq-served [--port=N] [--workers=N | --pin=numeric,algebraic,...] \
         [--queue=N] [--checkpoint-dir=PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut port: u16 = 7878;
    let mut cfg = ServeConfig::default();
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--port=") {
            port = match v.parse() {
                Ok(p) => p,
                Err(_) => usage(),
            };
        } else if let Some(v) = arg.strip_prefix("--workers=") {
            let n: usize = match v.parse() {
                Ok(n) if n >= 1 => n,
                _ => usage(),
            };
            cfg.workers = ServeConfig::with_workers(n).workers;
        } else if let Some(v) = arg.strip_prefix("--pin=") {
            let pins: Option<Vec<SchemeClass>> = v.split(',').map(SchemeClass::parse).collect();
            match pins {
                Some(p) if !p.is_empty() => cfg.workers = p,
                _ => usage(),
            }
        } else if let Some(v) = arg.strip_prefix("--queue=") {
            cfg.queue_capacity = match v.parse() {
                Ok(n) if n >= 1 => n,
                _ => usage(),
            };
        } else if let Some(v) = arg.strip_prefix("--checkpoint-dir=") {
            cfg.checkpoint_dir = PathBuf::from(v);
        } else {
            usage();
        }
    }

    let pins: Vec<&str> = cfg.workers.iter().map(|c| c.as_str()).collect();
    eprintln!(
        "aq-served: {} workers [{}], queue capacity {}, checkpoints in {}",
        cfg.workers.len(),
        pins.join(","),
        cfg.queue_capacity,
        cfg.checkpoint_dir.display()
    );
    let core = match ServeCore::start(cfg) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("aq-served: cannot start worker pool: {e}");
            std::process::exit(1);
        }
    };
    let server = match Server::bind(Arc::clone(&core), port) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("aq-served: bind failed: {e}");
            std::process::exit(1);
        }
    };
    // Scrapeable by scripts (stdout, flushed by println).
    println!("listening on {}", server.local_addr());
    if let Err(e) = server.run() {
        eprintln!("aq-served: accept loop failed: {e}");
        std::process::exit(1);
    }
    eprintln!("aq-served: stopped");
}
