//! `aq-served` — the batch-simulation server.
//!
//! ```text
//! aq-served [--port=N] [--workers=N | --pin=numeric,algebraic,...]
//!           [--queue=N] [--checkpoint-dir=PATH]
//!           [--restart-budget=N] [--backoff-base-ms=N]
//!           [--backoff-cap-ms=N] [--seed=N]
//!           [--chaos-seed=N] [--chaos-kill-every=N]
//!           [--chaos-corrupt-every=N] [--chaos-stall-every=N]
//!           [--chaos-wakeup-every=N]
//! ```
//!
//! `--port=0` binds an ephemeral port; the chosen address is printed as
//! a `listening on 127.0.0.1:PORT` line so scripts can scrape it. The
//! process exits after a client sends the `shutdown` verb.
//!
//! The `--chaos-*` flags arm the deterministic fault-injection plan and
//! require a binary built with `--features chaos`; without the feature
//! they exit with status 2.

use std::path::PathBuf;
use std::sync::Arc;

use aq_serve::{SchemeClass, ServeConfig, ServeCore, Server};

fn usage() -> ! {
    eprintln!(
        "usage: aq-served [--port=N] [--workers=N | --pin=numeric,algebraic,...] \
         [--queue=N] [--checkpoint-dir=PATH] [--restart-budget=N] \
         [--backoff-base-ms=N] [--backoff-cap-ms=N] [--seed=N] \
         [--chaos-seed=N] [--chaos-kill-every=N] [--chaos-corrupt-every=N] \
         [--chaos-stall-every=N] [--chaos-wakeup-every=N]"
    );
    std::process::exit(2);
}

/// Arms the fault plan from the collected `--chaos-*` flags.
#[cfg(feature = "chaos")]
fn apply_chaos(cfg: &mut ServeConfig, flags: &[(String, u64)]) {
    use aq_serve::FaultPlan;
    use std::time::Duration;
    if flags.is_empty() {
        return;
    }
    let get = |key: &str| flags.iter().find(|(k, _)| k == key).map(|&(_, v)| v);
    let mut plan = FaultPlan::seeded(get("seed").unwrap_or(0));
    if let Some(n) = get("kill-every") {
        plan = plan.kill_every(n);
    }
    if let Some(n) = get("corrupt-every") {
        plan = plan.corrupt_every(n);
    }
    if let Some(n) = get("stall-every") {
        plan = plan.stall_every(n, Duration::from_millis(50));
    }
    if let Some(n) = get("wakeup-every") {
        plan = plan.wakeup_every(n);
    }
    cfg.fault_plan = plan;
}

/// Without the feature the flags are a hard error, not a silent no-op:
/// a chaos run that silently injects nothing would look healthy.
#[cfg(not(feature = "chaos"))]
fn apply_chaos(_cfg: &mut ServeConfig, flags: &[(String, u64)]) {
    if !flags.is_empty() {
        eprintln!(
            "aq-served: --chaos-* flags need a binary built with `--features chaos`; \
             this one was not"
        );
        std::process::exit(2);
    }
}

fn main() {
    let mut port: u16 = 7878;
    let mut cfg = ServeConfig::default();
    let mut chaos_flags: Vec<(String, u64)> = Vec::new();
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--port=") {
            port = match v.parse() {
                Ok(p) => p,
                Err(_) => usage(),
            };
        } else if let Some(v) = arg.strip_prefix("--workers=") {
            let n: usize = match v.parse() {
                Ok(n) if n >= 1 => n,
                _ => usage(),
            };
            cfg.workers = ServeConfig::with_workers(n).workers;
        } else if let Some(v) = arg.strip_prefix("--pin=") {
            let pins: Option<Vec<SchemeClass>> = v.split(',').map(SchemeClass::parse).collect();
            match pins {
                Some(p) if !p.is_empty() => cfg.workers = p,
                _ => usage(),
            }
        } else if let Some(v) = arg.strip_prefix("--queue=") {
            cfg.queue_capacity = match v.parse() {
                Ok(n) if n >= 1 => n,
                _ => usage(),
            };
        } else if let Some(v) = arg.strip_prefix("--checkpoint-dir=") {
            cfg.checkpoint_dir = PathBuf::from(v);
        } else if let Some(v) = arg.strip_prefix("--restart-budget=") {
            cfg.restart_budget = match v.parse() {
                Ok(n) => n,
                Err(_) => usage(),
            };
        } else if let Some(v) = arg.strip_prefix("--backoff-base-ms=") {
            cfg.backoff_base = match v.parse() {
                Ok(ms) => std::time::Duration::from_millis(ms),
                Err(_) => usage(),
            };
        } else if let Some(v) = arg.strip_prefix("--backoff-cap-ms=") {
            cfg.backoff_cap = match v.parse() {
                Ok(ms) => std::time::Duration::from_millis(ms),
                Err(_) => usage(),
            };
        } else if let Some(v) = arg.strip_prefix("--seed=") {
            cfg.supervisor_seed = match v.parse() {
                Ok(s) => s,
                Err(_) => usage(),
            };
        } else if let Some(rest) = arg.strip_prefix("--chaos-") {
            match rest.split_once('=').map(|(k, v)| (k, v.parse::<u64>())) {
                Some((k, Ok(v))) => chaos_flags.push((k.to_string(), v)),
                _ => usage(),
            }
        } else {
            usage();
        }
    }
    apply_chaos(&mut cfg, &chaos_flags);

    let pins: Vec<&str> = cfg.workers.iter().map(|c| c.as_str()).collect();
    eprintln!(
        "aq-served: {} workers [{}], queue capacity {}, checkpoints in {}",
        cfg.workers.len(),
        pins.join(","),
        cfg.queue_capacity,
        cfg.checkpoint_dir.display()
    );
    let core = match ServeCore::start(cfg) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("aq-served: cannot start worker pool: {e}");
            std::process::exit(1);
        }
    };
    let server = match Server::bind(Arc::clone(&core), port) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("aq-served: bind failed: {e}");
            std::process::exit(1);
        }
    };
    // Scrapeable by scripts (stdout, flushed by println).
    println!("listening on {}", server.local_addr());
    if let Err(e) = server.run() {
        eprintln!("aq-served: accept loop failed: {e}");
        std::process::exit(1);
    }
    eprintln!("aq-served: stopped");
}
