//! Jittered exponential backoff, and the one sanctioned `sleep`.
//!
//! Every retry loop in the serve stack — supervisor respawns, client
//! resubmission, the event-loop idle tick — goes through this module so
//! that (a) backoff schedules are seeded and therefore deterministic in
//! tests, and (b) `aq-lint` rule R6 can forbid bare `thread::sleep`
//! everywhere else in the crate: an unjittered, unbounded sleep in serve
//! code is either a latency bug or a thundering-herd bug waiting to
//! happen.

use std::time::Duration;

use aq_testutil::Rng;

/// Capped exponential backoff with deterministic multiplicative jitter.
///
/// Attempt `k` (0-based) draws uniformly from `[d/2, d)` where `d =
/// min(cap, base << k)` — full-jitter halved, so consecutive respawns of
/// sibling workers spread out instead of stampeding, while the schedule
/// stays within a provable envelope: attempt `k` always waits at least
/// `min(cap, base·2^k)/2` and less than `min(cap, base·2^k)`.
///
/// The jitter stream is seeded ([`aq_testutil::Rng`]), so a fixed seed
/// yields a bit-identical schedule — the chaos suite pins respawn timing
/// this way.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: Rng,
}

impl Backoff {
    /// Creates a backoff schedule. `base` is the nominal first delay,
    /// `cap` the nominal maximum; both are halved-to-full jittered.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        Backoff {
            base,
            cap,
            attempt: 0,
            rng: Rng::from_seed(seed),
        }
    }

    /// The number of delays handed out since creation or the last
    /// [`Backoff::reset`].
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Draws the next delay and advances the attempt counter.
    pub fn next_delay(&mut self) -> Duration {
        let shift = self.attempt.min(32);
        self.attempt = self.attempt.saturating_add(1);
        let nominal = self
            .base
            .saturating_mul(1u32 << shift.min(31))
            .min(self.cap)
            .max(Duration::from_micros(1));
        let nanos = nominal.as_nanos().min(u128::from(u64::MAX)) as u64;
        let jittered = nanos / 2 + self.rng.below(nanos.div_ceil(2).max(1));
        Duration::from_nanos(jittered)
    }

    /// Restarts the schedule at attempt 0 (the jitter stream continues —
    /// determinism only depends on the seed and the draw sequence).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// The one sanctioned blocking sleep in the serve crate. Call sites that
/// need a plain delay (the event-loop idle tick, client retry waits) use
/// this instead of `std::thread::sleep` so aq-lint R6 can flag every
/// other sleep as a review error.
pub fn sleep(d: Duration) {
    std::thread::sleep(d);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let mut a = Backoff::new(Duration::from_millis(50), Duration::from_secs(2), 42);
        let mut b = Backoff::new(Duration::from_millis(50), Duration::from_secs(2), 42);
        for _ in 0..10 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Backoff::new(Duration::from_millis(50), Duration::from_secs(2), 1);
        let mut b = Backoff::new(Duration::from_millis(50), Duration::from_secs(2), 2);
        let da: Vec<_> = (0..8).map(|_| a.next_delay()).collect();
        let db: Vec<_> = (0..8).map(|_| b.next_delay()).collect();
        assert_ne!(da, db, "distinct seeds should jitter differently");
    }

    #[test]
    fn delays_stay_in_the_jitter_envelope_and_cap() {
        let base = Duration::from_millis(50);
        let cap = Duration::from_secs(2);
        let mut b = Backoff::new(base, cap, 7);
        for k in 0..20u32 {
            let nominal = base.saturating_mul(1u32 << k.min(31)).min(cap);
            let d = b.next_delay();
            assert!(d >= nominal / 2, "attempt {k}: {d:?} below {nominal:?}/2");
            assert!(
                d < nominal + Duration::from_nanos(1),
                "attempt {k}: {d:?} above {nominal:?}"
            );
            assert!(d <= cap, "attempt {k}: {d:?} exceeds the cap");
        }
    }

    #[test]
    fn reset_restarts_the_envelope() {
        let base = Duration::from_millis(100);
        let mut b = Backoff::new(base, Duration::from_secs(10), 9);
        for _ in 0..6 {
            b.next_delay();
        }
        assert_eq!(b.attempt(), 6);
        b.reset();
        assert_eq!(b.attempt(), 0);
        let d = b.next_delay();
        assert!(d < base, "first post-reset delay must be back under base");
        assert!(d >= base / 2);
    }
}
