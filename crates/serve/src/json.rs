//! A minimal JSON value, parser and writer for the wire protocol.
//!
//! Hand-rolled (the workspace is dependency-free by design) and sized for
//! the service's needs: UTF-8 text, `f64` numbers, objects kept as
//! insertion-ordered pairs. The parser is defensive — depth-limited,
//! rejects trailing garbage, and never panics on malformed input — because
//! it faces raw bytes from the network.

use std::fmt;

/// Maximum nesting depth the parser accepts. Protocol messages are ~2
/// levels deep; the limit only exists to bound recursion on hostile input.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as a double, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// A structured parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// exactly (rejects fractions, negatives and values past 2⁵³ where
    /// doubles stop being exact).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        // aq-lint: allow(R5): exact integrality test, not a tolerance comparison
        if n.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses one JSON document, rejecting trailing non-whitespace.
    ///
    /// # Errors
    ///
    /// A [`JsonError`] naming the byte offset of the first problem.
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let bytes = src.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Renders the value as compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Integers render without a fraction or exponent (job ids, counters);
/// everything else uses the shortest round-trip float formatting.
fn write_num(n: f64, out: &mut String) {
    use std::fmt::Write as _;
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf; null is the honest spelling
                              // aq-lint: allow(R5): exact integrality test, not a tolerance comparison
    } else if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(format!("unexpected byte 0x{b:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        let rest = self.bytes.get(self.pos..).unwrap_or_default();
        if rest.starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{text}`")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let digits = self.bytes.get(start..self.pos).unwrap_or_default();
        let text = std::str::from_utf8(digits).unwrap_or("");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(self.err(format!("bad number `{text}`"))),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // surrogates and other unpaired code points map
                            // to the replacement character; pairing
                            // surrogates is not worth the code here
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 character (input is &str, so
                    // boundaries are valid)
                    let rest = self.bytes.get(self.pos..).unwrap_or_default();
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    if u32::from(c) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let src =
            r#"{"verb":"submit","eps":1e-10,"n":6,"flags":[true,false,null],"note":"a\"b\nc"}"#;
        let v = Json::parse(src).expect("parse");
        assert_eq!(v.get("verb").and_then(Json::as_str), Some("submit"));
        assert_eq!(v.get("eps").and_then(Json::as_f64), Some(1e-10));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(6));
        let again = Json::parse(&v.render()).expect("reparse");
        assert_eq!(v, again);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(0.5).render(), "0.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn rejects_garbage_without_panicking() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\"",
            "{\"a\":}",
            "[1,",
            "tru",
            "\"unterminated",
            "{\"a\":1}x",
            "nul",
            "1e999",
            "-",
            "{\"a\" 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn depth_limit_bounds_recursion() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"));
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(1e17).as_u64(), None);
        assert_eq!(Json::Num(123.0).as_u64(), Some(123));
    }
}
