//! Deterministic, seed-driven fault injection for the serve stack.
//!
//! A [`FaultPlan`] is threaded through the service, the worker loop and
//! the TCP event loop. When the `chaos` feature is enabled it decides —
//! as a pure function of its seed and the job id / connection sequence /
//! tick it is asked about — whether to kill a worker, corrupt a parked
//! session, stall a connection or fire a spurious wakeup. With the
//! feature off every decision method compiles down to a constant
//! "no fault", so production builds carry no chaos machinery at all.
//!
//! Determinism is the point: the same plan against the same request
//! sequence injects the same faults, so the chaos suite can assert exact
//! metric reconciliation and byte-identical results under a fixed seed.
//!
//! The plan keeps injection *counters* (kills, corruptions landed,
//! stalls, wakeups) that the chaos tests reconcile against the service's
//! own recovery counters — e.g. every corruption that landed must show up
//! as a session validate-failure before the next warm reuse.

use std::time::Duration;

/// Which I/O phase of a connection a stall is injected into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallPhase {
    /// Delay acceptance handling of the new connection.
    Accept,
    /// Defer reading bytes the peer already sent.
    Read,
    /// Defer flushing response bytes to the peer.
    Write,
}

/// Panic payload used for injected worker kills, so the supervisor's
/// panic handling is exercised by a payload that is neither `&str` nor
/// `String` (the two shapes real panics usually carry).
#[derive(Debug, Clone, Copy)]
pub struct ChaosKill;

/// Snapshot of how many faults a plan has injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Worker kills triggered ([`FaultPlan::kill_worker`] returned true).
    pub kills: u64,
    /// Session corruptions that actually landed in a parked manager.
    pub corruptions: u64,
    /// Connection stalls handed out.
    pub stalls: u64,
    /// Spurious wakeups fired.
    pub wakeups: u64,
}

#[cfg(feature = "chaos")]
mod inner {
    use super::StallPhase;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    #[derive(Debug, Default)]
    pub(super) struct Inner {
        pub(super) seed: u64,
        /// Kill the worker on every job id divisible by this (0 = never).
        pub(super) kill_every: u64,
        /// Kill with this probability out of 1000, hashed per job id.
        pub(super) kill_per_mille: u64,
        /// Kill exactly these job ids.
        pub(super) kill_jobs: Vec<u64>,
        /// Corrupt the worker's parked session after every job id
        /// divisible by this (0 = never).
        pub(super) corrupt_every: u64,
        /// Stall every connection whose accept sequence is divisible by
        /// this (0 = never), for `stall` long.
        pub(super) stall_every: u64,
        pub(super) stall: Duration,
        /// Pin the stalled phase instead of hashing it from the seed.
        pub(super) stall_phase_override: Option<StallPhase>,
        /// Fire a spurious queue wakeup on every event-loop tick divisible
        /// by this (0 = never).
        pub(super) wakeup_every: u64,
        pub(super) kills: AtomicU64,
        pub(super) corruptions: AtomicU64,
        pub(super) stalls: AtomicU64,
        pub(super) wakeups: AtomicU64,
    }

    impl Inner {
        pub(super) fn count(counter: &AtomicU64) {
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// SplitMix64-style mixer over (seed, decision domain, index): one
    /// plan seed yields independent streams per fault kind.
    pub(super) fn mix(seed: u64, domain: u64, n: u64) -> u64 {
        let mut z = seed
            .wrapping_add(domain.wrapping_mul(0xd129_0d3b_5625_2b8f))
            .wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A deterministic fault-injection plan (inert unless built with the
/// `chaos` feature *and* configured via its builder methods).
///
/// Cloning shares the plan — all clones feed the same counters, so the
/// copy handed to the server and the copies inside workers reconcile.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    #[cfg(feature = "chaos")]
    inner: Option<std::sync::Arc<inner::Inner>>,
}

impl FaultPlan {
    /// A plan that never injects anything (same as `Default`).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether this plan can inject faults at all.
    pub fn is_active(&self) -> bool {
        #[cfg(feature = "chaos")]
        {
            self.inner.is_some()
        }
        #[cfg(not(feature = "chaos"))]
        {
            false
        }
    }

    /// Should the worker running job `job_id` be killed? Counts the kill
    /// when the answer is yes.
    #[allow(unused_variables)]
    pub fn kill_worker(&self, job_id: u64) -> bool {
        #[cfg(feature = "chaos")]
        if let Some(p) = &self.inner {
            let by_every = p.kill_every != 0 && job_id % p.kill_every == 0;
            let by_list = p.kill_jobs.contains(&job_id);
            let by_mille =
                p.kill_per_mille != 0 && inner::mix(p.seed, 1, job_id) % 1000 < p.kill_per_mille;
            if by_every || by_list || by_mille {
                inner::Inner::count(&p.kills);
                return true;
            }
        }
        false
    }

    /// Should the parked session be corrupted after job `job_id`? Returns
    /// the corruption seed when yes. Does **not** count — callers report
    /// back with [`FaultPlan::note_corruption_landed`] only when a parked
    /// manager existed to corrupt, so the counter equals corruptions that
    /// can be detected.
    #[allow(unused_variables)]
    pub fn corrupt_session(&self, job_id: u64) -> Option<u64> {
        #[cfg(feature = "chaos")]
        if let Some(p) = &self.inner {
            if p.corrupt_every != 0 && job_id % p.corrupt_every == 0 {
                return Some(inner::mix(p.seed, 2, job_id));
            }
        }
        None
    }

    /// Records that a corruption issued by [`FaultPlan::corrupt_session`]
    /// actually landed in a parked manager.
    pub fn note_corruption_landed(&self) {
        #[cfg(feature = "chaos")]
        if let Some(p) = &self.inner {
            inner::Inner::count(&p.corruptions);
        }
    }

    /// Should the `conn_seq`-th accepted connection be stalled, and if so
    /// in which phase and for how long? Counts the stall when yes.
    #[allow(unused_variables)]
    pub fn conn_stall(&self, conn_seq: u64) -> Option<(StallPhase, Duration)> {
        #[cfg(feature = "chaos")]
        if let Some(p) = &self.inner {
            if p.stall_every != 0 && conn_seq % p.stall_every == 0 {
                let phase =
                    p.stall_phase_override
                        .unwrap_or(match inner::mix(p.seed, 3, conn_seq) % 3 {
                            0 => StallPhase::Accept,
                            1 => StallPhase::Read,
                            _ => StallPhase::Write,
                        });
                inner::Inner::count(&p.stalls);
                return Some((phase, p.stall));
            }
        }
        None
    }

    /// Should event-loop tick `tick` fire a spurious wakeup on the queue
    /// condvars? Counts the wakeup when yes.
    #[allow(unused_variables)]
    pub fn spurious_wakeup(&self, tick: u64) -> bool {
        #[cfg(feature = "chaos")]
        if let Some(p) = &self.inner {
            if p.wakeup_every != 0 && tick != 0 && tick % p.wakeup_every == 0 {
                inner::Inner::count(&p.wakeups);
                return true;
            }
        }
        false
    }

    /// Injection counters so far; `None` when the plan is inert.
    pub fn counters(&self) -> Option<FaultCounters> {
        #[cfg(feature = "chaos")]
        if let Some(p) = &self.inner {
            use std::sync::atomic::Ordering;
            return Some(FaultCounters {
                kills: p.kills.load(Ordering::Relaxed),
                corruptions: p.corruptions.load(Ordering::Relaxed),
                stalls: p.stalls.load(Ordering::Relaxed),
                wakeups: p.wakeups.load(Ordering::Relaxed),
            });
        }
        None
    }
}

#[cfg(feature = "chaos")]
impl FaultPlan {
    /// Starts an active plan from a seed. All subsequent builder calls
    /// must happen before the plan is cloned/shared.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            inner: Some(std::sync::Arc::new(inner::Inner {
                seed,
                ..inner::Inner::default()
            })),
        }
    }

    fn tune(mut self, f: impl FnOnce(&mut inner::Inner)) -> Self {
        if let Some(arc) = self.inner.as_mut() {
            if let Some(p) = std::sync::Arc::get_mut(arc) {
                f(p);
            }
        }
        self
    }

    /// Kill the worker on every job id divisible by `n` (0 disables).
    pub fn kill_every(self, n: u64) -> Self {
        self.tune(|p| p.kill_every = n)
    }

    /// Kill each job's worker with probability `per_mille`/1000, decided
    /// by hashing the job id against the plan seed.
    pub fn kill_per_mille(self, per_mille: u64) -> Self {
        self.tune(|p| p.kill_per_mille = per_mille)
    }

    /// Kill the worker running exactly job `id` (may be called multiple
    /// times to target several ids).
    pub fn kill_job(self, id: u64) -> Self {
        self.tune(|p| p.kill_jobs.push(id))
    }

    /// Corrupt the worker's parked session after every job id divisible
    /// by `n` (0 disables).
    pub fn corrupt_every(self, n: u64) -> Self {
        self.tune(|p| p.corrupt_every = n)
    }

    /// Stall every `n`-th accepted connection for `d` (0 disables). The
    /// stalled phase is hashed from the seed unless pinned with
    /// [`FaultPlan::stall_phase`].
    pub fn stall_every(self, n: u64, d: Duration) -> Self {
        self.tune(|p| {
            p.stall_every = n;
            p.stall = d;
        })
    }

    /// Pins the phase used for injected connection stalls.
    pub fn stall_phase(self, phase: StallPhase) -> Self {
        self.tune(|p| p.stall_phase_override = Some(phase))
    }

    /// Fire a spurious queue wakeup on every `n`-th event-loop tick
    /// (0 disables).
    pub fn wakeup_every(self, n: u64) -> Self {
        self.tune(|p| p.wakeup_every = n)
    }
}

#[cfg(all(test, feature = "chaos"))]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_injects_nothing() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        assert!(!p.kill_worker(1));
        assert!(p.corrupt_session(1).is_none());
        assert!(p.conn_stall(0).is_none());
        assert!(!p.spurious_wakeup(5));
        assert!(p.counters().is_none());
    }

    #[test]
    fn decisions_are_deterministic_and_counted() {
        let make = || {
            FaultPlan::seeded(0xFEED)
                .kill_per_mille(250)
                .corrupt_every(3)
                .stall_every(2, Duration::from_millis(5))
                .wakeup_every(4)
        };
        let a = make();
        let b = make();
        let ka: Vec<bool> = (1..=40).map(|id| a.kill_worker(id)).collect();
        let kb: Vec<bool> = (1..=40).map(|id| b.kill_worker(id)).collect();
        assert_eq!(ka, kb, "kill decisions must replay identically");
        assert!(ka.iter().any(|&k| k), "250‰ over 40 jobs should kill some");
        assert!(!ka.iter().all(|&k| k), "and spare some");
        assert_eq!(a.corrupt_session(3), b.corrupt_session(3));
        assert!(a.corrupt_session(4).is_none());
        assert_eq!(a.conn_stall(2).map(|(ph, d)| (ph, d)), b.conn_stall(2));
        assert!(a.conn_stall(1).is_none());
        assert!(a.spurious_wakeup(4));
        assert!(!a.spurious_wakeup(0), "tick 0 never fires");
        let c = a.counters().expect("active plan has counters");
        assert_eq!(c.kills as usize, ka.iter().filter(|&&k| k).count());
        assert_eq!(c.stalls, 1);
        assert_eq!(c.wakeups, 1);
        assert_eq!(c.corruptions, 0, "corruptions only count when landed");
        a.note_corruption_landed();
        assert_eq!(a.counters().map(|c| c.corruptions), Some(1));
    }

    #[test]
    fn clones_share_counters() {
        let p = FaultPlan::seeded(1).kill_every(1);
        let q = p.clone();
        assert!(q.kill_worker(7));
        assert_eq!(p.counters().map(|c| c.kills), Some(1));
    }

    #[test]
    fn stall_phase_override_pins_the_phase() {
        let p = FaultPlan::seeded(9)
            .stall_every(1, Duration::from_millis(1))
            .stall_phase(StallPhase::Write);
        for seq in 0..5 {
            assert_eq!(p.conn_stall(seq).map(|(ph, _)| ph), Some(StallPhase::Write));
        }
    }
}
