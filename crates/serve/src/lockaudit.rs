//! Lock-order auditing: named lock wrappers that record a global
//! acquisition-order graph at test time and cost nothing in release.
//!
//! # Why
//!
//! The service core is deliberately written so that no thread ever holds
//! two locks at once (guards are dropped before the next lock is taken,
//! condvar waits release the one lock they hold). That discipline is what
//! makes the worker pool deadlock-free — but nothing *enforced* it until
//! now. [`DebugMutex`], [`DebugRwLock`] and [`DebugCondvar`] are drop-in
//! replacements for their `std::sync` counterparts that, **only** with
//! the `lock-audit` feature enabled, additionally:
//!
//! - record every *held → acquired* pair of lock names into a global
//!   directed graph, and flag a cycle the moment one appears (a cycle in
//!   the acquisition-order graph is the classic deadlock precondition);
//! - flag a condvar wait performed while *another* lock is still held
//!   (the wait releases only its own mutex — anything else stays locked
//!   across a potentially unbounded sleep);
//! - flag [`blocking_op`] call sites (TCP writes, joins) reached while
//!   any audited lock is held.
//!
//! Without the feature every wrapper is a transparent newtype over the
//! std primitive: no thread-locals, no global graph, no atomics — the
//! only cost is the `&'static str` name stored next to the lock.
//!
//! All wrappers recover from poisoning (`into_inner`), matching the
//! workspace-wide convention: a panicking job thread must not wedge the
//! service.
//!
//! The test suite (`tests/concurrency.rs`) runs the full serve workload
//! under `--features lock-audit` and asserts the recorded graph is
//! cycle- and hazard-free; `tests/lock_audit.rs` proves the detector
//! actually fires by constructing an A→B / B→A ordering on purpose.

use std::sync::{Condvar, Mutex, MutexGuard, RwLock, WaitTimeoutResult};
use std::time::Duration;

/// A named [`Mutex`] that feeds the lock-order graph under `lock-audit`.
#[derive(Debug)]
pub struct DebugMutex<T> {
    name: &'static str,
    inner: Mutex<T>,
}

/// Guard for a [`DebugMutex`]; releases the audit record on drop.
#[derive(Debug)]
pub struct DebugMutexGuard<'a, T> {
    name: &'static str,
    /// `None` only transiently inside [`DebugCondvar::wait`].
    inner: Option<MutexGuard<'a, T>>,
}

impl<T> DebugMutex<T> {
    /// Creates a named mutex. Names must be unique per lock *role*
    /// ("serve.registry", "queue.inner", …) — the audit graph is keyed
    /// on them.
    pub const fn new(name: &'static str, value: T) -> Self {
        DebugMutex {
            name,
            inner: Mutex::new(value),
        }
    }

    /// The audit name this lock was created with.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Locks, recovering from poison, recording the acquisition edge(s).
    #[inline]
    pub fn lock(&self) -> DebugMutexGuard<'_, T> {
        #[cfg(feature = "lock-audit")]
        audit::acquiring(self.name);
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "lock-audit")]
        audit::acquired(self.name);
        DebugMutexGuard {
            name: self.name,
            inner: Some(g),
        }
    }
}

impl<T: Default> Default for DebugMutex<T> {
    fn default() -> Self {
        DebugMutex::new("unnamed", T::default())
    }
}

impl<T> DebugMutexGuard<'_, T> {
    /// The audit name of the lock this guard holds.
    pub fn lock_name(&self) -> &'static str {
        self.name
    }
}

impl<T> std::ops::Deref for DebugMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.inner {
            Some(g) => g,
            None => unreachable!("guard vacated outside a condvar wait"),
        }
    }
}

impl<T> std::ops::DerefMut for DebugMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            Some(g) => g,
            None => unreachable!("guard vacated outside a condvar wait"),
        }
    }
}

impl<T> Drop for DebugMutexGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "lock-audit")]
        if self.inner.is_some() {
            audit::released(self.name);
        }
    }
}

/// A named [`RwLock`] that feeds the lock-order graph under `lock-audit`.
///
/// Reader and writer acquisitions record the same edge — for ordering
/// purposes a read lock can participate in a deadlock exactly like a
/// write lock (reader blocks writer blocks reader).
#[derive(Debug)]
pub struct DebugRwLock<T> {
    name: &'static str,
    inner: RwLock<T>,
}

/// Read guard for a [`DebugRwLock`].
#[derive(Debug)]
pub struct DebugReadGuard<'a, T> {
    name: &'static str,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Write guard for a [`DebugRwLock`].
#[derive(Debug)]
pub struct DebugWriteGuard<'a, T> {
    name: &'static str,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> DebugRwLock<T> {
    /// Creates a named rwlock (see [`DebugMutex::new`] for naming).
    pub const fn new(name: &'static str, value: T) -> Self {
        DebugRwLock {
            name,
            inner: RwLock::new(value),
        }
    }

    /// The audit name this lock was created with.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Takes the shared lock, recovering from poison.
    #[inline]
    pub fn read(&self) -> DebugReadGuard<'_, T> {
        #[cfg(feature = "lock-audit")]
        audit::acquiring(self.name);
        let g = self.inner.read().unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "lock-audit")]
        audit::acquired(self.name);
        DebugReadGuard {
            name: self.name,
            inner: g,
        }
    }

    /// Takes the exclusive lock, recovering from poison.
    #[inline]
    pub fn write(&self) -> DebugWriteGuard<'_, T> {
        #[cfg(feature = "lock-audit")]
        audit::acquiring(self.name);
        let g = self.inner.write().unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "lock-audit")]
        audit::acquired(self.name);
        DebugWriteGuard {
            name: self.name,
            inner: g,
        }
    }
}

impl<T> std::ops::Deref for DebugReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> Drop for DebugReadGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "lock-audit")]
        audit::released(self.name);
        let _ = self.name;
    }
}

impl<T> std::ops::Deref for DebugWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for DebugWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for DebugWriteGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "lock-audit")]
        audit::released(self.name);
        let _ = self.name;
    }
}

/// A condvar aware of [`DebugMutex`]: waiting releases the guard's audit
/// record (the OS releases the mutex) and flags a wait performed while
/// any *other* audited lock is still held.
#[derive(Debug, Default)]
pub struct DebugCondvar {
    inner: Condvar,
}

impl DebugCondvar {
    /// Creates a condvar.
    pub const fn new() -> Self {
        DebugCondvar {
            inner: Condvar::new(),
        }
    }

    /// Blocks until notified. Poison is recovered, matching
    /// [`DebugMutex::lock`].
    pub fn wait<'a, T>(&self, mut guard: DebugMutexGuard<'a, T>) -> DebugMutexGuard<'a, T> {
        #[cfg(feature = "lock-audit")]
        audit::wait_begin(guard.name);
        let inner = match guard.inner.take() {
            Some(g) => g,
            None => unreachable!("waiting on a vacated guard"),
        };
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        #[cfg(feature = "lock-audit")]
        audit::wait_end(guard.name);
        guard
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: DebugMutexGuard<'a, T>,
        timeout: Duration,
    ) -> (DebugMutexGuard<'a, T>, WaitTimeoutResult) {
        #[cfg(feature = "lock-audit")]
        audit::wait_begin(guard.name);
        let inner = match guard.inner.take() {
            Some(g) => g,
            None => unreachable!("waiting on a vacated guard"),
        };
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        #[cfg(feature = "lock-audit")]
        audit::wait_end(guard.name);
        (guard, result)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Marks a potentially unbounded blocking operation (a TCP write, a
/// thread join). Under `lock-audit` this records a hazard if any audited
/// lock is held by the calling thread; otherwise it is a no-op.
#[inline]
pub fn blocking_op(what: &'static str) {
    #[cfg(feature = "lock-audit")]
    audit::blocking(what);
    let _ = what;
}

#[cfg(feature = "lock-audit")]
pub use audit::{detected_cycles, detected_hazards, dot_graph, lock_order_edges, reset};

#[cfg(feature = "lock-audit")]
mod audit {
    //! The global acquisition-order graph. One `std::sync::Mutex` guards
    //! it — audited locks are low-frequency service locks, so the
    //! serialization cost is irrelevant, and the auditor must not itself
    //! use an audited lock.

    use std::cell::RefCell;
    use std::collections::BTreeSet;
    use std::sync::Mutex;

    #[derive(Default)]
    struct Graph {
        edges: BTreeSet<(&'static str, &'static str)>,
        cycles: Vec<String>,
        hazards: Vec<String>,
    }

    static GRAPH: Mutex<Graph> = Mutex::new(Graph {
        edges: BTreeSet::new(),
        cycles: Vec::new(),
        hazards: Vec::new(),
    });

    thread_local! {
        /// Names of audited locks this thread currently holds, in
        /// acquisition order.
        static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    fn graph() -> std::sync::MutexGuard<'static, Graph> {
        GRAPH.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Is `to` reachable from `from` over the current edge set?
    fn reaches(edges: &BTreeSet<(&'static str, &'static str)>, from: &str, to: &str) -> bool {
        let mut stack = vec![from];
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            for &(a, b) in edges.iter() {
                if a == n {
                    stack.push(b);
                }
            }
        }
        false
    }

    /// Called *before* blocking on `name`: records a held→wanted edge
    /// per held lock and reports any cycle the new edge closes.
    pub(super) fn acquiring(name: &'static str) {
        HELD.with(|h| {
            let held = h.borrow();
            if held.is_empty() {
                return;
            }
            let mut g = graph();
            for &from in held.iter() {
                if from == name {
                    g.cycles
                        .push(format!("{name} -> {name} (recursive acquisition)"));
                    continue;
                }
                if g.edges.insert((from, name)) && reaches(&g.edges, name, from) {
                    g.cycles.push(format!(
                        "{from} -> {name} closes a cycle ({name} already reaches {from})"
                    ));
                }
            }
        });
    }

    /// Called after the lock is actually held.
    pub(super) fn acquired(name: &'static str) {
        HELD.with(|h| h.borrow_mut().push(name));
    }

    /// Called when a guard drops (releases the most recent acquisition
    /// of `name` — names can legitimately repeat across lock instances).
    pub(super) fn released(name: &'static str) {
        HELD.with(|h| {
            let mut v = h.borrow_mut();
            if let Some(i) = v.iter().rposition(|&n| n == name) {
                v.remove(i);
            }
        });
    }

    /// A condvar wait on `name` releases that mutex but keeps everything
    /// else locked across an unbounded sleep — flag those.
    pub(super) fn wait_begin(name: &'static str) {
        released(name);
        HELD.with(|h| {
            let held = h.borrow();
            if !held.is_empty() {
                graph().hazards.push(format!(
                    "condvar wait on `{name}` while still holding {:?}",
                    &*held
                ));
            }
        });
    }

    /// The wait returned; the mutex is held again.
    pub(super) fn wait_end(name: &'static str) {
        acquired(name);
    }

    /// A blocking operation reached with audited locks held.
    pub(super) fn blocking(what: &'static str) {
        HELD.with(|h| {
            let held = h.borrow();
            if !held.is_empty() {
                graph().hazards.push(format!(
                    "blocking operation `{what}` while holding {:?}",
                    &*held
                ));
            }
        });
    }

    /// Every recorded held→acquired edge, sorted.
    pub fn lock_order_edges() -> Vec<(&'static str, &'static str)> {
        graph().edges.iter().copied().collect()
    }

    /// Every cycle report recorded so far (empty means deadlock-free
    /// ordering over everything the run exercised).
    pub fn detected_cycles() -> Vec<String> {
        graph().cycles.clone()
    }

    /// Every wait/blocking-op hazard recorded so far.
    pub fn detected_hazards() -> Vec<String> {
        graph().hazards.clone()
    }

    /// The graph in Graphviz DOT form, for dumping on failure.
    pub fn dot_graph() -> String {
        let g = graph();
        let mut out = String::from("digraph lock_order {\n");
        let mut names: BTreeSet<&'static str> = BTreeSet::new();
        for &(a, b) in g.edges.iter() {
            names.insert(a);
            names.insert(b);
        }
        for n in names {
            out.push_str(&format!("  \"{n}\";\n"));
        }
        for &(a, b) in g.edges.iter() {
            out.push_str(&format!("  \"{a}\" -> \"{b}\";\n"));
        }
        out.push('}');
        out.push('\n');
        out
    }

    /// Clears the global graph (intentional-cycle tests isolate
    /// themselves with this; run them in their own process).
    pub fn reset() {
        let mut g = graph();
        g.edges.clear();
        g.cycles.clear();
        g.hazards.clear();
    }
}
