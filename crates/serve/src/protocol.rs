//! The line-delimited wire protocol: one JSON object per line, request in,
//! response out.
//!
//! # Grammar
//!
//! ```text
//! request    = submit | sample | status | wait | metrics | drain | shutdown
//! submit     = {"verb":"submit", circuit..., "scheme":"numeric"|"qomega"|"gcd",
//!               ["eps":<f64>,] ["priority":0..=9,] ["top_k":<n>,]
//!               ["resume":"<path>",]
//!               "budget":{["max_nodes":n,]["max_weights":n,]
//!                         ["max_bits":n,]["deadline_secs":s]}}
//! sample     = {"verb":"sample", <submit fields except "resume">,
//!               ["shots":1..=1000000,] ["seed":<u64>]}
//! circuit    = "circuit":"grover","n":n,"marked":m
//!            | "circuit":"bwt","height":h,"steps":s[,"seed":x]
//!            | "circuit":"gse"[,"precision_bits":b][,"trotter_slices":t]
//!            | "circuit":"qft","n":n
//!            | "qasm":"<inline OpenQASM 2.0>"
//! status     = {"verb":"status","job":id}
//! wait       = {"verb":"wait","job":id[,"timeout_secs":s]}
//! metrics    = {"verb":"metrics"}
//! drain      = {"verb":"drain"}
//! shutdown   = {"verb":"shutdown"}
//! ```
//!
//! Responses always carry `"ok"`: protocol-level failures (malformed
//! JSON, unknown verbs, oversized frames) are `{"ok":false,"error":...}`;
//! everything the service decided — including *rejected* submissions and
//! *aborted* jobs, which are valid outcomes — is `"ok":true` with a
//! `"state"` field. Frames are capped at [`MAX_FRAME_BYTES`].

use std::path::PathBuf;
use std::time::Duration;

use aq_circuits::{bwt, grover, qft, BwtParams, Circuit, GseParams};
use aq_dd::RunBudget;
use aq_sim::{SampleParams, SchemeSpec};

use crate::json::Json;

/// Hard cap on one request or response line, in bytes (including the
/// newline). Inline QASM must fit; bigger circuits belong in files.
pub const MAX_FRAME_BYTES: usize = 64 * 1024;

/// Widest register the service admits. Wider jobs are rejected at
/// submission: amplitude extraction is `O(2ⁿ)` and a serving process must
/// not be wedged by one pathological request.
pub const MAX_QUBITS: u32 = 24;

/// Most shots one `sample` submission may request. Drawing is `O(n)` per
/// shot on the final DD, but fork-per-shot circuits (mid-circuit
/// measurement) re-simulate every shot, so the cap keeps one request from
/// monopolising a worker.
pub const MAX_SHOTS: u64 = 1_000_000;

/// What circuit a submission asks for.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitSpec {
    /// Grover search over `n` qubits for `marked`.
    Grover {
        /// Data qubits.
        n: u32,
        /// Marked element.
        marked: u64,
    },
    /// Binary Welded Tree walk.
    Bwt {
        /// Tree height.
        height: u32,
        /// Trotter steps.
        steps: u32,
        /// Weld permutation seed.
        seed: u64,
    },
    /// Ground State Estimation (numeric schemes only — its rotation
    /// angles are not in `D[ω]`; algebraic runs abort fail-soft).
    Gse {
        /// Counting-register width.
        precision_bits: u32,
        /// Trotter slices.
        trotter_slices: u32,
    },
    /// Quantum Fourier transform on `n` qubits.
    Qft {
        /// Register width.
        n: u32,
    },
    /// Inline OpenQASM 2.0 source.
    Qasm(String),
}

impl CircuitSpec {
    /// Builds the circuit and its start basis state, validating every
    /// parameter first — a bad request must come back as a rejection
    /// reason, never reach a panicking constructor.
    ///
    /// # Errors
    ///
    /// A human-readable rejection reason.
    pub fn build(&self) -> Result<(Circuit, u64), String> {
        match self {
            CircuitSpec::Grover { n, marked } => {
                if !(1..=MAX_QUBITS).contains(n) {
                    return Err(format!("grover: n must be in 1..={MAX_QUBITS}, got {n}"));
                }
                if *marked >= 1u64 << n {
                    return Err(format!("grover: marked {marked} out of range for n={n}"));
                }
                Ok((grover(*n, *marked), 0))
            }
            CircuitSpec::Bwt {
                height,
                steps,
                seed,
            } => {
                if !(1..=6).contains(height) {
                    return Err(format!("bwt: height must be in 1..=6, got {height}"));
                }
                if !(1..=10_000).contains(steps) {
                    return Err(format!("bwt: steps must be in 1..=10000, got {steps}"));
                }
                let (c, tree) = bwt(BwtParams {
                    height: *height,
                    steps: *steps,
                    seed: *seed,
                });
                Ok((c, tree.entrance()))
            }
            CircuitSpec::Gse {
                precision_bits,
                trotter_slices,
            } => {
                if !(1..=12).contains(precision_bits) {
                    return Err(format!(
                        "gse: precision_bits must be in 1..=12, got {precision_bits}"
                    ));
                }
                if !(1..=64).contains(trotter_slices) {
                    return Err(format!(
                        "gse: trotter_slices must be in 1..=64, got {trotter_slices}"
                    ));
                }
                let params = GseParams {
                    precision_bits: *precision_bits,
                    trotter_slices: *trotter_slices,
                    ..GseParams::default()
                };
                // the circuit prepares its own initial state (as the
                // figure harness does), so runs start from |0…0⟩
                Ok((aq_circuits::gse(&params), 0))
            }
            CircuitSpec::Qft { n } => {
                if !(1..=MAX_QUBITS).contains(n) {
                    return Err(format!("qft: n must be in 1..={MAX_QUBITS}, got {n}"));
                }
                Ok((qft(*n), 0))
            }
            CircuitSpec::Qasm(src) => {
                let c = aq_circuits::qasm::parse_qasm(src).map_err(|e| e.to_string())?;
                if c.n_qubits() > MAX_QUBITS {
                    return Err(format!(
                        "qasm: {} qubits exceeds the service limit of {MAX_QUBITS}",
                        c.n_qubits()
                    ));
                }
                if c.is_empty() {
                    return Err("qasm: circuit has no operations".into());
                }
                Ok((c, 0))
            }
        }
    }

    /// Canonical label for checkpoints and reports (`grover6x42`,
    /// `qasm@<fingerprint>` …).
    pub fn label(&self) -> String {
        match self {
            CircuitSpec::Grover { n, marked } => format!("grover{n}x{marked}"),
            CircuitSpec::Bwt {
                height,
                steps,
                seed,
            } => format!("bwt_h{height}s{steps}x{seed:x}"),
            CircuitSpec::Gse {
                precision_bits,
                trotter_slices,
            } => format!("gse_p{precision_bits}t{trotter_slices}"),
            CircuitSpec::Qft { n } => format!("qft{n}"),
            CircuitSpec::Qasm(src) => {
                // FNV-1a over the source: stable identity without keeping
                // the text in every label
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in src.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
                format!("qasm@{h:016x}")
            }
        }
    }
}

/// A parsed submission.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// What to simulate.
    pub circuit: CircuitSpec,
    /// Which weight system to run under.
    pub scheme: SchemeSpec,
    /// Queue priority, 0 (lowest) to 9; higher runs first.
    pub priority: u8,
    /// Mandatory resource budget (admission rejects unlimited budgets —
    /// a multi-tenant service must not host unbounded jobs).
    pub budget: RunBudget,
    /// Checkpoint file to resume from.
    pub resume: Option<PathBuf>,
    /// Top measurement probabilities to report.
    pub top_k: usize,
    /// Set for the `sample` verb: draw this many seeded shots from the
    /// final state instead of reporting amplitudes. Mutually exclusive
    /// with `resume` (a shot stream has no mid-point checkpoint).
    pub sample: Option<SampleParams>,
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job (the `submit` verb, or `sample` when
    /// [`SubmitRequest::sample`] is set).
    Submit(Box<SubmitRequest>),
    /// Query a job's state.
    Status {
        /// Job id.
        job: u64,
    },
    /// Block until a job reaches a terminal state (or the timeout).
    Wait {
        /// Job id.
        job: u64,
        /// Give up after this long.
        timeout: Duration,
    },
    /// Fetch service metrics.
    Metrics,
    /// Stop admission and wait for in-flight work to finish.
    Drain,
    /// Stop admission, evict the queue, cancel running jobs (they
    /// checkpoint), stop the workers.
    Shutdown,
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// A human-readable protocol error (malformed JSON, missing or
    /// ill-typed fields, unknown verb).
    pub fn parse(line: &str) -> Result<Request, String> {
        if line.trim().is_empty() {
            return Err("empty request".into());
        }
        let v = Json::parse(line).map_err(|e| e.to_string())?;
        let verb = v
            .get("verb")
            .and_then(Json::as_str)
            .ok_or("missing string field `verb`")?;
        match verb {
            "submit" => Ok(Request::Submit(Box::new(parse_submit(&v)?))),
            "sample" => {
                let mut submit = parse_submit(&v)?;
                if submit.resume.is_some() {
                    return Err("sample jobs cannot resume from a checkpoint".into());
                }
                let shots = opt_u64(&v, "shots")?.unwrap_or(1024);
                if !(1..=MAX_SHOTS).contains(&shots) {
                    return Err(format!("shots must be in 1..={MAX_SHOTS}, got {shots}"));
                }
                let seed = opt_u64(&v, "seed")?.unwrap_or(0);
                submit.sample = Some(SampleParams { shots, seed });
                Ok(Request::Submit(Box::new(submit)))
            }
            "status" => Ok(Request::Status {
                job: require_u64(&v, "job")?,
            }),
            "wait" => Ok(Request::Wait {
                job: require_u64(&v, "job")?,
                timeout: Duration::from_secs_f64(
                    opt_f64(&v, "timeout_secs")?
                        .unwrap_or(60.0)
                        .clamp(0.0, 600.0),
                ),
            }),
            "metrics" => Ok(Request::Metrics),
            "drain" => Ok(Request::Drain),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown verb `{other}`")),
        }
    }
}

fn require_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field `{key}`"))
}

fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(j) => j
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field `{key}` must be a non-negative integer")),
    }
}

fn require_u32(v: &Json, key: &str) -> Result<u32, String> {
    let n = require_u64(v, key)?;
    u32::try_from(n).map_err(|_| format!("field `{key}` must fit in 32 bits, got {n}"))
}

fn opt_u32_or(v: &Json, key: &str, default: u32) -> Result<u32, String> {
    match opt_u64(v, key)? {
        None => Ok(default),
        Some(n) => {
            u32::try_from(n).map_err(|_| format!("field `{key}` must fit in 32 bits, got {n}"))
        }
    }
}

fn checked_usize(key: &str, n: u64) -> Result<usize, String> {
    usize::try_from(n).map_err(|_| format!("field `{key}` value {n} does not fit in usize"))
}

fn opt_f64(v: &Json, key: &str) -> Result<Option<f64>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(j) => j
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("field `{key}` must be a number")),
    }
}

fn parse_submit(v: &Json) -> Result<SubmitRequest, String> {
    let circuit = if let Some(src) = v.get("qasm").and_then(Json::as_str) {
        CircuitSpec::Qasm(src.to_string())
    } else {
        match v.get("circuit").and_then(Json::as_str) {
            Some("grover") => CircuitSpec::Grover {
                n: require_u32(v, "n")?,
                marked: require_u64(v, "marked")?,
            },
            Some("bwt") => CircuitSpec::Bwt {
                height: require_u32(v, "height")?,
                steps: require_u32(v, "steps")?,
                seed: opt_u64(v, "seed")?.unwrap_or(0xBD7),
            },
            Some("gse") => CircuitSpec::Gse {
                precision_bits: opt_u32_or(v, "precision_bits", 4)?,
                trotter_slices: opt_u32_or(v, "trotter_slices", 1)?,
            },
            Some("qft") => CircuitSpec::Qft {
                n: require_u32(v, "n")?,
            },
            Some(other) => {
                return Err(format!(
                    "unknown circuit `{other}` (expected grover|bwt|gse|qft, or inline `qasm`)"
                ))
            }
            None => return Err("submit needs either `circuit` or `qasm`".into()),
        }
    };

    let scheme = match v.get("scheme").and_then(Json::as_str) {
        Some("numeric") | None => SchemeSpec::Numeric {
            eps: opt_f64(v, "eps")?.unwrap_or(1e-10),
        },
        Some("qomega") => SchemeSpec::Qomega,
        Some("gcd") => SchemeSpec::Gcd,
        Some(other) => {
            return Err(format!(
                "unknown scheme `{other}` (expected numeric|qomega|gcd)"
            ))
        }
    };
    if let SchemeSpec::Numeric { eps } = &scheme {
        if !(0.0..=1.0).contains(eps) {
            return Err(format!("eps must be in [0, 1], got {eps}"));
        }
    }

    let priority = opt_u64(v, "priority")?.unwrap_or(0);
    let priority =
        u8::try_from(priority).map_err(|_| format!("priority must be 0..=9, got {priority}"))?;
    if priority > 9 {
        return Err(format!("priority must be 0..=9, got {priority}"));
    }

    let budget_json = v.get("budget").cloned().unwrap_or(Json::Null);
    let mut budget = RunBudget::unlimited();
    if let Some(n) = opt_u64(&budget_json, "max_nodes")? {
        budget = budget.with_max_nodes(checked_usize("max_nodes", n)?);
    }
    if let Some(n) = opt_u64(&budget_json, "max_weights")? {
        budget = budget.with_max_distinct_weights(checked_usize("max_weights", n)?);
    }
    if let Some(n) = opt_u64(&budget_json, "max_bits")? {
        budget = budget.with_max_weight_bits(n);
    }
    if let Some(s) = opt_f64(&budget_json, "deadline_secs")? {
        if !(0.0..=3600.0).contains(&s) {
            return Err(format!("deadline_secs must be in [0, 3600], got {s}"));
        }
        budget = budget.with_deadline(Duration::from_secs_f64(s));
    }

    let resume = match v.get("resume") {
        None | Some(Json::Null) => None,
        Some(j) => Some(PathBuf::from(
            j.as_str().ok_or("field `resume` must be a path string")?,
        )),
    };

    let top_k = checked_usize("top_k", opt_u64(v, "top_k")?.unwrap_or(4).min(64))?;

    Ok(SubmitRequest {
        circuit,
        scheme,
        priority,
        budget,
        resume,
        top_k,
        sample: None,
    })
}

/// Renders a protocol-level error response.
pub fn error_response(message: &str) -> String {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::str(message)),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_submit() {
        let line = r#"{"verb":"submit","circuit":"grover","n":6,"marked":42,
            "scheme":"numeric","eps":1e-10,"priority":3,"top_k":2,
            "budget":{"max_nodes":100000,"deadline_secs":5}}"#;
        let Request::Submit(s) = Request::parse(line).expect("parse") else {
            panic!("expected submit");
        };
        assert_eq!(s.circuit, CircuitSpec::Grover { n: 6, marked: 42 });
        assert_eq!(s.scheme, SchemeSpec::Numeric { eps: 1e-10 });
        assert_eq!(s.priority, 3);
        assert_eq!(s.top_k, 2);
        assert_eq!(s.budget.max_nodes, Some(100_000));
        assert_eq!(s.budget.deadline, Some(Duration::from_secs_f64(5.0)),);
    }

    #[test]
    fn parses_a_sample_submit() {
        let line = r#"{"verb":"sample","qasm":"OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0], q[1];\n",
            "scheme":"gcd","shots":512,"seed":41,"budget":{"max_nodes":100000}}"#;
        let Request::Submit(s) = Request::parse(line).expect("parse") else {
            panic!("expected submit");
        };
        assert_eq!(
            s.sample,
            Some(SampleParams {
                shots: 512,
                seed: 41
            })
        );
        assert_eq!(s.scheme, SchemeSpec::Gcd);
        assert!(s.resume.is_none());

        // shots and seed default when omitted
        let line = r#"{"verb":"sample","circuit":"qft","n":3,"budget":{"max_nodes":1000}}"#;
        let Request::Submit(s) = Request::parse(line).expect("parse") else {
            panic!("expected submit");
        };
        assert_eq!(
            s.sample,
            Some(SampleParams {
                shots: 1024,
                seed: 0
            })
        );

        // a plain submit never carries sample parameters
        let line = r#"{"verb":"submit","circuit":"qft","n":3,"budget":{"max_nodes":1000}}"#;
        let Request::Submit(s) = Request::parse(line).expect("parse") else {
            panic!("expected submit");
        };
        assert_eq!(s.sample, None);
    }

    #[test]
    fn sample_rejects_bad_shots_and_resume() {
        for (line, needle) in [
            (
                r#"{"verb":"sample","circuit":"qft","n":3,"shots":0}"#,
                "shots must be in",
            ),
            (
                r#"{"verb":"sample","circuit":"qft","n":3,"shots":2000000}"#,
                "shots must be in",
            ),
            (
                r#"{"verb":"sample","circuit":"qft","n":3,"resume":"/tmp/x.aqckp"}"#,
                "cannot resume",
            ),
        ] {
            let err = Request::parse(line).expect_err(line);
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn rejects_malformed_requests_with_reasons() {
        for (line, needle) in [
            ("", "empty"),
            ("{\"verb\":\"submit\"}", "`circuit` or `qasm`"),
            ("{\"verb\":\"fly\"}", "unknown verb"),
            ("{\"job\":1}", "verb"),
            ("not json", "invalid JSON"),
            (
                "{\"verb\":\"submit\",\"circuit\":\"grover\",\"n\":6,\"marked\":42,\"scheme\":\"vortex\"}",
                "unknown scheme",
            ),
            (
                "{\"verb\":\"submit\",\"circuit\":\"teleport\"}",
                "unknown circuit",
            ),
            ("{\"verb\":\"status\"}", "`job`"),
            (
                "{\"verb\":\"submit\",\"circuit\":\"grover\",\"n\":6,\"marked\":1,\"priority\":12}",
                "priority",
            ),
        ] {
            let err = Request::parse(line).expect_err(line);
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn circuit_specs_validate_and_build() {
        assert!(CircuitSpec::Grover { n: 6, marked: 42 }.build().is_ok());
        assert!(CircuitSpec::Grover { n: 0, marked: 0 }.build().is_err());
        assert!(CircuitSpec::Grover { n: 30, marked: 0 }.build().is_err());
        assert!(CircuitSpec::Grover { n: 3, marked: 9 }.build().is_err());
        assert!(CircuitSpec::Qft { n: 4 }.build().is_ok());
        let (c, start) = CircuitSpec::Bwt {
            height: 2,
            steps: 3,
            seed: 7,
        }
        .build()
        .expect("bwt builds");
        assert!(start < 1 << c.n_qubits());
        assert!(CircuitSpec::Qasm("garbage".into()).build().is_err());
        let qasm = "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0], q[1];\n";
        assert!(CircuitSpec::Qasm(qasm.into()).build().is_ok());
    }

    #[test]
    fn labels_are_stable_and_distinct() {
        assert_eq!(
            CircuitSpec::Grover { n: 6, marked: 42 }.label(),
            "grover6x42"
        );
        let a = CircuitSpec::Qasm("h q[0];".into()).label();
        let b = CircuitSpec::Qasm("x q[0];".into()).label();
        assert_ne!(a, b);
        assert_eq!(a, CircuitSpec::Qasm("h q[0];".into()).label());
    }
}
