//! A bounded, scheme-aware priority job queue with per-class sub-queues.
//!
//! Admission control happens at push time: a full queue refuses the job
//! with a structured reason instead of blocking the submitter (the
//! service's back-pressure story is *reject-with-reason*, not unbounded
//! buffering). Workers pop the highest-priority job matching their pinned
//! scheme class; FIFO order breaks priority ties so equal-priority jobs
//! cannot starve each other.
//!
//! Each [`SchemeClass`] has its own job vector and its own condvar under
//! one shared mutex. A push wakes exactly one worker of the matching
//! class (`notify_one` on that class's condvar) instead of every worker
//! in the pool — the single-condvar `notify_all` design woke all workers
//! on every push, and most woke only to find nothing they could run.
//! Closing still broadcasts on every class so exiting workers drain
//! promptly, and [`JobQueue::pop`] returns `None` as soon as the queue is
//! closed with no work *of the caller's class* — jobs of other classes
//! never keep a worker blocked.

use crate::lockaudit::{DebugCondvar, DebugMutex, DebugMutexGuard};
use crate::service::SchemeClass;

/// An entry waiting for a worker.
#[derive(Debug)]
pub struct QueuedJob<T> {
    /// Job id (registry key).
    pub id: u64,
    /// 0 (lowest) to 9; higher pops first.
    pub priority: u8,
    /// Admission order, for FIFO tie-breaking.
    pub seq: u64,
    /// Which worker class may run this job.
    pub class: SchemeClass,
    /// The work payload.
    pub payload: T,
}

/// Why a push was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The queue holds `capacity` jobs already.
    Full {
        /// The configured bound.
        capacity: usize,
    },
    /// The queue no longer admits work (drain or shutdown).
    Closed,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Full { capacity } => {
                write!(f, "queue full (capacity {capacity}); retry later")
            }
            AdmissionError::Closed => write!(f, "service is draining; not accepting jobs"),
        }
    }
}

#[derive(Debug)]
struct Inner<T> {
    /// One sub-queue per class, indexed by [`SchemeClass::index`].
    classes: [Vec<QueuedJob<T>>; SchemeClass::COUNT],
    /// Total queued jobs across classes (the admission bound is global).
    len: usize,
    next_seq: u64,
    closed: bool,
}

impl<T> Inner<T> {
    /// The sub-queue for `class` — the one sanctioned class-indexed
    /// access; everything else goes through here.
    fn class_queue(&mut self, class: SchemeClass) -> &mut Vec<QueuedJob<T>> {
        let ci = class.index().min(SchemeClass::COUNT - 1);
        // aq-lint: allow(R8): ci is clamped below COUNT, and SchemeClass::index is dense by construction
        &mut self.classes[ci]
    }
}

/// The shared queue: mutex-protected per-class vectors plus one condvar
/// per class for idle workers of that class. Linear scans within a class
/// are deliberate — the queue is bounded and small (tens of entries), so
/// a heap buys nothing over obvious code.
#[derive(Debug)]
pub struct JobQueue<T> {
    inner: DebugMutex<Inner<T>>,
    available: [DebugCondvar; SchemeClass::COUNT],
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// Creates a queue admitting at most `capacity` waiting jobs (across
    /// all classes).
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            inner: DebugMutex::new(
                "queue.inner",
                Inner {
                    classes: std::array::from_fn(|_| Vec::new()),
                    len: 0,
                    next_seq: 0,
                    closed: false,
                },
            ),
            available: std::array::from_fn(|_| DebugCondvar::new()),
            capacity: capacity.max(1),
        }
    }

    /// Current queue depth across all classes (one lock acquisition).
    pub fn len(&self) -> usize {
        self.lock().len
    }

    /// Whether the queue is empty — a single lock acquisition, not a
    /// `len()` round-trip (the event loop queries depth per tick).
    pub fn is_empty(&self) -> bool {
        self.lock().len == 0
    }

    /// Current depth of each class's sub-queue, indexed by
    /// [`SchemeClass::index`], in one lock acquisition.
    pub fn depths(&self) -> [usize; SchemeClass::COUNT] {
        let inner = self.lock();
        let mut out = [0usize; SchemeClass::COUNT];
        for (depth, class_queue) in out.iter_mut().zip(inner.classes.iter()) {
            *depth = class_queue.len();
        }
        out
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> DebugMutexGuard<'_, Inner<T>> {
        self.inner.lock()
    }

    /// The wake condvar for `class`, via the same clamped lookup as
    /// [`Inner::class_queue`].
    fn waker(&self, class: SchemeClass) -> &DebugCondvar {
        let ci = class.index().min(SchemeClass::COUNT - 1);
        // aq-lint: allow(R8): ci is clamped below COUNT, and SchemeClass::index is dense by construction
        &self.available[ci]
    }

    /// Admits a job, or refuses with a reason. On success exactly one
    /// worker of the job's class is woken.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Full`] at capacity, [`AdmissionError::Closed`]
    /// after [`JobQueue::close`].
    pub fn push(
        &self,
        id: u64,
        priority: u8,
        class: SchemeClass,
        payload: T,
    ) -> Result<(), AdmissionError> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(AdmissionError::Closed);
        }
        if inner.len >= self.capacity {
            return Err(AdmissionError::Full {
                capacity: self.capacity,
            });
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.class_queue(class).push(QueuedJob {
            id,
            priority,
            seq,
            class,
            payload,
        });
        inner.len += 1;
        self.waker(class).notify_one();
        Ok(())
    }

    /// Blocks until a job of `class` is available (returning it), or the
    /// queue is closed and holds no work *of this class* (returning
    /// `None` — the worker should exit). Jobs of other classes never
    /// keep the caller blocked after a close.
    pub fn pop(&self, class: SchemeClass) -> Option<QueuedJob<T>> {
        let mut inner = self.lock();
        loop {
            let queue = inner.class_queue(class);
            if let Some(idx) = best_match(queue) {
                let job = queue.swap_remove(idx);
                inner.len -= 1;
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.waker(class).wait(inner);
        }
    }

    /// Stops admission and wakes every waiting worker of every class.
    /// Already-queued jobs can still be popped (drain) or swept out with
    /// [`JobQueue::evict_all`] (shutdown) /
    /// [`JobQueue::evict_unmatched`] (stranded-job abort).
    pub fn close(&self) {
        self.lock().closed = true;
        for cv in &self.available {
            cv.notify_all();
        }
    }

    /// Whether [`JobQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Wakes every waiter on every class condvar without changing any
    /// state — a deliberate spurious wakeup. Chaos-test machinery for
    /// asserting that [`JobQueue::pop`]'s wait loop re-checks its
    /// predicate instead of trusting the wake; harmless (by that same
    /// contract) if called in production.
    pub fn chaos_notify_all(&self) {
        for cv in &self.available {
            cv.notify_all();
        }
    }

    /// Removes and returns every queued job (shutdown eviction).
    pub fn evict_all(&self) -> Vec<QueuedJob<T>> {
        let mut inner = self.lock();
        let mut jobs = Vec::with_capacity(inner.len);
        for c in &mut inner.classes {
            jobs.append(c);
        }
        inner.len = 0;
        for cv in &self.available {
            cv.notify_all();
        }
        jobs
    }

    /// Removes and returns every queued job whose class fails
    /// `has_worker`. A drain would otherwise hang on these stranded jobs:
    /// no worker of their class exists to run them, so they would sit in
    /// the closed queue keeping the pending count above zero forever.
    /// The caller aborts each returned job with an eviction outcome.
    pub fn evict_unmatched(&self, has_worker: impl Fn(SchemeClass) -> bool) -> Vec<QueuedJob<T>> {
        let mut inner = self.lock();
        let mut jobs = Vec::new();
        for class in SchemeClass::ALL {
            if !has_worker(class) {
                jobs.append(inner.class_queue(class));
            }
        }
        inner.len -= jobs.len();
        jobs
    }
}

/// Index of the best job within one class's sub-queue: highest priority,
/// then lowest sequence number (FIFO within a priority level).
fn best_match<T>(jobs: &[QueuedJob<T>]) -> Option<usize> {
    jobs.iter()
        .enumerate()
        .min_by_key(|(_, j)| (std::cmp::Reverse(j.priority), j.seq))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn admission_rejects_when_full_and_after_close() {
        let q: JobQueue<&str> = JobQueue::new(2);
        q.push(1, 0, SchemeClass::Numeric, "a").unwrap();
        q.push(2, 0, SchemeClass::Numeric, "b").unwrap();
        assert_eq!(
            q.push(3, 0, SchemeClass::Numeric, "c"),
            Err(AdmissionError::Full { capacity: 2 })
        );
        q.close();
        // still rejects, now as closed
        let popped = q.pop(SchemeClass::Numeric).expect("queued work drains");
        assert_eq!(popped.payload, "a");
        assert_eq!(
            q.push(4, 0, SchemeClass::Numeric, "d"),
            Err(AdmissionError::Closed)
        );
    }

    #[test]
    fn pop_orders_by_priority_then_fifo_and_respects_class() {
        let q: JobQueue<u32> = JobQueue::new(16);
        q.push(1, 1, SchemeClass::Numeric, 10).unwrap();
        q.push(2, 9, SchemeClass::Algebraic, 20).unwrap();
        q.push(3, 9, SchemeClass::Numeric, 30).unwrap();
        q.push(4, 9, SchemeClass::Numeric, 40).unwrap();
        assert_eq!(q.len(), 4);
        assert_eq!(q.depths(), [3, 1]);
        assert_eq!(q.pop(SchemeClass::Numeric).unwrap().payload, 30);
        assert_eq!(q.pop(SchemeClass::Numeric).unwrap().payload, 40);
        assert_eq!(q.pop(SchemeClass::Numeric).unwrap().payload, 10);
        assert_eq!(q.pop(SchemeClass::Algebraic).unwrap().payload, 20);
        assert!(q.is_empty());
        q.close();
        assert!(q.pop(SchemeClass::Numeric).is_none(), "closed and empty");
    }

    #[test]
    fn evict_all_empties_the_queue() {
        let q: JobQueue<u32> = JobQueue::new(8);
        q.push(1, 0, SchemeClass::Numeric, 1).unwrap();
        q.push(2, 5, SchemeClass::Algebraic, 2).unwrap();
        let evicted = q.evict_all();
        assert_eq!(evicted.len(), 2);
        assert!(q.is_empty());
        assert_eq!(q.depths(), [0, 0]);
    }

    /// Regression for the drain hang: a closed queue still holding only
    /// class-B jobs must release a class-A worker immediately, and the
    /// stranded class-B jobs must be evictable for abort instead of
    /// sitting in the closed queue forever.
    #[test]
    fn close_releases_worker_of_other_class_and_strands_are_evictable() {
        let q: std::sync::Arc<JobQueue<u32>> = std::sync::Arc::new(JobQueue::new(8));
        // only an algebraic job is queued; the single worker is numeric
        q.push(1, 0, SchemeClass::Algebraic, 42).unwrap();

        let worker = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || q.pop(SchemeClass::Numeric))
        };
        // let the worker reach its wait, then close
        std::thread::sleep(Duration::from_millis(50));
        q.close();

        // the numeric worker must come back with None even though a
        // (non-matching) job is still queued
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !worker.is_finished() {
            assert!(
                std::time::Instant::now() < deadline,
                "numeric worker is hung on a queue holding only algebraic work"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(worker.join().unwrap().is_none());

        // the stranded algebraic job is evicted for abort, not forgotten
        let stranded = q.evict_unmatched(|c| c == SchemeClass::Numeric);
        assert_eq!(stranded.len(), 1);
        assert_eq!(stranded[0].payload, 42);
        assert!(q.is_empty());
    }

    /// Targeted wakeups: a push of one class must not leave a worker of
    /// that class sleeping (liveness), delivered through the class's own
    /// condvar rather than a broadcast.
    #[test]
    fn push_wakes_a_worker_of_the_matching_class() {
        let q: std::sync::Arc<JobQueue<u32>> = std::sync::Arc::new(JobQueue::new(8));
        let worker = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || q.pop(SchemeClass::Algebraic).map(|j| j.payload))
        };
        std::thread::sleep(Duration::from_millis(50));
        q.push(7, 0, SchemeClass::Algebraic, 77).unwrap();
        assert_eq!(worker.join().unwrap(), Some(77));
    }
}
