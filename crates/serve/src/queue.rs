//! A bounded, scheme-aware priority job queue.
//!
//! Admission control happens at push time: a full queue refuses the job
//! with a structured reason instead of blocking the submitter (the
//! service's back-pressure story is *reject-with-reason*, not unbounded
//! buffering). Workers pop the highest-priority job matching their pinned
//! scheme class; FIFO order breaks priority ties so equal-priority jobs
//! cannot starve each other.

use crate::lockaudit::{DebugCondvar, DebugMutex, DebugMutexGuard};
use crate::service::SchemeClass;

/// An entry waiting for a worker.
#[derive(Debug)]
pub struct QueuedJob<T> {
    /// Job id (registry key).
    pub id: u64,
    /// 0 (lowest) to 9; higher pops first.
    pub priority: u8,
    /// Admission order, for FIFO tie-breaking.
    pub seq: u64,
    /// Which worker class may run this job.
    pub class: SchemeClass,
    /// The work payload.
    pub payload: T,
}

/// Why a push was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The queue holds `capacity` jobs already.
    Full {
        /// The configured bound.
        capacity: usize,
    },
    /// The queue no longer admits work (drain or shutdown).
    Closed,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Full { capacity } => {
                write!(f, "queue full (capacity {capacity}); retry later")
            }
            AdmissionError::Closed => write!(f, "service is draining; not accepting jobs"),
        }
    }
}

#[derive(Debug)]
struct Inner<T> {
    jobs: Vec<QueuedJob<T>>,
    next_seq: u64,
    closed: bool,
}

/// The shared queue: a mutex-protected vector plus a condvar for idle
/// workers. Linear scans are deliberate — the queue is bounded and small
/// (tens of entries), so a heap buys nothing over obvious code.
#[derive(Debug)]
pub struct JobQueue<T> {
    inner: DebugMutex<Inner<T>>,
    available: DebugCondvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// Creates a queue admitting at most `capacity` waiting jobs.
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            inner: DebugMutex::new(
                "queue.inner",
                Inner {
                    jobs: Vec::new(),
                    next_seq: 0,
                    closed: false,
                },
            ),
            available: DebugCondvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.lock().jobs.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> DebugMutexGuard<'_, Inner<T>> {
        self.inner.lock()
    }

    /// Admits a job, or refuses with a reason.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Full`] at capacity, [`AdmissionError::Closed`]
    /// after [`JobQueue::close`].
    pub fn push(
        &self,
        id: u64,
        priority: u8,
        class: SchemeClass,
        payload: T,
    ) -> Result<(), AdmissionError> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(AdmissionError::Closed);
        }
        if inner.jobs.len() >= self.capacity {
            return Err(AdmissionError::Full {
                capacity: self.capacity,
            });
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.jobs.push(QueuedJob {
            id,
            priority,
            seq,
            class,
            payload,
        });
        self.available.notify_all();
        Ok(())
    }

    /// Blocks until a job matching `class` is available (returning it),
    /// or the queue is closed *and* holds no matching work (returning
    /// `None` — the worker should exit).
    pub fn pop(&self, class: SchemeClass) -> Option<QueuedJob<T>> {
        let mut inner = self.lock();
        loop {
            if let Some(idx) = best_match(&inner.jobs, class) {
                return Some(inner.jobs.swap_remove(idx));
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner);
        }
    }

    /// Stops admission and wakes every waiting worker. Already-queued
    /// jobs can still be popped (drain) or swept out with
    /// [`JobQueue::evict_all`] (shutdown).
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// Whether [`JobQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Removes and returns every queued job (shutdown eviction).
    pub fn evict_all(&self) -> Vec<QueuedJob<T>> {
        let mut inner = self.lock();
        let jobs = std::mem::take(&mut inner.jobs);
        self.available.notify_all();
        jobs
    }
}

/// Index of the best job for `class`: highest priority, then lowest
/// sequence number (FIFO within a priority level).
fn best_match<T>(jobs: &[QueuedJob<T>], class: SchemeClass) -> Option<usize> {
    jobs.iter()
        .enumerate()
        .filter(|(_, j)| j.class == class)
        .min_by_key(|(_, j)| (std::cmp::Reverse(j.priority), j.seq))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_rejects_when_full_and_after_close() {
        let q: JobQueue<&str> = JobQueue::new(2);
        q.push(1, 0, SchemeClass::Numeric, "a").unwrap();
        q.push(2, 0, SchemeClass::Numeric, "b").unwrap();
        assert_eq!(
            q.push(3, 0, SchemeClass::Numeric, "c"),
            Err(AdmissionError::Full { capacity: 2 })
        );
        q.close();
        // still rejects, now as closed
        let popped = q.pop(SchemeClass::Numeric).expect("queued work drains");
        assert_eq!(popped.payload, "a");
        assert_eq!(
            q.push(4, 0, SchemeClass::Numeric, "d"),
            Err(AdmissionError::Closed)
        );
    }

    #[test]
    fn pop_orders_by_priority_then_fifo_and_respects_class() {
        let q: JobQueue<u32> = JobQueue::new(16);
        q.push(1, 1, SchemeClass::Numeric, 10).unwrap();
        q.push(2, 9, SchemeClass::Algebraic, 20).unwrap();
        q.push(3, 9, SchemeClass::Numeric, 30).unwrap();
        q.push(4, 9, SchemeClass::Numeric, 40).unwrap();
        assert_eq!(q.pop(SchemeClass::Numeric).unwrap().payload, 30);
        assert_eq!(q.pop(SchemeClass::Numeric).unwrap().payload, 40);
        assert_eq!(q.pop(SchemeClass::Numeric).unwrap().payload, 10);
        assert_eq!(q.pop(SchemeClass::Algebraic).unwrap().payload, 20);
        q.close();
        assert!(q.pop(SchemeClass::Numeric).is_none(), "closed and empty");
    }

    #[test]
    fn evict_all_empties_the_queue() {
        let q: JobQueue<u32> = JobQueue::new(8);
        q.push(1, 0, SchemeClass::Numeric, 1).unwrap();
        q.push(2, 5, SchemeClass::Algebraic, 2).unwrap();
        let evicted = q.evict_all();
        assert_eq!(evicted.len(), 2);
        assert!(q.is_empty());
    }
}
