//! Static-vs-runtime lock-order agreement: `aq-lint`'s R9 pass extracts
//! a held→acquired graph from the workspace *sources*; the `lock-audit`
//! instrumentation records the graph the running service *actually*
//! exhibits. This suite proves the two contracts the design demands:
//!
//! 1. the static graph is acyclic (no possible acquisition deadlock), and
//! 2. the static graph is a superset of every runtime-observed graph —
//!    the analyzer never misses an ordering the service really performs.
//!
//! Static edges the workload does not exercise are coverage gaps, not
//! bugs; they are printed as warnings.

#![cfg(feature = "lock-audit")]

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use aq_analyze::{run_workspace, LintConfig};
use aq_dd::RunBudget;
use aq_serve::{
    lockaudit, CircuitSpec, Client, Response, SchemeClass, ServeConfig, ServeCore, SubmitRequest,
};
use aq_sim::{SampleParams, SchemeSpec};

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aq-lockdiff-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn static_lock_graph_is_acyclic_and_covers_the_runtime_graph() {
    // ---- 1. the static graph, from the real workspace sources ----
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report =
        run_workspace(&root, &LintConfig::for_workspace(), None).expect("workspace source scan");
    let graph = &report.lock_graph;
    assert!(
        graph.nodes.iter().any(|n| n == "serve.registry"),
        "the serve stack's audited locks appear as nodes: {:?}",
        graph.nodes
    );
    assert_eq!(
        graph.cycle(),
        None,
        "static acquisition order must form a DAG:\n{}",
        graph.dot()
    );

    // ---- 2. a real workload feeding the runtime auditor ----
    lockaudit::reset();
    let cfg = ServeConfig {
        workers: vec![SchemeClass::Numeric, SchemeClass::Algebraic],
        queue_capacity: 16,
        checkpoint_dir: test_dir("workload"),
        ..ServeConfig::default()
    };
    let core = ServeCore::start(cfg).expect("start worker pool");
    let client = Client::new(Arc::clone(&core));
    // One job per lane plus a sampled one: exercises submit, the queue,
    // the registry, the result cache, status polling and metrics.
    for (scheme, sample) in [
        (SchemeSpec::Numeric { eps: 1e-10 }, None),
        (SchemeSpec::Qomega, None),
        (
            SchemeSpec::Numeric { eps: 1e-10 },
            Some(SampleParams { shots: 32, seed: 3 }),
        ),
    ] {
        let submitted = client.submit(SubmitRequest {
            circuit: CircuitSpec::Grover { n: 4, marked: 11 },
            scheme,
            priority: 0,
            budget: RunBudget::unlimited().with_max_nodes(2_000_000),
            resume: None,
            top_k: 2,
            sample,
        });
        let job = match submitted {
            Response::Submitted { job } => job,
            other => panic!("expected Submitted, got {other:?}"),
        };
        client.wait(job, Duration::from_secs(120));
    }
    let _ = core.handle(aq_serve::Request::Metrics);
    client.drain();
    client.shutdown();

    // ---- 3. runtime ⊆ static, and the runtime saw no cycle either ----
    let cycles = lockaudit::detected_cycles();
    assert!(cycles.is_empty(), "runtime lock-order cycles: {cycles:?}");
    let runtime: Vec<(String, String)> = lockaudit::lock_order_edges()
        .into_iter()
        .map(|(a, b)| (a.to_string(), b.to_string()))
        .collect();
    let diff = graph.diff(&runtime);
    assert!(
        diff.missing_static.is_empty(),
        "the service performed lock orderings the static graph missed \
         (analyzer gap): {:?}\nstatic graph:\n{}\nruntime graph:\n{}",
        diff.missing_static,
        graph.dot(),
        lockaudit::dot_graph()
    );
    for (a, b) in &diff.unexercised {
        eprintln!("warning: static edge `{a}` -> `{b}` not exercised by this workload");
    }
}
