//! Exercises the `lock-audit` instrumentation itself: the detector must
//! fire on an artificial A→B / B→A ordering inversion, on a condvar wait
//! entered while another lock is held, and on a blocking operation under
//! a lock — and the DOT dump must name the offending edges.
//!
//! The audit graph is process-global, so everything lives in ONE test
//! function: a second `#[test]` in this binary would race on the shared
//! graph and make the assertions flaky. The real-service no-cycle checks
//! live in `concurrency.rs` (a separate test binary, so the artificial
//! cycle created here cannot contaminate them).

#![cfg(feature = "lock-audit")]

use std::time::Duration;

use aq_serve::lockaudit::{self, blocking_op, DebugCondvar, DebugMutex, DebugRwLock};

#[test]
fn detector_reports_cycles_and_hazards() {
    lockaudit::reset();

    static A: DebugMutex<u32> = DebugMutex::new("test.A", 0);
    static B: DebugMutex<u32> = DebugMutex::new("test.B", 0);

    // Establish the order A → B...
    {
        let ga = A.lock();
        let gb = B.lock();
        assert_eq!(*ga + *gb, 0);
    }
    assert!(
        lockaudit::detected_cycles().is_empty(),
        "a single consistent order is not a cycle"
    );
    assert!(
        lockaudit::lock_order_edges().contains(&("test.A", "test.B")),
        "edge A→B must be recorded: {:?}",
        lockaudit::lock_order_edges()
    );

    // ...then invert it: B → A closes the cycle. Single-threaded, so no
    // actual deadlock — the graph catches the *potential* one.
    {
        let gb = B.lock();
        let ga = A.lock();
        assert_eq!(*ga + *gb, 0);
    }
    let cycles = lockaudit::detected_cycles();
    assert_eq!(cycles.len(), 1, "exactly the B→A inversion: {cycles:?}");
    assert!(
        cycles[0].contains("test.B") && cycles[0].contains("test.A"),
        "cycle report must name both locks: {}",
        cycles[0]
    );

    // Recursive acquisition of the same lock is reported as a self-cycle.
    static R: DebugMutex<u32> = DebugMutex::new("test.R", 0);
    {
        let _g1 = R.lock();
        // Intentionally NOT taking R again — that would really deadlock.
        // Instead simulate via the rwlock: read-under-read is the same
        // name twice on the held stack.
        static RW: DebugRwLock<u32> = DebugRwLock::new("test.RW", 0);
        let r1 = RW.read();
        let r2 = RW.read();
        assert_eq!(*r1, *r2);
    }
    assert!(
        lockaudit::detected_cycles()
            .iter()
            .any(|c| c.contains("test.RW")),
        "re-entrant read of the same rwlock is flagged as a self-cycle: {:?}",
        lockaudit::detected_cycles()
    );

    // Waiting on a condvar while holding a *different* lock is a hazard:
    // the wait releases only its own mutex.
    static CV: DebugCondvar = DebugCondvar::new();
    static WAITED: DebugMutex<bool> = DebugMutex::new("test.waited", false);
    static HELD: DebugMutex<u32> = DebugMutex::new("test.held", 0);
    {
        let _outer = HELD.lock();
        let gw = WAITED.lock();
        let (_gw, timed_out) = CV.wait_timeout(gw, Duration::from_millis(10));
        assert!(
            timed_out.timed_out(),
            "nobody notifies; the wait must time out"
        );
    }
    let hazards = lockaudit::detected_hazards();
    assert!(
        hazards
            .iter()
            .any(|h| h.contains("test.waited") && h.contains("test.held")),
        "wait-with-lock-held hazard must name both locks: {hazards:?}"
    );

    // A blocking operation with a lock held is the other hazard class.
    {
        let _g = HELD.lock();
        blocking_op("artificial sleep");
    }
    let hazards = lockaudit::detected_hazards();
    assert!(
        hazards
            .iter()
            .any(|h| h.contains("artificial sleep") && h.contains("test.held")),
        "blocking-op hazard must name the op and the held lock: {hazards:?}"
    );

    // The DOT dump names the edges in both directions of the inversion.
    let dot = lockaudit::dot_graph();
    assert!(dot.starts_with("digraph lock_order"), "dot header: {dot}");
    assert!(
        dot.contains("\"test.A\" -> \"test.B\"") && dot.contains("\"test.B\" -> \"test.A\""),
        "dot dump must show both directions of the inversion:\n{dot}"
    );

    // reset() wipes everything for the next diagnostic session.
    lockaudit::reset();
    assert!(lockaudit::detected_cycles().is_empty());
    assert!(lockaudit::detected_hazards().is_empty());
    assert!(lockaudit::lock_order_edges().is_empty());
}
