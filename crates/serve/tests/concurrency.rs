//! Multi-threaded service smoke tests: N client threads × M jobs over a
//! 4-worker pool, mixed schemes, budget aborts with checkpointed resume,
//! and metrics reconciliation. Job mixes are deterministic per thread
//! (seeded [`aq_testutil::Rng`]), so failures replay.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use aq_dd::RunBudget;
use aq_serve::{
    CircuitSpec, Client, JobState, JobStatusReport, Response, SchemeClass, ServeConfig, ServeCore,
    SubmitRequest,
};
use aq_sim::{JobOutcome, SampleParams, SchemeSpec};
use aq_testutil::Rng;

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aq-serve-test-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn submit(circuit: CircuitSpec, scheme: SchemeSpec, budget: RunBudget) -> SubmitRequest {
    SubmitRequest {
        circuit,
        scheme,
        priority: 0,
        budget,
        resume: None,
        top_k: 4,
        sample: None,
    }
}

fn submitted_id(response: Response) -> u64 {
    match response {
        Response::Submitted { job } => job,
        other => panic!("expected Submitted, got {other:?}"),
    }
}

fn wait_terminal(client: &Client, job: u64) -> JobStatusReport {
    match client.wait(job, Duration::from_secs(120)) {
        Response::Status(report) => {
            assert!(report.state.is_terminal(), "wait returned {report:?}");
            *report
        }
        other => panic!("expected Status for job {job}, got {other:?}"),
    }
}

fn outcome(report: &JobStatusReport) -> &JobOutcome {
    report
        .outcome
        .as_ref()
        .expect("terminal job carries an outcome")
}

#[test]
fn mixed_batch_over_four_workers_reconciles_and_is_deterministic() {
    let cfg = ServeConfig {
        workers: vec![
            SchemeClass::Numeric,
            SchemeClass::Numeric,
            SchemeClass::Algebraic,
            SchemeClass::Algebraic,
        ],
        queue_capacity: 64,
        checkpoint_dir: test_dir("mixed"),
        ..ServeConfig::default()
    };
    let core = ServeCore::start(cfg).expect("start worker pool");
    let client = Client::new(Arc::clone(&core));

    const THREADS: u64 = 4;
    const JOBS_PER_THREAD: u64 = 9; // 36 total: >= 32 mixed jobs
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let client = client.clone();
            std::thread::spawn(move || {
                let mut rng = Rng::from_seed(1000 + t);
                let mut jobs = Vec::new();
                let mut expected_aborts = Vec::new();
                for j in 0..JOBS_PER_THREAD {
                    let roomy = RunBudget::unlimited().with_max_nodes(2_000_000);
                    let req = match j % 4 {
                        // Numeric Grover of varying size; always completes.
                        0 => {
                            let n = 4 + rng.below(2) as u32;
                            let marked = rng.below(1 << n);
                            submit(
                                CircuitSpec::Grover { n, marked },
                                SchemeSpec::Numeric { eps: 1e-10 },
                                roomy,
                            )
                        }
                        // Exact Q[omega] Grover on the algebraic lane.
                        1 => submit(
                            CircuitSpec::Grover {
                                n: 4,
                                marked: rng.below(16),
                            },
                            SchemeSpec::Qomega,
                            roomy,
                        ),
                        // Exact D[omega]/GCD Grover on the algebraic lane.
                        2 => submit(
                            CircuitSpec::Grover {
                                n: 4,
                                marked: rng.below(16),
                            },
                            SchemeSpec::Gcd,
                            roomy,
                        ),
                        // Starved budget: aborts with a checkpoint.
                        _ => submit(
                            CircuitSpec::Grover { n: 6, marked: 45 },
                            SchemeSpec::Numeric { eps: 1e-10 },
                            RunBudget::unlimited().with_max_nodes(20),
                        ),
                    };
                    let id = submitted_id(client.submit(req));
                    if j % 4 == 3 {
                        expected_aborts.push(id);
                    }
                    jobs.push(id);
                }
                // One deliberately bad submission per thread: a budget is
                // mandatory, so this must be rejected (and counted).
                match client.submit(submit(
                    CircuitSpec::Grover { n: 4, marked: 1 },
                    SchemeSpec::Numeric { eps: 1e-10 },
                    RunBudget::unlimited(),
                )) {
                    Response::Rejected { reason, .. } => {
                        assert!(reason.contains("budget"), "unexpected reason: {reason}")
                    }
                    other => panic!("unbudgeted submit must be rejected, got {other:?}"),
                }
                // The canonical job every thread submits identically: its
                // outcome must be byte-for-byte reproducible.
                let canonical = submitted_id(client.submit(submit(
                    CircuitSpec::Grover { n: 5, marked: 19 },
                    SchemeSpec::Numeric { eps: 1e-10 },
                    RunBudget::unlimited().with_max_nodes(2_000_000),
                )));

                let reports: Vec<JobStatusReport> =
                    jobs.iter().map(|&id| wait_terminal(&client, id)).collect();
                for (report, &id) in reports.iter().zip(&jobs) {
                    if expected_aborts.contains(&id) {
                        assert_eq!(report.state, JobState::Aborted, "job {id}");
                        let abort = outcome(report).aborted.as_ref().unwrap();
                        assert!(!abort.reason.is_empty());
                        assert!(!abort.evicted, "budget aborts are not evictions");
                    }
                }
                let canonical_report = wait_terminal(&client, canonical);
                assert_eq!(canonical_report.state, JobState::Completed);
                canonical_report
            })
        })
        .collect();

    let canonical_reports: Vec<JobStatusReport> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Determinism across workers and client threads: identical submissions
    // produce bit-identical amplitudes and node counts.
    let first = outcome(&canonical_reports[0]);
    assert_eq!(first.top_probabilities[0].0, 19, "Grover finds the mark");
    for report in &canonical_reports[1..] {
        let o = outcome(report);
        assert_eq!(o.top_probabilities, first.top_probabilities);
        assert_eq!(o.final_nodes, first.final_nodes);
        assert_eq!(o.gates_applied, first.gates_applied);
    }

    match client.drain() {
        Response::Drained { .. } => {}
        other => panic!("expected Drained, got {other:?}"),
    }
    let m = client.metrics();
    let accepted = THREADS * (JOBS_PER_THREAD + 1);
    assert_eq!(m.submitted, accepted + THREADS); // + the rejected ones
    assert_eq!(m.rejected, THREADS);
    assert_eq!(m.completed + m.aborted, accepted);
    // j % 4 == 3 hits j = 3 and j = 7: two starved-budget jobs per thread.
    assert_eq!(m.aborted, THREADS * 2);
    assert!(m.reconciles(), "metrics must reconcile: {m:?}");
    assert_eq!(m.evicted, 0);
    // Identical submissions (the canonical job, repeated Grover shapes)
    // may be answered by the result cache without touching a worker; every
    // accepted job either ran on a worker or was cache-served.
    let worker_jobs: u64 = m.workers.iter().map(|w| w.stats.jobs).sum();
    assert_eq!(
        worker_jobs + m.cache_served,
        accepted,
        "every accepted job ran on a worker or came from the result cache"
    );
    assert_eq!(m.cache.hits, m.cache_served);
    assert_eq!(m.latency_counts.iter().sum::<u64>(), accepted);
    assert!(
        m.workers
            .iter()
            .filter(|w| w.class == SchemeClass::Algebraic)
            .map(|w| w.stats.jobs)
            .sum::<u64>()
            >= THREADS * 2,
        "algebraic jobs must run on algebraic-pinned workers"
    );

    // Under `--features lock-audit` the whole workload above fed the
    // lock-order graph; the service discipline is "never hold two locks",
    // so the graph must be cycle- and hazard-free.
    #[cfg(feature = "lock-audit")]
    {
        let cycles = aq_serve::lockaudit::detected_cycles();
        assert!(
            cycles.is_empty(),
            "lock-order cycles detected: {cycles:?}\ngraph:\n{}",
            aq_serve::lockaudit::dot_graph()
        );
        let hazards = aq_serve::lockaudit::detected_hazards();
        assert!(hazards.is_empty(), "lock hazards detected: {hazards:?}");
    }
}

#[test]
fn budget_abort_checkpoints_and_resume_completes_bit_identically() {
    let cfg = ServeConfig {
        workers: vec![SchemeClass::Numeric],
        queue_capacity: 8,
        checkpoint_dir: test_dir("resume"),
        ..ServeConfig::default()
    };
    let core = ServeCore::start(cfg).expect("start worker pool");
    let client = Client::new(Arc::clone(&core));
    let circuit = CircuitSpec::Grover { n: 6, marked: 45 };
    let scheme = SchemeSpec::Numeric { eps: 1e-10 };
    let roomy = RunBudget::unlimited().with_max_nodes(5_000_000);

    // 1. Starve a job so it aborts and checkpoints.
    let starved = submitted_id(client.submit(submit(
        circuit.clone(),
        scheme.clone(),
        RunBudget::unlimited().with_max_nodes(24),
    )));
    let report = wait_terminal(&client, starved);
    assert_eq!(report.state, JobState::Aborted);
    let abort = outcome(&report).aborted.clone().unwrap();
    let checkpoint = abort
        .checkpoint
        .expect("budget abort must leave a checkpoint");
    assert!(
        checkpoint.exists(),
        "checkpoint file missing: {checkpoint:?}"
    );

    // 2. Resubmit with `resume` pointing at the checkpoint.
    let resumed = submitted_id(client.submit(SubmitRequest {
        resume: Some(checkpoint),
        ..submit(circuit.clone(), scheme.clone(), roomy)
    }));
    let resumed_report = wait_terminal(&client, resumed);
    assert_eq!(resumed_report.state, JobState::Completed);
    let resumed_outcome = outcome(&resumed_report);
    assert!(resumed_outcome.resumed, "job must pick the checkpoint up");

    // 3. An uninterrupted reference run must match bit-for-bit.
    let reference = submitted_id(client.submit(submit(circuit, scheme, roomy)));
    let reference_report = wait_terminal(&client, reference);
    assert_eq!(reference_report.state, JobState::Completed);
    let reference_outcome = outcome(&reference_report);
    assert!(!reference_outcome.resumed);
    assert_eq!(
        resumed_outcome.top_probabilities, reference_outcome.top_probabilities,
        "resume must be bit-identical to the uninterrupted run"
    );
    assert_eq!(resumed_outcome.final_nodes, reference_outcome.final_nodes);

    // While we have a numeric-only pool: algebraic submissions must be
    // rejected with a pinning reason, not queued forever.
    match client.submit(submit(
        CircuitSpec::Grover { n: 4, marked: 2 },
        SchemeSpec::Qomega,
        RunBudget::unlimited().with_max_nodes(1_000),
    )) {
        Response::Rejected { reason, .. } => {
            assert!(reason.contains("algebraic"), "unexpected reason: {reason}")
        }
        other => panic!("expected Rejected, got {other:?}"),
    }

    let m = client.metrics();
    assert!(m.reconciles(), "metrics must reconcile: {m:?}");
}

#[test]
fn result_cache_hit_is_byte_identical_to_the_cold_run() {
    let cfg = ServeConfig {
        workers: vec![SchemeClass::Numeric, SchemeClass::Algebraic],
        queue_capacity: 8,
        checkpoint_dir: test_dir("cache"),
        ..ServeConfig::default()
    };
    let core = ServeCore::start(cfg).expect("start worker pool");
    let client = Client::new(Arc::clone(&core));
    let budget = RunBudget::unlimited().with_max_nodes(2_000_000);

    // Exercise every weight context: the cache must hand back exactly
    // what the engine computed, for floats and exact rings alike.
    for (i, scheme) in [
        SchemeSpec::Numeric { eps: 1e-10 },
        SchemeSpec::Numeric { eps: 0.0 },
        SchemeSpec::Qomega,
        SchemeSpec::Gcd,
    ]
    .into_iter()
    .enumerate()
    {
        let circuit = CircuitSpec::Grover { n: 5, marked: 19 };
        let cold_id = submitted_id(client.submit(submit(circuit.clone(), scheme.clone(), budget)));
        let cold = wait_terminal(&client, cold_id);
        assert_eq!(cold.state, JobState::Completed);

        let warm_id = submitted_id(client.submit(submit(circuit, scheme, budget)));
        assert_ne!(warm_id, cold_id, "a cache hit is still a new job id");
        let warm = wait_terminal(&client, warm_id);
        assert_eq!(warm.state, JobState::Completed);

        // Byte-identical: every field of the outcome, amplitude bits
        // included, via the full Debug rendering.
        assert_eq!(
            format!("{:?}", outcome(&warm)),
            format!("{:?}", outcome(&cold)),
            "cache-served outcome diverged from the cold run"
        );
        for ((ia, pa), (ib, pb)) in outcome(&warm)
            .top_probabilities
            .iter()
            .zip(&outcome(&cold).top_probabilities)
        {
            assert_eq!(ia, ib);
            assert_eq!(pa.to_bits(), pb.to_bits(), "amplitude bits diverged");
        }

        let served_so_far = (i + 1) as u64;
        let m = client.metrics();
        assert_eq!(m.cache_served, served_so_far);
        assert_eq!(m.cache.hits, served_so_far);
    }

    // A near-identical budget in the same power-of-two class also hits…
    let near = RunBudget::unlimited().with_max_nodes(1_200_000);
    let near_id = submitted_id(client.submit(submit(
        CircuitSpec::Grover { n: 5, marked: 19 },
        SchemeSpec::Qomega,
        near,
    )));
    let near_report = wait_terminal(&client, near_id);
    assert_eq!(near_report.state, JobState::Completed);
    let m = client.metrics();
    assert_eq!(m.cache_served, 5, "same budget class must be served");

    // …but a different top_k is different content.
    let wide = SubmitRequest {
        top_k: 8,
        ..submit(
            CircuitSpec::Grover { n: 5, marked: 19 },
            SchemeSpec::Qomega,
            budget,
        )
    };
    let wide_id = submitted_id(client.submit(wide));
    let wide_report = wait_terminal(&client, wide_id);
    assert_eq!(outcome(&wide_report).top_probabilities.len(), 8);

    let m = client.metrics();
    assert_eq!(m.cache_served, 5, "different top_k must miss");
    let worker_jobs: u64 = m.workers.iter().map(|w| w.stats.jobs).sum();
    assert_eq!(
        worker_jobs + m.cache_served,
        m.completed,
        "cache-served jobs never touch a worker"
    );
    assert!(m.cache_entries >= 5, "cold outcomes are memoized");
    // Warm-session counters: repeat jobs on each lane reuse managers.
    let warm_total: u64 = m.workers.iter().map(|w| w.stats.warm_reuses).sum();
    assert!(
        warm_total >= 1,
        "repeat jobs on one worker must reuse its session"
    );
    assert!(m.reconciles(), "metrics must reconcile: {m:?}");
}

#[test]
fn sample_jobs_flow_through_the_full_lifecycle() {
    let cfg = ServeConfig {
        workers: vec![SchemeClass::Numeric, SchemeClass::Algebraic],
        queue_capacity: 8,
        checkpoint_dir: test_dir("sample"),
        ..ServeConfig::default()
    };
    let core = ServeCore::start(cfg).expect("start worker pool");
    let client = Client::new(Arc::clone(&core));
    let budget = RunBudget::unlimited().with_max_nodes(2_000_000);

    // 10-qubit GHZ as inline QASM: the state every scheme can represent
    // exactly, so exact contexts must report its probabilities as
    // *exactly* one half — not merely ε-close.
    let mut ghz = String::from("OPENQASM 2.0;\nqreg q[10];\nh q[0];\n");
    for q in 1..10u32 {
        ghz.push_str(&format!("cx q[{}], q[{}];\n", q - 1, q));
    }
    let ghz = CircuitSpec::Qasm(ghz);
    let all_ones = (1u64 << 10) - 1;

    let sample_req =
        |circuit: &CircuitSpec, scheme: SchemeSpec, shots: u64, seed: u64| SubmitRequest {
            sample: Some(SampleParams { shots, seed }),
            ..submit(circuit.clone(), scheme, budget)
        };

    let mut histograms = Vec::new();
    for scheme in [
        SchemeSpec::Numeric { eps: 1e-10 },
        SchemeSpec::Qomega,
        SchemeSpec::Gcd,
    ] {
        let id = submitted_id(client.submit(sample_req(&ghz, scheme.clone(), 4096, 7)));
        let report = wait_terminal(&client, id);
        assert_eq!(report.state, JobState::Completed, "{scheme:?}");
        let o = outcome(&report);
        let sample = o.sample.as_ref().expect("sampling outcome has a report");
        assert_eq!(sample.shots, 4096);
        assert_eq!(sample.seed, 7);
        assert!(!sample.forked, "GHZ has no mid-circuit measurement");
        assert_eq!(sample.total(), 4096, "histogram sums to the shot count");
        for &(index, _) in &sample.counts {
            assert!(
                index == 0 || index == all_ones,
                "GHZ can only collapse to |0…0⟩ or |1…1⟩, got {index}"
            );
        }
        for p in &sample.probabilities {
            if scheme.is_algebraic() {
                assert_eq!(p.probability, 0.5, "exact schemes report exactly ½");
                assert!(p.exact.is_some(), "algebraic outcomes carry exact strings");
            } else {
                assert!((p.probability - 0.5).abs() < 1e-12);
            }
        }
        histograms.push(sample.counts.clone());
    }
    // Dyadic marginals are exact in every context, so the same seed draws
    // the very same shot stream under all three schemes.
    assert_eq!(histograms[0], histograms[1]);
    assert_eq!(histograms[1], histograms[2]);

    // Same submission again: answered from the result cache, byte-identical.
    let warm = submitted_id(client.submit(sample_req(&ghz, SchemeSpec::Gcd, 4096, 7)));
    let warm_report = wait_terminal(&client, warm);
    let m = client.metrics();
    assert_eq!(m.cache_served, 1, "repeat sample must be cache-served");
    assert_eq!(
        outcome(&warm_report).sample.as_ref().unwrap().counts,
        histograms[2]
    );

    // A cache-defeating variation (different top_k → different key) forces
    // a fresh worker run; equal seeds still give the identical histogram.
    let rerun = submitted_id(client.submit(SubmitRequest {
        top_k: 5,
        ..sample_req(&ghz, SchemeSpec::Gcd, 4096, 7)
    }));
    let rerun_report = wait_terminal(&client, rerun);
    let m = client.metrics();
    assert_eq!(m.cache_served, 1, "different top_k must miss the cache");
    assert_eq!(
        outcome(&rerun_report).sample.as_ref().unwrap().counts,
        histograms[2],
        "equal seeds must reproduce the histogram bit-for-bit"
    );
    // …while a different seed gives a different (but still two-outcome)
    // histogram.
    let other_seed = submitted_id(client.submit(sample_req(&ghz, SchemeSpec::Gcd, 4096, 8)));
    let other_report = wait_terminal(&client, other_seed);
    assert_ne!(
        outcome(&other_report).sample.as_ref().unwrap().counts,
        histograms[2]
    );

    // A plain `run` of the same circuit/scheme/budget must not be served
    // from any sample entry: it computes amplitudes, not a histogram.
    let run_id = submitted_id(client.submit(submit(ghz.clone(), SchemeSpec::Gcd, budget)));
    let run_report = wait_terminal(&client, run_id);
    let run_outcome = outcome(&run_report);
    assert!(
        run_outcome.sample.is_none(),
        "run outcomes carry no histogram"
    );
    assert!(!run_outcome.top_probabilities.is_empty());
    let m = client.metrics();
    assert_eq!(m.cache_served, 1, "run must not hit a sample cache entry");

    // Teleportation with mid-circuit measurement and classical control,
    // through the full service stack: the sampler forks per shot and the
    // corrected output qubit always carries the |1⟩ message.
    let teleport = CircuitSpec::Qasm(
        "OPENQASM 2.0;\nqreg q[3];\ncreg c[2];\nx q[0];\nh q[1];\ncx q[1], q[2];\n\
         cx q[0], q[1];\nh q[0];\nmeasure q[1] -> c[0];\nmeasure q[0] -> c[1];\n\
         if (c==1) x q[2];\nif (c==3) x q[2];\nif (c==2) z q[2];\nif (c==3) z q[2];\n"
            .into(),
    );
    for scheme in [
        SchemeSpec::Numeric { eps: 1e-10 },
        SchemeSpec::Qomega,
        SchemeSpec::Gcd,
    ] {
        let id = submitted_id(client.submit(sample_req(&teleport, scheme.clone(), 128, 5)));
        let report = wait_terminal(&client, id);
        assert_eq!(report.state, JobState::Completed, "{scheme:?}");
        let sample = outcome(&report).sample.as_ref().unwrap();
        assert!(sample.forked, "mid-circuit measurement forks per shot");
        assert_eq!(sample.total(), 128);
        for &(index, _) in &sample.counts {
            assert_eq!(index & 1, 1, "corrected q2 must always read |1⟩");
        }
    }

    // The sampling counters: 9 completed sampling jobs (the cache-served
    // one included), each worth its shot count.
    match client.drain() {
        Response::Drained { .. } => {}
        other => panic!("expected Drained, got {other:?}"),
    }
    let m = client.metrics();
    assert_eq!(m.samples, 9);
    assert_eq!(m.shots, 6 * 4096 + 3 * 128);
    assert!(m.reconciles(), "metrics must reconcile: {m:?}");
}

#[test]
fn shutdown_evicts_queued_jobs_and_joins_workers() {
    let cfg = ServeConfig {
        workers: vec![SchemeClass::Numeric],
        queue_capacity: 16,
        checkpoint_dir: test_dir("shutdown"),
        ..ServeConfig::default()
    };
    let core = ServeCore::start(cfg).expect("start worker pool");
    let client = Client::new(Arc::clone(&core));

    // Six real jobs into a single-worker pool: most of them are still
    // queued when shutdown lands.
    let jobs: Vec<u64> = (0..6)
        .map(|i| {
            submitted_id(client.submit(submit(
                CircuitSpec::Grover {
                    n: 8,
                    marked: 17 + i,
                },
                SchemeSpec::Numeric { eps: 1e-10 },
                RunBudget::unlimited().with_max_nodes(5_000_000),
            )))
        })
        .collect();

    let (evicted_queued, cancelled_running) = match client.shutdown() {
        Response::ShutdownDone {
            evicted_queued,
            cancelled_running,
        } => (evicted_queued, cancelled_running),
        other => panic!("expected ShutdownDone, got {other:?}"),
    };

    // Every job is terminal; evicted ones say so and explain why.
    let mut evicted_seen = 0;
    for &id in &jobs {
        let report = wait_terminal(&client, id);
        match report.state {
            JobState::Completed => {}
            JobState::Aborted => {
                let abort = outcome(&report).aborted.as_ref().unwrap();
                if abort.evicted {
                    evicted_seen += 1;
                    assert!(abort.reason.contains("evicted"), "reason: {}", abort.reason);
                }
            }
            s => panic!("job {id} not terminal after shutdown: {s:?}"),
        }
    }
    assert!(
        evicted_queued >= 4,
        "a single worker cannot have started more than 2 of 6 jobs \
         (evicted_queued={evicted_queued}, cancelled_running={cancelled_running})"
    );
    // A cancelled running job may have been on its last gate and finished
    // anyway, so the upper bound is not tight.
    assert!(evicted_seen >= evicted_queued);
    assert!(evicted_seen <= evicted_queued + cancelled_running);

    // Admission is closed now.
    match client.submit(submit(
        CircuitSpec::Grover { n: 4, marked: 1 },
        SchemeSpec::Numeric { eps: 1e-10 },
        RunBudget::unlimited().with_max_nodes(1_000),
    )) {
        Response::Rejected { reason, .. } => {
            assert!(reason.contains("draining"), "unexpected reason: {reason}")
        }
        other => panic!("expected Rejected after shutdown, got {other:?}"),
    }

    let m = client.metrics();
    assert_eq!(m.submitted, 7);
    assert_eq!(m.rejected, 1);
    assert_eq!(m.completed + m.aborted, 6);
    assert_eq!(m.evicted, evicted_seen);
    assert!(m.reconciles(), "metrics must reconcile: {m:?}");

    // Under `--features lock-audit` the whole workload above fed the
    // lock-order graph; the service discipline is "never hold two locks",
    // so the graph must be cycle- and hazard-free.
    #[cfg(feature = "lock-audit")]
    {
        let cycles = aq_serve::lockaudit::detected_cycles();
        assert!(
            cycles.is_empty(),
            "lock-order cycles detected: {cycles:?}\ngraph:\n{}",
            aq_serve::lockaudit::dot_graph()
        );
        let hazards = aq_serve::lockaudit::detected_hazards();
        assert!(hazards.is_empty(), "lock hazards detected: {hazards:?}");
    }
}
