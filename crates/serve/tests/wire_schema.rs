//! Response wire-schema lockdown: every field the service writes is read
//! back here through the rendered JSON, field by field. This is the
//! consuming side of the R10 wire-schema cross-check — a response field
//! nobody reads (not even this suite) is dead weight, and `aq-lint`
//! flags it. Renaming or dropping a field therefore fails either this
//! suite (schema drift) or the lint (dead field), never neither.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use aq_dd::RunBudget;
use aq_serve::{
    CircuitSpec, Client, Json, Response, SchemeClass, ServeConfig, ServeCore, SubmitRequest,
};
use aq_sim::{SampleParams, SchemeSpec};

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aq-wire-test-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Renders a response the way the TCP server would and parses it back.
fn wire(response: &Response) -> Json {
    Json::parse(&response.render()).expect("every response renders as valid JSON")
}

fn require_num(json: &Json, key: &str) -> f64 {
    json.get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("missing numeric field `{key}` in {json:?}"))
}

fn require_str<'j>(json: &'j Json, key: &str) -> &'j str {
    json.get(key)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("missing string field `{key}` in {json:?}"))
}

fn require_bool(json: &Json, key: &str) -> bool {
    json.get(key)
        .and_then(Json::as_bool)
        .unwrap_or_else(|| panic!("missing bool field `{key}` in {json:?}"))
}

fn require_arr<'j>(json: &'j Json, key: &str) -> &'j [Json] {
    match json.get(key) {
        Some(Json::Arr(items)) => items,
        other => panic!("missing array field `{key}`, got {other:?}"),
    }
}

fn require_obj<'j>(json: &'j Json, key: &str) -> &'j Json {
    match json.get(key) {
        Some(o @ Json::Obj(_)) => o,
        other => panic!("missing object field `{key}`, got {other:?}"),
    }
}

#[test]
fn every_response_field_round_trips_through_the_wire() {
    let cfg = ServeConfig {
        workers: vec![SchemeClass::Numeric, SchemeClass::Algebraic],
        queue_capacity: 16,
        checkpoint_dir: test_dir("schema"),
        ..ServeConfig::default()
    };
    let core = ServeCore::start(cfg).expect("start worker pool");
    let client = Client::new(Arc::clone(&core));

    // --- submit: a sampled algebraic job (exercises the exact field) ---
    let submitted = client.submit(SubmitRequest {
        circuit: CircuitSpec::Grover { n: 4, marked: 11 },
        scheme: SchemeSpec::Qomega,
        priority: 3,
        budget: RunBudget::unlimited().with_max_nodes(2_000_000),
        resume: None,
        top_k: 4,
        sample: Some(SampleParams { shots: 64, seed: 7 }),
    });
    let sj = wire(&submitted);
    assert!(require_bool(&sj, "ok"));
    assert_eq!(require_str(&sj, "verb"), "submit");
    assert_eq!(require_str(&sj, "state"), "queued");
    let job = require_num(&sj, "job") as u64;

    // --- wait → status of a completed job: outcome + sample schema ---
    let status = client.wait(job, Duration::from_secs(120));
    let st = wire(&status);
    assert!(require_bool(&st, "ok"));
    assert_eq!(require_str(&st, "verb"), "status");
    assert_eq!(require_num(&st, "job") as u64, job);
    assert_eq!(require_str(&st, "state"), "completed");
    assert!(!require_str(&st, "label").is_empty());
    assert!(!require_str(&st, "scheme").is_empty());
    assert_eq!(require_num(&st, "priority") as u8, 3);
    assert!(require_num(&st, "gates_applied") >= 1.0);
    assert!(require_num(&st, "seconds") >= 0.0);
    assert!(require_num(&st, "final_nodes") >= 1.0);
    assert!(!require_bool(&st, "resumed"));
    assert!(require_num(&st, "cache_hit_rate") >= 0.0);
    // Sampled jobs report their distribution through the sample block;
    // the top-k array stays empty by design.
    assert!(require_arr(&st, "top").is_empty());
    let sample = require_obj(&st, "sample");
    assert_eq!(require_num(sample, "shots") as u64, 64);
    assert_eq!(require_num(sample, "seed") as u64, 7);
    assert!(!require_bool(sample, "forked"));
    let counts = require_arr(sample, "counts");
    let total: f64 = counts
        .iter()
        .map(|pair| match pair {
            Json::Arr(iv) => iv.get(1).and_then(Json::as_f64).unwrap_or(0.0),
            _ => 0.0,
        })
        .sum();
    assert_eq!(total as u64, 64, "histogram counts sum to the shot count");
    let probabilities = require_arr(sample, "probabilities");
    assert!(!probabilities.is_empty());
    for p in probabilities {
        assert!(require_num(p, "index") >= 0.0);
        assert!(require_num(p, "p") >= 0.0);
        // exact amplitude string: present on the algebraic lane
        assert!(
            p.get("exact").and_then(Json::as_str).is_some(),
            "Qomega probabilities carry exact amplitudes: {p:?}"
        );
    }

    // --- an unsampled job: top-k probabilities populated ---
    let plain = client.submit(SubmitRequest {
        circuit: CircuitSpec::Grover { n: 4, marked: 11 },
        scheme: SchemeSpec::Numeric { eps: 1e-10 },
        priority: 0,
        budget: RunBudget::unlimited().with_max_nodes(2_000_000),
        resume: None,
        top_k: 4,
        sample: None,
    });
    let plain_job = require_num(&wire(&plain), "job") as u64;
    let plain_status = wire(&client.wait(plain_job, Duration::from_secs(120)));
    assert_eq!(require_str(&plain_status, "state"), "completed");
    let top = require_arr(&plain_status, "top");
    assert_eq!(top.len(), 4, "top-k probabilities present when unsampled");
    match &top[0] {
        Json::Arr(pair) => {
            assert_eq!(pair[0].as_u64(), Some(11), "marked element wins");
            assert!(pair[1].as_f64().unwrap_or(0.0) > 0.9);
        }
        other => panic!("top entries are [index, p] pairs, got {other:?}"),
    }

    // --- a starved budget: aborted status with checkpoint fields ---
    let starved = client.submit(SubmitRequest {
        circuit: CircuitSpec::Grover { n: 6, marked: 45 },
        scheme: SchemeSpec::Numeric { eps: 1e-10 },
        priority: 0,
        budget: RunBudget::unlimited().with_max_nodes(20),
        resume: None,
        top_k: 4,
        sample: None,
    });
    let starved_job = require_num(&wire(&starved), "job") as u64;
    let aborted_status = client.wait(starved_job, Duration::from_secs(120));
    let ab = wire(&aborted_status);
    assert_eq!(require_str(&ab, "state"), "aborted");
    assert!(require_str(&ab, "reason").contains("node budget exceeded"));
    assert!(!require_bool(&ab, "evicted"));
    assert!(
        ab.get("checkpoint").is_some(),
        "aborted status carries the checkpoint field (path or null)"
    );

    // --- metrics: the full report schema ---
    let metrics = wire(&core.handle(aq_serve::Request::Metrics));
    assert!(require_bool(&metrics, "ok"));
    assert_eq!(require_str(&metrics, "verb"), "metrics");
    assert_eq!(require_num(&metrics, "submitted") as u64, 3);
    assert_eq!(require_num(&metrics, "completed") as u64, 2);
    assert_eq!(require_num(&metrics, "aborted") as u64, 1);
    assert_eq!(require_num(&metrics, "rejected") as u64, 0);
    assert_eq!(require_num(&metrics, "evicted") as u64, 0);
    assert_eq!(require_num(&metrics, "queue_depth") as u64, 0);
    assert_eq!(require_num(&metrics, "running") as u64, 0);
    assert_eq!(require_num(&metrics, "worker_deaths") as u64, 0);
    assert_eq!(require_num(&metrics, "worker_respawns") as u64, 0);
    assert_eq!(require_num(&metrics, "shed_deadline") as u64, 0);
    assert_eq!(require_num(&metrics, "samples") as u64, 1);
    assert_eq!(require_num(&metrics, "shots") as u64, 64);

    let cache = require_obj(&metrics, "result_cache");
    assert_eq!(require_num(cache, "served") as u64, 0);
    assert!(require_num(cache, "hits") >= 0.0);
    assert!(require_num(cache, "misses") >= 1.0);
    assert!(require_num(cache, "insertions") >= 1.0);
    assert!(require_num(cache, "evictions") >= 0.0);
    assert!((0.0..=1.0).contains(&require_num(cache, "hit_rate")));
    assert!(require_num(cache, "entries") >= 1.0);
    assert!(require_num(cache, "capacity") >= 1.0);

    let conns = require_obj(&metrics, "connections");
    assert_eq!(
        require_num(conns, "accepted") as u64,
        0,
        "no TCP server attached"
    );
    assert_eq!(require_num(conns, "rejected") as u64, 0);
    assert_eq!(require_num(conns, "reaped_at_shutdown") as u64, 0);

    let latency = require_obj(&metrics, "latency_ms");
    let edges = require_arr(latency, "bucket_edges");
    let lat_counts = require_arr(latency, "counts");
    assert_eq!(lat_counts.len(), edges.len() + 1, "overflow bucket");
    assert!(latency.get("p50").and_then(Json::as_f64).is_some());
    assert!(latency.get("p99").and_then(Json::as_f64).is_some());

    let workers = require_arr(&metrics, "workers");
    assert_eq!(workers.len(), 2);
    for w in workers {
        assert!(require_num(w, "worker") < 2.0);
        assert!(matches!(require_str(w, "class"), "numeric" | "algebraic"));
        assert!(require_num(w, "jobs") >= 0.0);
        assert!(require_num(w, "busy_seconds") >= 0.0);
        assert!(require_num(w, "cache_hit_rate") >= 0.0);
        assert!(require_num(w, "nodes_allocated") >= 0.0);
        assert!(require_num(w, "compactions") >= 0.0);
        assert!(require_num(w, "warm_reuses") >= 0.0);
        assert!(require_num(w, "session_shrinks") >= 0.0);
        assert!(require_num(w, "quarantines") >= 0.0);
        assert!(require_num(w, "validations") >= 0.0);
        assert!(require_num(w, "validate_failures") >= 0.0);
        assert!(require_num(w, "rebuilds") >= 0.0);
    }
    let total_jobs: f64 = workers.iter().map(|w| require_num(w, "jobs")).sum();
    assert_eq!(total_jobs as u64, 3);

    let health = require_arr(&metrics, "health");
    assert_eq!(health.len(), 2, "one row per scheme class");
    for h in health {
        assert!(matches!(require_str(h, "class"), "numeric" | "algebraic"));
        assert_eq!(require_num(h, "configured") as u64, 1);
        assert_eq!(require_num(h, "live") as u64, 1);
        assert_eq!(require_num(h, "respawning") as u64, 0);
        assert_eq!(require_num(h, "restarts_used") as u64, 0);
        assert!(require_num(h, "restart_budget") >= 1.0);
        assert!(require_bool(h, "healthy"));
    }

    // chaos block: null without a fault plan, but the keys stay read —
    // the chaos suite runs in another binary, the schema lives here
    match metrics.get("chaos") {
        Some(Json::Null) | None => {}
        Some(c) => {
            assert!(require_num(c, "kills") >= 0.0);
            assert!(require_num(c, "corruptions") >= 0.0);
            assert!(require_num(c, "stalls") >= 0.0);
            assert!(require_num(c, "wakeups") >= 0.0);
        }
    }

    // --- drain, then shutdown: terminal lifecycle schemas ---
    let drained = wire(&client.drain());
    assert!(require_bool(&drained, "ok"));
    assert_eq!(require_str(&drained, "verb"), "drain");
    assert_eq!(require_str(&drained, "state"), "drained");
    assert_eq!(require_num(&drained, "completed") as u64, 2);
    assert_eq!(require_num(&drained, "aborted") as u64, 1);

    let stopped = wire(&client.shutdown());
    assert!(require_bool(&stopped, "ok"));
    assert_eq!(require_str(&stopped, "verb"), "shutdown");
    assert_eq!(require_str(&stopped, "state"), "stopped");
    assert_eq!(require_num(&stopped, "evicted_queued") as u64, 0);
    assert_eq!(require_num(&stopped, "cancelled_running") as u64, 0);
}

#[test]
fn rejection_and_error_schemas_round_trip() {
    let cfg = ServeConfig {
        workers: vec![SchemeClass::Numeric],
        queue_capacity: 4,
        checkpoint_dir: test_dir("reject"),
        ..ServeConfig::default()
    };
    let core = ServeCore::start(cfg).expect("start worker pool");
    let client = Client::new(Arc::clone(&core));

    // No algebraic worker configured → static rejection with a reason.
    let rejected = client.submit(SubmitRequest {
        circuit: CircuitSpec::Grover { n: 3, marked: 1 },
        scheme: SchemeSpec::Qomega,
        priority: 0,
        budget: RunBudget::unlimited(),
        resume: None,
        top_k: 1,
        sample: None,
    });
    let rj = wire(&rejected);
    assert!(require_bool(&rj, "ok"));
    assert_eq!(require_str(&rj, "state"), "rejected");
    assert!(!require_str(&rj, "reason").is_empty());

    // Unknown job id → the unknown-state status schema.
    let unknown = wire(&client.status(999_999));
    assert_eq!(require_str(&unknown, "state"), "unknown");
    assert_eq!(require_num(&unknown, "job") as u64, 999_999);

    let stopped = wire(&client.shutdown());
    assert_eq!(require_str(&stopped, "state"), "stopped");
}
