//! Deterministic chaos suite: seed-driven fault plans (worker kills,
//! session corruption, connection stalls, spurious wakeups) against the
//! self-healing serve stack. Every schedule is a pure function of its
//! seed, so each test asserts *exact* recovery properties:
//!
//! - the metrics identity `submitted == completed + aborted + rejected`
//!   holds at quiescence under every seeded schedule;
//! - recovered results are byte-identical to a fault-free run;
//! - every corruption that lands is caught by suspect-validation before
//!   the next warm reuse;
//! - a class that exhausts its restart budget turns explicitly unhealthy
//!   (refusals carry `retry_after_ms`, queued jobs are evicted) instead
//!   of hanging anything.

#![cfg(feature = "chaos")]

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use aq_dd::RunBudget;
use aq_serve::{
    CircuitSpec, Client, FaultPlan, JobState, JobStatusReport, Response, RetryPolicy, SchemeClass,
    ServeConfig, ServeCore, StallPhase, SubmitRequest,
};
use aq_sim::SchemeSpec;

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aq-chaos-test-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn submit(circuit: CircuitSpec, scheme: SchemeSpec) -> SubmitRequest {
    SubmitRequest {
        circuit,
        scheme,
        priority: 0,
        budget: RunBudget::unlimited().with_max_nodes(2_000_000),
        resume: None,
        top_k: 4,
        sample: None,
    }
}

fn submitted_id(response: Response) -> u64 {
    match response {
        Response::Submitted { job } => job,
        other => panic!("expected Submitted, got {other:?}"),
    }
}

fn wait_terminal(client: &Client, job: u64) -> JobStatusReport {
    match client.wait(job, Duration::from_secs(120)) {
        Response::Status(report) => {
            assert!(report.state.is_terminal(), "wait returned {report:?}");
            *report
        }
        other => panic!("expected Status for job {job}, got {other:?}"),
    }
}

/// Fast supervision/backoff timings so injected deaths heal in
/// milliseconds, not the production half-seconds.
fn fast_cfg(name: &str, workers: Vec<SchemeClass>) -> ServeConfig {
    ServeConfig {
        workers,
        checkpoint_dir: test_dir(name),
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(50),
        ..ServeConfig::default()
    }
}

/// The mixed workload the byte-identity tests replay: distinct circuits
/// (no result-cache crosstalk) across every scheme kind.
fn workload() -> Vec<(CircuitSpec, SchemeSpec)> {
    let mut jobs = Vec::new();
    for marked in 0..6 {
        jobs.push((
            CircuitSpec::Grover { n: 5, marked },
            SchemeSpec::Numeric { eps: 1e-10 },
        ));
    }
    for marked in 0..4 {
        jobs.push((CircuitSpec::Grover { n: 4, marked }, SchemeSpec::Qomega));
    }
    for marked in 4..6 {
        jobs.push((CircuitSpec::Grover { n: 4, marked }, SchemeSpec::Gcd));
    }
    jobs
}

/// Fingerprint of the parts of an outcome that must be bit-reproducible
/// (timings excluded, amplitude bits included).
fn fingerprint(report: &JobStatusReport) -> (u64, u64, Vec<(u64, u64)>) {
    let o = report.outcome.as_ref().expect("terminal outcome");
    (
        o.gates_applied as u64,
        o.final_nodes as u64,
        o.top_probabilities
            .iter()
            .map(|&(i, p)| (i, p.to_bits()))
            .collect(),
    )
}

#[cfg(feature = "lock-audit")]
fn assert_lock_graph_clean() {
    let cycles = aq_serve::lockaudit::detected_cycles();
    assert!(
        cycles.is_empty(),
        "lock-order cycles detected: {cycles:?}\ngraph:\n{}",
        aq_serve::lockaudit::dot_graph()
    );
    let hazards = aq_serve::lockaudit::detected_hazards();
    assert!(hazards.is_empty(), "lock hazards detected: {hazards:?}");
}

/// Runs the workload on a fault-free core and returns its fingerprints.
fn reference_fingerprints(name: &str) -> Vec<(u64, u64, Vec<(u64, u64)>)> {
    let core = ServeCore::start(fast_cfg(
        name,
        vec![SchemeClass::Numeric, SchemeClass::Algebraic],
    ))
    .expect("start reference pool");
    let client = Client::new(Arc::clone(&core));
    let prints = workload()
        .into_iter()
        .map(|(circuit, scheme)| {
            let id = submitted_id(client.submit(submit(circuit, scheme)));
            let report = wait_terminal(&client, id);
            assert_eq!(report.state, JobState::Completed);
            fingerprint(&report)
        })
        .collect();
    client.shutdown();
    prints
}

/// The core property: under three pinned seeds mixing kills, session
/// corruption and spurious wakeups, retried jobs all complete with
/// byte-identical results, and the metrics identity holds exactly.
#[test]
fn pinned_seeds_recover_byte_identical_results_and_reconcile() {
    let reference = reference_fingerprints("seeds-ref");
    for seed in [0xA11CE_u64, 0xB0B, 0xC0FFEE] {
        let mut cfg = fast_cfg(
            &format!("seeds-{seed}"),
            vec![SchemeClass::Numeric, SchemeClass::Algebraic],
        );
        cfg.restart_budget = 32;
        cfg.fault_plan = FaultPlan::seeded(seed)
            .kill_every(5)
            .corrupt_every(3)
            .wakeup_every(2);
        let core = ServeCore::start(cfg).expect("start chaos pool");
        let client = Client::new(Arc::clone(&core));
        let policy = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(50),
            seed,
        };

        for ((circuit, scheme), expected) in workload().into_iter().zip(&reference) {
            let response =
                client.run_with_retry(&submit(circuit, scheme), Duration::from_secs(120), &policy);
            let report = match response {
                Response::Status(report) => *report,
                other => panic!("seed {seed:#x}: expected Status, got {other:?}"),
            };
            assert_eq!(
                report.state,
                JobState::Completed,
                "seed {seed:#x}: job must complete after retries: {report:?}"
            );
            assert_eq!(
                &fingerprint(&report),
                expected,
                "seed {seed:#x}: recovered result diverged from the fault-free run"
            );
        }

        // Before drain: no class may have decayed into unhealthy — the
        // restart budget was sized to absorb every injected kill.
        let m = client.metrics();
        for h in &m.health {
            assert!(
                h.healthy,
                "seed {seed:#x}: class {} lost its budget: {h:?}",
                h.class.as_str()
            );
            assert_eq!(h.configured, h.live + h.respawning, "seed {seed:#x}: {h:?}");
        }
        let chaos = m.chaos.expect("an armed plan reports counters");
        assert_eq!(
            m.worker_deaths, chaos.kills,
            "seed {seed:#x}: every injected kill is a detected death (and nothing else died)"
        );
        assert_eq!(m.worker_respawns, m.worker_deaths, "seed {seed:#x}");

        match client.drain() {
            Response::Drained { .. } => {}
            other => panic!("seed {seed:#x}: expected Drained, got {other:?}"),
        }
        let m = client.metrics();
        assert!(
            m.reconciles(),
            "seed {seed:#x}: metrics must reconcile: {m:?}"
        );
        // Aborts are exactly the transient kill recoveries: every other
        // submission completed (possibly via the result cache on retry).
        assert_eq!(m.aborted, m.worker_deaths, "seed {seed:#x}: {m:?}");
        // Corruption accounting: catches never outnumber landed
        // corruptions (a suspect lane can absorb several corruptions and
        // be caught once, or sit parked unreused until drain), every
        // catch quarantines and rebuilds the lane cold, and — per the
        // byte-identity checks above — none ever leaks into a result.
        let caught: u64 = m.workers.iter().map(|w| w.stats.validate_failures).sum();
        let rebuilt: u64 = m.workers.iter().map(|w| w.stats.rebuilds).sum();
        let quarantined: u64 = m.workers.iter().map(|w| w.stats.quarantines).sum();
        let chaos = m.chaos.expect("counters");
        assert!(
            chaos.corruptions > 0,
            "seed {seed:#x}: no corruption landed"
        );
        assert!(
            caught <= chaos.corruptions,
            "seed {seed:#x}: more validate failures than corruptions landed"
        );
        assert!(
            quarantined >= caught && rebuilt >= caught,
            "seed {seed:#x}: every caught corruption must quarantine and rebuild \
             its lane (caught {caught}, quarantined {quarantined}, rebuilt {rebuilt})"
        );
        assert!(
            chaos.wakeups > 0,
            "seed {seed:#x}: the wakeup plan never fired"
        );
        #[cfg(feature = "lock-audit")]
        assert_lock_graph_clean();
    }
}

/// A targeted kill: the job dies with a `transient:` abort, the worker
/// respawns within its backoff schedule, and resubmission completes
/// bit-identically to a fault-free run.
#[test]
fn killed_worker_respawns_and_resubmission_is_bit_identical() {
    // Fault-free reference for the victim circuit.
    let reference = {
        let core = ServeCore::start(fast_cfg("kill-ref", vec![SchemeClass::Numeric]))
            .expect("start reference pool");
        let client = Client::new(Arc::clone(&core));
        let id = submitted_id(client.submit(submit(
            CircuitSpec::Grover { n: 5, marked: 19 },
            SchemeSpec::Numeric { eps: 1e-10 },
        )));
        let report = wait_terminal(&client, id);
        client.shutdown();
        fingerprint(&report)
    };

    let mut cfg = fast_cfg("kill-one", vec![SchemeClass::Numeric]);
    cfg.fault_plan = FaultPlan::seeded(7).kill_job(2);
    let core = ServeCore::start(cfg).expect("start chaos pool");
    let client = Client::new(Arc::clone(&core));

    // Job 1 completes untouched.
    let first = submitted_id(client.submit(submit(
        CircuitSpec::Grover { n: 5, marked: 7 },
        SchemeSpec::Numeric { eps: 1e-10 },
    )));
    assert_eq!(wait_terminal(&client, first).state, JobState::Completed);

    // Job 2 is killed mid-claim: the supervisor must recover it as a
    // retryable `transient:` abort, never leaving it running.
    let victim = submitted_id(client.submit(submit(
        CircuitSpec::Grover { n: 5, marked: 19 },
        SchemeSpec::Numeric { eps: 1e-10 },
    )));
    assert_eq!(victim, 2, "the plan targets job id 2");
    let report = wait_terminal(&client, victim);
    assert_eq!(report.state, JobState::Aborted);
    let abort = report.outcome.as_ref().unwrap().aborted.as_ref().unwrap();
    assert!(
        abort.reason.starts_with("transient:"),
        "kill recovery must be marked transient, got: {}",
        abort.reason
    );
    assert!(!abort.evicted);

    // Resubmission runs on the respawned worker, bit-identical.
    let retry = submitted_id(client.submit(submit(
        CircuitSpec::Grover { n: 5, marked: 19 },
        SchemeSpec::Numeric { eps: 1e-10 },
    )));
    let retry_report = wait_terminal(&client, retry);
    assert_eq!(retry_report.state, JobState::Completed);
    assert_eq!(
        fingerprint(&retry_report),
        reference,
        "post-respawn result diverged from the fault-free run"
    );

    let m = client.metrics();
    assert_eq!(m.worker_deaths, 1);
    assert_eq!(m.worker_respawns, 1);
    let numeric = m
        .health
        .iter()
        .find(|h| h.class == SchemeClass::Numeric)
        .unwrap();
    assert!(numeric.healthy);
    assert_eq!(numeric.live, 1, "the respawned worker is live again");
    assert_eq!(numeric.restarts_used, 1);
    client.shutdown();
    let m = client.metrics();
    assert!(m.reconciles(), "metrics must reconcile: {m:?}");
}

/// Restart-budget exhaustion: the class flips explicitly unhealthy, its
/// queued jobs are evicted with a reason, and new submissions are
/// refused with the configured `retry_after_ms` hint. Nothing hangs.
#[test]
fn budget_exhaustion_flips_class_unhealthy_and_refusals_carry_retry_after() {
    let mut cfg = fast_cfg("budget", vec![SchemeClass::Numeric]);
    cfg.restart_budget = 1;
    cfg.unhealthy_retry_after = Duration::from_millis(1234);
    cfg.fault_plan = FaultPlan::seeded(3).kill_every(1); // every job kills
    let core = ServeCore::start(cfg).expect("start chaos pool");
    let client = Client::new(Arc::clone(&core));
    let spec = |marked| {
        submit(
            CircuitSpec::Grover { n: 4, marked },
            SchemeSpec::Numeric { eps: 1e-10 },
        )
    };

    // Death 1 spends the whole budget on one respawn.
    let j1 = submitted_id(client.submit(spec(1)));
    let r1 = wait_terminal(&client, j1);
    assert_eq!(r1.state, JobState::Aborted);
    assert!(r1
        .outcome
        .as_ref()
        .unwrap()
        .aborted
        .as_ref()
        .unwrap()
        .reason
        .starts_with("transient:"));

    // Death 2 retires the slot; the still-queued job must be swept out,
    // not stranded.
    let j2 = submitted_id(client.submit(spec(2)));
    let j3 = submitted_id(client.submit(spec(3)));
    let r2 = wait_terminal(&client, j2);
    assert_eq!(r2.state, JobState::Aborted);
    assert!(r2
        .outcome
        .as_ref()
        .unwrap()
        .aborted
        .as_ref()
        .unwrap()
        .reason
        .starts_with("transient:"));
    let r3 = wait_terminal(&client, j3);
    assert_eq!(r3.state, JobState::Aborted);
    let a3 = r3.outcome.as_ref().unwrap().aborted.as_ref().unwrap();
    assert!(a3.evicted, "queued job on a dead class must be evicted");
    assert!(
        a3.reason.contains("restart budget exhausted"),
        "eviction must say why: {}",
        a3.reason
    );

    // New submissions are refused with the configured hint.
    match client.submit(spec(4)) {
        Response::Rejected {
            reason,
            retry_after_ms,
        } => {
            assert!(reason.contains("unhealthy"), "reason: {reason}");
            assert_eq!(retry_after_ms, Some(1234));
        }
        other => panic!("expected Rejected with hint, got {other:?}"),
    }

    let m = client.metrics();
    assert_eq!(m.worker_deaths, 2);
    assert_eq!(m.worker_respawns, 1, "one respawn, then the budget is dry");
    let numeric = m
        .health
        .iter()
        .find(|h| h.class == SchemeClass::Numeric)
        .unwrap();
    assert!(!numeric.healthy, "class must be explicitly unhealthy");
    assert_eq!(numeric.live, 0);
    assert_eq!(numeric.restarts_used, 1);
    assert_eq!(numeric.restart_budget, 1);
    assert!(m.reconciles(), "metrics must reconcile: {m:?}");
    assert_eq!(m.aborted, 3);
    assert_eq!(m.rejected, 1);
    #[cfg(feature = "lock-audit")]
    assert_lock_graph_clean();
}

/// Corrupting every parked session: suspect-validation catches each
/// corruption before the next warm reuse, the lane rebuilds cold, and
/// results stay byte-identical to a fault-free run.
#[test]
fn every_landed_corruption_is_caught_before_warm_reuse() {
    const JOBS: u64 = 4;
    let clean: Vec<_> = {
        let core = ServeCore::start(fast_cfg("corrupt-ref", vec![SchemeClass::Numeric]))
            .expect("start reference pool");
        let client = Client::new(Arc::clone(&core));
        let prints = (0..JOBS)
            .map(|marked| {
                let id = submitted_id(client.submit(submit(
                    CircuitSpec::Grover { n: 5, marked },
                    SchemeSpec::Numeric { eps: 1e-10 },
                )));
                fingerprint(&wait_terminal(&client, id))
            })
            .collect();
        client.shutdown();
        prints
    };

    let mut cfg = fast_cfg("corrupt", vec![SchemeClass::Numeric]);
    cfg.fault_plan = FaultPlan::seeded(0xBAD).corrupt_every(1);
    let core = ServeCore::start(cfg).expect("start chaos pool");
    let client = Client::new(Arc::clone(&core));
    for (marked, expected) in clean.iter().enumerate() {
        let id = submitted_id(client.submit(submit(
            CircuitSpec::Grover {
                n: 5,
                marked: marked as u64,
            },
            SchemeSpec::Numeric { eps: 1e-10 },
        )));
        let report = wait_terminal(&client, id);
        assert_eq!(report.state, JobState::Completed);
        assert_eq!(
            &fingerprint(&report),
            expected,
            "job {marked}: corruption leaked into a result"
        );
    }

    let m = client.metrics();
    let chaos = m.chaos.expect("counters");
    // Every job's parked manager was corrupted; every corruption except
    // the final one (never reused) was caught by validation, quarantined
    // and rebuilt cold. No warm reuse ever saw damaged state.
    assert_eq!(chaos.corruptions, JOBS);
    let w = &m.workers[0].stats;
    assert_eq!(w.validate_failures, JOBS - 1);
    assert_eq!(w.quarantines, JOBS - 1);
    assert_eq!(w.rebuilds, JOBS - 1);
    assert_eq!(w.warm_reuses, 0, "no corrupted manager may be reused warm");
    client.shutdown();
    let m = client.metrics();
    assert!(m.reconciles(), "metrics must reconcile: {m:?}");
}

/// The TCP stack under connection stalls and spurious wakeups: every
/// request is still answered correctly and the metrics verb reconciles.
#[test]
fn tcp_under_stalls_and_wakeups_serves_everything_and_reconciles() {
    use aq_serve::{Json, Server, TcpClient};
    let mut cfg = fast_cfg(
        "tcp-stall",
        vec![SchemeClass::Numeric, SchemeClass::Algebraic],
    );
    cfg.fault_plan = FaultPlan::seeded(0x7CF)
        .stall_every(2, Duration::from_millis(30))
        .wakeup_every(2);
    let core = ServeCore::start(cfg).expect("start chaos pool");
    let server = Server::bind(Arc::clone(&core), 0).expect("bind");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());

    let submit_line = |marked: u64| {
        format!(
            "{{\"verb\":\"submit\",\"circuit\":\"grover\",\"n\":4,\"marked\":{marked},\
             \"budget\":{{\"max_nodes\":2000000}}}}"
        )
    };
    // Six jobs across three connections; every other connection is
    // stalled in a random phase for 30ms.
    let mut jobs = Vec::new();
    for c in 0..3u64 {
        let mut client = TcpClient::connect(addr).expect("connect");
        for k in 0..2u64 {
            let resp = client.roundtrip(&submit_line(c * 2 + k)).expect("submit");
            let parsed = Json::parse(&resp).expect("json");
            let id = parsed.get("job").and_then(Json::as_u64).expect("job id");
            jobs.push(id);
        }
    }
    let mut client = TcpClient::connect(addr).expect("connect");
    for id in jobs {
        let resp = client
            .roundtrip(&format!(
                "{{\"verb\":\"wait\",\"job\":{id},\"timeout_secs\":120}}"
            ))
            .expect("wait");
        let parsed = Json::parse(&resp).expect("json");
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            parsed.get("state").and_then(Json::as_str),
            Some("completed"),
            "job {id}: {resp}"
        );
    }
    let metrics = client.roundtrip("{\"verb\":\"metrics\"}").expect("metrics");
    let m = Json::parse(&metrics).expect("json");
    let field = |k: &str| m.get(k).and_then(Json::as_u64).unwrap_or(0);
    assert_eq!(
        field("submitted"),
        field("completed") + field("aborted") + field("rejected"),
        "wire metrics identity: {metrics}"
    );
    let chaos = m.get("chaos").expect("chaos counters in metrics");
    assert!(
        chaos.get("stalls").and_then(Json::as_u64).unwrap_or(0) >= 2,
        "stall plan never fired: {metrics}"
    );
    let shutdown = client
        .roundtrip("{\"verb\":\"shutdown\"}")
        .expect("shutdown");
    assert!(shutdown.contains("\"state\":\"stopped\""));
    server_thread.join().unwrap().expect("server run");
}

/// A write-stalled connection at shutdown is reaped after *its own*
/// flush grace — and counted — instead of holding the process (and every
/// other connection's flush) hostage.
#[test]
fn slow_connection_is_reaped_at_shutdown_and_counted() {
    use aq_serve::{Server, TcpClient};
    let mut cfg = fast_cfg("reap", vec![SchemeClass::Numeric]);
    cfg.shutdown_conn_flush_grace = Duration::from_millis(50);
    // Connection 0 (the victim) is write-stalled far past the grace.
    cfg.fault_plan = FaultPlan::seeded(1)
        .stall_every(2, Duration::from_secs(30))
        .stall_phase(StallPhase::Write);
    let core = ServeCore::start(cfg).expect("start chaos pool");
    let server = Server::bind(Arc::clone(&core), 0).expect("bind");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());

    // The victim's response can never flush.
    let mut victim = TcpClient::connect(addr).expect("connect victim");
    victim.send_raw(b"{\"verb\":\"metrics\"}\n").expect("send");

    // The controller (connection 1, unstalled) shuts the server down and
    // still gets its response despite the victim's stuck write buffer.
    let mut controller = TcpClient::connect(addr).expect("connect controller");
    let resp = controller
        .roundtrip("{\"verb\":\"shutdown\"}")
        .expect("shutdown roundtrip");
    assert!(resp.contains("\"state\":\"stopped\""), "got: {resp}");
    server_thread.join().unwrap().expect("server run");

    let m = core.metrics_report();
    assert_eq!(
        m.connections_reaped_at_shutdown, 1,
        "the stalled victim must be reaped and counted: {m:?}"
    );
    assert!(m.reconciles(), "metrics must reconcile: {m:?}");
}
