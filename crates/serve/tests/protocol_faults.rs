//! Wire-level fault injection: garbage bytes, truncated lines, oversized
//! frames, unknown verbs, type confusion and depth bombs must all come
//! back as structured `{"ok":false,...}` errors (or a clean close for
//! unrecoverable frames) — never a panic, never a wedged server.

use std::time::Duration;

use aq_serve::{Json, SchemeClass, ServeConfig, ServeCore, Server, TcpClient, MAX_FRAME_BYTES};
use aq_testutil::Rng;

struct Harness {
    addr: std::net::SocketAddr,
    server_thread: std::thread::JoinHandle<()>,
}

fn start_server(name: &str) -> Harness {
    start_server_with(name, |_| {})
}

fn start_server_with(name: &str, tweak: impl FnOnce(&mut ServeConfig)) -> Harness {
    let mut cfg = ServeConfig {
        workers: vec![SchemeClass::Numeric],
        queue_capacity: 8,
        checkpoint_dir: std::env::temp_dir()
            .join(format!("aq-serve-faults-{}-{name}", std::process::id())),
        ..ServeConfig::default()
    };
    tweak(&mut cfg);
    let core = ServeCore::start(cfg).expect("start worker pool");
    let server = Server::bind(core, 0).expect("bind ephemeral port");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || {
        server.run().expect("accept loop");
    });
    Harness {
        addr,
        server_thread,
    }
}

fn assert_structured_error(response: &str, context: &str) {
    let json = Json::parse(response)
        .unwrap_or_else(|e| panic!("{context}: response is not JSON ({e}): {response}"));
    assert_eq!(
        json.get("ok").and_then(Json::as_bool),
        Some(false),
        "{context}: expected ok:false in {response}"
    );
    let error = json
        .get("error")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("{context}: no error field in {response}"));
    assert!(!error.is_empty(), "{context}: empty error message");
}

fn assert_alive(client: &mut TcpClient) {
    let response = client
        .roundtrip(r#"{"verb":"metrics"}"#)
        .expect("connection must still work after a recoverable fault");
    let json = Json::parse(&response).expect("metrics response is JSON");
    assert_eq!(json.get("ok").and_then(Json::as_bool), Some(true));
}

#[test]
fn malformed_requests_get_structured_errors_and_keep_the_connection() {
    let h = start_server("malformed");
    let mut client = TcpClient::connect(h.addr).expect("connect");

    let cases: &[(&str, &str)] = &[
        ("not json at all", "plain garbage"),
        ("{", "unterminated object"),
        (r#"{"verb":42}"#, "non-string verb"),
        (r#"{"verb":"frobnicate"}"#, "unknown verb"),
        (r#"{"verb":"submit"}"#, "submit without a circuit"),
        (r#"{"verb":"status","job":"seven"}"#, "non-numeric job id"),
        (r#"{"verb":"status","job":-3}"#, "negative job id"),
        (r#"[1,2,3]"#, "non-object request"),
        (r#""just a string""#, "string request"),
    ];
    for (line, context) in cases {
        let response = client.roundtrip(line).expect("roundtrip");
        assert_structured_error(&response, context);
    }

    // An out-of-range register width parses fine but fails admission:
    // that is a *rejection* (ok:true, state:rejected), not a protocol
    // error — the distinction keeps the metrics reconciliation honest.
    let response = client
        .roundtrip(
            r#"{"verb":"submit","circuit":"grover","n":99,"marked":0,"budget":{"max_nodes":10}}"#,
        )
        .expect("roundtrip");
    let json = Json::parse(&response).expect("JSON");
    assert_eq!(json.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(json.get("state").and_then(Json::as_str), Some("rejected"));
    assert!(
        json.get("reason")
            .and_then(Json::as_str)
            .is_some_and(|r| r.contains("1..=24")),
        "unexpected rejection: {response}"
    );

    // A depth bomb must hit the parser's depth limit, not the stack.
    let bomb = format!("{}1{}", "[".repeat(200), "]".repeat(200));
    let response = client.roundtrip(&bomb).expect("roundtrip");
    assert_structured_error(&response, "depth bomb");

    assert_alive(&mut client);

    // Blank keep-alive lines are ignored, not answered.
    client.send_raw(b"\n  \n").expect("send blanks");
    assert_alive(&mut client);

    let shutdown = client
        .roundtrip(r#"{"verb":"shutdown"}"#)
        .expect("shutdown");
    assert!(
        shutdown.contains("\"ok\":true"),
        "shutdown failed: {shutdown}"
    );
    h.server_thread.join().expect("server exits cleanly");
}

#[test]
fn random_garbage_bytes_never_panic_the_server() {
    let h = start_server("garbage");
    let mut rng = Rng::from_seed(0xFA17);
    for round in 0..20 {
        let mut client = TcpClient::connect(h.addr).expect("connect");
        let len = 1 + rng.below(512) as usize;
        let mut bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        // Keep it a single frame: newline terminates, so reserve it.
        for b in &mut bytes {
            if *b == b'\n' {
                *b = b'X';
            }
        }
        bytes.push(b'\n');
        client.send_raw(&bytes).expect("send garbage");
        let response = client
            .read_line()
            .unwrap_or_else(|e| panic!("round {round}: no response to garbage: {e}"));
        assert_structured_error(&response, &format!("garbage round {round}"));
        assert_alive(&mut client);
    }
    let mut client = TcpClient::connect(h.addr).expect("connect");
    client
        .roundtrip(r#"{"verb":"shutdown"}"#)
        .expect("shutdown");
    h.server_thread.join().expect("server exits cleanly");
}

#[test]
fn truncated_and_oversized_frames_are_handled() {
    let h = start_server("frames");

    // Truncated line (no newline, then half-close): the server answers
    // the partial frame with a structured error before the connection
    // winds down.
    {
        let mut client = TcpClient::connect(h.addr).expect("connect");
        client
            .send_raw(br#"{"verb":"metr"#)
            .expect("send truncated");
        client.shutdown_write().expect("half-close");
        let response = client.read_line().expect("error for truncated frame");
        assert_structured_error(&response, "truncated frame");
    }

    // Oversized frame: structured error, then the connection is closed
    // (there is no way to resynchronise mid-frame).
    {
        let mut client = TcpClient::connect(h.addr).expect("connect");
        let oversized = vec![b'a'; MAX_FRAME_BYTES + 10];
        client.send_raw(&oversized).expect("send oversized");
        client.send_raw(b"\n").expect("terminate");
        let response = client.read_line().expect("error for oversized frame");
        assert_structured_error(&response, "oversized frame");
        assert!(
            response.contains("frame exceeds"),
            "unexpected error: {response}"
        );
        assert!(
            client.read_line().is_err(),
            "connection must close after an oversized frame"
        );
    }

    // An oversized frame must not take the server down with it.
    let mut client = TcpClient::connect(h.addr).expect("connect");
    assert_alive(&mut client);
    client
        .roundtrip(r#"{"verb":"shutdown"}"#)
        .expect("shutdown");
    h.server_thread.join().expect("server exits cleanly");
}

/// A client that vanishes mid-frame (socket dropped, no half-close, no
/// newline) must cost the event loop nothing: the connection is reaped
/// and every other connection keeps working.
#[test]
fn abrupt_mid_frame_disconnect_leaves_the_server_healthy() {
    let h = start_server("midframe");
    for _ in 0..8 {
        let mut client = TcpClient::connect(h.addr).expect("connect");
        client
            .send_raw(br#"{"verb":"sub"#)
            .expect("send partial frame");
        drop(client); // abrupt close, mid-frame
    }
    let mut client = TcpClient::connect(h.addr).expect("connect");
    assert_alive(&mut client);
    client
        .roundtrip(r#"{"verb":"shutdown"}"#)
        .expect("shutdown");
    h.server_thread.join().expect("server exits cleanly");
}

/// A slow-loris writer dribbling one byte at a time must not stall the
/// loop: a second connection gets full service between the dribbles, and
/// the slow request itself still completes once its newline arrives.
#[test]
fn slow_loris_writer_does_not_stall_other_connections() {
    let h = start_server("loris");
    let mut slow = TcpClient::connect(h.addr).expect("connect slow");
    let mut brisk = TcpClient::connect(h.addr).expect("connect brisk");

    let frame = b"{\"verb\":\"metrics\"}\n";
    for (i, byte) in frame.iter().enumerate() {
        slow.send_raw(std::slice::from_ref(byte)).expect("dribble");
        std::thread::sleep(Duration::from_millis(2));
        if i % 6 == 0 {
            // Full roundtrips succeed while the slow frame is incomplete.
            assert_alive(&mut brisk);
        }
    }
    let response = slow.read_line().expect("slow frame answered");
    let json = Json::parse(&response).expect("metrics response is JSON");
    assert_eq!(json.get("ok").and_then(Json::as_bool), Some(true));

    brisk.roundtrip(r#"{"verb":"shutdown"}"#).expect("shutdown");
    h.server_thread.join().expect("server exits cleanly");
}

/// One event loop multiplexes 64 simultaneous connections; every one of
/// them gets served.
#[test]
fn sixty_four_simultaneous_connections_are_all_served() {
    let h = start_server("many");
    let mut clients: Vec<TcpClient> = (0..64)
        .map(|i| TcpClient::connect(h.addr).unwrap_or_else(|e| panic!("connect client {i}: {e}")))
        .collect();
    // All 64 are open at once; interleave two rounds of requests.
    for round in 0..2 {
        for (i, client) in clients.iter_mut().enumerate() {
            let response = client
                .roundtrip(r#"{"verb":"metrics"}"#)
                .unwrap_or_else(|e| panic!("round {round}, client {i}: {e}"));
            let json = Json::parse(&response).expect("metrics response is JSON");
            assert_eq!(
                json.get("ok").and_then(Json::as_bool),
                Some(true),
                "round {round}, client {i}: {response}"
            );
        }
    }
    let shutdown = clients[0]
        .roundtrip(r#"{"verb":"shutdown"}"#)
        .expect("shutdown");
    assert!(shutdown.contains("\"ok\":true"), "{shutdown}");
    h.server_thread.join().expect("server exits cleanly");

    // Under `--features lock-audit` the event loop fed the lock-order
    // graph; the "never hold two locks" discipline must hold for the
    // connection layer too.
    #[cfg(feature = "lock-audit")]
    {
        let cycles = aq_serve::lockaudit::detected_cycles();
        assert!(
            cycles.is_empty(),
            "lock-order cycles detected: {cycles:?}\ngraph:\n{}",
            aq_serve::lockaudit::dot_graph()
        );
        let hazards = aq_serve::lockaudit::detected_hazards();
        assert!(hazards.is_empty(), "lock hazards detected: {hazards:?}");
    }
}

/// Connections beyond `max_connections` receive a structured refusal
/// (never a silent drop), and capacity freed by a closing client becomes
/// available again.
#[test]
fn connections_over_the_cap_get_a_structured_refusal() {
    let h = start_server_with("cap", |cfg| cfg.max_connections = 2);
    let mut first = TcpClient::connect(h.addr).expect("connect first");
    let mut second = TcpClient::connect(h.addr).expect("connect second");
    // Roundtrips prove both are registered with the loop (not just in the
    // listener backlog) before the third arrives.
    assert_alive(&mut first);
    assert_alive(&mut second);

    let mut third = TcpClient::connect(h.addr).expect("tcp connect still succeeds");
    let refusal = third.read_line().expect("refusal line");
    assert_structured_error(&refusal, "over-cap connection");
    assert!(
        refusal.contains("connection limit"),
        "unexpected refusal: {refusal}"
    );

    // Freeing a slot lets a new client in (the loop reaps the closed
    // connection on its next pass).
    drop(second);
    let mut served_again = false;
    for _ in 0..200 {
        if let Ok(mut retry) = TcpClient::connect(h.addr) {
            if let Ok(response) = retry.roundtrip(r#"{"verb":"metrics"}"#) {
                if response.contains("\"ok\":true") {
                    served_again = true;
                    break;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        served_again,
        "slot freed by a closed connection is reusable"
    );

    first.roundtrip(r#"{"verb":"shutdown"}"#).expect("shutdown");
    h.server_thread.join().expect("server exits cleanly");
}

#[test]
fn responses_to_unknown_jobs_are_structured_not_errors() {
    let h = start_server("unknown");
    let mut client = TcpClient::connect(h.addr).expect("connect");
    let response = client
        .roundtrip(r#"{"verb":"status","job":123456}"#)
        .expect("roundtrip");
    let json = Json::parse(&response).expect("JSON");
    assert_eq!(json.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(json.get("state").and_then(Json::as_str), Some("unknown"));

    // Waiting on an unknown job answers immediately, no timeout burn.
    let t0 = std::time::Instant::now();
    let response = client
        .roundtrip(r#"{"verb":"wait","job":123456,"timeout_secs":30}"#)
        .expect("roundtrip");
    assert!(t0.elapsed() < Duration::from_secs(5));
    let json = Json::parse(&response).expect("JSON");
    assert_eq!(json.get("state").and_then(Json::as_str), Some("unknown"));

    client
        .roundtrip(r#"{"verb":"shutdown"}"#)
        .expect("shutdown");
    h.server_thread.join().expect("server exits cleanly");
}
