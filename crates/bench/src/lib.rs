//! Shared harness code for regenerating the paper's figures.
//!
//! The `figures` binary (`cargo run --release -p aq-bench --bin figures --
//! <fig2|fig3|fig4|fig5|ablation|all> [--paper]`) writes one CSV per plot
//! under `target/figures/`, with the same series the paper reports:
//! decision-diagram size, accuracy and cumulative run-time per applied
//! gate, for each tolerance value ε and for the algebraic representation.
//!
//! The Criterion benches in `benches/` cover the headline operations
//! (full simulations per weight system, normalization schemes, ring and
//! big-integer arithmetic).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};

use aq_circuits::Circuit;
use aq_dd::{GcdContext, NormScheme, NumericContext, QomegaContext, RunBudget, WeightContext};
use aq_sim::{Column, PairedRun, SimOptions, Simulator, Trace};

pub use aq_sim::sweep::ReferenceRun;

/// The ε values the paper sweeps in Figs. 3–5.
pub const PAPER_EPSILONS: [f64; 6] = [0.0, 1e-20, 1e-15, 1e-10, 1e-5, 1e-3];

/// The ε values of Fig. 2 (GSE size table).
pub const FIG2_EPSILONS: [f64; 6] = [0.0, 1e-15, 1e-10, 1e-6, 1e-5, 1e-3];

/// Workload scale: quick (CI-sized) or paper-sized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced qubit counts/steps so the whole suite runs in minutes.
    Quick,
    /// The paper's parameters (Grover on 15 qubits etc.) — hours for the
    /// ε = 0 runs, exactly as the paper observes.
    Paper,
}

impl Scale {
    /// Parses `--paper` from argv.
    pub fn from_args(args: &[String]) -> Scale {
        if args.iter().any(|a| a == "--paper") {
            Scale::Paper
        } else {
            Scale::Quick
        }
    }
}

/// Parses resource-budget flags from argv: `--max-nodes=N`,
/// `--max-weights=N`, `--max-bits=N`, `--deadline-secs=S`. Absent flags
/// leave the corresponding limit unset (unlimited).
///
/// # Panics
///
/// Panics on an unparsable flag value (this is a command-line harness).
pub fn budget_from_args(args: &[String]) -> RunBudget {
    let mut budget = RunBudget::unlimited();
    for a in args {
        if let Some(v) = a.strip_prefix("--max-nodes=") {
            budget = budget.with_max_nodes(v.parse().expect("--max-nodes=N"));
        } else if let Some(v) = a.strip_prefix("--max-weights=") {
            budget = budget.with_max_distinct_weights(v.parse().expect("--max-weights=N"));
        } else if let Some(v) = a.strip_prefix("--max-bits=") {
            budget = budget.with_max_weight_bits(v.parse().expect("--max-bits=N"));
        } else if let Some(v) = a.strip_prefix("--deadline-secs=") {
            let secs: f64 = v.parse().expect("--deadline-secs=S");
            budget = budget.with_deadline(std::time::Duration::from_secs_f64(secs));
        }
    }
    budget
}

/// Parses crash-safety flags from argv: `--checkpoint=PATH` (dump a
/// checkpoint there when a budget abort hits) and `--resume=PATH`
/// (continue a matching stage from a previously dumped checkpoint).
/// Returns `(checkpoint, resume)`.
pub fn checkpoint_from_args(args: &[String]) -> (Option<PathBuf>, Option<PathBuf>) {
    let mut checkpoint = None;
    let mut resume = None;
    for a in args {
        if let Some(v) = a.strip_prefix("--checkpoint=") {
            checkpoint = Some(PathBuf::from(v));
        } else if let Some(v) = a.strip_prefix("--resume=") {
            resume = Some(PathBuf::from(v));
        }
    }
    (checkpoint, resume)
}

/// The numeric context used throughout the figure harness: the paper's
/// evaluation package normalizes by the largest-magnitude weight (\[29\]),
/// which keeps all stored weights at magnitude ≤ 1. (The simpler leftmost
/// scheme is *markedly* less stable at small non-zero ε — dividing by a
/// near-cancellation pivot produces huge co-weights that then merge
/// wrongly under the tolerance; see the `norm_scheme` ablation.)
pub fn figure_numeric_context(eps: f64) -> NumericContext {
    NumericContext::with_eps_and_scheme(eps, NormScheme::MaxMagnitude)
}

/// Runs one numeric ε-sweep entry against the algebraic reference,
/// sampling the error every `sample_every` gates.
pub fn traced_numeric_run(circuit: &Circuit, eps: f64, sample_every: usize) -> Trace {
    let (subject, _) = PairedRun::new(figure_numeric_context(eps), circuit, sample_every).run();
    subject
}

/// Simulation options for the figure harness: default tuning plus the
/// given resource budget (unlimited = historical behaviour).
pub fn figure_options(budget: RunBudget) -> SimOptions {
    SimOptions {
        budget,
        ..SimOptions::default()
    }
}

/// Runs the exact algebraic simulation once, keeping the amplitude
/// vectors at every sampling point (and at the end). Delegates to the
/// fail-soft [`aq_sim::sweep`] harness with an unlimited budget.
pub fn reference_run(circuit: &Circuit, sample_every: usize, start: u64) -> ReferenceRun {
    aq_sim::sweep::reference_run(circuit, sample_every, start, &SimOptions::default())
}

/// Like [`reference_run`] but under a resource budget: on a budget abort
/// the reference is partial ([`Trace::aborted`] set) instead of panicking.
pub fn reference_run_budgeted(
    circuit: &Circuit,
    sample_every: usize,
    start: u64,
    budget: RunBudget,
) -> ReferenceRun {
    aq_sim::sweep::reference_run(circuit, sample_every, start, &figure_options(budget))
}

/// Runs a numeric ε simulation, measuring the error against a shared
/// [`ReferenceRun`] at its sampling points.
pub fn traced_numeric_vs_reference(circuit: &Circuit, eps: f64, reference: &ReferenceRun) -> Trace {
    traced_numeric_vs_reference_budgeted(circuit, eps, reference, RunBudget::unlimited())
}

/// Like [`traced_numeric_vs_reference`] but under a resource budget: a
/// budget abort yields the partial prefix trace with [`Trace::aborted`]
/// set, so the surrounding ε sweep continues with its remaining points.
pub fn traced_numeric_vs_reference_budgeted(
    circuit: &Circuit,
    eps: f64,
    reference: &ReferenceRun,
    budget: RunBudget,
) -> Trace {
    aq_sim::sweep::numeric_vs_reference(
        figure_numeric_context(eps),
        circuit,
        reference,
        &figure_options(budget),
    )
}

/// Like [`traced_numeric_vs_reference_budgeted`] with crash-safe
/// persistence: a budget abort dumps a checkpoint (tagged `label`) to
/// `checkpoint`, and a later invocation passing the same file as `resume`
/// continues that stage from the stored cursor. Stages whose label does
/// not match the stored one run from scratch, so one `--resume` flag can
/// safely be applied to a whole sweep.
pub fn traced_numeric_vs_reference_resumable(
    circuit: &Circuit,
    eps: f64,
    reference: &ReferenceRun,
    budget: RunBudget,
    label: &str,
    checkpoint: Option<&Path>,
    resume: Option<&Path>,
) -> Trace {
    aq_sim::sweep::numeric_vs_reference_resumable(
        figure_numeric_context(eps),
        circuit,
        reference,
        &figure_options(budget),
        label,
        checkpoint,
        resume,
    )
}

/// Runs the exact algebraic simulation with tracing.
pub fn traced_algebraic_run(circuit: &Circuit) -> Trace {
    traced_run(QomegaContext::new(), circuit)
}

/// Runs the GCD-normalized algebraic simulation with tracing.
pub fn traced_gcd_run(circuit: &Circuit) -> Trace {
    traced_run(GcdContext::new(), circuit)
}

fn traced_run<W: WeightContext>(ctx: W, circuit: &Circuit) -> Trace {
    let mut sim = Simulator::with_options(ctx, circuit, SimOptions::default());
    sim.run().trace
}

/// Formats an ε for CSV column labels (`eps0`, `eps1e-10`, …).
pub fn eps_label(eps: f64) -> String {
    if aq_rings::is_exact_eps(eps) {
        "eps0".to_string()
    } else {
        format!("eps{eps:.0e}")
            .replace("e-", "1e-")
            .replace("eps11e-", "eps1e-")
    }
}

/// Assembles the three per-figure CSVs (size/accuracy/runtime) from a set
/// of labelled traces and writes them under `target/figures/`.
///
/// # Panics
///
/// Panics on I/O errors (this is a command-line harness).
pub fn write_figure(figure: &str, labelled: &[(String, Trace)]) {
    let dir = std::path::Path::new("target/figures");
    let gates: Vec<usize> = labelled
        .iter()
        .map(|(_, t)| t.points.len())
        .max()
        .map(|n| (1..=n).collect())
        .unwrap_or_default();

    let mut size_cols = vec![Column::from_usize("gates", gates.iter().copied())];
    let mut time_cols = vec![Column::from_usize("gates", gates.iter().copied())];
    let mut err_cols = vec![Column::from_usize("gates", gates.iter().copied())];
    let mut bits_cols = vec![Column::from_usize("gates", gates.iter().copied())];
    for (label, t) in labelled {
        size_cols.push(Column::from_usize(
            format!("nodes_{label}"),
            t.points.iter().map(|p| p.nodes),
        ));
        time_cols.push(Column::from_f64(
            format!("seconds_{label}"),
            t.points.iter().map(|p| p.seconds),
        ));
        err_cols.push(Column::from_opt_f64(
            format!("error_{label}"),
            t.points.iter().map(|p| p.error),
        ));
        bits_cols.push(Column::from_usize(
            format!("bits_{label}"),
            t.points.iter().map(|p| p.max_weight_bits as usize),
        ));
    }
    aq_sim::write_csv(dir.join(format!("{figure}a_size.csv")), &size_cols).expect("write csv");
    aq_sim::write_csv(dir.join(format!("{figure}b_accuracy.csv")), &err_cols).expect("write csv");
    aq_sim::write_csv(dir.join(format!("{figure}c_runtime.csv")), &time_cols).expect("write csv");
    aq_sim::write_csv(dir.join(format!("{figure}_bits.csv")), &bits_cols).expect("write csv");

    // Budget-aborted series are partial (shorter columns above); record
    // which ones and why so the CSVs are self-describing.
    if labelled.iter().any(|(_, t)| t.aborted.is_some()) {
        let aborted: Vec<&(String, Trace)> = labelled
            .iter()
            .filter(|(_, t)| t.aborted.is_some())
            .collect();
        let cols = vec![
            Column {
                name: "series".into(),
                values: aborted.iter().map(|(l, _)| l.clone()).collect(),
            },
            Column {
                name: "aborted".into(),
                values: aborted
                    .iter()
                    .map(|(_, t)| t.aborted.clone().unwrap_or_default())
                    .collect(),
            },
            Column::from_usize("points_kept", aborted.iter().map(|(_, t)| t.points.len())),
        ];
        aq_sim::write_csv(dir.join(format!("{figure}_aborted.csv")), &cols).expect("write csv");
    }
}

/// Prints a short textual summary of a figure's traces (peak size, final
/// error, total runtime) — the "rows the paper reports".
pub fn print_summary(figure: &str, labelled: &[(String, Trace)]) {
    println!("== {figure} ==");
    println!(
        "{:<14} {:>12} {:>12} {:>14} {:>10} {:>9} {:>8}",
        "series", "peak nodes", "final nodes", "final error", "seconds", "cache%", "compact"
    );
    for (label, t) in labelled {
        let final_nodes = t.points.last().map(|p| p.nodes).unwrap_or(0);
        let (cache, compactions) = t
            .engine
            .map(|e| {
                (
                    format!("{:.1}", 100.0 * e.cache_hit_rate()),
                    e.compactions.to_string(),
                )
            })
            .unwrap_or_else(|| ("-".into(), "-".into()));
        println!(
            "{:<14} {:>12} {:>12} {:>14} {:>10.3} {:>9} {:>8}",
            label,
            t.peak_nodes(),
            final_nodes,
            t.final_error()
                .map(|e| format!("{e:.3e}"))
                .unwrap_or_else(|| "exact".into()),
            t.total_seconds(),
            cache,
            compactions,
        );
        if let Some(reason) = &t.aborted {
            println!(
                "{:<14}   aborted: {} ({} points kept)",
                "",
                reason,
                t.points.len()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eps_labels() {
        assert_eq!(eps_label(0.0), "eps0");
        assert_eq!(eps_label(1e-10), "eps1e-10");
        assert_eq!(eps_label(1e-3), "eps1e-3");
        assert_eq!(eps_label(1e-20), "eps1e-20");
    }

    #[test]
    fn budget_parsing() {
        assert!(budget_from_args(&["fig3".into()]).is_unlimited());
        let b = budget_from_args(&[
            "fig3".into(),
            "--max-nodes=1000".into(),
            "--max-bits=256".into(),
            "--deadline-secs=1.5".into(),
        ]);
        assert_eq!(b.max_nodes, Some(1000));
        assert_eq!(b.max_weight_bits, Some(256));
        assert_eq!(b.deadline, Some(std::time::Duration::from_secs_f64(1.5)));
        assert_eq!(b.max_distinct_weights, None);
    }

    #[test]
    fn budgeted_sweep_reports_abort_and_continues() {
        let c = aq_circuits::grover(4, 5);
        let reference = reference_run(&c, 8, 0);
        assert!(reference.trace.aborted.is_none());
        // a numeric eps=0 run under a tiny node budget aborts fail-soft...
        let capped = traced_numeric_vs_reference_budgeted(
            &c,
            0.0,
            &reference,
            RunBudget::unlimited().with_max_nodes(8),
        );
        assert!(capped.aborted.is_some());
        assert!(capped.points.len() < c.len());
        // ...while the next sweep point (unlimited) still completes
        let free = traced_numeric_vs_reference(&c, 1e-10, &reference);
        assert!(free.aborted.is_none());
        assert_eq!(free.points.len(), c.len());
    }

    #[test]
    fn checkpoint_flag_parsing() {
        assert_eq!(checkpoint_from_args(&["fig3".into()]), (None, None));
        let (c, r) = checkpoint_from_args(&[
            "fig3".into(),
            "--checkpoint=/tmp/a.aqckp".into(),
            "--resume=/tmp/b.aqckp".into(),
        ]);
        assert_eq!(c, Some(PathBuf::from("/tmp/a.aqckp")));
        assert_eq!(r, Some(PathBuf::from("/tmp/b.aqckp")));
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::from_args(&["fig3".into()]), Scale::Quick);
        assert_eq!(
            Scale::from_args(&["fig3".into(), "--paper".into()]),
            Scale::Paper
        );
    }

    #[test]
    fn traced_runs_produce_points() {
        let c = aq_circuits::grover(3, 2);
        let t = traced_algebraic_run(&c);
        assert_eq!(t.points.len(), c.len());
        let tn = traced_numeric_run(&c, 1e-12, 4);
        assert_eq!(tn.points.len(), c.len());
        assert!(tn.final_error().is_some());
    }
}
