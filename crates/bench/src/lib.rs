//! Shared harness code for regenerating the paper's figures.
//!
//! The `figures` binary (`cargo run --release -p aq-bench --bin figures --
//! <fig2|fig3|fig4|fig5|ablation|all> [--paper]`) writes one CSV per plot
//! under `target/figures/`, with the same series the paper reports:
//! decision-diagram size, accuracy and cumulative run-time per applied
//! gate, for each tolerance value ε and for the algebraic representation.
//!
//! The Criterion benches in `benches/` cover the headline operations
//! (full simulations per weight system, normalization schemes, ring and
//! big-integer arithmetic).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use aq_circuits::Circuit;
use aq_dd::{GcdContext, NormScheme, NumericContext, QomegaContext, WeightContext};
use aq_sim::{Column, PairedRun, SimOptions, Simulator, Trace};

/// The ε values the paper sweeps in Figs. 3–5.
pub const PAPER_EPSILONS: [f64; 6] = [0.0, 1e-20, 1e-15, 1e-10, 1e-5, 1e-3];

/// The ε values of Fig. 2 (GSE size table).
pub const FIG2_EPSILONS: [f64; 6] = [0.0, 1e-15, 1e-10, 1e-6, 1e-5, 1e-3];

/// Workload scale: quick (CI-sized) or paper-sized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced qubit counts/steps so the whole suite runs in minutes.
    Quick,
    /// The paper's parameters (Grover on 15 qubits etc.) — hours for the
    /// ε = 0 runs, exactly as the paper observes.
    Paper,
}

impl Scale {
    /// Parses `--paper` from argv.
    pub fn from_args(args: &[String]) -> Scale {
        if args.iter().any(|a| a == "--paper") {
            Scale::Paper
        } else {
            Scale::Quick
        }
    }
}

/// The numeric context used throughout the figure harness: the paper's
/// evaluation package normalizes by the largest-magnitude weight (\[29\]),
/// which keeps all stored weights at magnitude ≤ 1. (The simpler leftmost
/// scheme is *markedly* less stable at small non-zero ε — dividing by a
/// near-cancellation pivot produces huge co-weights that then merge
/// wrongly under the tolerance; see the `norm_scheme` ablation.)
pub fn figure_numeric_context(eps: f64) -> NumericContext {
    NumericContext::with_eps_and_scheme(eps, NormScheme::MaxMagnitude)
}

/// Runs one numeric ε-sweep entry against the algebraic reference,
/// sampling the error every `sample_every` gates.
pub fn traced_numeric_run(circuit: &Circuit, eps: f64, sample_every: usize) -> Trace {
    let (subject, _) = PairedRun::new(figure_numeric_context(eps), circuit, sample_every).run();
    subject
}

/// A completed exact reference simulation with its per-sample amplitude
/// vectors, shared across a whole ε sweep (running the expensive
/// algebraic simulation once instead of once per ε).
#[derive(Debug)]
pub struct ReferenceRun {
    /// The algebraic trace (sizes, runtime).
    pub trace: Trace,
    /// Exact amplitude vectors keyed by gates-applied count.
    pub samples: std::collections::HashMap<usize, Vec<aq_rings::Complex64>>,
    sample_every: usize,
    start: u64,
}

/// Runs the exact algebraic simulation once, keeping the amplitude
/// vectors at every sampling point (and at the end).
pub fn reference_run(circuit: &Circuit, sample_every: usize, start: u64) -> ReferenceRun {
    assert!(sample_every > 0, "sampling interval must be positive");
    let mut sim = Simulator::new(QomegaContext::new(), circuit);
    sim.reset_to(start);
    let mut trace = Trace::default();
    let mut samples = std::collections::HashMap::new();
    while sim.step() {
        trace.points.push(sim.sample(None));
        let g = sim.gates_applied();
        if g.is_multiple_of(sample_every) || sim.is_done() {
            let s = sim.state();
            samples.insert(g, sim.manager_mut().amplitudes(&s));
        }
    }
    trace.engine = Some(sim.statistics());
    ReferenceRun {
        trace,
        samples,
        sample_every,
        start,
    }
}

/// Runs a numeric ε simulation, measuring the error against a shared
/// [`ReferenceRun`] at its sampling points.
pub fn traced_numeric_vs_reference(circuit: &Circuit, eps: f64, reference: &ReferenceRun) -> Trace {
    let mut sim = Simulator::new(figure_numeric_context(eps), circuit);
    sim.reset_to(reference.start);
    let mut trace = Trace::default();
    while sim.step() {
        let g = sim.gates_applied();
        let error = if g.is_multiple_of(reference.sample_every) || sim.is_done() {
            reference.samples.get(&g).map(|v_alg| {
                let s = sim.state();
                let v_num = sim.manager_mut().amplitudes(&s);
                aq_sim::normalized_distance(&v_num, v_alg)
            })
        } else {
            None
        };
        trace.points.push(sim.sample(error));
    }
    trace.engine = Some(sim.statistics());
    trace
}

/// Runs the exact algebraic simulation with tracing.
pub fn traced_algebraic_run(circuit: &Circuit) -> Trace {
    traced_run(QomegaContext::new(), circuit)
}

/// Runs the GCD-normalized algebraic simulation with tracing.
pub fn traced_gcd_run(circuit: &Circuit) -> Trace {
    traced_run(GcdContext::new(), circuit)
}

fn traced_run<W: WeightContext>(ctx: W, circuit: &Circuit) -> Trace {
    let mut sim = Simulator::with_options(ctx, circuit, SimOptions::default());
    sim.run().trace
}

/// Formats an ε for CSV column labels (`eps0`, `eps1e-10`, …).
pub fn eps_label(eps: f64) -> String {
    if eps == 0.0 {
        "eps0".to_string()
    } else {
        format!("eps{eps:.0e}")
            .replace("e-", "1e-")
            .replace("eps11e-", "eps1e-")
    }
}

/// Assembles the three per-figure CSVs (size/accuracy/runtime) from a set
/// of labelled traces and writes them under `target/figures/`.
///
/// # Panics
///
/// Panics on I/O errors (this is a command-line harness).
pub fn write_figure(figure: &str, labelled: &[(String, Trace)]) {
    let dir = std::path::Path::new("target/figures");
    let gates: Vec<usize> = labelled
        .iter()
        .map(|(_, t)| t.points.len())
        .max()
        .map(|n| (1..=n).collect())
        .unwrap_or_default();

    let mut size_cols = vec![Column::from_usize("gates", gates.iter().copied())];
    let mut time_cols = vec![Column::from_usize("gates", gates.iter().copied())];
    let mut err_cols = vec![Column::from_usize("gates", gates.iter().copied())];
    let mut bits_cols = vec![Column::from_usize("gates", gates.iter().copied())];
    for (label, t) in labelled {
        size_cols.push(Column::from_usize(
            format!("nodes_{label}"),
            t.points.iter().map(|p| p.nodes),
        ));
        time_cols.push(Column::from_f64(
            format!("seconds_{label}"),
            t.points.iter().map(|p| p.seconds),
        ));
        err_cols.push(Column::from_opt_f64(
            format!("error_{label}"),
            t.points.iter().map(|p| p.error),
        ));
        bits_cols.push(Column::from_usize(
            format!("bits_{label}"),
            t.points.iter().map(|p| p.max_weight_bits as usize),
        ));
    }
    aq_sim::write_csv(dir.join(format!("{figure}a_size.csv")), &size_cols).expect("write csv");
    aq_sim::write_csv(dir.join(format!("{figure}b_accuracy.csv")), &err_cols).expect("write csv");
    aq_sim::write_csv(dir.join(format!("{figure}c_runtime.csv")), &time_cols).expect("write csv");
    aq_sim::write_csv(dir.join(format!("{figure}_bits.csv")), &bits_cols).expect("write csv");
}

/// Prints a short textual summary of a figure's traces (peak size, final
/// error, total runtime) — the "rows the paper reports".
pub fn print_summary(figure: &str, labelled: &[(String, Trace)]) {
    println!("== {figure} ==");
    println!(
        "{:<14} {:>12} {:>12} {:>14} {:>10} {:>9} {:>8}",
        "series", "peak nodes", "final nodes", "final error", "seconds", "cache%", "compact"
    );
    for (label, t) in labelled {
        let final_nodes = t.points.last().map(|p| p.nodes).unwrap_or(0);
        let (cache, compactions) = t
            .engine
            .map(|e| {
                (
                    format!("{:.1}", 100.0 * e.cache_hit_rate()),
                    e.compactions.to_string(),
                )
            })
            .unwrap_or_else(|| ("-".into(), "-".into()));
        println!(
            "{:<14} {:>12} {:>12} {:>14} {:>10.3} {:>9} {:>8}",
            label,
            t.peak_nodes(),
            final_nodes,
            t.final_error()
                .map(|e| format!("{e:.3e}"))
                .unwrap_or_else(|| "exact".into()),
            t.total_seconds(),
            cache,
            compactions,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eps_labels() {
        assert_eq!(eps_label(0.0), "eps0");
        assert_eq!(eps_label(1e-10), "eps1e-10");
        assert_eq!(eps_label(1e-3), "eps1e-3");
        assert_eq!(eps_label(1e-20), "eps1e-20");
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::from_args(&["fig3".into()]), Scale::Quick);
        assert_eq!(
            Scale::from_args(&["fig3".into(), "--paper".into()]),
            Scale::Paper
        );
    }

    #[test]
    fn traced_runs_produce_points() {
        let c = aq_circuits::grover(3, 2);
        let t = traced_algebraic_run(&c);
        assert_eq!(t.points.len(), c.len());
        let tn = traced_numeric_run(&c, 1e-12, 4);
        assert_eq!(tn.points.len(), c.len());
        assert!(tn.final_error().is_some());
    }
}
