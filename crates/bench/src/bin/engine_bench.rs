//! Engine micro-benchmark: runs the figure workloads once per weight
//! system and emits `BENCH_engine.json` with throughput (gates/s, DD
//! nodes/s) and cache-hit-rate numbers, so the perf trajectory of the
//! engine can be tracked across PRs.
//!
//! Usage: `cargo run --release -p aq-bench --bin engine_bench [-- <out.json>]`
//!
//! Resource-budget flags (`--max-nodes=N`, `--max-weights=N`, `--max-bits=N`,
//! `--deadline-secs=S`) cap each workload; a capped run is reported with its
//! partial measurements and an `"aborted"` reason instead of crashing the
//! whole benchmark.
//!
//! With `--checkpoint=PATH` a budget-aborted workload dumps its simulator
//! to PATH (a later abort overwrites an earlier one); re-running with
//! `--resume=PATH` (and a roomier budget) continues the workload the file
//! belongs to from the stored cursor while the others run normally.
//!
//! With `--gap-gate=FRACTION` the benchmark instead runs the quick
//! algebraic-gap regression gate: Grover-6 under the numeric and the GCD
//! `D[ω]` scheme, exiting non-zero if GCD throughput falls below
//! FRACTION of numeric throughput. CI pins this so the exact
//! representation can never silently regress back to orders-of-magnitude
//! slower than floating point.

use std::fmt::Write as _;
use std::path::Path;

use aq_bench::{budget_from_args, checkpoint_from_args};
use aq_circuits::{bwt, grover, BwtParams, Circuit};
use aq_dd::{EngineStatistics, RunBudget};
use aq_sim::{run_job, JobSpec, SchemeSpec};

/// One completed (possibly budget-aborted) measurement.
struct Sample {
    name: &'static str,
    gates: usize,
    seconds: f64,
    final_nodes: usize,
    stats: EngineStatistics,
    aborted: Option<String>,
}

fn run(
    name: &'static str,
    scheme: SchemeSpec,
    circuit: &Circuit,
    start: u64,
    budget: RunBudget,
    checkpoint: Option<&Path>,
    resume: Option<&Path>,
) -> Sample {
    let mut spec = JobSpec::new(circuit, start, scheme);
    // The workload name is the checkpoint label: only the workload a
    // checkpoint was taken from resumes, the rest rerun from scratch.
    spec.label = name.to_string();
    spec.options.budget = budget;
    spec.options.checkpoint_on_abort = checkpoint.map(Path::to_path_buf);
    spec.resume = resume.map(Path::to_path_buf);
    spec.top_k = 0; // throughput measurement; skip amplitude extraction
    let outcome = run_job(&spec, None);
    Sample {
        name,
        gates: outcome.gates_applied,
        seconds: outcome.seconds,
        final_nodes: outcome.final_nodes,
        stats: outcome.statistics,
        aborted: outcome.aborted.map(|a| a.reason),
    }
}

fn gps(s: &Sample) -> f64 {
    s.gates as f64 / s.seconds
}

fn gap_gate_from_args(args: &[String]) -> Option<f64> {
    args.iter().find_map(|a| {
        a.strip_prefix("--gap-gate=")
            .map(|v| v.parse().expect("--gap-gate takes a fraction, e.g. 0.3"))
    })
}

/// Runs the algebraic-gap regression gate on Grover-6; returns the exit
/// code (0 = GCD throughput holds the pinned fraction of numeric).
fn run_gap_gate(min_frac: f64, budget: RunBudget) -> i32 {
    let c = grover(6, 0b101101);
    let numeric = run(
        "grover6/numeric_eps1e-10",
        SchemeSpec::Numeric { eps: 1e-10 },
        &c,
        0,
        budget,
        None,
        None,
    );
    let gcd = run(
        "grover6/algebraic_gcd",
        SchemeSpec::Gcd,
        &c,
        0,
        budget,
        None,
        None,
    );
    let ratio = gps(&gcd) / gps(&numeric);
    println!(
        "gap gate: gcd {:.0} gates/s vs numeric {:.0} gates/s — ratio {ratio:.3} (required ≥ {min_frac})",
        gps(&gcd),
        gps(&numeric),
    );
    if let Some(reason) = numeric.aborted.as_ref().or(gcd.aborted.as_ref()) {
        eprintln!("gap gate: workload aborted ({reason}); cannot judge the ratio");
        return 1;
    }
    if ratio.is_nan() || ratio < min_frac {
        eprintln!(
            "gap gate FAILED: GCD D[omega] throughput fell below {min_frac} of numeric (ratio {ratio:.3})"
        );
        return 1;
    }
    0
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

fn sample_json(s: &Sample) -> String {
    let st = &s.stats;
    // nodes allocated over the run (arena length; compaction resets it, so
    // add the nodes the run produced per second as the throughput proxy)
    let nodes_allocated = st.vec_nodes + st.mat_nodes;
    let mut o = String::new();
    let _ = write!(
        o,
        concat!(
            "    {{\n",
            "      \"name\": \"{}\",\n",
            "      \"gates\": {},\n",
            "      \"seconds\": {},\n",
            "      \"gates_per_second\": {},\n",
            "      \"nodes_allocated\": {},\n",
            "      \"nodes_per_second\": {},\n",
            "      \"final_nodes\": {},\n",
            "      \"cache_hit_rate\": {},\n",
            "      \"cache_lookups\": {},\n",
            "      \"cache_evictions\": {},\n",
            "      \"weight_cache_hit_rate\": {},\n",
            "      \"weight_cache_lookups\": {},\n",
            "      \"vec_unique_load\": {},\n",
            "      \"mat_unique_load\": {},\n",
            "      \"distinct_weights\": {},\n",
            "      \"compactions\": {},\n",
            "      \"aborted\": {}\n",
            "    }}"
        ),
        s.name,
        s.gates,
        json_f64(s.seconds),
        json_f64(s.gates as f64 / s.seconds),
        nodes_allocated,
        json_f64(nodes_allocated as f64 / s.seconds),
        s.final_nodes,
        json_f64(st.cache_hit_rate()),
        st.add_vec.lookups + st.add_mat.lookups + st.mv.lookups + st.mm.lookups,
        st.add_vec.evictions + st.add_mat.evictions + st.mv.evictions + st.mm.evictions,
        json_f64(st.weight_cache_hit_rate()),
        st.wop.lookups + st.wnorm.lookups,
        json_f64(st.vec_unique_load()),
        json_f64(st.mat_unique_load()),
        st.distinct_weights,
        st.compactions,
        match &s.aborted {
            Some(reason) => format!("\"{}\"", reason.replace('\\', "\\\\").replace('"', "\\\"")),
            None => "null".into(),
        },
    );
    o
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let budget = budget_from_args(&args);
    if let Some(min_frac) = gap_gate_from_args(&args) {
        std::process::exit(run_gap_gate(min_frac, budget));
    }
    let (checkpoint, resume) = checkpoint_from_args(&args);
    let (ckpt, res) = (checkpoint.as_deref(), resume.as_deref());
    let out = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_engine.json".into());

    let grover_c = grover(10, 0b1011010110);
    let (bwt_c, tree) = bwt(BwtParams {
        height: 3,
        steps: 20,
        seed: 0xBD7,
    });
    let entrance = tree.entrance();

    let samples = [
        run(
            "grover10/numeric_eps1e-10",
            SchemeSpec::Numeric { eps: 1e-10 },
            &grover_c,
            0,
            budget,
            ckpt,
            res,
        ),
        run(
            "grover10/algebraic_qomega",
            SchemeSpec::Qomega,
            &grover_c,
            0,
            budget,
            ckpt,
            res,
        ),
        run(
            "grover10/algebraic_gcd",
            SchemeSpec::Gcd,
            &grover_c,
            0,
            budget,
            ckpt,
            res,
        ),
        run(
            "bwt_h3/numeric_eps1e-10",
            SchemeSpec::Numeric { eps: 1e-10 },
            &bwt_c,
            entrance,
            budget,
            ckpt,
            res,
        ),
        run(
            "bwt_h3/algebraic_qomega",
            SchemeSpec::Qomega,
            &bwt_c,
            entrance,
            budget,
            ckpt,
            res,
        ),
    ];

    for s in &samples {
        println!(
            "{:<28} {:>8} gates  {:>9.3}s  {:>12.0} gates/s  {:>12.0} nodes/s  cache {:>5.1}%  wcache {:>5.1}%  compactions {}",
            s.name,
            s.gates,
            s.seconds,
            s.gates as f64 / s.seconds,
            (s.stats.vec_nodes + s.stats.mat_nodes) as f64 / s.seconds,
            100.0 * s.stats.cache_hit_rate(),
            100.0 * s.stats.weight_cache_hit_rate(),
            s.stats.compactions,
        );
        if let Some(reason) = &s.aborted {
            println!("{:<28} aborted: {reason}", "");
        }
    }

    // slowdown of each exact scheme relative to the numeric run of the
    // same workload (1.0 = parity; the paper's gap is what this PR closes)
    let gap = |num: &Sample, alg: &Sample| json_f64(gps(num) / gps(alg));
    let algebraic_gap = format!(
        concat!(
            "  \"algebraic_gap\": {{\n",
            "    \"grover10_qomega\": {},\n",
            "    \"grover10_gcd\": {},\n",
            "    \"bwt_h3_qomega\": {}\n",
            "  }},\n"
        ),
        gap(&samples[0], &samples[1]),
        gap(&samples[0], &samples[2]),
        gap(&samples[3], &samples[4]),
    );

    let body: Vec<String> = samples.iter().map(sample_json).collect();
    let json = format!(
        "{{\n  \"benchmark\": \"aq engine\",\n{}  \"samples\": [\n{}\n  ]\n}}\n",
        algebraic_gap,
        body.join(",\n")
    );
    std::fs::write(&out, json).expect("write BENCH_engine.json");
    println!("wrote {out}");
}
