//! Regenerates every figure of the paper's evaluation as CSV data series.
//!
//! ```text
//! cargo run --release -p aq-bench --bin figures -- all            # quick scale
//! cargo run --release -p aq-bench --bin figures -- fig3 --paper   # paper scale
//! ```
//!
//! Optional resource-budget flags (`--max-nodes=N`, `--max-weights=N`,
//! `--max-bits=N`, `--deadline-secs=S`) cap every series of an ε sweep; a
//! capped series is reported as an explicit `aborted` row with its partial
//! prefix kept, and the remaining ε points still run to completion.
//!
//! With `--checkpoint=PATH` a budget abort additionally dumps the aborted
//! stage's simulator to PATH; re-running the same figure with
//! `--resume=PATH` (and a roomier budget) continues that stage from the
//! stored cursor instead of replaying it, while all other stages run
//! normally.
//!
//! Output lands in `target/figures/*.csv`; a textual summary (the rows the
//! paper reports) is printed to stdout. See `EXPERIMENTS.md` for the
//! paper-vs-measured comparison.

use std::path::Path;

use aq_bench::{
    budget_from_args, checkpoint_from_args, eps_label, print_summary, reference_run_budgeted,
    traced_numeric_vs_reference_resumable, write_figure, Scale, FIG2_EPSILONS, PAPER_EPSILONS,
};
use aq_circuits::cliffordt::CliffordTCompiler;
use aq_circuits::{bwt, grover, gse, BwtParams, Circuit, GseParams};
use aq_dd::{GcdContext, QomegaContext, RunBudget};
use aq_sim::{Column, SimOptions, Simulator, Trace};

/// Crash-safety wiring shared by every sweep: where to dump a checkpoint
/// on abort, and which (if any) checkpoint to continue from.
#[derive(Clone, Copy, Default)]
struct Persist<'a> {
    checkpoint: Option<&'a Path>,
    resume: Option<&'a Path>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let budget = budget_from_args(&args);
    let (checkpoint, resume) = checkpoint_from_args(&args);
    let persist = Persist {
        checkpoint: checkpoint.as_deref(),
        resume: resume.as_deref(),
    };
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    match which {
        "fig2" => fig2_and_fig5(scale, budget, persist, true, false),
        "fig3" => fig3(scale, budget, persist),
        "fig4" => fig4(scale, budget, persist),
        "fig5" => fig2_and_fig5(scale, budget, persist, false, true),
        "ablation" => ablation(scale),
        "extras" => extras(scale),
        "all" => {
            fig2_and_fig5(scale, budget, persist, true, true);
            fig3(scale, budget, persist);
            fig4(scale, budget, persist);
            ablation(scale);
            extras(scale);
        }
        other => {
            eprintln!(
                "unknown figure `{other}`; use fig2|fig3|fig4|fig5|ablation|extras|all \
                 [--paper] [--max-nodes=N] [--max-weights=N] [--max-bits=N] [--deadline-secs=S] \
                 [--checkpoint=PATH] [--resume=PATH]"
            );
            std::process::exit(2);
        }
    }
}

/// The compiled Clifford+T GSE circuit used by Figs. 2 and 5.
fn gse_circuit(scale: Scale) -> Circuit {
    let params = match scale {
        Scale::Quick => GseParams {
            precision_bits: 4,
            ..GseParams::default()
        },
        Scale::Paper => GseParams {
            precision_bits: 6,
            trotter_slices: 2,
            ..GseParams::default()
        },
    };
    let raw = gse(&params);
    // The figure workload is the compiled circuit itself, so approximation
    // quality is not under test: the quick scale uses single database
    // lookups (shorter words, minutes-scale algebraic runs); the paper
    // scale uses the two-stage meet-in-the-middle search.
    let (budget, two_stage) = match scale {
        Scale::Quick => (8, false),
        Scale::Paper => (12, true),
    };
    let mut comp = CliffordTCompiler::new(budget);
    if !two_stage {
        comp = comp.without_two_stage();
    }
    let (compiled, worst) = comp.compile(&raw);
    println!(
        "GSE: {} qubits, {} raw ops -> {} Clifford+T ops (worst per-gate distance {worst:.3})",
        raw.n_qubits(),
        raw.len(),
        compiled.len()
    );
    compiled
}

/// Fig. 3: Grover — size / accuracy / runtime over applied gates.
fn fig3(scale: Scale, budget: RunBudget, persist: Persist<'_>) {
    let (n, marked) = match scale {
        Scale::Quick => (11, 0b10110101101),
        Scale::Paper => (15, 0b101101011010110),
    };
    let circuit = grover(n, marked);
    println!("Grover: {n} qubits, {} ops", circuit.len());
    let sample = (circuit.len() / 60).max(1);
    let reference = reference_run_budgeted(&circuit, sample, 0, budget);
    let mut labelled: Vec<(String, Trace)> = Vec::new();
    for eps in PAPER_EPSILONS {
        labelled.push((
            eps_label(eps),
            traced_numeric_vs_reference_resumable(
                &circuit,
                eps,
                &reference,
                budget,
                &format!("fig3/{}", eps_label(eps)),
                persist.checkpoint,
                persist.resume,
            ),
        ));
    }
    labelled.push(("algebraic".into(), reference.trace));
    write_figure("fig3", &labelled);
    print_summary("Fig. 3 (Grover)", &labelled);
}

/// Fig. 4: Binary Welded Tree — size / accuracy / runtime.
fn fig4(scale: Scale, budget: RunBudget, persist: Persist<'_>) {
    let params = match scale {
        Scale::Quick => BwtParams {
            height: 4,
            steps: 40,
            seed: 0xBD7,
        },
        Scale::Paper => BwtParams {
            height: 5,
            steps: 60,
            seed: 0xBD7,
        },
    };
    let (circuit, tree) = bwt(params);
    println!(
        "BWT: height {}, {} vertices, {} qubits, {} ops",
        params.height,
        tree.vertex_count(),
        circuit.n_qubits(),
        circuit.len()
    );
    let sample = (circuit.len() / 60).max(1);
    let reference = reference_run_budgeted(&circuit, sample, tree.coined_start(), budget);
    let mut labelled: Vec<(String, Trace)> = Vec::new();
    for eps in PAPER_EPSILONS {
        labelled.push((
            eps_label(eps),
            traced_numeric_vs_reference_resumable(
                &circuit,
                eps,
                &reference,
                budget,
                &format!("fig4/{}", eps_label(eps)),
                persist.checkpoint,
                persist.resume,
            ),
        ));
    }
    labelled.push(("algebraic".into(), reference.trace));
    write_figure("fig4", &labelled);
    print_summary("Fig. 4 (BWT)", &labelled);
}

/// Figs. 2 and 5 share the same GSE workload: one algebraic reference
/// run feeds both ε sweeps.
fn fig2_and_fig5(
    scale: Scale,
    budget: RunBudget,
    persist: Persist<'_>,
    emit_fig2: bool,
    emit_fig5: bool,
) {
    let circuit = gse_circuit(scale);
    let sample = (circuit.len() / 50).max(1);
    let reference = reference_run_budgeted(&circuit, sample, 0, budget);
    let mut eps_list: Vec<f64> = PAPER_EPSILONS.to_vec();
    for e in FIG2_EPSILONS {
        if !eps_list.contains(&e) {
            eps_list.push(e);
        }
    }
    eps_list.sort_by(|a, b| b.total_cmp(a));
    let mut traces: Vec<(f64, Trace)> = Vec::new();
    for eps in eps_list {
        traces.push((
            eps,
            traced_numeric_vs_reference_resumable(
                &circuit,
                eps,
                &reference,
                budget,
                &format!("gse/{}", eps_label(eps)),
                persist.checkpoint,
                persist.resume,
            ),
        ));
    }
    let pick = |list: &[f64]| -> Vec<(String, Trace)> {
        let mut out: Vec<(String, Trace)> = list
            .iter()
            .map(|e| {
                let t = traces
                    .iter()
                    .find(|(x, _)| x == e)
                    .expect("swept")
                    .1
                    .clone();
                (eps_label(*e), t)
            })
            .collect();
        out.push(("algebraic".into(), reference.trace.clone()));
        out
    };
    if emit_fig2 {
        let labelled = pick(&FIG2_EPSILONS);
        write_figure("fig2", &labelled);
        print_summary("Fig. 2 (GSE size vs epsilon)", &labelled);
    }
    if emit_fig5 {
        let labelled = pick(&PAPER_EPSILONS);
        write_figure("fig5", &labelled);
        print_summary("Fig. 5 (GSE)", &labelled);
        println!(
            "algebraic peak coefficient bit-width: {}",
            reference.trace.peak_weight_bits()
        );
    }
}

/// Normalization-scheme ablation (Sec. V-B): `Q[ω]` inverses vs `D[ω]` GCDs.
fn ablation(scale: Scale) {
    let grover_c = match scale {
        Scale::Quick => grover(9, 0b101101011),
        Scale::Paper => grover(11, 0b10110101101),
    };
    let (bwt_c, tree) = bwt(BwtParams {
        height: 3,
        steps: 30,
        seed: 0xBD7,
    });
    let gse_c = {
        let raw = gse(&GseParams {
            precision_bits: 3,
            ..GseParams::default()
        });
        // single lookups: the ablation compares normalization schemes,
        // not compilation quality, and shorter words keep it minutes-scale
        CliffordTCompiler::new(6)
            .without_two_stage()
            .compile(&raw)
            .0
    };

    let mut rows: Vec<(String, Trace, Trace, f64, f64)> = Vec::new();
    for (name, circuit, start) in [
        ("grover", &grover_c, 0u64),
        ("bwt", &bwt_c, tree.coined_start()),
        ("gse", &gse_c, 0),
    ] {
        let q = traced_walk(QomegaContext::new(), circuit, start);
        let g = traced_walk(GcdContext::new(), circuit, start);
        let qf = trivial_fraction(QomegaContext::new(), circuit, start);
        let gf = trivial_fraction(GcdContext::new(), circuit, start);
        rows.push((name.to_string(), q, g, qf, gf));
    }

    println!("== Normalization ablation (Sec. V-B) ==");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "bench", "Qw secs", "GCD secs", "Qw nodes", "GCD nodes", "Qw triv", "GCD triv"
    );
    let mut cols: Vec<Column> = vec![Column {
        name: "bench".into(),
        values: rows.iter().map(|r| r.0.clone()).collect(),
    }];
    cols.push(Column::from_f64(
        "qomega_seconds",
        rows.iter().map(|r| r.1.total_seconds()),
    ));
    cols.push(Column::from_f64(
        "gcd_seconds",
        rows.iter().map(|r| r.2.total_seconds()),
    ));
    cols.push(Column::from_usize(
        "qomega_peak_nodes",
        rows.iter().map(|r| r.1.peak_nodes()),
    ));
    cols.push(Column::from_usize(
        "gcd_peak_nodes",
        rows.iter().map(|r| r.2.peak_nodes()),
    ));
    cols.push(Column::from_f64(
        "qomega_trivial_fraction",
        rows.iter().map(|r| r.3),
    ));
    cols.push(Column::from_f64(
        "gcd_trivial_fraction",
        rows.iter().map(|r| r.4),
    ));
    for (name, q, g, qf, gf) in &rows {
        println!(
            "{:<8} {:>12.3} {:>12.3} {:>12} {:>12} {:>10.3} {:>10.3}",
            name,
            q.total_seconds(),
            g.total_seconds(),
            q.peak_nodes(),
            g.peak_nodes(),
            qf,
            gf
        );
    }
    aq_sim::write_csv("target/figures/ablation_normalization.csv", &cols).expect("write csv");

    norm_scheme_ablation();
}

/// Numeric-normalization ablation: the simple leftmost scheme vs the
/// largest-magnitude scheme of \[29\] at small non-zero ε. Dividing by a
/// near-cancellation pivot produces huge co-weights that merge wrongly
/// under the tolerance — the “numerical instability of the multiplication
/// algorithm” the paper observes as error peaks in Fig. 3b.
fn norm_scheme_ablation() {
    use aq_bench::reference_run;
    use aq_dd::{NormScheme, NumericContext};
    use aq_sim::normalized_distance;

    let circuit = grover(9, 0b101101011);
    let reference = reference_run(&circuit, 50, 0);
    println!("== Norm-scheme ablation (leftmost vs max-magnitude, Grover 9) ==");
    println!(
        "{:<10} {:<16} {:>14} {:>12}",
        "eps", "scheme", "final error", "peak nodes"
    );
    let mut rows: Vec<(f64, &str, f64, usize)> = Vec::new();
    for eps in [1e-16, 1e-13, 1e-10] {
        for (scheme, name) in [
            (NormScheme::Leftmost, "leftmost"),
            (NormScheme::MaxMagnitude, "max-magnitude"),
        ] {
            let ctx = NumericContext::with_eps_and_scheme(eps, scheme);
            let mut sim = Simulator::new(ctx, &circuit);
            let mut peak = 0usize;
            while sim.step() {
                peak = peak.max(sim.nodes());
            }
            let s = sim.state();
            let v_num = sim.manager_mut().amplitudes(&s);
            let v_alg = &reference.samples[&circuit.len()];
            let err = normalized_distance(&v_num, v_alg);
            println!("{eps:<10.0e} {name:<16} {err:>14.3e} {peak:>12}");
            rows.push((eps, name, err, peak));
        }
    }
    let cols = vec![
        Column::from_f64("eps", rows.iter().map(|r| r.0)),
        Column {
            name: "scheme".into(),
            values: rows.iter().map(|r| r.1.to_string()).collect(),
        },
        Column::from_f64("final_error", rows.iter().map(|r| r.2)),
        Column::from_usize("peak_nodes", rows.iter().map(|r| r.3)),
    ];
    aq_sim::write_csv("target/figures/ablation_norm_scheme.csv", &cols).expect("write csv");
}

/// Extension experiments beyond the paper's figures (see EXPERIMENTS.md):
/// matrix-matrix vs matrix-vector workloads, and the correctness of
/// DD-based equivalence checking under the eps trade-off.
fn extras(scale: Scale) {
    matrix_vs_vector(scale);
    equivalence_correctness();
}

/// Builds the whole-circuit unitary (matrix-matrix pipeline) and compares
/// it with stepwise state simulation — the two workloads the paper's
/// introduction names for DD-based design automation.
fn matrix_vs_vector(scale: Scale) {
    use aq_dd::NumericContext;
    use std::time::Instant;
    let n = match scale {
        Scale::Quick => 8,
        Scale::Paper => 10,
    };
    let circuit = grover(n, (1 << n) - 2);
    println!("== Extras: matrix-matrix vs matrix-vector (Grover {n}) ==");
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "backend", "mxv secs", "mxm secs", "U nodes"
    );
    let mut rows: Vec<(String, f64, f64, usize)> = Vec::new();
    macro_rules! case {
        ($label:expr, $ctx:expr) => {{
            let t0 = Instant::now();
            let mut sim = Simulator::new($ctx, &circuit);
            while sim.step() {}
            let mxv = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            let mut sim = Simulator::new($ctx, &circuit);
            let u = sim.build_unitary();
            let mxm = t0.elapsed().as_secs_f64();
            let nodes = sim.manager().mat_nodes(&u);
            println!("{:<22} {:>12.3} {:>12.3} {:>12}", $label, mxv, mxm, nodes);
            rows.push(($label.to_string(), mxv, mxm, nodes));
        }};
    }
    case!("numeric eps=1e-10", aq_bench::figure_numeric_context(1e-10));
    case!("numeric eps=0", NumericContext::new());
    case!("algebraic Q[w]", QomegaContext::new());
    let cols = vec![
        Column {
            name: "backend".into(),
            values: rows.iter().map(|r| r.0.clone()).collect(),
        },
        Column::from_f64("mxv_seconds", rows.iter().map(|r| r.1)),
        Column::from_f64("mxm_seconds", rows.iter().map(|r| r.2)),
        Column::from_usize("unitary_nodes", rows.iter().map(|r| r.3)),
    ];
    aq_sim::write_csv("target/figures/extras_mxm_vs_mxv.csv", &cols).expect("write csv");
}

/// Equivalence checking (the paper's Sec. V-B design task) across the
/// eps trade-off: a numeric manager with eps = 0 *fails to recognise*
/// truly equivalent circuits (false negatives), while a large eps
/// *wrongly equates* distinct circuits (false positives). The exact
/// manager gets both right, by construction.
fn equivalence_correctness() {
    use aq_dd::{GateMatrix, NumericContext};
    use aq_sim::circuits_equivalent;

    let n = 4;
    let base = {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.push_gate(GateMatrix::h(), q, &[]);
            c.push_gate(GateMatrix::t(), q, &[]);
        }
        c.push_gate(GateMatrix::x(), 3, &[(0, true), (1, true)]);
        c
    };
    // truly equivalent: base followed by HH (= identity) on a qubit
    let equal = {
        let mut c = base.clone();
        c.push_gate(GateMatrix::h(), 2, &[]);
        c.push_gate(GateMatrix::h(), 2, &[]);
        c
    };
    // truly different: base with one extra T (a pi/4 phase on one branch)
    let different = {
        let mut c = base.clone();
        c.push_gate(GateMatrix::t(), 2, &[]);
        c
    };

    // nearly equal (numeric only): base with a tiny extra P(1e−4) phase —
    // truly different, but a loose ε cannot see it (false positive).
    // Note that *exactly representable* circuits cannot differ this
    // subtly: the smallest non-identity Clifford+T deviation is a T-type
    // phase, far outside any sensible ε — exactness removes the failure
    // mode structurally.
    let near = {
        let mut c = base.clone();
        c.push_gate(GateMatrix::phase(1e-4), 2, &[]);
        c
    };

    println!("== Extras: equivalence checking under the trade-off ==");
    println!(
        "{:<14} {:>18} {:>18} {:>18}",
        "backend", "equal pair", "different pair", "near-miss pair"
    );
    let verdict = |b: bool| if b { "EQUIVALENT" } else { "different" };
    let mut rows: Vec<(String, bool, bool, String)> = Vec::new();
    for eps in [0.0, 1e-13, 1e-1] {
        let a = circuits_equivalent(NumericContext::with_eps(eps), &base, &equal);
        let d = circuits_equivalent(NumericContext::with_eps(eps), &base, &different);
        let nm = circuits_equivalent(NumericContext::with_eps(eps), &base, &near);
        println!(
            "{:<14} {:>18} {:>18} {:>18}",
            format!("eps={eps:.0e}"),
            verdict(a),
            verdict(d),
            verdict(nm)
        );
        rows.push((format!("eps={eps:.0e}"), a, d, verdict(nm).to_string()));
    }
    let a = circuits_equivalent(QomegaContext::new(), &base, &equal);
    let d = circuits_equivalent(QomegaContext::new(), &base, &different);
    println!(
        "{:<14} {:>18} {:>18} {:>18}",
        "algebraic",
        verdict(a),
        verdict(d),
        "n/a (compile)"
    );
    rows.push(("algebraic".into(), a, d, "n/a".into()));
    let cols = vec![
        Column {
            name: "backend".into(),
            values: rows.iter().map(|r| r.0.clone()).collect(),
        },
        Column {
            name: "says_equal_pair_equal".into(),
            values: rows.iter().map(|r| r.1.to_string()).collect(),
        },
        Column {
            name: "says_different_pair_different".into(),
            values: rows.iter().map(|r| (!r.2).to_string()).collect(),
        },
        Column {
            name: "near_miss_verdict".into(),
            values: rows.iter().map(|r| r.3.clone()).collect(),
        },
    ];
    aq_sim::write_csv("target/figures/extras_equivalence.csv", &cols).expect("write csv");
}

fn traced_walk<W: aq_dd::WeightContext>(ctx: W, circuit: &Circuit, start: u64) -> Trace {
    let mut sim = Simulator::with_options(ctx, circuit, SimOptions::default());
    sim.reset_to(start);
    sim.run().trace
}

fn trivial_fraction<W: aq_dd::WeightContext>(ctx: W, circuit: &Circuit, start: u64) -> f64 {
    let mut sim = Simulator::with_options(
        ctx,
        circuit,
        SimOptions {
            record_trace: false,
            ..SimOptions::default()
        },
    );
    sim.reset_to(start);
    while sim.step() {}
    let state = sim.state();
    let (total, unit) = sim.manager().vec_weight_stats(&state);
    if total == 0 {
        0.0
    } else {
        unit as f64 / total as f64
    }
}
