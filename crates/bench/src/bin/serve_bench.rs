//! Service load benchmark: drives an in-process `aq-serve` core with a
//! closed-loop client fleet at 1, 4 and 8 workers and emits
//! `BENCH_serve.json` with throughput (jobs/s) and exact client-side
//! latency quantiles (p50/p99), next to the server's own bucketed
//! histogram estimates for comparison.
//!
//! Usage: `cargo run --release -p aq-bench --bin serve_bench
//! [-- <out.json>] [--jobs=N] [--scale-gate] [--chaos-seed=N]`
//!
//! The scaling rows run with the result cache *disabled* and distinct
//! circuits, so they measure pool scaling; a separate cache row repeats a
//! small circuit set with the cache on and reports its hit rate. Two
//! sampler rows report shots/s through the `sample` verb: measurement-free
//! (GHZ — one simulation amortized over all draws) versus fork-per-shot
//! (teleportation with mid-circuit measurement).
//!
//! `--chaos-seed=N` (needs `--features chaos`) adds a self-healing row:
//! the same closed loop under a deterministic fault plan that panics the
//! worker on ~1% of jobs (10‰, hashed per job id against the seed), with
//! clients resubmitting through `run_with_retry`. The row reports the
//! throughput cost of supervision plus `worker_deaths`, `worker_respawns`
//! and client `retries`.
//!
//! `--scale-gate` turns the run into a pass/fail check: 4-worker
//! throughput must not fall below 1-worker throughput. On a single-core
//! host the gate prints a skip notice and passes (queueing, not speedup,
//! is all such a machine can measure).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use aq_dd::RunBudget;
use aq_serve::{
    CircuitSpec, Client, JobState, Response, RetryPolicy, SchemeClass, ServeConfig, ServeCore,
    SubmitRequest,
};
use aq_sim::{SampleParams, SchemeSpec};

struct ConfigResult {
    workers: usize,
    jobs: usize,
    seconds: f64,
    jobs_per_second: f64,
    p50_ms: f64,
    p99_ms: f64,
    server_p50_ms: Option<f64>,
    server_p99_ms: Option<f64>,
    completed: u64,
    aborted: u64,
    warm_reuses: u64,
    cache_served: u64,
    cache_hit_rate: f64,
    worker_deaths: u64,
    worker_respawns: u64,
    retries: u64,
}

/// Exact quantile of a sorted latency sample (nearest-rank).
fn quantile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One closed-loop run. `distinct_circuits` is the size of the oracle
/// pool jobs cycle through: large (64) for scaling rows, small (8) for
/// the cache row, where repeats are the point. With `chaos = Some(seed)`
/// (feature-gated) a fault plan panics the worker on ~1% of jobs and the
/// clients resubmit with capped backoff instead of panicking on aborts.
#[allow(unused_mut)]
fn run_config(
    workers: usize,
    total_jobs: usize,
    result_cache_capacity: usize,
    distinct_circuits: u64,
    chaos: Option<u64>,
) -> ConfigResult {
    let mut cfg = ServeConfig {
        workers: vec![SchemeClass::Numeric; workers],
        queue_capacity: total_jobs.max(8) * 2,
        checkpoint_dir: std::env::temp_dir().join(format!(
            "aq-serve-bench-{}-w{workers}-c{result_cache_capacity}-h{}",
            std::process::id(),
            chaos.is_some()
        )),
        result_cache_capacity,
        ..ServeConfig::default()
    };
    #[cfg(feature = "chaos")]
    if let Some(seed) = chaos {
        cfg.fault_plan = aq_serve::FaultPlan::seeded(seed).kill_per_mille(10);
        cfg.restart_budget = 10_000;
        cfg.backoff_base = Duration::from_millis(5);
        cfg.backoff_cap = Duration::from_millis(100);
    }
    let core = ServeCore::start(cfg).expect("start worker pool");
    let client = Client::new(Arc::clone(&core));

    // Closed loop: 2 client threads per worker, each submitting and then
    // waiting for one job at a time until the shared job budget is spent.
    let submitters = (workers * 2).max(2);
    let remaining = Arc::new(std::sync::atomic::AtomicUsize::new(total_jobs));
    let t0 = Instant::now();
    let handles: Vec<_> = (0..submitters)
        .map(|s| {
            let client = client.clone();
            let remaining = Arc::clone(&remaining);
            std::thread::spawn(move || {
                let mut latencies_ms = Vec::new();
                let mut i = 0u64;
                while remaining
                    .fetch_update(
                        std::sync::atomic::Ordering::Relaxed,
                        std::sync::atomic::Ordering::Relaxed,
                        |n| n.checked_sub(1),
                    )
                    .is_ok()
                {
                    // vary the oracle so consing across jobs stays honest
                    let marked = (s as u64 * 31 + i * 7) % distinct_circuits;
                    i += 1;
                    let t = Instant::now();
                    let req = SubmitRequest {
                        circuit: CircuitSpec::Grover { n: 6, marked },
                        scheme: SchemeSpec::Numeric { eps: 1e-10 },
                        priority: 0,
                        budget: RunBudget::unlimited().with_max_nodes(5_000_000),
                        resume: None,
                        top_k: 1,
                        sample: None,
                    };
                    if let Some(seed) = chaos {
                        // Self-healing row: injected kills surface as
                        // `transient:` aborts; resubmit until completed.
                        let policy = RetryPolicy {
                            max_attempts: 8,
                            base: Duration::from_millis(5),
                            cap: Duration::from_millis(100),
                            seed: seed ^ (s as u64),
                        };
                        match client.run_with_retry(&req, Duration::from_secs(300), &policy) {
                            Response::Status(report) => {
                                assert_eq!(report.state, JobState::Completed, "{report:?}")
                            }
                            other => panic!("bench retry loop gave up: {other:?}"),
                        }
                    } else {
                        let job = match client.submit(req) {
                            Response::Submitted { job } => job,
                            other => panic!("bench submission refused: {other:?}"),
                        };
                        match client.wait(job, Duration::from_secs(300)) {
                            Response::Status(report) => {
                                assert_eq!(report.state, JobState::Completed, "job {job}")
                            }
                            other => panic!("bench wait failed: {other:?}"),
                        }
                    }
                    latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
                }
                latencies_ms
            })
        })
        .collect();

    let mut latencies: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("submitter thread"))
        .collect();
    let seconds = t0.elapsed().as_secs_f64();
    latencies.sort_by(f64::total_cmp);

    match client.drain() {
        Response::Drained { .. } => {}
        other => panic!("drain failed: {other:?}"),
    }
    let m = client.metrics();
    assert!(m.reconciles(), "metrics must reconcile: {m:?}");
    client.shutdown();

    ConfigResult {
        workers,
        jobs: latencies.len(),
        seconds,
        jobs_per_second: latencies.len() as f64 / seconds,
        p50_ms: quantile_ms(&latencies, 0.50),
        p99_ms: quantile_ms(&latencies, 0.99),
        server_p50_ms: m.p50_ms,
        server_p99_ms: m.p99_ms,
        completed: m.completed,
        aborted: m.aborted,
        warm_reuses: m.workers.iter().map(|w| w.stats.warm_reuses).sum(),
        cache_served: m.cache_served,
        cache_hit_rate: m.cache.hit_rate(),
        worker_deaths: m.worker_deaths,
        worker_respawns: m.worker_respawns,
        // Every submission beyond the job budget was a client retry.
        retries: m.submitted.saturating_sub(latencies.len() as u64),
    }
}

struct SamplerResult {
    jobs: usize,
    shots_per_job: u64,
    shots: u64,
    seconds: f64,
    shots_per_second: f64,
    forked: bool,
}

/// The two sampler workloads: a 10-qubit GHZ ladder (measurement-free —
/// one simulation, then `shots` draws from the final state) and 3-qubit
/// teleportation with mid-circuit measurement + classical control (the
/// sampler must fork and re-run the tail per shot).
fn sampler_qasm(forked: bool) -> String {
    if forked {
        return "OPENQASM 2.0;\nqreg q[3];\ncreg c[2];\nx q[0];\nh q[1];\ncx q[1], q[2];\n\
                cx q[0], q[1];\nh q[0];\nmeasure q[1] -> c[0];\nmeasure q[0] -> c[1];\n\
                if (c==1) x q[2];\nif (c==3) x q[2];\nif (c==2) z q[2];\nif (c==3) z q[2];\n"
            .into();
    }
    let mut ghz = String::from("OPENQASM 2.0;\nqreg q[10];\nh q[0];\n");
    for q in 1..10u32 {
        ghz.push_str(&format!("cx q[{}], q[{}];\n", q - 1, q));
    }
    ghz
}

/// Sequential sampling jobs on a 1-worker core, cache off, one seed per
/// job so every histogram is computed, not replayed. Reports shots/s —
/// the figure of merit for a sampler, since a measurement-free job pays
/// one simulation for all its shots while a forked job pays per shot.
fn run_sampler_config(forked: bool, jobs: usize, shots_per_job: u64) -> SamplerResult {
    let cfg = ServeConfig {
        workers: vec![SchemeClass::Numeric],
        queue_capacity: jobs.max(8) * 2,
        checkpoint_dir: std::env::temp_dir().join(format!(
            "aq-serve-bench-sampler-{}-f{forked}",
            std::process::id()
        )),
        result_cache_capacity: 0,
        ..ServeConfig::default()
    };
    let core = ServeCore::start(cfg).expect("start worker pool");
    let client = Client::new(Arc::clone(&core));
    let qasm = sampler_qasm(forked);

    let t0 = Instant::now();
    for seed in 0..jobs as u64 {
        let req = SubmitRequest {
            circuit: CircuitSpec::Qasm(qasm.clone()),
            scheme: SchemeSpec::Numeric { eps: 1e-10 },
            priority: 0,
            budget: RunBudget::unlimited().with_max_nodes(5_000_000),
            resume: None,
            top_k: 1,
            sample: Some(SampleParams {
                shots: shots_per_job,
                seed,
            }),
        };
        let job = match client.submit(req) {
            Response::Submitted { job } => job,
            other => panic!("sampler bench submission refused: {other:?}"),
        };
        match client.wait(job, Duration::from_secs(300)) {
            Response::Status(report) => {
                assert_eq!(report.state, JobState::Completed, "job {job}");
                let outcome = report.outcome.as_ref().expect("terminal outcome");
                let sample = outcome.sample.as_ref().expect("sampling outcome");
                assert_eq!(sample.forked, forked);
                assert_eq!(sample.total(), shots_per_job);
            }
            other => panic!("sampler bench wait failed: {other:?}"),
        }
    }
    let seconds = t0.elapsed().as_secs_f64();

    match client.drain() {
        Response::Drained { .. } => {}
        other => panic!("drain failed: {other:?}"),
    }
    let m = client.metrics();
    assert!(m.reconciles(), "metrics must reconcile: {m:?}");
    assert_eq!(m.shots, jobs as u64 * shots_per_job);
    client.shutdown();

    let shots = jobs as u64 * shots_per_job;
    SamplerResult {
        jobs,
        shots_per_job,
        shots,
        seconds,
        shots_per_second: shots as f64 / seconds,
        forked,
    }
}

fn render_sampler_row(r: &SamplerResult, label: &str) -> String {
    let mut row = String::new();
    let _ = write!(
        row,
        concat!(
            "    {{\n",
            "      \"config\": \"{}\",\n",
            "      \"workers\": 1,\n",
            "      \"jobs\": {},\n",
            "      \"shots_per_job\": {},\n",
            "      \"shots\": {},\n",
            "      \"seconds\": {:.6},\n",
            "      \"shots_per_second\": {:.1},\n",
            "      \"forked\": {}\n",
            "    }}"
        ),
        label, r.jobs, r.shots_per_job, r.shots, r.seconds, r.shots_per_second, r.forked,
    );
    row
}

fn render_row(r: &ConfigResult, label: &str) -> String {
    let mut row = String::new();
    let fmt_opt = |v: Option<f64>| {
        v.map(|x| format!("{x:.3}"))
            .unwrap_or_else(|| "null".into())
    };
    let _ = write!(
        row,
        concat!(
            "    {{\n",
            "      \"config\": \"{}\",\n",
            "      \"workers\": {},\n",
            "      \"jobs\": {},\n",
            "      \"seconds\": {:.6},\n",
            "      \"jobs_per_second\": {:.3},\n",
            "      \"p50_ms\": {:.3},\n",
            "      \"p99_ms\": {:.3},\n",
            "      \"server_p50_ms\": {},\n",
            "      \"server_p99_ms\": {},\n",
            "      \"completed\": {},\n",
            "      \"aborted\": {},\n",
            "      \"warm_reuses\": {},\n",
            "      \"cache_served\": {},\n",
            "      \"cache_hit_rate\": {:.4},\n",
            "      \"worker_deaths\": {},\n",
            "      \"worker_respawns\": {},\n",
            "      \"retries\": {}\n",
            "    }}"
        ),
        label,
        r.workers,
        r.jobs,
        r.seconds,
        r.jobs_per_second,
        r.p50_ms,
        r.p99_ms,
        fmt_opt(r.server_p50_ms),
        fmt_opt(r.server_p99_ms),
        r.completed,
        r.aborted,
        r.warm_reuses,
        r.cache_served,
        r.cache_hit_rate,
        r.worker_deaths,
        r.worker_respawns,
        r.retries,
    );
    row
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let total_jobs: usize = args
        .iter()
        .find_map(|a| a.strip_prefix("--jobs="))
        .map(|v| v.parse().expect("--jobs=N"))
        .unwrap_or(64);
    let scale_gate = args.iter().any(|a| a == "--scale-gate");
    let chaos_seed: Option<u64> = args
        .iter()
        .find_map(|a| a.strip_prefix("--chaos-seed="))
        .map(|v| v.parse().expect("--chaos-seed=N"));
    #[cfg(not(feature = "chaos"))]
    if chaos_seed.is_some() {
        eprintln!(
            "serve_bench: --chaos-seed needs a build with `--features chaos`; this one was not"
        );
        std::process::exit(2);
    }
    let out = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".into());

    // Scaling rows: result cache off, 64 distinct oracles.
    let results: Vec<ConfigResult> = [1usize, 4, 8]
        .iter()
        .map(|&w| {
            let r = run_config(w, total_jobs, 0, 64, None);
            println!(
                "{:>2} workers: {:>3} jobs in {:>7.3}s  {:>8.1} jobs/s  p50 {:>8.2}ms  p99 {:>8.2}ms  warm {:>3}  (server buckets: p50<={:?}ms p99<={:?}ms)",
                r.workers, r.jobs, r.seconds, r.jobs_per_second, r.p50_ms, r.p99_ms,
                r.warm_reuses, r.server_p50_ms, r.server_p99_ms,
            );
            r
        })
        .collect();

    // Cache row: 1 worker, cache on, 8 distinct oracles cycled — repeat
    // submissions short-circuit before the queue.
    let cache_row = run_config(1, total_jobs, 256, 8, None);
    println!(
        "cache row:  {:>3} jobs in {:>7.3}s  {:>8.1} jobs/s  hit rate {:.1}%  served {} from cache",
        cache_row.jobs,
        cache_row.seconds,
        cache_row.jobs_per_second,
        cache_row.cache_hit_rate * 100.0,
        cache_row.cache_served,
    );

    // Sampler rows: shots/s for the two sampling regimes. Measurement-free
    // amortizes one simulation over thousands of draws; fork-per-shot
    // re-runs the measured tail every draw, so its per-job shot count is
    // kept small.
    let sampler_rows = [
        run_sampler_config(false, 8, 8_192),
        run_sampler_config(true, 8, 256),
    ];
    for r in &sampler_rows {
        println!(
            "sampler {}: {:>3} jobs x {:>5} shots in {:>7.3}s  {:>10.1} shots/s",
            if r.forked { "forked" } else { "final " },
            r.jobs,
            r.shots_per_job,
            r.seconds,
            r.shots_per_second,
        );
    }

    // Chaos row: 4 workers under a 1%-job-panic plan, retry-aware
    // clients. The throughput delta against scaling-4w is the price of
    // supervision + respawn + resubmission.
    let chaos_row = chaos_seed.map(|seed| {
        let r = run_config(4, total_jobs, 256, 64, Some(seed));
        println!(
            "chaos row:  {:>3} jobs in {:>7.3}s  {:>8.1} jobs/s  deaths {}  respawns {}  retries {}  (seed {seed:#x})",
            r.jobs, r.seconds, r.jobs_per_second, r.worker_deaths, r.worker_respawns, r.retries,
        );
        r
    });

    let mut body = String::new();
    for r in &results {
        let label = format!("scaling-{}w", r.workers);
        body.push_str(&render_row(r, &label));
        body.push_str(",\n");
    }
    body.push_str(&render_row(&cache_row, "cache-repeat-1w"));
    body.push_str(",\n");
    body.push_str(&render_sampler_row(&sampler_rows[0], "sampler-final-1w"));
    body.push_str(",\n");
    body.push_str(&render_sampler_row(&sampler_rows[1], "sampler-forked-1w"));
    if let Some(r) = &chaos_row {
        body.push_str(",\n");
        body.push_str(&render_row(r, "chaos-1pct-kill-4w"));
    }
    body.push('\n');

    // Worker scaling is bounded by the machine: on a single-core host the
    // 4- and 8-worker rows measure queueing behaviour, not speedup.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"benchmark\": \"aq-serve load\",\n  \"workload\": \"grover6 numeric eps=1e-10, closed loop, 2 clients per worker\",\n  \"host_cores\": {cores},\n  \"jobs_per_config\": {total_jobs},\n  \"configs\": [\n{body}  ]\n}}\n",
    );
    std::fs::write(&out, json).expect("write BENCH_serve.json");
    println!("wrote {out}");

    if scale_gate {
        if cores == 1 {
            println!(
                "scale-gate: SKIPPED — host_cores == 1, multi-worker speedup is not \
                 measurable on this machine (rows above measure queueing only)"
            );
            return;
        }
        let one = results[0].jobs_per_second;
        let four = results[1].jobs_per_second;
        if four < one {
            eprintln!(
                "scale-gate: FAILED — 4-worker throughput {four:.1} jobs/s is below \
                 1-worker throughput {one:.1} jobs/s"
            );
            std::process::exit(1);
        }
        println!("scale-gate: passed — 4 workers {four:.1} jobs/s >= 1 worker {one:.1} jobs/s");
    }
}
