//! Service load benchmark: drives an in-process `aq-serve` core with a
//! closed-loop client fleet at 1, 4 and 8 workers and emits
//! `BENCH_serve.json` with throughput (jobs/s) and exact client-side
//! latency quantiles (p50/p99), next to the server's own bucketed
//! histogram estimates for comparison.
//!
//! Usage: `cargo run --release -p aq-bench --bin serve_bench
//! [-- <out.json>] [--jobs=N]`
//!
//! Every worker is pinned numeric and every job is a numeric Grover
//! search, so the three configurations measure pool scaling rather than
//! scheme mix.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use aq_dd::RunBudget;
use aq_serve::{
    CircuitSpec, Client, JobState, Response, SchemeClass, ServeConfig, ServeCore, SubmitRequest,
};
use aq_sim::SchemeSpec;

struct ConfigResult {
    workers: usize,
    jobs: usize,
    seconds: f64,
    jobs_per_second: f64,
    p50_ms: f64,
    p99_ms: f64,
    server_p50_ms: Option<u64>,
    server_p99_ms: Option<u64>,
    completed: u64,
    aborted: u64,
}

/// Exact quantile of a sorted latency sample (nearest-rank).
fn quantile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn run_config(workers: usize, total_jobs: usize) -> ConfigResult {
    let cfg = ServeConfig {
        workers: vec![SchemeClass::Numeric; workers],
        queue_capacity: total_jobs.max(8) * 2,
        checkpoint_dir: std::env::temp_dir()
            .join(format!("aq-serve-bench-{}-w{workers}", std::process::id())),
    };
    let core = ServeCore::start(cfg).expect("start worker pool");
    let client = Client::new(Arc::clone(&core));

    // Closed loop: 2 client threads per worker, each submitting and then
    // waiting for one job at a time until the shared job budget is spent.
    let submitters = (workers * 2).max(2);
    let remaining = Arc::new(std::sync::atomic::AtomicUsize::new(total_jobs));
    let t0 = Instant::now();
    let handles: Vec<_> = (0..submitters)
        .map(|s| {
            let client = client.clone();
            let remaining = Arc::clone(&remaining);
            std::thread::spawn(move || {
                let mut latencies_ms = Vec::new();
                let mut i = 0u64;
                while remaining
                    .fetch_update(
                        std::sync::atomic::Ordering::Relaxed,
                        std::sync::atomic::Ordering::Relaxed,
                        |n| n.checked_sub(1),
                    )
                    .is_ok()
                {
                    // vary the oracle so consing across jobs stays honest
                    let marked = (s as u64 * 31 + i * 7) % 64;
                    i += 1;
                    let t = Instant::now();
                    let submitted = client.submit(SubmitRequest {
                        circuit: CircuitSpec::Grover { n: 6, marked },
                        scheme: SchemeSpec::Numeric { eps: 1e-10 },
                        priority: 0,
                        budget: RunBudget::unlimited().with_max_nodes(5_000_000),
                        resume: None,
                        top_k: 1,
                    });
                    let job = match submitted {
                        Response::Submitted { job } => job,
                        other => panic!("bench submission refused: {other:?}"),
                    };
                    match client.wait(job, Duration::from_secs(300)) {
                        Response::Status(report) => {
                            assert_eq!(report.state, JobState::Completed, "job {job}")
                        }
                        other => panic!("bench wait failed: {other:?}"),
                    }
                    latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
                }
                latencies_ms
            })
        })
        .collect();

    let mut latencies: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("submitter thread"))
        .collect();
    let seconds = t0.elapsed().as_secs_f64();
    latencies.sort_by(f64::total_cmp);

    match client.drain() {
        Response::Drained { .. } => {}
        other => panic!("drain failed: {other:?}"),
    }
    let m = client.metrics();
    assert!(m.reconciles(), "metrics must reconcile: {m:?}");
    client.shutdown();

    ConfigResult {
        workers,
        jobs: latencies.len(),
        seconds,
        jobs_per_second: latencies.len() as f64 / seconds,
        p50_ms: quantile_ms(&latencies, 0.50),
        p99_ms: quantile_ms(&latencies, 0.99),
        server_p50_ms: m.p50_ms,
        server_p99_ms: m.p99_ms,
        completed: m.completed,
        aborted: m.aborted,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let total_jobs: usize = args
        .iter()
        .find_map(|a| a.strip_prefix("--jobs="))
        .map(|v| v.parse().expect("--jobs=N"))
        .unwrap_or(64);
    let out = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".into());

    let results: Vec<ConfigResult> = [1usize, 4, 8]
        .iter()
        .map(|&w| {
            let r = run_config(w, total_jobs);
            println!(
                "{:>2} workers: {:>3} jobs in {:>7.3}s  {:>8.1} jobs/s  p50 {:>8.2}ms  p99 {:>8.2}ms  (server buckets: p50<={:?}ms p99<={:?}ms)",
                r.workers, r.jobs, r.seconds, r.jobs_per_second, r.p50_ms, r.p99_ms,
                r.server_p50_ms, r.server_p99_ms,
            );
            r
        })
        .collect();

    let mut body = String::new();
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            body,
            concat!(
                "    {{\n",
                "      \"workers\": {},\n",
                "      \"jobs\": {},\n",
                "      \"seconds\": {:.6},\n",
                "      \"jobs_per_second\": {:.3},\n",
                "      \"p50_ms\": {:.3},\n",
                "      \"p99_ms\": {:.3},\n",
                "      \"server_p50_ms\": {},\n",
                "      \"server_p99_ms\": {},\n",
                "      \"completed\": {},\n",
                "      \"aborted\": {}\n",
                "    }}{}"
            ),
            r.workers,
            r.jobs,
            r.seconds,
            r.jobs_per_second,
            r.p50_ms,
            r.p99_ms,
            r.server_p50_ms
                .map(|v| v.to_string())
                .unwrap_or_else(|| "null".into()),
            r.server_p99_ms
                .map(|v| v.to_string())
                .unwrap_or_else(|| "null".into()),
            r.completed,
            r.aborted,
            if i + 1 < results.len() { ",\n" } else { "\n" },
        );
    }
    // Worker scaling is bounded by the machine: on a single-core host the
    // 4- and 8-worker rows measure queueing behaviour, not speedup.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"benchmark\": \"aq-serve load\",\n  \"workload\": \"grover6 numeric eps=1e-10, closed loop, 2 clients per worker\",\n  \"host_cores\": {cores},\n  \"jobs_per_config\": {total_jobs},\n  \"configs\": [\n{body}  ]\n}}\n",
    );
    std::fs::write(&out, json).expect("write BENCH_serve.json");
    println!("wrote {out}");
}
