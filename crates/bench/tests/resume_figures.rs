//! Acceptance test for crash-safe figure sweeps: a budget-aborted sweep
//! stage that is checkpointed and later resumed must emit exactly the CSV
//! rows an uninterrupted run emits (byte-for-byte, wall-clock columns
//! excluded — the size, accuracy and bit-width series are deterministic).

use aq_bench::{
    eps_label, reference_run, traced_numeric_vs_reference, traced_numeric_vs_reference_resumable,
    write_figure,
};
use aq_dd::RunBudget;
use aq_sim::Trace;

#[test]
fn resumed_sweep_emits_identical_csv_rows() {
    let circuit = aq_circuits::grover(4, 3);
    let reference = reference_run(&circuit, 4, 0);
    assert!(reference.trace.aborted.is_none());

    let sweep_eps = [1e-10, 1e-3];

    // the uninterrupted baseline
    let full: Vec<(String, Trace)> = sweep_eps
        .iter()
        .map(|&eps| {
            (
                eps_label(eps),
                traced_numeric_vs_reference(&circuit, eps, &reference),
            )
        })
        .collect();

    // the same sweep with the ε = 1e-10 stage budget-aborted + checkpointed…
    let ckpt = std::env::temp_dir().join("aq_bench_resume_figures.aqckp");
    std::fs::remove_file(&ckpt).ok();
    let aborted = traced_numeric_vs_reference_resumable(
        &circuit,
        1e-10,
        &reference,
        RunBudget::unlimited().with_max_nodes(8),
        "resume-test/eps1e-10",
        Some(&ckpt),
        None,
    );
    assert!(aborted.aborted.is_some(), "8-node budget must abort");
    assert!(ckpt.exists(), "abort must leave a checkpoint");

    // …and finished later from the checkpoint by a separate invocation
    let resumed: Vec<(String, Trace)> = sweep_eps
        .iter()
        .map(|&eps| {
            (
                eps_label(eps),
                traced_numeric_vs_reference_resumable(
                    &circuit,
                    eps,
                    &reference,
                    RunBudget::unlimited(),
                    &format!("resume-test/{}", eps_label(eps)),
                    None,
                    Some(&ckpt),
                ),
            )
        })
        .collect();
    for (label, t) in &resumed {
        assert!(t.aborted.is_none(), "{label} must complete on resume");
        assert_eq!(t.points.len(), circuit.len());
    }

    write_figure("resume_test_full", &full);
    write_figure("resume_test_resumed", &resumed);

    // byte-equality of every deterministic CSV (runtime CSV carries
    // wall-clock seconds and is legitimately different)
    for suffix in ["a_size.csv", "b_accuracy.csv", "_bits.csv"] {
        let a = std::fs::read(format!("target/figures/resume_test_full{suffix}"))
            .expect("baseline csv");
        let b = std::fs::read(format!("target/figures/resume_test_resumed{suffix}"))
            .expect("resumed csv");
        assert_eq!(a, b, "CSV rows diverged in {suffix}");
    }
    std::fs::remove_file(&ckpt).ok();
}
