//! Ring-arithmetic micro-benchmarks: the cost model behind the paper's
//! “more expensive arithmetic operations” discussion (end of Sec. IV).

use aq_testutil::bench::{bench, black_box};

use aq_bigint::IBig;
use aq_rings::assoc::canonical_associate;
use aq_rings::{Domega, Qomega, Zomega};

fn big_zomega(bits: u32) -> Zomega {
    // deterministic coefficients with the requested bit width
    let base = (&IBig::from(3) << (bits as u64)) + IBig::from(12345);
    Zomega::new(
        base.clone(),
        -&base + IBig::from(7),
        (&base >> 1) + IBig::from(991),
        -(&base >> 2),
    )
}

fn bench_zomega_mul() {
    for bits in [16u32, 128, 1024, 8192] {
        let x = big_zomega(bits);
        let y = big_zomega(bits / 2 + 5);
        bench(&format!("zomega_mul/{bits}"), || {
            black_box(&x) * black_box(&y)
        });
    }
}

fn bench_qomega_field() {
    let x = Qomega::new(big_zomega(64), 7, 9u64.into());
    let y = Qomega::new(big_zomega(48), 3, 25u64.into());
    bench("qomega/add", || black_box(&x) + black_box(&y));
    bench("qomega/mul", || black_box(&x) * black_box(&y));
    bench("qomega/inverse", || {
        black_box(&x).inverse().expect("nonzero")
    });
}

fn bench_gcd_and_canonical() {
    let common = big_zomega(32);
    let x = &common * &big_zomega(24);
    let y = &common * &Zomega::new(5.into(), (-2).into(), 1.into(), 8.into());
    bench("euclidean/zomega_gcd", || black_box(&x).gcd(black_box(&y)));
    let z = Domega::new(big_zomega(32), 3);
    bench("euclidean/canonical_associate", || {
        canonical_associate(black_box(&z))
    });
}

fn bench_minimal_exponent() {
    // Algorithm 1: reduction to the minimal denominator exponent.
    // A value divisible by √2 many times: 2^32 = √2^64.
    let v = Zomega::new(0.into(), 0.into(), 0.into(), &IBig::from(1) << 32);
    bench("algorithm1/reduce_64_steps", || {
        Domega::new(black_box(v.clone()), 0)
    });
}

fn main() {
    bench_zomega_mul();
    bench_qomega_field();
    bench_gcd_and_canonical();
    bench_minimal_exponent();
}
