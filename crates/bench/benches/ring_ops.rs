//! Ring-arithmetic micro-benchmarks: the cost model behind the paper's
//! “more expensive arithmetic operations” discussion (end of Sec. IV).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use aq_bigint::IBig;
use aq_rings::assoc::canonical_associate;
use aq_rings::{Domega, Qomega, Zomega};

fn big_zomega(bits: u32) -> Zomega {
    // deterministic coefficients with the requested bit width
    let base = (&IBig::from(3) << (bits as u64)) + IBig::from(12345);
    Zomega::new(
        base.clone(),
        -&base + IBig::from(7),
        (&base >> 1) + IBig::from(991),
        -(&base >> 2),
    )
}

fn bench_zomega_mul(c: &mut Criterion) {
    let mut g = c.benchmark_group("zomega_mul");
    for bits in [16u32, 128, 1024, 8192] {
        let x = big_zomega(bits);
        let y = big_zomega(bits / 2 + 5);
        g.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter(|| black_box(&x) * black_box(&y))
        });
    }
    g.finish();
}

fn bench_qomega_field(c: &mut Criterion) {
    let mut g = c.benchmark_group("qomega");
    let x = Qomega::new(big_zomega(64), 7, 9u64.into());
    let y = Qomega::new(big_zomega(48), 3, 25u64.into());
    g.bench_function("add", |b| b.iter(|| black_box(&x) + black_box(&y)));
    g.bench_function("mul", |b| b.iter(|| black_box(&x) * black_box(&y)));
    g.bench_function("inverse", |b| {
        b.iter(|| black_box(&x).inverse().expect("nonzero"))
    });
    g.finish();
}

fn bench_gcd_and_canonical(c: &mut Criterion) {
    let mut g = c.benchmark_group("euclidean");
    let common = big_zomega(32);
    let x = &common * &big_zomega(24);
    let y = &common * &Zomega::new(5.into(), (-2).into(), 1.into(), 8.into());
    g.bench_function("zomega_gcd", |b| {
        b.iter(|| black_box(&x).gcd(black_box(&y)))
    });
    let z = Domega::new(big_zomega(32), 3);
    g.bench_function("canonical_associate", |b| {
        b.iter(|| canonical_associate(black_box(&z)))
    });
    g.finish();
}

fn bench_minimal_exponent(c: &mut Criterion) {
    // Algorithm 1: reduction to the minimal denominator exponent.
    let mut g = c.benchmark_group("algorithm1");
    // a value divisible by √2 many times: 2^32 = √2^64
    let v = Zomega::new(0.into(), 0.into(), 0.into(), &IBig::from(1) << 32);
    g.bench_function("reduce_64_steps", |b| {
        b.iter(|| Domega::new(black_box(v.clone()), 0))
    });
    g.finish();
}

/// Short measurement windows: these benches compare orders of magnitude
/// (the paper's claims are 2x-1000x), so tight confidence intervals are
/// not worth minutes per data point on a single-CPU container.
fn fast_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group!(
    name = benches;
    config = fast_config();
    targets =
    bench_zomega_mul,
    bench_qomega_field,
    bench_gcd_and_canonical,
    bench_minimal_exponent
);
criterion_main!(benches);
