//! Big-integer substrate benchmarks (the GMP substitute): the raw cost of
//! the coefficient arithmetic whose growth drives the Fig. 5 overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use aq_bigint::UBig;

fn value(bits: u64) -> UBig {
    // deterministic pseudo-random value of the requested width
    let mut v = UBig::from(0x9e37_79b9_7f4a_7c15u64);
    while v.bit_len() < bits {
        v = &(&v * &v) + &UBig::from(0xdead_beefu64);
    }
    v.shr_bits(v.bit_len().saturating_sub(bits))
}

fn bench_mul(c: &mut Criterion) {
    let mut g = c.benchmark_group("ubig_mul");
    for bits in [64u64, 512, 4096, 32768] {
        let a = value(bits);
        let b = value(bits);
        g.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bch, _| {
            bch.iter(|| black_box(&a) * black_box(&b))
        });
    }
    g.finish();
}

fn bench_divrem(c: &mut Criterion) {
    let mut g = c.benchmark_group("ubig_divrem");
    for bits in [512u64, 4096] {
        let a = value(2 * bits);
        let b = value(bits);
        g.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bch, _| {
            bch.iter(|| black_box(&a).div_rem(black_box(&b)))
        });
    }
    g.finish();
}

fn bench_gcd(c: &mut Criterion) {
    let mut g = c.benchmark_group("ubig_gcd");
    for bits in [256u64, 2048] {
        let a = value(bits);
        let b = value(bits);
        g.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bch, _| {
            bch.iter(|| black_box(&a).gcd(black_box(&b)))
        });
    }
    g.finish();
}

/// Short measurement windows: these benches compare orders of magnitude
/// (the paper's claims are 2x-1000x), so tight confidence intervals are
/// not worth minutes per data point on a single-CPU container.
fn fast_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group!(
    name = benches;
    config = fast_config();
    targets = bench_mul, bench_divrem, bench_gcd);
criterion_main!(benches);
