//! Big-integer substrate benchmarks (the GMP substitute): the raw cost of
//! the coefficient arithmetic whose growth drives the Fig. 5 overhead.

use aq_testutil::bench::{bench, black_box};

use aq_bigint::UBig;

fn value(bits: u64) -> UBig {
    // deterministic pseudo-random value of the requested width
    let mut v = UBig::from(0x9e37_79b9_7f4a_7c15u64);
    while v.bit_len() < bits {
        v = &(&v * &v) + &UBig::from(0xdead_beefu64);
    }
    v.shr_bits(v.bit_len().saturating_sub(bits))
}

fn bench_mul() {
    for bits in [64u64, 512, 4096, 32768] {
        let a = value(bits);
        let b = value(bits);
        bench(&format!("ubig_mul/{bits}"), || {
            black_box(&a) * black_box(&b)
        });
    }
}

fn bench_divrem() {
    for bits in [512u64, 4096] {
        let a = value(2 * bits);
        let b = value(bits);
        bench(&format!("ubig_divrem/{bits}"), || {
            black_box(&a).div_rem(black_box(&b))
        });
    }
}

fn bench_gcd() {
    for bits in [256u64, 2048] {
        let a = value(bits);
        let b = value(bits);
        bench(&format!("ubig_gcd/{bits}"), || {
            black_box(&a).gcd(black_box(&b))
        });
    }
}

/// Small-value fast path: the inline (≤ 2 limb) representation that
/// Clifford+T coefficients overwhelmingly hit.
fn bench_small() {
    let a = UBig::from(119u64);
    let b = UBig::from(257u64);
    bench("ubig_small/add", || black_box(&a) + black_box(&b));
    bench("ubig_small/mul", || black_box(&a) * black_box(&b));
    let c = UBig::from(0xdead_beef_dead_beefu64);
    let d = UBig::from(0x1234_5678u64);
    bench("ubig_small/divrem", || black_box(&c).div_rem(black_box(&d)));
    bench("ubig_small/gcd", || black_box(&c).gcd(black_box(&d)));
}

fn main() {
    bench_small();
    bench_mul();
    bench_divrem();
    bench_gcd();
}
