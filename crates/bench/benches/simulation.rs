//! Full-simulation benchmarks: one per paper figure, comparing the weight
//! systems on (scaled-down) versions of the evaluated workloads.

use aq_testutil::bench::{bench, black_box};

use aq_circuits::cliffordt::CliffordTCompiler;
use aq_circuits::{bwt, grover, gse, BwtParams, Circuit, GseParams};
use aq_dd::{GcdContext, NumericContext, QomegaContext, WeightContext};
use aq_sim::{SimOptions, Simulator};

fn run<W: WeightContext>(ctx: W, circuit: &Circuit, start: u64) -> usize {
    let mut sim = Simulator::with_options(
        ctx,
        circuit,
        SimOptions {
            record_trace: false,
            ..SimOptions::default()
        },
    );
    sim.reset_to(start);
    while sim.step() {}
    sim.nodes()
}

/// Fig. 3 headline: Grover simulation per weight system.
fn bench_grover() {
    let circuit = grover(8, 0b10110101);
    bench("grover_fig3/numeric_eps1e-10", || {
        run(NumericContext::with_eps(1e-10), black_box(&circuit), 0)
    });
    bench("grover_fig3/numeric_eps0", || {
        run(NumericContext::new(), black_box(&circuit), 0)
    });
    bench("grover_fig3/algebraic_qomega", || {
        run(QomegaContext::new(), black_box(&circuit), 0)
    });
    bench("grover_fig3/algebraic_gcd", || {
        run(GcdContext::new(), black_box(&circuit), 0)
    });
}

/// Fig. 4 headline: BWT walk per weight system.
fn bench_bwt() {
    let (circuit, tree) = bwt(BwtParams {
        height: 3,
        steps: 20,
        seed: 0xBD7,
    });
    let start = tree.entrance();
    bench("bwt_fig4/numeric_eps1e-10", || {
        run(NumericContext::with_eps(1e-10), black_box(&circuit), start)
    });
    bench("bwt_fig4/algebraic_qomega", || {
        run(QomegaContext::new(), black_box(&circuit), start)
    });
    bench("bwt_fig4/algebraic_gcd", || {
        run(GcdContext::new(), black_box(&circuit), start)
    });
}

/// Fig. 2 / Fig. 5 headline: compiled Clifford+T GSE per weight system.
fn bench_gse() {
    let raw = gse(&GseParams {
        precision_bits: 3,
        ..GseParams::default()
    });
    // single lookups keep the per-iteration cost benchmarkable; the
    // two-stage search roughly doubles word lengths and coefficient depth
    let (circuit, _) = CliffordTCompiler::new(6).without_two_stage().compile(&raw);
    bench("gse_fig5/numeric_eps1e-10", || {
        run(NumericContext::with_eps(1e-10), black_box(&circuit), 0)
    });
    bench("gse_fig5/numeric_eps0", || {
        run(NumericContext::new(), black_box(&circuit), 0)
    });
    bench("gse_fig5/algebraic_qomega", || {
        run(QomegaContext::new(), black_box(&circuit), 0)
    });
}

fn main() {
    bench_grover();
    bench_bwt();
    bench_gse();
}
