//! Full-simulation benchmarks: one per paper figure, comparing the weight
//! systems on (scaled-down) versions of the evaluated workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use aq_circuits::cliffordt::CliffordTCompiler;
use aq_circuits::{bwt, grover, gse, BwtParams, Circuit, GseParams};
use aq_dd::{GcdContext, NumericContext, QomegaContext, WeightContext};
use aq_sim::{SimOptions, Simulator};

fn run<W: WeightContext>(ctx: W, circuit: &Circuit, start: u64) -> usize {
    let mut sim = Simulator::with_options(
        ctx,
        circuit,
        SimOptions {
            record_trace: false,
            ..SimOptions::default()
        },
    );
    sim.reset_to(start);
    while sim.step() {}
    sim.nodes()
}

/// Fig. 3 headline: Grover simulation per weight system.
fn bench_grover(c: &mut Criterion) {
    let circuit = grover(8, 0b10110101);
    let mut g = c.benchmark_group("grover_fig3");
    g.sample_size(10);
    g.bench_function(BenchmarkId::new("numeric", "eps1e-10"), |b| {
        b.iter(|| run(NumericContext::with_eps(1e-10), black_box(&circuit), 0))
    });
    g.bench_function(BenchmarkId::new("numeric", "eps0"), |b| {
        b.iter(|| run(NumericContext::new(), black_box(&circuit), 0))
    });
    g.bench_function("algebraic_qomega", |b| {
        b.iter(|| run(QomegaContext::new(), black_box(&circuit), 0))
    });
    g.bench_function("algebraic_gcd", |b| {
        b.iter(|| run(GcdContext::new(), black_box(&circuit), 0))
    });
    g.finish();
}

/// Fig. 4 headline: BWT walk per weight system.
fn bench_bwt(c: &mut Criterion) {
    let (circuit, tree) = bwt(BwtParams {
        height: 3,
        steps: 20,
        seed: 0xBD7,
    });
    let start = tree.entrance();
    let mut g = c.benchmark_group("bwt_fig4");
    g.sample_size(10);
    g.bench_function(BenchmarkId::new("numeric", "eps1e-10"), |b| {
        b.iter(|| run(NumericContext::with_eps(1e-10), black_box(&circuit), start))
    });
    g.bench_function("algebraic_qomega", |b| {
        b.iter(|| run(QomegaContext::new(), black_box(&circuit), start))
    });
    g.bench_function("algebraic_gcd", |b| {
        b.iter(|| run(GcdContext::new(), black_box(&circuit), start))
    });
    g.finish();
}

/// Fig. 2 / Fig. 5 headline: compiled Clifford+T GSE per weight system.
fn bench_gse(c: &mut Criterion) {
    let raw = gse(&GseParams {
        precision_bits: 3,
        ..GseParams::default()
    });
    // single lookups keep the per-iteration cost benchmarkable; the
    // two-stage search roughly doubles word lengths and coefficient depth
    let (circuit, _) = CliffordTCompiler::new(6).without_two_stage().compile(&raw);
    let mut g = c.benchmark_group("gse_fig5");
    g.sample_size(10);
    g.bench_function(BenchmarkId::new("numeric", "eps1e-10"), |b| {
        b.iter(|| run(NumericContext::with_eps(1e-10), black_box(&circuit), 0))
    });
    g.bench_function(BenchmarkId::new("numeric", "eps0"), |b| {
        b.iter(|| run(NumericContext::new(), black_box(&circuit), 0))
    });
    g.bench_function("algebraic_qomega", |b| {
        b.iter(|| run(QomegaContext::new(), black_box(&circuit), 0))
    });
    g.finish();
}

/// Short measurement windows: these benches compare orders of magnitude
/// (the paper's claims are 2x-1000x), so tight confidence intervals are
/// not worth minutes per data point on a single-CPU container.
fn fast_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group!(
    name = benches;
    config = fast_config();
    targets = bench_grover, bench_bwt, bench_gse);
criterion_main!(benches);
