//! Normalization-scheme micro-benchmarks (Algorithm 2 vs Algorithm 3 vs
//! the numeric schemes) — the design-choice ablation of Sec. V-B.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aq_dd::{GcdContext, NormScheme, NumericContext, QomegaContext, WeightContext};
use aq_rings::{Complex64, Domega, Qomega, Zomega};

fn domega(a: i64, b: i64, c: i64, d: i64, k: i64) -> Domega {
    Domega::new(Zomega::new(a.into(), b.into(), c.into(), d.into()), k)
}

fn bench_normalize(c: &mut Criterion) {
    let mut g = c.benchmark_group("normalize");

    let num_ws = [
        Complex64::new(std::f64::consts::FRAC_1_SQRT_2, 0.0),
        Complex64::new(-0.5, 0.5),
        Complex64::ZERO,
        Complex64::new(0.1, -0.3),
    ];
    let ctx = NumericContext::new();
    g.bench_function("numeric_leftmost", |b| {
        b.iter(|| {
            let mut ws = black_box(num_ws);
            black_box(ctx.normalize(&mut ws))
        })
    });
    let ctx_max = NumericContext::with_eps_and_scheme(0.0, NormScheme::MaxMagnitude);
    g.bench_function("numeric_max_magnitude", |b| {
        b.iter(|| {
            let mut ws = black_box(num_ws);
            black_box(ctx_max.normalize(&mut ws))
        })
    });

    let q_ws = [
        Qomega::from(domega(1, 0, 2, 3, 2)),
        Qomega::from(domega(0, -1, 1, 4, 1)),
        Qomega::zero(),
        Qomega::from_int_ratio(3, 5),
    ];
    let qctx = QomegaContext::new();
    g.bench_function("qomega_inverse_alg2", |b| {
        b.iter(|| {
            let mut ws = black_box(q_ws.clone());
            black_box(qctx.normalize(&mut ws))
        })
    });

    let d_ws = [
        domega(1, 0, 2, 3, 2),
        domega(0, -1, 1, 4, 1),
        Domega::zero(),
        domega(3, 3, 0, 6, 0),
    ];
    let gctx = GcdContext::new();
    g.bench_function("gcd_alg3", |b| {
        b.iter(|| {
            let mut ws = black_box(d_ws.clone());
            black_box(gctx.normalize(&mut ws))
        })
    });
    g.finish();
}

/// Short measurement windows: these benches compare orders of magnitude
/// (the paper's claims are 2x-1000x), so tight confidence intervals are
/// not worth minutes per data point on a single-CPU container.
fn fast_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group!(
    name = benches;
    config = fast_config();
    targets = bench_normalize);
criterion_main!(benches);
