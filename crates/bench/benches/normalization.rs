//! Normalization-scheme micro-benchmarks (Algorithm 2 vs Algorithm 3 vs
//! the numeric schemes) — the design-choice ablation of Sec. V-B.

use aq_testutil::bench::{bench, black_box};

use aq_dd::{GcdContext, NormScheme, NumericContext, QomegaContext, WeightContext};
use aq_rings::{Complex64, Domega, Qomega, Zomega};

fn domega(a: i64, b: i64, c: i64, d: i64, k: i64) -> Domega {
    Domega::new(Zomega::new(a.into(), b.into(), c.into(), d.into()), k)
}

fn main() {
    let num_ws = [
        Complex64::new(std::f64::consts::FRAC_1_SQRT_2, 0.0),
        Complex64::new(-0.5, 0.5),
        Complex64::ZERO,
        Complex64::new(0.1, -0.3),
    ];
    let ctx = NumericContext::new();
    bench("normalize/numeric_leftmost", || {
        let mut ws = black_box(num_ws);
        black_box(ctx.normalize(&mut ws))
    });
    let ctx_max = NumericContext::with_eps_and_scheme(0.0, NormScheme::MaxMagnitude);
    bench("normalize/numeric_max_magnitude", || {
        let mut ws = black_box(num_ws);
        black_box(ctx_max.normalize(&mut ws))
    });

    let q_ws = [
        Qomega::from(domega(1, 0, 2, 3, 2)),
        Qomega::from(domega(0, -1, 1, 4, 1)),
        Qomega::zero(),
        Qomega::from_int_ratio(3, 5),
    ];
    let qctx = QomegaContext::new();
    bench("normalize/qomega_inverse_alg2", || {
        let mut ws = black_box(q_ws.clone());
        black_box(qctx.normalize(&mut ws))
    });

    let d_ws = [
        domega(1, 0, 2, 3, 2),
        domega(0, -1, 1, 4, 1),
        Domega::zero(),
        domega(3, 3, 0, 6, 0),
    ];
    let gctx = GcdContext::new();
    bench("normalize/gcd_alg3", || {
        let mut ws = black_box(d_ws.clone());
        black_box(gctx.normalize(&mut ws))
    });
}
