use aq_circuits::cliffordt::CliffordTCompiler;
use std::time::Instant;

fn main() {
    for budget in [6u8, 8, 10] {
        let t0 = Instant::now();
        let mut two = CliffordTCompiler::new(budget);
        let build = t0.elapsed().as_secs_f64();
        let mut one = CliffordTCompiler::new(budget).without_two_stage();
        let mut worst_two: f64 = 0.0;
        let mut worst_one: f64 = 0.0;
        let mut tlen = 0usize;
        let t0 = Instant::now();
        for i in 0..20 {
            let theta = 0.1 + 0.29 * i as f64;
            let (w2, d2) = two.approximate_phase(theta);
            let (_, d1) = one.approximate_phase(theta);
            worst_two = worst_two.max(d2);
            worst_one = worst_one.max(d1);
            tlen = tlen.max(w2.len());
        }
        let synth = t0.elapsed().as_secs_f64();
        println!(
            "budget {budget}: db {} entries (build {build:.1}s); single-stage worst {worst_one:.2e}, \
             two-stage worst {worst_two:.2e} (max word {tlen}, synth 40 angles {synth:.1}s)",
            two.db_len()
        );
    }
}
