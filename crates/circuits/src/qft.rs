//! Quantum Fourier transform circuits (for phase estimation).

use aq_dd::GateMatrix;

use crate::Circuit;

/// Appends a controlled-phase `CP(φ)` between `control` and `target`,
/// decomposed into single-qubit phases and CNOTs:
///
/// `CP(φ) = P(φ/2)_c · P(φ/2)_t · CX · P(−φ/2)_t · CX`
///
/// The decomposition keeps all *rotations* single-qubit so the Clifford+T
/// compiler only ever has to approximate `P(φ)` gates.
pub fn push_controlled_phase(c: &mut Circuit, control: u32, target: u32, phi: f64) {
    c.push_gate(GateMatrix::x(), target, &[(control, true)]);
    c.push_gate(GateMatrix::phase(-phi / 2.0), target, &[]);
    c.push_gate(GateMatrix::x(), target, &[(control, true)]);
    c.push_gate(GateMatrix::phase(phi / 2.0), target, &[]);
    c.push_gate(GateMatrix::phase(phi / 2.0), control, &[]);
}

fn push_swap(c: &mut Circuit, a: u32, b: u32) {
    c.push_gate(GateMatrix::x(), b, &[(a, true)]);
    c.push_gate(GateMatrix::x(), a, &[(b, true)]);
    c.push_gate(GateMatrix::x(), b, &[(a, true)]);
}

/// The quantum Fourier transform on qubits `0..n`, including the final
/// bit-reversal swaps: `QFT|m⟩ = 2^{−n/2} Σ_x e^{2πi·x·m/2ⁿ}|x⟩` with
/// qubit 0 as the most significant bit.
pub fn qft(n: u32) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push_gate(GateMatrix::h(), q, &[]);
        for k in q + 1..n {
            let phi = std::f64::consts::PI / (1u64 << (k - q)) as f64;
            push_controlled_phase(&mut c, k, q, phi);
        }
    }
    for q in 0..n / 2 {
        push_swap(&mut c, q, n - 1 - q);
    }
    c
}

/// The inverse QFT on qubits `0..n` (exact adjoint of [`qft`]: swaps
/// first, then the reversed cascade with negated angles).
pub fn inverse_qft(n: u32) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n / 2 {
        push_swap(&mut c, q, n - 1 - q);
    }
    for q in (0..n).rev() {
        for k in (q + 1..n).rev() {
            let phi = -std::f64::consts::PI / (1u64 << (k - q)) as f64;
            push_controlled_phase(&mut c, k, q, phi);
        }
        c.push_gate(GateMatrix::h(), q, &[]);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use aq_dd::{Manager, NumericContext};

    fn apply(c: &Circuit, m: &mut Manager<NumericContext>, start: u64) -> Vec<aq_rings::Complex64> {
        let mut s = m.basis_state(start);
        for op in c.iter() {
            match op {
                crate::Op::Gate {
                    matrix,
                    target,
                    controls,
                } => {
                    let g = m.gate(matrix, *target, controls);
                    s = m.mat_vec(&g, &s);
                }
                _ => unreachable!("QFT has no walk factors"),
            }
        }
        m.amplitudes(&s)
    }

    #[test]
    fn qft_of_basis_state_is_fourier_column() {
        let n = 3;
        let c = qft(n);
        for x in 0..8u64 {
            let mut m = Manager::new(NumericContext::with_eps(1e-12), n);
            let amps = apply(&c, &mut m, x);
            // QFT (without bit reversal): amplitude of |y_rev⟩ is ω^{xy}/√8
            // — verify magnitudes are uniform and phases consistent for x=…
            for a in &amps {
                assert!(
                    (a.abs() - 1.0 / (8f64).sqrt()).abs() < 1e-9,
                    "x={x}: non-uniform magnitude {a:?}"
                );
            }
        }
    }

    #[test]
    fn qft_inverse_composes_to_identity() {
        let n = 4;
        let f = qft(n);
        let inv = inverse_qft(n);
        for start in [0u64, 5, 9, 15] {
            let mut m = Manager::new(NumericContext::with_eps(1e-10), n);
            let mut s = m.basis_state(start);
            for circ in [&f, &inv] {
                for op in circ.iter() {
                    if let crate::Op::Gate {
                        matrix,
                        target,
                        controls,
                    } = op
                    {
                        let g = m.gate(matrix, *target, controls);
                        s = m.mat_vec(&g, &s);
                    }
                }
            }
            let amps = m.amplitudes(&s);
            for (i, a) in amps.iter().enumerate() {
                let want = if i as u64 == start { 1.0 } else { 0.0 };
                assert!(
                    (a.abs() - want).abs() < 1e-8,
                    "start {start}, index {i}: {a:?}"
                );
            }
        }
    }

    #[test]
    fn qft_on_zero_gives_uniform_superposition() {
        let n = 4;
        let c = qft(n);
        let mut m = Manager::new(NumericContext::with_eps(1e-12), n);
        let amps = apply(&c, &mut m, 0);
        for a in amps {
            assert!((a.re - 0.25).abs() < 1e-9 && a.im.abs() < 1e-9);
        }
    }
}
