//! Pauli-term Hamiltonians for the Ground State Estimation benchmark.

use std::fmt;

/// A single-qubit Pauli operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pauli {
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
}

/// A weighted Pauli string `coeff · P₁ ⊗ P₂ ⊗ …` (identity on omitted
/// qubits).
#[derive(Debug, Clone, PartialEq)]
pub struct PauliString {
    /// Real coefficient.
    pub coeff: f64,
    /// `(qubit, Pauli)` factors; empty = scaled identity.
    pub ops: Vec<(u32, Pauli)>,
}

impl PauliString {
    /// Creates a term.
    pub fn new(coeff: f64, ops: Vec<(u32, Pauli)>) -> Self {
        PauliString { coeff, ops }
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.4}", self.coeff)?;
        if self.ops.is_empty() {
            write!(f, "·I")?;
        }
        for (q, p) in &self.ops {
            write!(f, "·{p:?}{q}")?;
        }
        Ok(())
    }
}

/// A Hamiltonian as a sum of Pauli strings over `n_qubits` system qubits.
#[derive(Debug, Clone)]
pub struct Hamiltonian {
    /// Width of the system register.
    pub n_qubits: u32,
    /// The weighted terms.
    pub terms: Vec<PauliString>,
}

impl Hamiltonian {
    /// Dense matrix of the Hamiltonian (real entries become complex via
    /// Y's ±i) — for test-time diagonalisation checks only.
    #[allow(clippy::needless_range_loop)] // `col` is an index *and* the basis state
    pub fn dense(&self) -> Vec<Vec<(f64, f64)>> {
        let dim = 1usize << self.n_qubits;
        let mut out = vec![vec![(0.0, 0.0); dim]; dim];
        for term in &self.terms {
            for col in 0..dim {
                // apply the string to basis state |col⟩
                let mut row = col;
                let mut amp = (term.coeff, 0.0);
                for &(q, p) in &term.ops {
                    let bit = (col >> (self.n_qubits - 1 - q)) & 1;
                    match p {
                        Pauli::Z => {
                            if bit == 1 {
                                amp = (-amp.0, -amp.1);
                            }
                        }
                        Pauli::X => {
                            row ^= 1 << (self.n_qubits - 1 - q);
                        }
                        Pauli::Y => {
                            row ^= 1 << (self.n_qubits - 1 - q);
                            // Y|0⟩ = i|1⟩, Y|1⟩ = −i|0⟩
                            amp = if bit == 0 {
                                (-amp.1, amp.0)
                            } else {
                                (amp.1, -amp.0)
                            };
                        }
                    }
                }
                out[row][col].0 += amp.0;
                out[row][col].1 += amp.1;
            }
        }
        out
    }

    /// Lowest eigenvalue by power iteration on `(s·I − H)` — reference
    /// ground-state energy for validating the GSE pipeline.
    pub fn ground_energy(&self) -> f64 {
        let h = self.dense();
        let dim = h.len();
        // shift so the target eigenvalue is the largest in magnitude
        let shift = 10.0;
        let mut v: Vec<(f64, f64)> = (0..dim).map(|i| (1.0 + i as f64 * 0.1, 0.0)).collect();
        for _ in 0..2000 {
            let mut w = vec![(0.0, 0.0); dim];
            for (r, row) in h.iter().enumerate() {
                let mut acc = (shift * v[r].0, shift * v[r].1);
                for (c, &(hr, hi)) in row.iter().enumerate() {
                    acc.0 -= hr * v[c].0 - hi * v[c].1;
                    acc.1 -= hr * v[c].1 + hi * v[c].0;
                }
                w[r] = acc;
            }
            let norm: f64 = w.iter().map(|(a, b)| a * a + b * b).sum::<f64>().sqrt();
            for x in &mut w {
                x.0 /= norm;
                x.1 /= norm;
            }
            v = w;
        }
        // Rayleigh quotient ⟨v|H|v⟩
        let mut e = 0.0;
        for (r, row) in h.iter().enumerate() {
            for (c, &(hr, hi)) in row.iter().enumerate() {
                // v[r]* H[r][c] v[c], real part
                let re = hr * v[c].0 - hi * v[c].1;
                let im = hr * v[c].1 + hi * v[c].0;
                e += v[r].0 * re + v[r].1 * im;
            }
        }
        e
    }
}

/// The minimal-basis molecular hydrogen Hamiltonian on two qubits —
/// the standard quantum-chemistry benchmark (Whitfield et al. / O'Malley
/// et al. coefficients at the equilibrium bond length):
///
/// `H = g₀·I + g₁·Z₀ + g₂·Z₁ + g₃·Z₀Z₁ + g₄·Y₀Y₁ + g₅·X₀X₁`
///
/// This is the “quantum molecular system” class of the paper's GSE
/// benchmark (Example 5 / Fig. 5).
pub fn h2_hamiltonian() -> Hamiltonian {
    use Pauli::*;
    Hamiltonian {
        n_qubits: 2,
        terms: vec![
            PauliString::new(-0.4804, vec![]),
            PauliString::new(0.3435, vec![(0, Z)]),
            PauliString::new(-0.4347, vec![(1, Z)]),
            PauliString::new(0.5716, vec![(0, Z), (1, Z)]),
            PauliString::new(0.0910, vec![(0, Y), (1, Y)]),
            PauliString::new(0.0910, vec![(0, X), (1, X)]),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h2_is_hermitian() {
        let h = h2_hamiltonian().dense();
        for (r, row) in h.iter().enumerate() {
            for (c, entry) in row.iter().enumerate() {
                assert!((entry.0 - h[c][r].0).abs() < 1e-12);
                assert!((entry.1 + h[c][r].1).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn h2_ground_energy_matches_reference() {
        // Exact diagonalisation of the 2×2 block spanned by |01⟩,|10⟩:
        // the known ground energy for these coefficients ≈ −1.8516 hartree…
        // computed analytically: E = g0 − g3 − sqrt((g1−g2)² + (g4+g5)²)
        let e = h2_hamiltonian().ground_energy();
        let g: (f64, f64, f64, f64, f64, f64) = (-0.4804, 0.3435, -0.4347, 0.5716, 0.0910, 0.0910);
        // the {|01⟩,|10⟩} block is [[g0−g3+(g1−g2), g4+g5],[g4+g5, g0−g3−(g1−g2)]]
        // with eigenvalues g0−g3 ± sqrt((g1−g2)² + (g4+g5)²)
        let analytic = g.0 - g.3 - ((g.1 - g.2).powi(2) + (g.4 + g.5).powi(2)).sqrt();
        assert!(
            (e - analytic).abs() < 1e-6,
            "power iteration {e} vs analytic {analytic}"
        );
    }

    #[test]
    fn dense_matrix_of_single_z() {
        let h = Hamiltonian {
            n_qubits: 1,
            terms: vec![PauliString::new(2.0, vec![(0, Pauli::Z)])],
        };
        let m = h.dense();
        assert_eq!(m[0][0], (2.0, 0.0));
        assert_eq!(m[1][1], (-2.0, 0.0));
        assert_eq!(m[0][1], (0.0, 0.0));
    }

    #[test]
    fn dense_matrix_of_y() {
        let h = Hamiltonian {
            n_qubits: 1,
            terms: vec![PauliString::new(1.0, vec![(0, Pauli::Y)])],
        };
        let m = h.dense();
        // Y = [[0, −i], [i, 0]]
        assert_eq!(m[0][1], (0.0, -1.0));
        assert_eq!(m[1][0], (0.0, 1.0));
    }

    #[test]
    fn display_formats_terms() {
        let t = PauliString::new(-0.5, vec![(0, Pauli::X), (1, Pauli::Z)]);
        assert_eq!(t.to_string(), "-0.5000·X0·Z1");
    }
}
