//! Quantum circuits and the paper's benchmark workloads.
//!
//! The evaluation of the reproduced paper (Sec. V) simulates three quantum
//! algorithms chosen to span the representability spectrum of the algebraic
//! number ring `D[ω]`:
//!
//! * [`grover`] — Grover's database search: Clifford+T(+multi-controlled)
//!   gates only, every intermediate state exactly representable.
//! * [`bwt`] — the Binary Welded Tree quantum walk (Childs et al.):
//!   Trotterized continuous walk over a 3-edge-colored welded tree with
//!   step angle π/4, again exactly representable.
//! * [`gse`] — Ground State Estimation: quantum phase estimation over a
//!   Trotterized molecular Hamiltonian. The arbitrary rotation angles are
//!   **not** in `D[ω]`; for algebraic simulation the circuit is compiled
//!   to Clifford+T by [`cliffordt`] (the paper uses Quipper for this).
//!
//! Circuits are sequences of [`Op`]s: ordinary (controlled) gates plus the
//! matching-evolution operators of the quantum walk.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

mod circuit;
pub mod cliffordt;
mod gse;
mod hamiltonian;
pub mod qasm;
mod qft;
mod walk;

pub use circuit::{Circuit, Op};
pub use gse::{gse, GseParams};
pub use hamiltonian::{h2_hamiltonian, Hamiltonian, Pauli, PauliString};
pub use qft::{inverse_qft, qft};
pub use walk::{bwt, bwt_trotter, BwtParams, WeldedTree};

use aq_dd::GateMatrix;

/// Grover's search over `n` data qubits for the marked element `marked`.
///
/// The circuit is the textbook algorithm: uniform superposition, then
/// `⌊π/4·√2ⁿ⌋` iterations of phase oracle (a multi-controlled Z with `X`
/// conjugation selecting `marked`) and the diffusion operator. All gates
/// are exactly representable in `D[ω]`, making this the paper's
/// best-case algebraic benchmark (Fig. 3).
///
/// # Panics
///
/// Panics if `n == 0`, `n > 63`, or `marked >= 2^n`.
///
/// # Examples
///
/// ```
/// use aq_circuits::grover;
///
/// let c = grover(4, 0b1011);
/// assert_eq!(c.n_qubits(), 4);
/// assert!(c.len() > 3 * 4); // superposition + iterations
/// ```
pub fn grover(n: u32, marked: u64) -> Circuit {
    assert!(n > 0 && n < 64, "qubit count out of range");
    assert!(marked < 1u64 << n, "marked element out of range");
    let mut c = Circuit::new(n);

    // uniform superposition
    for q in 0..n {
        c.push_gate(GateMatrix::h(), q, &[]);
    }

    let iterations = ((std::f64::consts::FRAC_PI_4) * ((1u64 << n) as f64).sqrt()).floor() as u64;
    let iterations = iterations.max(1);

    for _ in 0..iterations {
        grover_oracle(&mut c, n, marked);
        grover_diffusion(&mut c, n);
    }
    c
}

/// Number of Grover iterations used by [`grover`] for `n` qubits.
pub fn grover_iterations(n: u32) -> u64 {
    (((std::f64::consts::FRAC_PI_4) * ((1u64 << n) as f64).sqrt()).floor() as u64).max(1)
}

/// The `n`-qubit GHZ state preparation `(|0…0⟩ + |1…1⟩)/√2`: one Hadamard
/// and a CNOT ladder. Every outcome probability is exactly dyadic, which
/// makes this the canonical exact-sampling benchmark.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ghz(n: u32) -> Circuit {
    assert!(n > 0, "GHZ needs at least one qubit");
    let mut c = Circuit::new(n);
    c.push_gate(GateMatrix::h(), 0, &[]);
    for q in 1..n {
        c.push_gate(GateMatrix::x(), q, &[(q - 1, true)]);
    }
    c
}

/// Bernstein–Vazirani over `n` data qubits with hidden string `secret`
/// (bit `n−1−q` of `secret` belongs to data qubit `q`, matching the
/// most-significant-first index convention). Uses one ancilla as qubit
/// `n`; the final state holds `|secret⟩` on the data qubits with
/// probability 1, so sampling is deterministic.
///
/// # Panics
///
/// Panics if `n == 0`, `n > 63`, or `secret >= 2^n`.
pub fn bernstein_vazirani(n: u32, secret: u64) -> Circuit {
    assert!(n > 0 && n < 64, "qubit count out of range");
    assert!(secret < 1u64 << n, "secret out of range");
    let mut c = Circuit::new(n + 1);
    // ancilla in |−⟩
    c.push_gate(GateMatrix::x(), n, &[]);
    c.push_gate(GateMatrix::h(), n, &[]);
    for q in 0..n {
        c.push_gate(GateMatrix::h(), q, &[]);
    }
    // oracle: f(x) = secret · x
    for q in 0..n {
        if (secret >> (n - 1 - q)) & 1 == 1 {
            c.push_gate(GateMatrix::x(), n, &[(q, true)]);
        }
    }
    for q in 0..n {
        c.push_gate(GateMatrix::h(), q, &[]);
    }
    // uncompute the ancilla back to |0⟩ so the full register is |secret⟩|0⟩
    c.push_gate(GateMatrix::h(), n, &[]);
    c.push_gate(GateMatrix::x(), n, &[]);
    c
}

/// Quantum teleportation of qubit 0 onto qubit 2 through mid-circuit
/// measurement and classical control — the canonical exercise of the
/// non-unitary IR. The message qubit should be prepared by ops prepended
/// to this circuit (see [`Circuit::extend_from`]).
///
/// Classical bit layout: `c[0]` holds the X-correction bit (measurement
/// of qubit 1), `c[1]` the Z-correction bit (measurement of qubit 0).
/// Both Bell-measurement outcomes are uniform, so every collapse
/// renormalizes by an exact `1/√p` in the algebraic contexts.
pub fn teleport() -> Circuit {
    let mut c = Circuit::new(3);
    // Bell pair on qubits 1 and 2
    c.push_gate(GateMatrix::h(), 1, &[]);
    c.push_gate(GateMatrix::x(), 2, &[(1, true)]);
    // Bell measurement of qubits 0 and 1
    c.push_gate(GateMatrix::x(), 1, &[(0, true)]);
    c.push_gate(GateMatrix::h(), 0, &[]);
    c.push_measure(1, 0);
    c.push_measure(0, 1);
    // corrections on qubit 2: X^{c0} then Z^{c1}
    c.push_conditional(
        1,
        Op::Gate {
            matrix: GateMatrix::x(),
            target: 2,
            controls: Vec::new(),
        },
    );
    c.push_conditional(
        3,
        Op::Gate {
            matrix: GateMatrix::x(),
            target: 2,
            controls: Vec::new(),
        },
    );
    c.push_conditional(
        2,
        Op::Gate {
            matrix: GateMatrix::z(),
            target: 2,
            controls: Vec::new(),
        },
    );
    c.push_conditional(
        3,
        Op::Gate {
            matrix: GateMatrix::z(),
            target: 2,
            controls: Vec::new(),
        },
    );
    c
}

fn grover_oracle(c: &mut Circuit, n: u32, marked: u64) {
    // flip qubits where the marked bit is 0, so MCZ fires exactly on |marked⟩
    let zeros: Vec<u32> = (0..n)
        .filter(|q| (marked >> (n - 1 - q)) & 1 == 0)
        .collect();
    for &q in &zeros {
        c.push_gate(GateMatrix::x(), q, &[]);
    }
    c.push_mcz(n);
    for &q in &zeros {
        c.push_gate(GateMatrix::x(), q, &[]);
    }
}

fn grover_diffusion(c: &mut Circuit, n: u32) {
    for q in 0..n {
        c.push_gate(GateMatrix::h(), q, &[]);
    }
    for q in 0..n {
        c.push_gate(GateMatrix::x(), q, &[]);
    }
    c.push_mcz(n);
    for q in 0..n {
        c.push_gate(GateMatrix::x(), q, &[]);
    }
    for q in 0..n {
        c.push_gate(GateMatrix::h(), q, &[]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grover_structure() {
        let n = 5;
        let c = grover(n, 7);
        assert_eq!(c.n_qubits(), n);
        let iters = grover_iterations(n);
        // superposition n + iters · (oracle + diffusion)
        assert!(c.len() as u64 > n as u64 + iters * (1 + 4 * n as u64));
        assert!(c.is_exact());
    }

    #[test]
    #[should_panic(expected = "marked element out of range")]
    fn grover_rejects_bad_mark() {
        let _ = grover(3, 8);
    }

    #[test]
    fn iterations_scale_with_sqrt_n() {
        assert_eq!(grover_iterations(2), 1);
        assert_eq!(grover_iterations(4), 3);
        assert_eq!(grover_iterations(15), 142);
    }
}
