//! The circuit intermediate representation.

use std::fmt;
use std::sync::Arc;

use aq_dd::GateMatrix;

/// One operation of a [`Circuit`].
#[allow(clippy::large_enum_variant)] // gates dominate circuits; boxing would cost more
#[derive(Clone, Debug)]
pub enum Op {
    /// A (multi-)controlled single-qubit gate.
    Gate {
        /// The 2×2 gate body.
        matrix: GateMatrix,
        /// Target qubit.
        target: u32,
        /// `(qubit, polarity)` controls; `true` = control on `|1⟩`.
        controls: Vec<(u32, bool)>,
    },
    /// One Trotter factor `exp(−i·π/4·A_M)` of a quantum walk, where `A_M`
    /// is the adjacency matrix of a perfect-matching edge set `M` on the
    /// computational basis states: `cos(π/4)·I − i·sin(π/4)·P` on matched
    /// pairs, identity elsewhere. With the angle fixed at π/4 every entry
    /// is in `D[ω]`, so the factor is exactly representable — the property
    /// the paper requires of its BWT benchmark.
    MatchingEvolution {
        /// Matched basis-state pairs (disjoint).
        pairs: Arc<Vec<(u64, u64)>>,
    },
    /// A classical reversible function applied to the basis states — the
    /// shift operator of a coined quantum walk, an oracle permutation, …
    /// Entries are 0/1, trivially exact in every weight system.
    Permutation {
        /// `map[x]` = image of basis state `x`; must be a bijection.
        map: Arc<Vec<u64>>,
    },
}

impl Op {
    /// Returns `true` if the operation is representable exactly in `D[ω]`.
    pub fn is_exact(&self) -> bool {
        match self {
            Op::Gate { matrix, .. } => matrix.is_exact(),
            Op::MatchingEvolution { .. } | Op::Permutation { .. } => true,
        }
    }
}

/// A quantum circuit: a qubit count and a sequence of [`Op`]s.
///
/// # Examples
///
/// ```
/// use aq_circuits::Circuit;
/// use aq_dd::GateMatrix;
///
/// let mut c = Circuit::new(2);
/// c.push_gate(GateMatrix::h(), 0, &[]);
/// c.push_gate(GateMatrix::x(), 1, &[(0, true)]);
/// assert_eq!(c.len(), 2);
/// assert!(c.is_exact());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Circuit {
    n_qubits: u32,
    ops: Vec<Op>,
}

impl Circuit {
    /// An empty circuit on `n_qubits` qubits.
    pub fn new(n_qubits: u32) -> Self {
        Circuit {
            n_qubits,
            ops: Vec::new(),
        }
    }

    /// The number of qubits.
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// The number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the circuit has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations in order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Iterates over the operations.
    pub fn iter(&self) -> std::slice::Iter<'_, Op> {
        self.ops.iter()
    }

    /// Appends a raw operation.
    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// Appends a (multi-)controlled gate.
    ///
    /// # Panics
    ///
    /// Panics if the target or a control is out of range, or a control
    /// coincides with the target.
    pub fn push_gate(&mut self, matrix: GateMatrix, target: u32, controls: &[(u32, bool)]) {
        assert!(target < self.n_qubits, "target out of range");
        for &(c, _) in controls {
            assert!(c < self.n_qubits, "control out of range");
            assert!(c != target, "control equals target");
        }
        self.ops.push(Op::Gate {
            matrix,
            target,
            controls: controls.to_vec(),
        });
    }

    /// Appends a multi-controlled Z over the first `n` qubits (target
    /// `n−1`, positive controls `0..n−1`) — the Grover oracle/diffusion
    /// kernel.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the qubit count.
    pub fn push_mcz(&mut self, n: u32) {
        assert!(n >= 1 && n <= self.n_qubits, "MCZ size out of range");
        let controls: Vec<(u32, bool)> = (0..n - 1).map(|q| (q, true)).collect();
        self.push_gate(GateMatrix::z(), n - 1, &controls);
    }

    /// Appends a walk Trotter factor for a matching.
    ///
    /// # Panics
    ///
    /// Panics if a pair repeats a vertex or exceeds the state space.
    pub fn push_matching(&mut self, pairs: Vec<(u64, u64)>) {
        let dim = 1u64 << self.n_qubits;
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &pairs {
            assert!(a < dim && b < dim, "matching pair out of range");
            assert!(a != b, "self-loop in matching");
            assert!(
                seen.insert(a) && seen.insert(b),
                "vertex repeated in matching"
            );
        }
        self.ops.push(Op::MatchingEvolution {
            pairs: Arc::new(pairs),
        });
    }

    /// Appends a classical reversible map over all basis states.
    ///
    /// # Panics
    ///
    /// Panics if `map` is not a bijection on `0..2^n`.
    pub fn push_permutation(&mut self, map: Vec<u64>) {
        let dim = 1u64 << self.n_qubits;
        assert_eq!(
            map.len() as u64,
            dim,
            "permutation must cover all basis states"
        );
        let mut seen = vec![false; map.len()];
        for &y in &map {
            assert!(y < dim, "permutation image out of range");
            assert!(
                !std::mem::replace(&mut seen[y as usize], true),
                "permutation not injective"
            );
        }
        self.ops.push(Op::Permutation { map: Arc::new(map) });
    }

    /// Appends all operations of `other` (must have the same width).
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn extend_from(&mut self, other: &Circuit) {
        assert_eq!(
            self.n_qubits, other.n_qubits,
            "circuit width mismatch in extend_from"
        );
        self.ops.extend(other.ops.iter().cloned());
    }

    /// The inverse circuit: operations reversed, each gate replaced by its
    /// adjoint. Walk factors invert as `A⁻¹ = A†` (`exp(+i·π/4·A_M)` is
    /// not representable with the same primitive, so matching factors are
    /// rejected); permutations invert to their inverse map.
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains a matching-evolution factor.
    ///
    /// ```
    /// use aq_circuits::Circuit;
    /// use aq_dd::GateMatrix;
    ///
    /// let mut c = Circuit::new(1);
    /// c.push_gate(GateMatrix::t(), 0, &[]);
    /// c.push_gate(GateMatrix::h(), 0, &[]);
    /// let inv = c.inverted();
    /// assert_eq!(inv.len(), 2); // H†=H first, then T†
    /// ```
    pub fn inverted(&self) -> Circuit {
        let mut out = Circuit::new(self.n_qubits);
        // share one inverse Arc per source permutation so simulators can
        // cache the operator across repeated steps
        let mut inverses: std::collections::HashMap<*const Vec<u64>, Arc<Vec<u64>>> =
            std::collections::HashMap::new();
        for op in self.ops.iter().rev() {
            match op {
                Op::Gate {
                    matrix,
                    target,
                    controls,
                } => out.push(Op::Gate {
                    matrix: matrix.adjoint(),
                    target: *target,
                    controls: controls.clone(),
                }),
                Op::Permutation { map } => {
                    let inv = inverses
                        .entry(Arc::as_ptr(map))
                        .or_insert_with(|| {
                            let mut inv = vec![0u64; map.len()];
                            for (x, &y) in map.iter().enumerate() {
                                inv[y as usize] = x as u64;
                            }
                            Arc::new(inv)
                        })
                        .clone();
                    out.push(Op::Permutation { map: inv });
                }
                Op::MatchingEvolution { .. } => {
                    // aq-lint: allow(R1): documented contract of inverse(); no IR exists for the inverse factor
                    panic!("matching-evolution factors have no in-IR inverse")
                }
            }
        }
        out
    }

    /// Returns `true` if every operation is exactly representable in
    /// `D[ω]` (i.e. the circuit can be simulated algebraically without
    /// Clifford+T compilation).
    pub fn is_exact(&self) -> bool {
        self.ops.iter().all(Op::is_exact)
    }

    /// Number of operations that are *not* exactly representable.
    pub fn approx_ops(&self) -> usize {
        self.ops.iter().filter(|o| !o.is_exact()).count()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit on {} qubits, {} ops",
            self.n_qubits,
            self.ops.len()
        )?;
        for op in &self.ops {
            match op {
                Op::Gate {
                    matrix,
                    target,
                    controls,
                } => {
                    write!(f, "  {} q{target}", matrix.name())?;
                    for (c, p) in controls {
                        write!(f, " {}q{c}", if *p { "+" } else { "-" })?;
                    }
                    writeln!(f)?;
                }
                Op::MatchingEvolution { pairs } => {
                    writeln!(f, "  walk-factor ({} pairs)", pairs.len())?;
                }
                Op::Permutation { map } => {
                    let moved = map
                        .iter()
                        .enumerate()
                        .filter(|&(x, &y)| x as u64 != y)
                        .count();
                    writeln!(f, "  permutation ({moved} moved)")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut c = Circuit::new(3);
        assert!(c.is_empty());
        c.push_gate(GateMatrix::h(), 0, &[]);
        c.push_mcz(3);
        c.push_matching(vec![(0, 1), (2, 7)]);
        assert_eq!(c.len(), 3);
        assert!(c.is_exact());
        assert_eq!(c.approx_ops(), 0);
        c.push_gate(GateMatrix::rz(0.5), 1, &[]);
        assert!(!c.is_exact());
        assert_eq!(c.approx_ops(), 1);
    }

    #[test]
    #[should_panic(expected = "vertex repeated in matching")]
    fn matching_rejects_overlap() {
        let mut c = Circuit::new(3);
        c.push_matching(vec![(0, 1), (1, 2)]);
    }

    #[test]
    #[should_panic(expected = "control equals target")]
    fn gate_rejects_control_on_target() {
        let mut c = Circuit::new(2);
        c.push_gate(GateMatrix::x(), 1, &[(1, true)]);
    }

    #[test]
    fn display_lists_ops() {
        let mut c = Circuit::new(2);
        c.push_gate(GateMatrix::x(), 1, &[(0, true)]);
        let s = c.to_string();
        assert!(s.contains("X q1 +q0"), "got {s}");
    }
}
