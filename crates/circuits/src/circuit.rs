//! The circuit intermediate representation.

use std::fmt;
use std::sync::Arc;

use aq_dd::GateMatrix;

/// One operation of a [`Circuit`].
#[allow(clippy::large_enum_variant)] // gates dominate circuits; boxing would cost more
#[derive(Clone, Debug)]
pub enum Op {
    /// A (multi-)controlled single-qubit gate.
    Gate {
        /// The 2×2 gate body.
        matrix: GateMatrix,
        /// Target qubit.
        target: u32,
        /// `(qubit, polarity)` controls; `true` = control on `|1⟩`.
        controls: Vec<(u32, bool)>,
    },
    /// One Trotter factor `exp(−i·π/4·A_M)` of a quantum walk, where `A_M`
    /// is the adjacency matrix of a perfect-matching edge set `M` on the
    /// computational basis states: `cos(π/4)·I − i·sin(π/4)·P` on matched
    /// pairs, identity elsewhere. With the angle fixed at π/4 every entry
    /// is in `D[ω]`, so the factor is exactly representable — the property
    /// the paper requires of its BWT benchmark.
    MatchingEvolution {
        /// Matched basis-state pairs (disjoint).
        pairs: Arc<Vec<(u64, u64)>>,
    },
    /// A classical reversible function applied to the basis states — the
    /// shift operator of a coined quantum walk, an oracle permutation, …
    /// Entries are 0/1, trivially exact in every weight system.
    Permutation {
        /// `map[x]` = image of basis state `x`; must be a bijection.
        map: Arc<Vec<u64>>,
    },
    /// A projective Z-basis measurement of one qubit, recording the
    /// outcome in one bit of the (single, implicit) classical register.
    Measure {
        /// The measured qubit.
        qubit: u32,
        /// Destination classical bit (`c[0]` is the least significant).
        cbit: u32,
    },
    /// Resets one qubit to `|0⟩` (measure, then flip on outcome `1`).
    /// The scratch outcome is not recorded.
    Reset {
        /// The qubit to reset.
        qubit: u32,
    },
    /// An operation applied only when the classical register equals
    /// `value` — OpenQASM 2's `if (c == value) gate`.
    Conditional {
        /// The register value that enables the body.
        value: u64,
        /// The controlled operation.
        op: Box<Op>,
    },
}

impl Op {
    /// Returns `true` if the operation is representable exactly in `D[ω]`.
    pub fn is_exact(&self) -> bool {
        match self {
            Op::Gate { matrix, .. } => matrix.is_exact(),
            Op::MatchingEvolution { .. } | Op::Permutation { .. } => true,
            Op::Measure { .. } | Op::Reset { .. } => true,
            Op::Conditional { op, .. } => op.is_exact(),
        }
    }

    /// Returns `true` for operations that interact with the classical
    /// register or collapse the state — measurement, reset, and classical
    /// control. Circuits containing any of these cannot be simulated as a
    /// single unitary evolution.
    pub fn is_nonunitary(&self) -> bool {
        matches!(
            self,
            Op::Measure { .. } | Op::Reset { .. } | Op::Conditional { .. }
        )
    }
}

/// A quantum circuit: a qubit count and a sequence of [`Op`]s.
///
/// # Examples
///
/// ```
/// use aq_circuits::Circuit;
/// use aq_dd::GateMatrix;
///
/// let mut c = Circuit::new(2);
/// c.push_gate(GateMatrix::h(), 0, &[]);
/// c.push_gate(GateMatrix::x(), 1, &[(0, true)]);
/// assert_eq!(c.len(), 2);
/// assert!(c.is_exact());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Circuit {
    n_qubits: u32,
    n_cbits: u32,
    ops: Vec<Op>,
}

impl Circuit {
    /// An empty circuit on `n_qubits` qubits (and no classical bits).
    pub fn new(n_qubits: u32) -> Self {
        Circuit {
            n_qubits,
            n_cbits: 0,
            ops: Vec::new(),
        }
    }

    /// The number of qubits.
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// Width of the classical register (0 when the circuit never
    /// measures). Grows automatically with [`Circuit::push_measure`] and
    /// can be widened explicitly to mirror a declared `creg`.
    pub fn n_cbits(&self) -> u32 {
        self.n_cbits
    }

    /// Widens the classical register to at least `n` bits (never shrinks —
    /// recorded measurement destinations stay valid).
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`: the classical register is held in a `u64`.
    pub fn widen_cbits(&mut self, n: u32) {
        assert!(n <= 64, "classical register is limited to 64 bits");
        self.n_cbits = self.n_cbits.max(n);
    }

    /// The number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the circuit has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations in order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Iterates over the operations.
    pub fn iter(&self) -> std::slice::Iter<'_, Op> {
        self.ops.iter()
    }

    /// Appends a raw operation (widening the classical register if the
    /// operation records a measurement outcome).
    pub fn push(&mut self, op: Op) {
        if let Op::Measure { cbit, .. } = op {
            self.widen_cbits(cbit + 1);
        }
        self.ops.push(op);
    }

    /// Appends a measurement of `qubit` into classical bit `cbit`.
    ///
    /// # Panics
    ///
    /// Panics if the qubit is out of range or `cbit >= 64`.
    pub fn push_measure(&mut self, qubit: u32, cbit: u32) {
        assert!(qubit < self.n_qubits, "measured qubit out of range");
        self.push(Op::Measure { qubit, cbit });
    }

    /// Appends a reset of `qubit` to `|0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the qubit is out of range.
    pub fn push_reset(&mut self, qubit: u32) {
        assert!(qubit < self.n_qubits, "reset qubit out of range");
        self.push(Op::Reset { qubit });
    }

    /// Appends `op` under classical control: it runs only when the
    /// classical register equals `value`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is itself non-unitary (nested classical control,
    /// conditional measurement) — OpenQASM 2 has no such construct and the
    /// simulator does not implement one.
    pub fn push_conditional(&mut self, value: u64, op: Op) {
        assert!(
            !op.is_nonunitary(),
            "conditional bodies must be unitary operations"
        );
        self.ops.push(Op::Conditional {
            value,
            op: Box::new(op),
        });
    }

    /// Returns `true` if any operation measures, resets, or is classically
    /// controlled — i.e. the circuit needs per-shot forking rather than a
    /// single unitary evolution.
    pub fn has_nonunitary_ops(&self) -> bool {
        self.ops.iter().any(Op::is_nonunitary)
    }

    /// Appends a (multi-)controlled gate.
    ///
    /// # Panics
    ///
    /// Panics if the target or a control is out of range, or a control
    /// coincides with the target.
    pub fn push_gate(&mut self, matrix: GateMatrix, target: u32, controls: &[(u32, bool)]) {
        assert!(target < self.n_qubits, "target out of range");
        for &(c, _) in controls {
            assert!(c < self.n_qubits, "control out of range");
            assert!(c != target, "control equals target");
        }
        self.ops.push(Op::Gate {
            matrix,
            target,
            controls: controls.to_vec(),
        });
    }

    /// Appends a multi-controlled Z over the first `n` qubits (target
    /// `n−1`, positive controls `0..n−1`) — the Grover oracle/diffusion
    /// kernel.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the qubit count.
    pub fn push_mcz(&mut self, n: u32) {
        assert!(n >= 1 && n <= self.n_qubits, "MCZ size out of range");
        let controls: Vec<(u32, bool)> = (0..n - 1).map(|q| (q, true)).collect();
        self.push_gate(GateMatrix::z(), n - 1, &controls);
    }

    /// Appends a walk Trotter factor for a matching.
    ///
    /// # Panics
    ///
    /// Panics if a pair repeats a vertex or exceeds the state space.
    pub fn push_matching(&mut self, pairs: Vec<(u64, u64)>) {
        let dim = 1u64 << self.n_qubits;
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &pairs {
            assert!(a < dim && b < dim, "matching pair out of range");
            assert!(a != b, "self-loop in matching");
            assert!(
                seen.insert(a) && seen.insert(b),
                "vertex repeated in matching"
            );
        }
        self.ops.push(Op::MatchingEvolution {
            pairs: Arc::new(pairs),
        });
    }

    /// Appends a classical reversible map over all basis states.
    ///
    /// # Panics
    ///
    /// Panics if `map` is not a bijection on `0..2^n`.
    pub fn push_permutation(&mut self, map: Vec<u64>) {
        let dim = 1u64 << self.n_qubits;
        assert_eq!(
            map.len() as u64,
            dim,
            "permutation must cover all basis states"
        );
        let mut seen = vec![false; map.len()];
        for &y in &map {
            assert!(y < dim, "permutation image out of range");
            assert!(
                !std::mem::replace(&mut seen[y as usize], true),
                "permutation not injective"
            );
        }
        self.ops.push(Op::Permutation { map: Arc::new(map) });
    }

    /// Appends all operations of `other` (must have the same width).
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn extend_from(&mut self, other: &Circuit) {
        assert_eq!(
            self.n_qubits, other.n_qubits,
            "circuit width mismatch in extend_from"
        );
        self.n_cbits = self.n_cbits.max(other.n_cbits);
        self.ops.extend(other.ops.iter().cloned());
    }

    /// The inverse circuit: operations reversed, each gate replaced by its
    /// adjoint. Walk factors invert as `A⁻¹ = A†` (`exp(+i·π/4·A_M)` is
    /// not representable with the same primitive, so matching factors are
    /// rejected); permutations invert to their inverse map.
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains a matching-evolution factor or a
    /// measurement operation (collapse has no inverse).
    ///
    /// ```
    /// use aq_circuits::Circuit;
    /// use aq_dd::GateMatrix;
    ///
    /// let mut c = Circuit::new(1);
    /// c.push_gate(GateMatrix::t(), 0, &[]);
    /// c.push_gate(GateMatrix::h(), 0, &[]);
    /// let inv = c.inverted();
    /// assert_eq!(inv.len(), 2); // H†=H first, then T†
    /// ```
    pub fn inverted(&self) -> Circuit {
        let mut out = Circuit::new(self.n_qubits);
        // share one inverse Arc per source permutation so simulators can
        // cache the operator across repeated steps
        let mut inverses: std::collections::HashMap<*const Vec<u64>, Arc<Vec<u64>>> =
            std::collections::HashMap::new();
        for op in self.ops.iter().rev() {
            match op {
                Op::Gate {
                    matrix,
                    target,
                    controls,
                } => out.push(Op::Gate {
                    matrix: matrix.adjoint(),
                    target: *target,
                    controls: controls.clone(),
                }),
                Op::Permutation { map } => {
                    let inv = inverses
                        .entry(Arc::as_ptr(map))
                        .or_insert_with(|| {
                            let mut inv = vec![0u64; map.len()];
                            for (x, &y) in map.iter().enumerate() {
                                inv[y as usize] = x as u64;
                            }
                            Arc::new(inv)
                        })
                        .clone();
                    out.push(Op::Permutation { map: inv });
                }
                Op::MatchingEvolution { .. } => {
                    // aq-lint: allow(R1): documented contract of inverse(); no IR exists for the inverse factor
                    panic!("matching-evolution factors have no in-IR inverse")
                }
                Op::Measure { .. } | Op::Reset { .. } | Op::Conditional { .. } => {
                    // aq-lint: allow(R1): documented contract of inverse(); collapse is not invertible
                    panic!("measurement operations have no inverse")
                }
            }
        }
        out
    }

    /// Returns `true` if every operation is exactly representable in
    /// `D[ω]` (i.e. the circuit can be simulated algebraically without
    /// Clifford+T compilation).
    pub fn is_exact(&self) -> bool {
        self.ops.iter().all(Op::is_exact)
    }

    /// Number of operations that are *not* exactly representable.
    pub fn approx_ops(&self) -> usize {
        self.ops.iter().filter(|o| !o.is_exact()).count()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit on {} qubits, {} ops",
            self.n_qubits,
            self.ops.len()
        )?;
        for op in &self.ops {
            write!(f, "  ")?;
            fmt_op(f, op)?;
            writeln!(f)?;
        }
        Ok(())
    }
}

fn fmt_op(f: &mut fmt::Formatter<'_>, op: &Op) -> fmt::Result {
    match op {
        Op::Gate {
            matrix,
            target,
            controls,
        } => {
            write!(f, "{} q{target}", matrix.name())?;
            for (c, p) in controls {
                write!(f, " {}q{c}", if *p { "+" } else { "-" })?;
            }
            Ok(())
        }
        Op::MatchingEvolution { pairs } => {
            write!(f, "walk-factor ({} pairs)", pairs.len())
        }
        Op::Permutation { map } => {
            let moved = map
                .iter()
                .enumerate()
                .filter(|&(x, &y)| x as u64 != y)
                .count();
            write!(f, "permutation ({moved} moved)")
        }
        Op::Measure { qubit, cbit } => write!(f, "measure q{qubit} -> c{cbit}"),
        Op::Reset { qubit } => write!(f, "reset q{qubit}"),
        Op::Conditional { value, op } => {
            write!(f, "if (c=={value}) ")?;
            fmt_op(f, op)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut c = Circuit::new(3);
        assert!(c.is_empty());
        c.push_gate(GateMatrix::h(), 0, &[]);
        c.push_mcz(3);
        c.push_matching(vec![(0, 1), (2, 7)]);
        assert_eq!(c.len(), 3);
        assert!(c.is_exact());
        assert_eq!(c.approx_ops(), 0);
        c.push_gate(GateMatrix::rz(0.5), 1, &[]);
        assert!(!c.is_exact());
        assert_eq!(c.approx_ops(), 1);
    }

    #[test]
    #[should_panic(expected = "vertex repeated in matching")]
    fn matching_rejects_overlap() {
        let mut c = Circuit::new(3);
        c.push_matching(vec![(0, 1), (1, 2)]);
    }

    #[test]
    #[should_panic(expected = "control equals target")]
    fn gate_rejects_control_on_target() {
        let mut c = Circuit::new(2);
        c.push_gate(GateMatrix::x(), 1, &[(1, true)]);
    }

    #[test]
    fn display_lists_ops() {
        let mut c = Circuit::new(2);
        c.push_gate(GateMatrix::x(), 1, &[(0, true)]);
        let s = c.to_string();
        assert!(s.contains("X q1 +q0"), "got {s}");
    }

    #[test]
    fn measurement_ops_track_classical_bits() {
        let mut c = Circuit::new(3);
        assert_eq!(c.n_cbits(), 0);
        assert!(!c.has_nonunitary_ops());
        c.push_measure(0, 4);
        assert_eq!(c.n_cbits(), 5, "measure widens the classical register");
        c.push_reset(1);
        c.push_conditional(
            2,
            Op::Gate {
                matrix: GateMatrix::x(),
                target: 2,
                controls: Vec::new(),
            },
        );
        assert!(c.has_nonunitary_ops());
        assert!(c.is_exact(), "measurement ops are not approximations");

        let s = c.to_string();
        assert!(s.contains("measure q0 -> c4"), "got {s}");
        assert!(s.contains("reset q1"), "got {s}");
        assert!(s.contains("if (c==2) X q2"), "got {s}");
    }

    #[test]
    fn extend_from_merges_classical_registers() {
        let mut a = Circuit::new(2);
        a.push_measure(0, 0);
        let mut b = Circuit::new(2);
        b.push_measure(1, 3);
        a.extend_from(&b);
        assert_eq!(a.n_cbits(), 4);
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "conditional bodies must be unitary operations")]
    fn conditional_rejects_nonunitary_body() {
        let mut c = Circuit::new(2);
        c.push_conditional(1, Op::Measure { qubit: 0, cbit: 0 });
    }

    #[test]
    #[should_panic(expected = "measurement operations have no inverse")]
    fn inverted_rejects_measurement() {
        let mut c = Circuit::new(2);
        c.push_measure(0, 0);
        let _ = c.inverted();
    }
}
